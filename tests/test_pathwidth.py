"""Tests for interval representations, path/tree decompositions, exact DP."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph
from repro.graphs.generators import (
    caterpillar_graph,
    complete_graph,
    cycle_graph,
    enumerate_graphs,
    grid_graph,
    ladder_graph,
    path_graph,
    random_pathwidth_graph,
    random_tree,
    spider_graph,
    star_graph,
)
from repro.pathwidth import (
    IntervalRepresentation,
    PathDecomposition,
    TreeDecomposition,
    balanced_binary_decomposition,
    exact_pathwidth,
    heuristic_path_decomposition,
    optimal_vertex_ordering,
)
from repro.pathwidth.exact import (
    exact_path_decomposition,
    exact_pathwidth_of_components,
    pathwidth_at_most,
)
from repro.pathwidth.heuristics import bfs_ordering, greedy_boundary_ordering


class TestIntervalRepresentation:
    def test_validates_edge_overlap(self):
        g = Graph(edges=[(0, 1)])
        with pytest.raises(ValueError):
            IntervalRepresentation(g, {0: (0, 0), 1: (2, 3)})

    def test_validates_nonempty(self):
        g = Graph(vertices=[0])
        with pytest.raises(ValueError):
            IntervalRepresentation(g, {0: (3, 1)})

    def test_validates_coverage(self):
        g = Graph(vertices=[0, 1])
        with pytest.raises(ValueError):
            IntervalRepresentation(g, {0: (0, 1)})

    def test_width_of_path_intervals(self):
        g = path_graph(3)
        rep = IntervalRepresentation(g, {0: (0, 1), 1: (1, 2), 2: (2, 3)})
        assert rep.width() == 2

    def test_strictly_before(self):
        g = Graph(vertices=[0, 1])
        rep = IntervalRepresentation(g, {0: (0, 1), 1: (3, 4)})
        assert rep.strictly_before(0, 1)
        assert not rep.strictly_before(1, 0)

    def test_union_interval(self):
        g = path_graph(3)
        rep = IntervalRepresentation(g, {0: (0, 1), 1: (1, 2), 2: (2, 5)})
        assert rep.union_interval([0, 1, 2]) == (0, 5)

    def test_argmin_argmax(self):
        g = path_graph(3)
        rep = IntervalRepresentation(g, {0: (0, 1), 1: (1, 4), 2: (3, 4)})
        assert rep.argmin_left() == 0
        assert rep.argmax_right() == 1  # tie on R=4 broken by vertex order

    def test_from_ordering_path(self):
        g = path_graph(4)
        rep = IntervalRepresentation.from_ordering(g, [0, 1, 2, 3])
        assert rep.width() == 2  # pathwidth 1 -> width 2

    def test_from_ordering_requires_permutation(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            IntervalRepresentation.from_ordering(g, [0, 1])

    def test_restriction(self):
        g = path_graph(4)
        rep = IntervalRepresentation.from_ordering(g, [0, 1, 2, 3])
        sub = rep.restricted_to([0, 1])
        assert set(sub.intervals) == {0, 1}


class TestPathDecomposition:
    def test_width(self):
        g = path_graph(3)
        d = PathDecomposition(g, [[0, 1], [1, 2]])
        assert d.width() == 1

    def test_missing_vertex_rejected(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            PathDecomposition(g, [[0, 1]])

    def test_uncovered_edge_rejected(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            PathDecomposition(g, [[0, 1], [2]])

    def test_noncontiguous_rejected(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            PathDecomposition(g, [[0, 1], [1, 2], [0, 2]])

    def test_trivial(self):
        g = complete_graph(4)
        d = PathDecomposition.trivial(g)
        assert d.width() == 3

    def test_interval_roundtrip_preserves_width(self):
        rng = random.Random(5)
        for k in (1, 2, 3):
            g, bags = random_pathwidth_graph(25, k, rng)
            d = PathDecomposition(g, bags)
            rep = d.to_interval_representation()
            assert rep.width() == d.width() + 1 or rep.width() <= d.width() + 1
            d2 = PathDecomposition.from_interval_representation(rep)
            assert d2.width() <= d.width()


class TestExactPathwidth:
    KNOWN = [
        (path_graph(2), 1),
        (path_graph(8), 1),
        (cycle_graph(5), 2),
        (star_graph(4), 1),
        (caterpillar_graph(4, 2), 1),
        (spider_graph(3, 2), 2),
        (complete_graph(4), 3),
        (complete_graph(6), 5),
        (ladder_graph(5), 2),
        (grid_graph(3, 3), 3),
    ]

    @pytest.mark.parametrize("graph,expected", KNOWN)
    def test_known_values(self, graph, expected):
        assert exact_pathwidth(graph) == expected

    def test_single_vertex(self):
        assert exact_pathwidth(Graph(vertices=[0])) == 0

    def test_ordering_achieves_value(self):
        g = cycle_graph(7)
        ordering = optimal_vertex_ordering(g)
        rep = IntervalRepresentation.from_ordering(g, ordering)
        assert rep.width() - 1 == exact_pathwidth(g)

    def test_exact_decomposition_is_optimal(self):
        for g in (cycle_graph(6), ladder_graph(4), spider_graph(3, 2)):
            d = exact_path_decomposition(g)
            assert d.width() == exact_pathwidth(g)

    def test_pathwidth_at_most(self):
        assert pathwidth_at_most(path_graph(6), 1)
        assert not pathwidth_at_most(cycle_graph(6), 1)

    def test_components(self):
        g = path_graph(4).disjoint_union(cycle_graph(5).relabeled({i: i + 10 for i in range(5)}))
        assert exact_pathwidth_of_components(g) == 2

    def test_dp_size_limit(self):
        with pytest.raises(ValueError):
            exact_pathwidth(path_graph(30), engine="dp")

    def test_default_engine_passes_old_dp_limit(self):
        # The branch-and-bound default has no size cap.
        assert exact_pathwidth(path_graph(30)) == 1

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            exact_pathwidth(path_graph(4), engine="milp")

    def test_trees_have_low_pathwidth(self):
        rng = random.Random(9)
        for _ in range(5):
            t = random_tree(12, rng)
            # Trees on n vertices have pathwidth O(log n); for n=12, <= 3.
            assert exact_pathwidth(t) <= 3

    @given(st.integers(min_value=3, max_value=9))
    @settings(max_examples=7, deadline=None)
    def test_cycles_always_two(self, n):
        assert exact_pathwidth(cycle_graph(n)) == 2


class TestHeuristics:
    def test_bfs_ordering_is_permutation(self):
        g = grid_graph(3, 3)
        order = bfs_ordering(g)
        assert sorted(order) == g.vertices()

    def test_greedy_ordering_is_permutation(self):
        g = grid_graph(3, 3)
        order = greedy_boundary_ordering(g)
        assert sorted(order) == g.vertices()

    def test_heuristic_valid_decomposition(self):
        rng = random.Random(21)
        g, _bags = random_pathwidth_graph(30, 2, rng)
        d = heuristic_path_decomposition(g)
        d.validate()

    def test_heuristic_optimal_on_paths(self):
        d = heuristic_path_decomposition(path_graph(20))
        assert d.width() == 1

    def test_heuristic_near_optimal_on_cycles(self):
        d = heuristic_path_decomposition(cycle_graph(20))
        assert d.width() <= 3

    def test_heuristic_vs_exact_small(self):
        count = 0
        for g in enumerate_graphs(5):
            count += 1
            if count > 60:
                break
            d = heuristic_path_decomposition(g)
            assert d.width() >= exact_pathwidth(g)


class TestTreeDecomposition:
    def test_from_path_decomposition(self):
        g = path_graph(5)
        d = PathDecomposition(g, [[0, 1], [1, 2], [2, 3], [3, 4]])
        td = TreeDecomposition.from_path_decomposition(d)
        assert td.width() == 1
        assert td.depth() == 4

    def test_invalid_occurrence_connectivity(self):
        g = path_graph(3)
        bags = {0: [0, 1], 1: [1, 2], 2: [0, 1]}
        with pytest.raises(ValueError):
            TreeDecomposition(g, bags, [(0, 1), (1, 2)], 0)

    def test_root_path(self):
        g = path_graph(5)
        d = PathDecomposition(g, [[0, 1], [1, 2], [2, 3], [3, 4]])
        td = TreeDecomposition.from_path_decomposition(d)
        assert td.root_path(3) == [0, 1, 2, 3]


class TestBalancedDecomposition:
    @pytest.mark.parametrize("n", [2, 3, 5, 17, 64, 100])
    def test_on_paths(self, n):
        g = path_graph(n)
        d = PathDecomposition(g, [[i, i + 1] for i in range(n - 1)])
        bd = balanced_binary_decomposition(d)
        bd.validate()
        assert bd.width() <= 3 * d.width() + 2
        # depth O(log s): allow a generous constant.
        import math

        assert bd.depth() <= 2 * math.ceil(math.log2(max(len(d.bags), 2))) + 2

    def test_on_random_pathwidth_graphs(self):
        rng = random.Random(31)
        for k in (1, 2, 3):
            g, bags = random_pathwidth_graph(50, k, rng)
            d = PathDecomposition(g, bags)
            bd = balanced_binary_decomposition(d)
            bd.validate()
            assert bd.width() <= 3 * d.width() + 2
