"""Tests for the persistent certificate store (repro.api.store).

The acceptance contract: ``certify → store.save → (fresh process)
store.load → verification round accepts``, with no prover stage re-run —
asserted through the session stage counters, which must stay empty on
the stored path.
"""

import os
import pickle
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import (
    CertificateStore,
    CertificationSession,
    StoreError,
    VerificationEngine,
    certify,
)
from repro.api.store import STORE_MAGIC
from repro.experiments import lanewidth_workload

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _certified(tmp_path, seed=51, n=20, store=None):
    sequence, graph = lanewidth_workload(3, n, seed)
    report = certify(
        sequence, "connected", rng=random.Random(seed + 1), store=store
    )
    assert report.accepted and not report.refused
    return report, graph


class TestSaveLoad:
    def test_save_load_round_trip(self, tmp_path):
        store = CertificateStore(tmp_path)
        report, graph = _certified(tmp_path)
        path = store.save(report)
        assert path.exists()
        fingerprint = graph.fingerprint()
        assert (fingerprint, "connected") in store
        assert len(store) == 1

        loaded = store.load(fingerprint, "connected")
        assert loaded.property_key == "connected"
        assert loaded.labeling.mapping == report.labeling.mapping
        assert loaded.max_label_bits == report.max_label_bits
        assert loaded.encoded.max_bits == report.encoded.max_bits
        # The rehydrated config is the same network.
        assert loaded.config.graph.fingerprint() == fingerprint
        assert loaded.config.ids == report.config.ids

    def test_certify_with_store_saves_automatically(self, tmp_path):
        store = CertificateStore(tmp_path)
        report, graph = _certified(tmp_path, seed=52, store=store)
        assert (graph.fingerprint(), "connected") in store
        # entries() lists what certify persisted.
        [(fingerprint, key, _path)] = store.entries()
        assert (fingerprint, key) == (graph.fingerprint(), "connected")

    def test_session_store_saves_batches(self, tmp_path):
        store = CertificateStore(tmp_path)
        sequence, graph = lanewidth_workload(3, 16, 53)
        session = CertificationSession(rng=random.Random(54), store=store)
        reports = session.certify(sequence, ["connected", "even-order"])
        saved = {key for _f, key, _p in store.entries()}
        accepted = {k for k, r in reports.items() if not r.refused}
        assert accepted <= saved | {"connected", "even-order"}
        for key in accepted:
            assert (graph.fingerprint(), key) in store

    def test_refused_report_is_not_storable(self, tmp_path):
        from repro.graphs.generators import cycle_graph

        store = CertificateStore(tmp_path)
        # An odd cycle is not bipartite: the honest prover must refuse,
        # and a refusal has no labeling to persist.
        report = certify(
            cycle_graph(7), "bipartite", k=2, rng=random.Random(56), store=store
        )
        assert report.refused
        with pytest.raises(StoreError):
            store.save(report)
        assert len(store) == 0

    def test_json_rebuilt_report_is_not_storable(self, tmp_path):
        from repro.api import CertificationReport

        store = CertificateStore(tmp_path)
        report, _graph = _certified(tmp_path, seed=57)
        rebuilt = CertificationReport.from_dict(report.to_dict())
        with pytest.raises(StoreError):
            store.save(rebuilt)


class TestReverifyWithoutProving:
    def test_session_verify_runs_no_prover_stage(self, tmp_path):
        store = CertificateStore(tmp_path)
        report, graph = _certified(tmp_path, seed=61, store=store)
        loaded = store.load(graph.fingerprint(), "connected")
        session = CertificationSession()
        verification = session.verify(loaded)
        assert verification.accepted
        assert loaded.accepted
        # The stored path never touches a prover stage.
        assert session.stage_counters == {}

    def test_store_reverify_helper(self, tmp_path):
        store = CertificateStore(tmp_path)
        report, graph = _certified(tmp_path, seed=62, store=store)
        out = store.reverify(
            graph.fingerprint(), "connected", engine=VerificationEngine()
        )
        assert out.accepted
        assert out.verification.accepted
        assert out.verification.views_built == out.n

    def test_store_reverify_with_parallel_engine(self, tmp_path):
        """The stored path is not pinned to the serial engine: a
        pool-resident ParallelExecutor verifies a rehydrated report with
        identical verdicts (the loaded verifier half is pickle-safe)."""
        from repro.api import ParallelExecutor

        store = CertificateStore(tmp_path)
        report, graph = _certified(tmp_path, seed=68, store=store)
        serial = store.reverify(graph.fingerprint(), "connected")
        with ParallelExecutor(max_workers=2) as executor:
            parallel = store.reverify(
                graph.fingerprint(),
                "connected",
                engine=VerificationEngine(executor),
            )
        assert parallel.accepted
        assert parallel.verification.executor == "parallel"
        assert parallel.verification.verdicts == serial.verification.verdicts

    def test_fresh_process_load_and_verify(self, tmp_path):
        """The acceptance criterion, literally: a separate interpreter
        loads the entry and the verification round accepts, with the
        stage counters proving no prover stage ran."""
        store = CertificateStore(tmp_path)
        _report, graph = _certified(tmp_path, seed=63, store=store)
        script = (
            "import sys\n"
            "from repro.api import CertificateStore, CertificationSession\n"
            "store = CertificateStore(sys.argv[1])\n"
            "report = store.load(sys.argv[2], 'connected')\n"
            "session = CertificationSession()\n"
            "verification = session.verify(report)\n"
            "assert verification.accepted, verification.summary()\n"
            "assert session.stage_counters == {}, session.stage_counters\n"
            "print('REVERIFIED', report.max_label_bits)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path), graph.fingerprint()],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "REVERIFIED" in proc.stdout


class TestIntegrity:
    def test_missing_entry(self, tmp_path):
        store = CertificateStore(tmp_path)
        with pytest.raises(StoreError):
            store.load("0" * 32, "connected")

    def test_non_store_file_rejected(self, tmp_path):
        store = CertificateStore(tmp_path)
        bogus = tmp_path / "bogus.cert"
        bogus.write_bytes(b"definitely not a certificate")
        with pytest.raises(StoreError):
            store.load_path(bogus)

    def test_truncated_envelope_rejected(self, tmp_path):
        # A bit-flipped or truncated pickle after the magic must surface
        # as StoreError, never a raw pickle exception.
        store = CertificateStore(tmp_path)
        report, graph = _certified(tmp_path, seed=66, store=store)
        path = store.path_for(graph.fingerprint(), "connected")
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(StoreError):
            store.load(graph.fingerprint(), "connected")
        path.write_bytes(STORE_MAGIC + b"\x80garbage")
        with pytest.raises(StoreError):
            store.load(graph.fingerprint(), "connected")

    def test_missing_manifest_fields_rejected(self, tmp_path):
        store = CertificateStore(tmp_path)
        report, graph = _certified(tmp_path, seed=67, store=store)
        path = store.path_for(graph.fingerprint(), "connected")
        manifest = pickle.loads(path.read_bytes()[len(STORE_MAGIC):])
        del manifest["labels"]
        path.write_bytes(STORE_MAGIC + pickle.dumps(manifest, protocol=4))
        with pytest.raises(StoreError, match="missing fields"):
            store.load(graph.fingerprint(), "connected")

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        store = CertificateStore(tmp_path)
        report, graph = _certified(tmp_path, seed=64, store=store)
        with pytest.raises(StoreError):
            store.load(
                "f" * len(graph.fingerprint()),
                "connected",
                path=store.path_for(graph.fingerprint(), "connected"),
            )

    def test_corrupted_label_payload_rejected(self, tmp_path):
        store = CertificateStore(tmp_path)
        report, graph = _certified(tmp_path, seed=65, store=store)
        path = store.path_for(graph.fingerprint(), "connected")
        manifest = pickle.loads(path.read_bytes()[len(STORE_MAGIC):])
        # Truncate one certificate payload: the decoder must flag it.
        key = next(iter(manifest["labels"]))
        data, bits = manifest["labels"][key]
        manifest["labels"][key] = (data[: max(1, len(data) // 4)], bits)
        path.write_bytes(STORE_MAGIC + pickle.dumps(manifest, protocol=4))
        with pytest.raises(StoreError):
            store.load(graph.fingerprint(), "connected")
