"""Tests for plan-based proving (repro.api.plan / artifacts / prover).

The acceptance contract of the plan refactor:

* **plan ≡ legacy pipeline** — a hypothesis suite asserts the plan-based
  session produces reports identical to the legacy linear stage list
  (verdict, measured encoded bits, class counts) on random lanewidth
  hosts and random pathwidth graphs;
* **warm cache runs zero structural nodes** — stage-counter assertions
  in-session, across sessions sharing a cache, and from a **fresh
  interpreter** over a disk-backed cache;
* **parallel per-property proving** is verdict- and bit-identical to the
  serial path and ships its structural payload once per pool;
* corrupted artifact envelopes are treated as misses (recompute), never
  as failures.
"""

import os
import pickle
import random
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    ArtifactCache,
    CertificateStore,
    CertificationPipeline,
    CertificationPlan,
    CertificationSession,
    LabelStage,
    ParallelProver,
    PipelineContext,
    PlanError,
    PlanRunner,
    lanewidth_plan,
    theorem1_plan,
    theorem1_stages,
)
from repro.api.pipeline import lanewidth_stages
from repro.codec import encode_labeling
from repro.core import apply_construction, random_lanewidth_sequence
from repro.experiments import lanewidth_workload
from repro.graphs.generators import random_pathwidth_graph
from repro.pls.model import Configuration

SRC = str(Path(__file__).resolve().parent.parent / "src")

STRUCTURAL_T1 = ("decompose", "lanes", "completion", "hierarchy")

ZOO = ["connected", "acyclic", "bipartite", "even-order", "max-degree-2"]


def _legacy_report_facts(config, stages, algebra_key):
    """Run the legacy linear pipeline; return comparable facts."""
    from repro.pls.scheme import ProverFailure

    ctx = PipelineContext(config=config, algebra=algebra_key)
    try:
        CertificationPipeline(stages).run(ctx)
    except ProverFailure as failure:
        return {"refused": True, "refusal": str(failure)}
    encoded = encode_labeling(ctx.labeling)
    return {
        "refused": False,
        "class_count": ctx.class_count,
        "max_bits": encoded.max_bits,
        "mean_bits": encoded.mean_bits,
        "total_bits": encoded.total_bits,
        "mapping": ctx.labeling.mapping,
    }


def _assert_report_matches(report, facts, key):
    assert report.refused == facts["refused"], key
    if facts["refused"]:
        assert report.refusal == facts["refusal"], key
        return
    assert report.accepted, key
    assert report.class_count == facts["class_count"], key
    assert report.max_label_bits == facts["max_bits"], key
    assert report.mean_label_bits == facts["mean_bits"], key
    assert report.total_label_bits == facts["total_bits"], key
    assert report.labeling.mapping == facts["mapping"], key


class TestPlanEquivalentToLegacyPipeline:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_lanewidth_mode_identical_reports(self, seed):
        rng = random.Random(seed)
        seq = random_lanewidth_sequence(2, rng.randrange(4, 14), rng)
        graph = apply_construction(seq)
        config = Configuration.with_random_ids(graph, random.Random(seed + 1))
        # Same configuration on both paths: the session draws ids from
        # an rng seeded identically to `config`'s — the ids must agree
        # for the labels (which embed them) to agree bit for bit.
        session_reports = CertificationSession(
            rng=random.Random(seed + 1)
        ).certify(seq, ZOO, verify=False)
        for key in ZOO:
            facts = _legacy_report_facts(
                config, lanewidth_stages(seq, algebra=key), key
            )
            _assert_report_matches(session_reports[key], facts, key)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_theorem1_mode_identical_reports(self, seed):
        rng = random.Random(seed)
        graph, _bags = random_pathwidth_graph(rng.randrange(8, 16), 2, rng)
        config = Configuration.with_random_ids(graph, random.Random(seed + 1))
        reports = CertificationSession(
            k=2, rng=random.Random(seed + 1)
        ).certify(graph, ZOO, verify=False)
        for key in ZOO:
            facts = _legacy_report_facts(
                config, theorem1_stages(2, algebra=key), key
            )
            _assert_report_matches(reports[key], facts, key)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_warm_cache_reports_identical_to_cold(self, seed, tmp_path_factory):
        root = tmp_path_factory.mktemp("plancache")
        rng = random.Random(seed)
        seq = random_lanewidth_sequence(2, rng.randrange(4, 12), rng)
        cache = ArtifactCache(root / f"a{seed}")
        cold = CertificationSession(
            rng=random.Random(seed + 2), artifacts=cache
        ).certify(seq, ZOO, verify=False)
        warm_session = CertificationSession(
            rng=random.Random(seed + 2), artifacts=cache
        )
        warm = warm_session.certify(seq, ZOO, verify=False)
        # Zero structural stage runs on the warm pass; refused
        # properties re-evaluate (refusals are never cached).
        assert "match" not in warm_session.stage_counters
        assert "hierarchy" not in warm_session.stage_counters
        assert "label" not in warm_session.stage_counters
        for key in ZOO:
            a, b = cold[key], warm[key]
            assert a.refused == b.refused, key
            if not a.refused:
                assert b.structure_cached
                assert a.max_label_bits == b.max_label_bits, key
                assert a.total_label_bits == b.total_label_bits, key
                assert a.class_count == b.class_count, key
                assert a.labeling.mapping == b.labeling.mapping, key


class TestWarmCacheStageCounters:
    def test_shared_cache_across_sessions_skips_structural_nodes(self):
        seq, _graph = lanewidth_workload(2, 18, 31)
        cache = ArtifactCache()  # memory-only, shared across sessions
        first = CertificationSession(
            rng=random.Random(1), artifacts=cache
        )
        first.certify(seq, "connected", verify=False)
        assert first.stage_counters["match"] == 1
        assert first.stage_counters["hierarchy"] == 1
        second = CertificationSession(
            rng=random.Random(2), artifacts=cache
        )
        report = second.certify(seq, "connected", verify=False)
        assert report.accepted
        assert report.structure_cached
        # Different session, different ids: evaluate comes from the
        # cache (keyed on hierarchy + algebra), label reruns (keyed on
        # the configuration's identifiers).
        assert "match" not in second.stage_counters
        assert "hierarchy" not in second.stage_counters
        assert "evaluate" not in second.stage_counters
        assert second.stage_counters["label"] == 1

    def test_theorem1_warm_cache_zero_structural_nodes(self, tmp_path):
        rng = random.Random(33)
        graph, _bags = random_pathwidth_graph(16, 2, rng)
        cache = ArtifactCache(tmp_path / "artifacts")
        cold = CertificationSession(
            k=2, rng=random.Random(34), artifacts=cache
        )
        cold.certify(graph, ["connected", "even-order"], verify=False)
        for name in STRUCTURAL_T1:
            assert cold.stage_counters[name] == 1
        warm = CertificationSession(
            k=2, rng=random.Random(35), artifacts=cache
        )
        report = warm.certify(graph, ["connected", "even-order"], verify=False)
        assert all(r.accepted for r in report.values())
        for name in STRUCTURAL_T1:
            assert name not in warm.stage_counters, warm.stage_counters
        cached_names = {
            t.name
            for t in report["connected"].stage_timings
            if t.cached
        }
        assert set(STRUCTURAL_T1) <= cached_names

    def test_fresh_interpreter_runs_zero_structural_nodes(self, tmp_path):
        """The tentpole acceptance, literally: a separate process with a
        warm disk cache batch-certifies a previously seen graph with
        zero structural stage runs (and, with the same identifier draw,
        zero stage runs at all)."""
        store = CertificateStore(tmp_path)
        seq, _graph = lanewidth_workload(2, 20, 41)
        session = CertificationSession(rng=random.Random(42), store=store)
        reports = session.certify(seq, ["connected", "even-order"], verify=False)
        assert all(r.accepted for r in reports.values())
        assert session.stage_counters["match"] == 1
        script = (
            "import random, sys\n"
            "from repro.api import CertificateStore, CertificationSession\n"
            "from repro.experiments import lanewidth_workload\n"
            "store = CertificateStore(sys.argv[1])\n"
            "seq, _graph = lanewidth_workload(2, 20, 41)\n"
            "session = CertificationSession(rng=random.Random(42), store=store)\n"
            "reports = session.certify(seq, ['connected', 'even-order'], verify=False)\n"
            "assert all(r.accepted for r in reports.values())\n"
            "assert all(r.structure_cached for r in reports.values())\n"
            "# Same graph, same identifier draw: every node resolves.\n"
            "assert session.stage_counters == {}, session.stage_counters\n"
            "print('WARM', reports['connected'].max_label_bits)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert f"WARM {reports['connected'].max_label_bits}" in proc.stdout

    def test_corrupted_artifact_is_a_miss_not_a_failure(self, tmp_path):
        cache = ArtifactCache(tmp_path / "artifacts")
        seq, _graph = lanewidth_workload(2, 14, 43)
        CertificationSession(
            rng=random.Random(44), artifacts=cache
        ).certify(seq, "connected", verify=False)
        art_dir = tmp_path / "artifacts"
        paths = sorted(art_dir.glob("*.art"))
        assert paths
        # Bit-flip one envelope and truncate another: both must simply
        # be recomputed by a fresh session over the same directory.
        paths[0].write_bytes(b"junk")
        if len(paths) > 1:
            payload = paths[1].read_bytes()
            paths[1].write_bytes(payload[: len(payload) // 2])
        session = CertificationSession(
            rng=random.Random(44), artifacts=ArtifactCache(art_dir)
        )
        report = session.certify(seq, "connected", verify=False)
        assert report.accepted
        assert session.stage_counters  # something had to rerun

    def test_facade_store_adoption_rederives_artifact_cache(self, tmp_path):
        """A store adopted onto a session after its lazily derived
        in-memory cache exists must still contribute its persistent
        artifact directory (regression: adoption used to keep the
        store-less cache silently)."""
        from repro.api import certify

        seq, _graph = lanewidth_workload(2, 14, 45)
        session = CertificationSession(rng=random.Random(46))
        certify(seq, "connected", session=session, verify=False)
        assert session.artifacts.root is None  # lazily derived, memory-only
        store = CertificateStore(tmp_path)
        certify(seq, "even-order", session=session, store=store, verify=False)
        assert session.artifacts.root is not None
        # The structural artifacts landed on disk for the next process.
        assert list((tmp_path / "artifacts").glob("*.art"))

    def test_canonical_state_repr_is_injective_across_container_types(self):
        from repro.courcelle.algebra import canonical_state_repr

        forms = [
            frozenset(), {}, (), [], set(),
            frozenset({1}), {1: 1}, (1,), [1],
        ]
        reprs = [canonical_state_repr(f) for f in forms]
        # set/frozenset intentionally coincide (same semantics); every
        # other container type must stay distinguishable.
        assert reprs[0] == reprs[4]
        distinct = [reprs[0], reprs[1], reprs[2], reprs[3]]
        assert len(set(distinct)) == len(distinct)
        assert len({reprs[5], reprs[6], reprs[7], reprs[8]}) == 4

    def test_swapped_key_artifact_rejected_on_load(self, tmp_path):
        cache = ArtifactCache(tmp_path / "artifacts")
        entry = cache.put("a" * 40, "decompose", {"x": 1}, 0.1)
        assert entry is not None
        # Rename the envelope: the recorded key no longer matches.
        src = cache.path_for("a" * 40)
        dst = cache.path_for("b" * 40)
        src.rename(dst)
        fresh = ArtifactCache(tmp_path / "artifacts")
        assert fresh.get("b" * 40) is None
        assert fresh.get("a" * 40) is None


class TestParallelProver:
    def test_parallel_batch_identical_to_serial(self):
        seq, _graph = lanewidth_workload(2, 24, 51)
        serial = CertificationSession(rng=random.Random(52))
        sr = serial.certify(seq, ZOO, verify=False)
        with ParallelProver(max_workers=2) as prover:
            par_session = CertificationSession(
                rng=random.Random(52), prover=prover
            )
            pr = par_session.certify(seq, ZOO, verify=False)
            assert prover.payload_ships == 1
            assert par_session.stage_counters == serial.stage_counters
            # Already-proven properties are cache-served or run inline:
            # a repeat batch never ships another payload.
            pr2 = par_session.certify(seq, ["connected"], verify=False)
            assert pr2["connected"].accepted
            assert prover.payload_ships == 1
        for key in ZOO:
            a, b = sr[key], pr[key]
            assert a.refused == b.refused, key
            assert a.accepted == b.accepted, key
            if not a.refused:
                assert a.max_label_bits == b.max_label_bits, key
                assert a.total_label_bits == b.total_label_bits, key
                assert a.class_count == b.class_count, key
                assert a.labeling.mapping == b.labeling.mapping, key

    def test_parallel_reports_verify(self):
        seq, _graph = lanewidth_workload(2, 16, 53)
        with ParallelProver(max_workers=2) as prover:
            session = CertificationSession(
                rng=random.Random(54), prover=prover
            )
            reports = session.certify(seq, ["connected", "even-order"])
        for report in reports.values():
            if not report.refused:
                assert report.accepted
                assert report.verification is not None
                assert report.verification.accepted

    def test_prover_payload_is_pickle_stable(self):
        # The structural payload must round-trip: hierarchy evaluations
        # are node_id-keyed, so an evaluation pickled across a process
        # boundary still resolves against an equal hierarchy copy.
        from repro.core.hierarchy import evaluate_hierarchy
        from repro.courcelle.registry import algebra_for

        seq, _graph = lanewidth_workload(2, 12, 55)
        config = Configuration.with_random_ids(
            apply_construction(seq), random.Random(56)
        )
        plan = lanewidth_plan(seq)
        ctx = PipelineContext(config=config)
        PlanRunner(ArtifactCache()).run(
            plan,
            ctx,
            {"graph": config.graph.fingerprint(), "config": "c"},
            nodes=plan.structural_nodes(),
        )
        root2 = pickle.loads(pickle.dumps(ctx.root))
        ev = evaluate_hierarchy(ctx.root, algebra_for("connected"))
        ev2 = pickle.loads(pickle.dumps(ev))
        assert ev2.for_node(root2).state == ev.for_node(ctx.root).state
        assert ev2.for_node(root2).boundary == ev.for_node(ctx.root).boundary


class TestPlanValidation:
    def test_missing_producer_rejected(self):
        with pytest.raises(PlanError, match="consumes"):
            CertificationPlan([LabelStage()])

    def test_duplicate_node_name_rejected(self):
        with pytest.raises(PlanError, match="duplicate plan node name"):
            CertificationPlan(
                theorem1_plan(2).nodes + [theorem1_plan(2).nodes[1]]
            )

    def test_duplicate_producer_rejected(self):
        from repro.api.pipeline import DecomposeStage, LaneStage

        class SecondLanes(LaneStage):
            name = "lanes-again"

        with pytest.raises(PlanError, match="two producers"):
            CertificationPlan([DecomposeStage(2), LaneStage(), SecondLanes()])

    def test_node_names_and_phases(self):
        plan = theorem1_plan(2)
        assert plan.node_names() == [
            "decompose", "lanes", "completion", "hierarchy",
            "evaluate", "label",
        ]
        assert [n.name for n in plan.structural_nodes()] == [
            "decompose", "lanes", "completion", "hierarchy",
        ]
        assert [n.name for n in plan.property_nodes()] == ["evaluate", "label"]

    def test_unpersistable_decomposer_poisons_descendants(self):
        plan = theorem1_plan(2, decomposer=lambda g: None)
        keys = plan.resolve_keys({"graph": "fp", "config": "cfp",
                                  "algebra": "connected"})
        assert not keys["decompose"].persistable
        assert not keys["hierarchy"].persistable
        assert not keys["label"].persistable
        default = theorem1_plan(2).resolve_keys(
            {"graph": "fp", "config": "cfp", "algebra": "connected"}
        )
        assert all(k.persistable for k in default.values())
        # Distinct parameters, distinct keys; equal parameters, equal keys.
        assert default["decompose"].key != keys["decompose"].key
        again = theorem1_plan(2).resolve_keys(
            {"graph": "fp", "config": "cfp", "algebra": "connected"}
        )
        assert again["label"].key == default["label"].key
        other_graph = theorem1_plan(2).resolve_keys(
            {"graph": "fp2", "config": "cfp", "algebra": "connected"}
        )
        assert other_graph["decompose"].key != default["decompose"].key
