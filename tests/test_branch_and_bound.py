"""PR 9 — branch-and-bound vertex separation: equivalence and threading.

Three layers of assurance for the new default exact engine:

* **B&B ≡ subset DP** — a hypothesis suite draws random (possibly
  disconnected) graphs up to the DP's comfortable size and asserts the
  two engines agree on the exact width, and that every B&B ordering
  validates through the interval-representation / path-decomposition
  constructors (which re-check the structural invariants);
* **regression corpus** — graph families with known pathwidth, sized
  well past the old ``_EXACT_LIMIT`` wall, must come back optimal;
* **knob threading** — ``exact_engine`` / ``exact_budget_ms`` reach the
  decompose stage through the facade/session, and the run's
  ``decomposition_stats`` survive the report round-trip and feed the
  service metrics.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import certify
from repro.api.results import CertificationReport
from repro.graphs import Graph
from repro.graphs.generators import (
    caterpillar_graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    ladder_graph,
    path_graph,
    random_pathwidth_graph,
    star_graph,
)
from repro.pathwidth import (
    IntervalRepresentation,
    PathDecomposition,
    branch_and_bound_decomposition,
    branch_and_bound_ordering,
    exact_pathwidth,
)
from repro.pathwidth.heuristics import heuristic_path_decomposition
from repro.service.metrics import ServiceMetrics


def _random_graph(rng: random.Random, n: int) -> Graph:
    """A random graph on ``n`` vertices (connectivity not enforced)."""
    g = Graph(vertices=range(n))
    p = rng.choice((0.15, 0.3, 0.5))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    return g


class TestEquivalenceWithDP:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 14))
    def test_width_matches_subset_dp(self, seed, n):
        g = _random_graph(random.Random(seed), n)
        assert exact_pathwidth(g, engine="bnb") == exact_pathwidth(
            g, engine="dp"
        )

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 12))
    def test_ordering_validates_and_achieves_width(self, seed, n):
        g = _random_graph(random.Random(seed), n)
        result = branch_and_bound_ordering(g)
        assert result.optimal
        assert sorted(result.ordering) == sorted(g.vertices())
        rep = IntervalRepresentation.from_ordering(g, result.ordering)
        decomposition = PathDecomposition.from_interval_representation(rep)
        assert decomposition.width() == result.width
        assert result.width == exact_pathwidth(g, engine="dp")

    def test_seed_never_beaten_by_result(self):
        # Anytime contract: the returned width is never worse than the
        # heuristic portfolio's, even on instances the search completes.
        for seed in range(5):
            g = _random_graph(random.Random(seed), 20)
            result = branch_and_bound_ordering(g)
            assert result.width <= result.stats.seed_width


class TestRegressionCorpus:
    # Known-pathwidth families, all past the old exact-DP n<=14 wall.
    @pytest.mark.parametrize(
        "graph, expected",
        [
            (path_graph(40), 1),
            (cycle_graph(40), 2),
            (star_graph(25), 1),
            (caterpillar_graph(10, 2), 1),
            (ladder_graph(15), 2),
            (complete_graph(9), 8),
            (grid_graph(3, 12), 3),
            (grid_graph(4, 8), 4),
        ],
    )
    def test_known_families(self, graph, expected):
        result = branch_and_bound_ordering(graph)
        assert result.optimal
        assert result.width == expected

    def test_planted_pathwidth_instances(self):
        for seed in range(3):
            g, _bags = random_pathwidth_graph(
                50, 4, rng=random.Random(seed)
            )
            result = branch_and_bound_ordering(g, budget_ms=10_000)
            assert result.width <= 4
            assert sorted(result.ordering) == sorted(g.vertices())

    def test_empty_graph(self):
        result = branch_and_bound_ordering(Graph())
        assert result.width == -1
        assert result.ordering == []
        assert result.optimal


class TestBudget:
    def test_budget_keeps_anytime_invariants(self):
        g = _random_graph(random.Random(11), 60)
        result = branch_and_bound_ordering(g, budget_ms=5)
        # A 5ms budget may or may not prove optimality (the lower bound
        # can close it instantly) — but the anytime invariants hold.
        assert sorted(result.ordering) == sorted(g.vertices())
        assert result.width <= result.stats.seed_width
        if not result.optimal:
            assert result.stats.timed_out

    def test_stats_to_dict_keys(self):
        g = grid_graph(3, 5)
        result = branch_and_bound_ordering(g)
        stats = result.stats.to_dict()
        for key in (
            "nodes_expanded",
            "memo_hits",
            "memo_entries",
            "greedy_commits",
            "components",
            "lower_bound",
            "seed_width",
            "elapsed_ms",
            "budget_ms",
            "timed_out",
        ):
            assert key in stats

    def test_decomposition_pairs_with_result(self):
        g = cycle_graph(12)
        decomposition, result = branch_and_bound_decomposition(g)
        assert decomposition.width() == result.width == 2


class TestKnobThreading:
    def test_graph_mode_records_bnb_stats(self):
        g = path_graph(10)
        report = certify(g, "connected", k=2, verify=False)
        stats = report.decomposition_stats
        assert stats is not None
        assert stats["engine"] == "bnb"
        assert stats["optimal"] is True
        assert stats["width"] == 1
        assert "bnb width 1" in report.summary()

    def test_dp_engine_still_selectable(self):
        g = path_graph(10)
        report = certify(g, "connected", k=2, verify=False, exact_engine="dp")
        assert report.decomposition_stats["engine"] == "dp"

    def test_large_graph_defaults_to_heuristic(self):
        g, _bags = random_pathwidth_graph(40, 3, rng=random.Random(2))
        report = certify(g, "connected", k=6, verify=False)
        assert report.decomposition_stats["engine"] == "heuristic"

    def test_budget_authorizes_bnb_past_the_gate(self):
        g, _bags = random_pathwidth_graph(40, 3, rng=random.Random(2))
        report = certify(
            g, "connected", k=6, verify=False, exact_budget_ms=5_000
        )
        stats = report.decomposition_stats
        assert stats["engine"] == "bnb"
        heuristic = heuristic_path_decomposition(g).width()
        assert stats["width"] <= heuristic
        assert stats["heuristic_width"] == heuristic

    def test_report_roundtrip_preserves_stats(self):
        g = path_graph(8)
        report = certify(g, "connected", k=2, verify=False)
        rebuilt = CertificationReport.from_dict(report.to_dict())
        assert rebuilt.decomposition_stats == report.decomposition_stats

    def test_service_metrics_decomposition_counters(self):
        metrics = ServiceMetrics()
        metrics.decomposition_run(
            {
                "engine": "bnb",
                "nodes_expanded": 12,
                "memo_hits": 3,
                "timed_out": False,
                "width": 4,
                "heuristic_width": 5,
            }
        )
        metrics.decomposition_run(
            {
                "engine": "heuristic",
                "width": 6,
                "heuristic_width": 6,
                "timed_out": True,
            }
        )
        snapshot = metrics.snapshot()["decomposition"]
        assert snapshot["engines"] == {"bnb": 1, "heuristic": 1}
        assert snapshot["nodes_expanded"] == 12
        assert snapshot["memo_hits"] == 3
        assert snapshot["timeouts"] == 1
        assert snapshot["width_improvements"] == 1
