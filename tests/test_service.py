"""Tests for the certification service layer (repro.service).

Four altitudes, matching the package's layering:

* protocol framing and the graph wire form;
* the :class:`Coalescer` in isolation (pure asyncio);
* :class:`CertificationService.handle` driven in-process — the
  cold/warm/coalesced serving matrix, audits, errors, lifecycle;
* the socket daemon end to end: in-process over a unix socket via
  :class:`ServiceClient`, and as a real ``python -m repro.service``
  subprocess drained by SIGTERM.

No pytest-asyncio: the repo is dependency-free, so async tests run
under ``asyncio.run`` inside plain test functions.
"""

import asyncio
import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments import lanewidth_workload
from repro.graphs.generators import cycle_graph, path_graph
from repro.service import (
    Coalescer,
    CertificationService,
    Daemon,
    LatencyHistogram,
    ProtocolError,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    ServiceMetrics,
    decode_line,
    encode_line,
    graph_from_wire,
    graph_to_wire,
    result_of,
    validate_request,
)

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _graph(seed=41, n=14):
    # Two lanes keep the witness pathwidth within the service's default
    # k=2 — the daemon certifies bare wire graphs, no witness riding in.
    _sequence, graph = lanewidth_workload(2, n, seed)
    return graph


def _service(tmp_path, **overrides):
    config = ServiceConfig(store_root=tmp_path / "store", **overrides)
    return CertificationService(config)


def _certify_request(graph, request_id=1, **params):
    request = {
        "id": request_id,
        "op": "certify",
        "graph": graph_to_wire(graph),
        "properties": ["connected"],
    }
    request.update(params)
    return request


# ----------------------------------------------------------------------
# Protocol.
# ----------------------------------------------------------------------
class TestProtocol:
    def test_frame_round_trip(self):
        message = {"id": 3, "op": "ping", "nested": {"a": [1, 2]}}
        line = encode_line(message)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]
        assert decode_line(line) == message

    def test_graph_wire_round_trip_preserves_fingerprint(self):
        graph = _graph(seed=42)
        rebuilt = graph_from_wire(graph_to_wire(graph))
        assert rebuilt.fingerprint() == graph.fingerprint()

    def test_graph_wire_carries_input_labels(self):
        graph = path_graph(4)
        graph.set_vertex_label(0, 1)
        graph.set_edge_label(1, 2, 1)
        payload = graph_to_wire(graph)
        assert payload["vertex_labels"] == [[0, 1]]
        assert payload["edge_labels"] == [[1, 2, 1]]
        rebuilt = graph_from_wire(json.loads(json.dumps(payload)))
        assert rebuilt.fingerprint() == graph.fingerprint()

    def test_malformed_frames_rejected(self):
        with pytest.raises(ProtocolError):
            decode_line(b"not json at all\n")
        with pytest.raises(ProtocolError):
            decode_line(b"[1,2,3]\n")  # JSON, but not an object
        with pytest.raises(ProtocolError):
            decode_line(b"\xff\xfe\n")  # not UTF-8

    def test_oversized_frame_rejected(self, monkeypatch):
        import repro.service.protocol as protocol

        monkeypatch.setattr(protocol, "MAX_LINE_BYTES", 16)
        with pytest.raises(ProtocolError, match="MAX_LINE_BYTES"):
            protocol.decode_line(b'{"op": "ping", "padding": "xxxxx"}\n')

    def test_malformed_graph_payload_rejected(self):
        with pytest.raises(ProtocolError):
            graph_from_wire("just a string")
        with pytest.raises(ProtocolError):
            graph_from_wire({"vertices": [0, 1], "edges": [[0]]})

    def test_validate_request_gates_ops(self):
        assert validate_request({"op": "certify"}) == "certify"
        with pytest.raises(ProtocolError, match="unknown op"):
            validate_request({"op": "transmogrify"})
        with pytest.raises(ProtocolError):
            validate_request({})


# ----------------------------------------------------------------------
# Coalescer.
# ----------------------------------------------------------------------
class TestCoalescer:
    def test_identical_keys_share_one_factory_run(self):
        async def scenario():
            coalescer = Coalescer()
            calls = []
            gate = asyncio.Event()

            async def factory():
                calls.append(1)
                await gate.wait()
                return "payload"

            async def late_release():
                await asyncio.sleep(0.01)
                gate.set()

            outcomes = await asyncio.gather(
                *[coalescer.run("k", factory) for _ in range(5)],
                late_release(),
            )
            return calls, outcomes[:5]

        calls, outcomes = asyncio.run(scenario())
        assert len(calls) == 1
        assert all(value == "payload" for value, _ in outcomes)
        # Exactly one initiator; everyone else joined the flight.
        assert sorted(joined for _, joined in outcomes) == [
            False, True, True, True, True,
        ]

    def test_distinct_keys_run_independently(self):
        async def scenario():
            coalescer = Coalescer()
            calls = []

            def factory_for(key):
                async def factory():
                    calls.append(key)
                    return key.upper()
                return factory

            results = await asyncio.gather(
                coalescer.run("a", factory_for("a")),
                coalescer.run("b", factory_for("b")),
            )
            return calls, results

        calls, results = asyncio.run(scenario())
        assert sorted(calls) == ["a", "b"]
        assert results == [("A", False), ("B", False)]

    def test_failure_propagates_to_every_waiter(self):
        async def scenario():
            coalescer = Coalescer()

            async def factory():
                await asyncio.sleep(0.01)
                raise RuntimeError("prover exploded")

            return await asyncio.gather(
                *[coalescer.run("k", factory) for _ in range(3)],
                return_exceptions=True,
            )

        results = asyncio.run(scenario())
        assert len(results) == 3
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_key_deregisters_after_completion(self):
        async def scenario():
            coalescer = Coalescer()
            calls = []

            async def factory():
                calls.append(1)
                return len(calls)

            first = await coalescer.run("k", factory)
            assert len(coalescer) == 0  # flight landed, key released
            second = await coalescer.run("k", factory)
            return first, second

        first, second = asyncio.run(scenario())
        assert first == (1, False)
        assert second == (2, False)  # a fresh run, not a stale join


# ----------------------------------------------------------------------
# The service, driven in-process.
# ----------------------------------------------------------------------
class TestServiceHandle:
    def test_ping(self, tmp_path):
        service = _service(tmp_path)
        try:
            response = asyncio.run(service.handle({"id": 7, "op": "ping"}))
        finally:
            service.close_blocking()
        assert response["ok"] and response["id"] == 7
        assert response["result"]["pong"] is True

    def test_certify_cold_then_warm_then_fresh(self, tmp_path):
        service = _service(tmp_path, worker_threads=1)
        graph = _graph(seed=43)

        async def scenario():
            cold = await service.handle(_certify_request(graph, 1))
            warm = await service.handle(_certify_request(graph, 2))
            forced = await service.handle(
                _certify_request(graph, 3, fresh=True)
            )
            return cold, warm, forced

        try:
            cold, warm, forced = asyncio.run(scenario())
        finally:
            service.close_blocking()

        for response in (cold, warm, forced):
            assert response["ok"], response
            report = response["result"]["reports"]["connected"]
            assert report["accepted"] is True
            assert response["result"]["fingerprint"] == graph.fingerprint()
        assert cold["result"]["served"] == {"connected": "prover"}
        assert warm["result"]["served"] == {"connected": "store"}
        assert forced["result"]["served"] == {"connected": "prover"}

        snap = service.metrics.snapshot()
        assert snap["prover_runs"] == 2  # cold + fresh; warm hit the store
        assert snap["store_hits"] == 1
        assert snap["store_misses"] == 2
        assert snap["completed"]["certify"] == 3

    def test_concurrent_identical_requests_coalesce(self, tmp_path):
        """The headline behaviour: M identical concurrent certify
        requests run the prover exactly once and all M get answers."""
        service = _service(tmp_path, worker_threads=2)
        graph = _graph(seed=44)
        fan_out = 6

        async def scenario():
            return await asyncio.gather(
                *[
                    service.handle(_certify_request(graph, i))
                    for i in range(fan_out)
                ]
            )

        try:
            responses = asyncio.run(scenario())
        finally:
            service.close_blocking()

        assert len(responses) == fan_out
        for response in responses:
            assert response["ok"], response
            assert response["result"]["reports"]["connected"]["accepted"]
        flags = sorted(r["meta"]["coalesced"] for r in responses)
        assert flags == [False] + [True] * (fan_out - 1)

        snap = service.metrics.snapshot()
        assert snap["prover_runs"] == 1
        assert snap["coalesced_requests"] == fan_out - 1
        assert snap["in_flight"] == 0
        assert snap["in_flight_peak"] == fan_out

    def test_mixed_request_batch_coalesces_per_key(self, tmp_path):
        service = _service(tmp_path, worker_threads=2)
        graph_a = _graph(seed=45)
        graph_b = _graph(seed=46)

        async def scenario():
            return await asyncio.gather(
                service.handle(_certify_request(graph_a, 1)),
                service.handle(_certify_request(graph_a, 2)),
                service.handle(_certify_request(graph_b, 3)),
            )

        try:
            responses = asyncio.run(scenario())
        finally:
            service.close_blocking()
        assert all(r["ok"] for r in responses)
        snap = service.metrics.snapshot()
        assert snap["prover_runs"] == 2  # one per distinct graph
        assert snap["coalesced_requests"] == 1

    def test_certify_verify_false_skips_round_but_stores(self, tmp_path):
        service = _service(tmp_path, worker_threads=1)
        graph = _graph(seed=47)

        async def scenario():
            unverified = await service.handle(
                _certify_request(graph, 1, verify=False)
            )
            replay = await service.handle(
                {
                    "id": 2,
                    "op": "reverify",
                    "fingerprint": graph.fingerprint(),
                    "property": "connected",
                }
            )
            return unverified, replay

        try:
            unverified, replay = asyncio.run(scenario())
        finally:
            service.close_blocking()

        assert unverified["ok"]
        report = unverified["result"]["reports"]["connected"]
        assert report["verification"] is None  # round skipped, by design
        assert not report["refused"]
        # ... and the certificate landed in the store: reverify replays
        # the round on it without any prover work.
        assert replay["ok"]
        replayed = replay["result"]["reports"]["connected"]
        assert replayed["accepted"] is True
        assert replayed["verification"]["accepted"] is True

    def test_reverify_unknown_entry_is_an_error_response(self, tmp_path):
        service = _service(tmp_path)
        request = {
            "id": 9,
            "op": "reverify",
            "fingerprint": "0" * 64,
            "property": "connected",
        }
        try:
            response = asyncio.run(service.handle(request))
        finally:
            service.close_blocking()
        assert response["ok"] is False
        assert "cannot read store entry" in response["error"]
        assert service.metrics.snapshot()["failed"]["reverify"] == 1

    def test_certify_multiple_properties_split_serving(self, tmp_path):
        """A two-property request where one certificate is already
        stored: the stored one is served from disk, the other proven."""
        service = _service(tmp_path, worker_threads=1)
        graph = _graph(seed=48)

        async def scenario():
            await service.handle(_certify_request(graph, 1))
            return await service.handle(
                {
                    "id": 2,
                    "op": "certify",
                    "graph": graph_to_wire(graph),
                    "properties": ["connected", "even-order"],
                }
            )

        try:
            response = asyncio.run(scenario())
        finally:
            service.close_blocking()
        assert response["ok"], response
        served = response["result"]["served"]
        assert served["connected"] == "store"
        assert served["even-order"] == "prover"

    def test_audit_rejects_every_attack(self, tmp_path):
        service = _service(tmp_path, worker_threads=1)
        request = {
            "id": 4,
            "op": "audit",
            "graph": graph_to_wire(cycle_graph(8)),
            "property": "connected",
            "trials": 2,
            "seed": 11,
            "attacks": ["mutation", {"name": "drop", "per_case": 2}],
        }
        try:
            response = asyncio.run(service.handle(request))
        finally:
            service.close_blocking()
        assert response["ok"], response
        audit = response["result"]["audit"]
        tallies = audit["tallies"]
        assert set(tallies) == {"mutation", "drop"}
        for tally in tallies.values():
            assert tally["accepted"] == 0
            assert tally["attempted"] > 0

    def test_bad_requests_get_error_responses(self, tmp_path):
        service = _service(tmp_path)
        graph = _graph(seed=49)
        bad = [
            {"id": 1, "op": "transmogrify"},
            {"id": 2, "op": "certify", "properties": ["connected"]},
            {"id": 3, "op": "certify", "graph": graph_to_wire(graph)},
            {
                "id": 4,
                "op": "certify",
                "graph": graph_to_wire(graph),
                "properties": ["connected", "connected"],
            },
            {
                "id": 5,
                "op": "audit",
                "graph": graph_to_wire(graph),
                "property": "connected",
                "attacks": ["voltage-glitch"],
            },
            {"id": 6, "op": "reverify", "fingerprint": 12},
        ]

        async def scenario():
            return [await service.handle(request) for request in bad]

        try:
            responses = asyncio.run(scenario())
        finally:
            service.close_blocking()
        for request, response in zip(bad, responses):
            assert response["ok"] is False, request
            assert response["id"] == request["id"]
            assert response["error"]

    def test_snapshot_shape(self, tmp_path):
        service = _service(tmp_path, worker_threads=1)
        graph = _graph(seed=50)

        async def scenario():
            await service.handle(_certify_request(graph, 1))
            return await service.handle({"id": 2, "op": "metrics"})

        try:
            response = asyncio.run(scenario())
        finally:
            service.close_blocking()
        snap = response["result"]
        for key in (
            "received",
            "completed",
            "failed",
            "in_flight",
            "in_flight_peak",
            "coalesced_requests",
            "prover_runs",
            "store_hits",
            "store_misses",
            "latency",
            "protocol_version",
            "store",
            "store_metrics",
            "stage_counters",
            "coalescer_in_flight",
        ):
            assert key in snap, key
        assert snap["store"]["entries"] == 1
        assert snap["store_metrics"]["saves"] == 1
        assert snap["stage_counters"], "prover stages should have counted"
        assert snap["latency"]["certify"]["count"] == 1
        json.dumps(snap)  # the whole snapshot must be wire-safe

    def test_handle_refused_after_close(self, tmp_path):
        service = _service(tmp_path)
        service.close_blocking()
        response = asyncio.run(service.handle({"id": 1, "op": "ping"}))
        assert response["ok"] is False
        assert "shutting down" in response["error"]
        service.close_blocking()  # idempotent

    def test_config_validation(self, tmp_path):
        with pytest.raises(ValueError):
            ServiceConfig(store_root=tmp_path, worker_threads=0)
        with pytest.raises(ValueError):
            ServiceConfig(store_root=tmp_path, prover_workers=-1)


class TestResidentPools:
    def test_close_leaves_no_worker_processes(self, tmp_path):
        """The graceful-shutdown satellite: a service configured with
        resident prover/executor pools must reap every worker process
        when closed."""
        service = _service(
            tmp_path, worker_threads=1, prover_workers=2, engine_workers=2
        )
        graph = _graph(seed=51)
        try:
            response = asyncio.run(service.handle(_certify_request(graph, 1)))
            assert response["ok"], response
            assert response["result"]["reports"]["connected"]["accepted"]
            # The thread-local session spun its pools up.
            spawned = multiprocessing.active_children()
            assert spawned, "resident pools should own worker processes"
        finally:
            service.close_blocking()
        deadline = time.time() + 30
        while multiprocessing.active_children() and time.time() < deadline:
            time.sleep(0.05)
        assert multiprocessing.active_children() == []


# ----------------------------------------------------------------------
# Daemon + client, end to end.
# ----------------------------------------------------------------------
class TestDaemonEndToEnd:
    def test_unix_socket_session(self, tmp_path):
        """Full in-process round trip: daemon on a unix socket, the
        async client multiplexing concurrent requests, shutdown op."""
        socket_path = str(tmp_path / "repro.sock")
        service = _service(tmp_path, worker_threads=2)
        daemon = Daemon(service, socket_path=socket_path)
        graph = _graph(seed=52)

        async def scenario():
            runner = asyncio.ensure_future(daemon.run())
            while daemon.address is None:
                await asyncio.sleep(0.01)
            assert daemon.address == f"unix:{socket_path}"

            client = await ServiceClient.connect(socket_path=socket_path)
            try:
                pong = result_of(await client.ping())
                assert pong["pong"] is True

                # Concurrent identical certifies through one connection
                # coalesce just like in-process calls do.
                responses = await asyncio.gather(
                    *[
                        client.certify(graph, ["connected"])
                        for _ in range(4)
                    ]
                )
                for response in responses:
                    result = result_of(response)
                    assert result["reports"]["connected"]["accepted"]
                flags = sorted(r["meta"]["coalesced"] for r in responses)
                assert flags == [False, True, True, True]

                replay = result_of(
                    await client.reverify(graph.fingerprint(), "connected")
                )
                assert replay["reports"]["connected"]["accepted"]

                snap = result_of(await client.metrics())
                assert snap["prover_runs"] == 1
                assert snap["coalesced_requests"] == 3

                stopping = result_of(await client.shutdown())
                assert stopping["stopping"] is True
            finally:
                await client.close()

            await asyncio.wait_for(runner, timeout=60)
            return service.metrics.snapshot()

        snap = asyncio.run(scenario())
        assert service.closed
        assert snap["completed"]["certify"] == 4
        assert snap["in_flight"] == 0

    def test_client_error_surface(self, tmp_path):
        socket_path = str(tmp_path / "repro.sock")
        service = _service(tmp_path, worker_threads=1)
        daemon = Daemon(service, socket_path=socket_path)

        async def scenario():
            runner = asyncio.ensure_future(daemon.run())
            while daemon.address is None:
                await asyncio.sleep(0.01)
            client = await ServiceClient.connect(socket_path=socket_path)
            try:
                response = await client.request("transmogrify")
                with pytest.raises(ServiceClientError, match="unknown op"):
                    result_of(response)
            finally:
                await client.close()
            daemon.request_stop()
            await asyncio.wait_for(runner, timeout=60)

        asyncio.run(scenario())

    def test_daemon_requires_an_endpoint(self, tmp_path):
        service = _service(tmp_path)
        try:
            with pytest.raises(ValueError):
                Daemon(service)
            with pytest.raises(ValueError):
                asyncio.run(ServiceClient.connect())
        finally:
            service.close_blocking()


class TestDaemonSubprocess:
    def test_sigterm_drains_and_flushes_metrics(self, tmp_path):
        """``python -m repro.service`` as a real process: handshake via
        SERVICE_READY, serve a client, then SIGTERM → clean exit with a
        final SERVICE_METRICS flush."""
        socket_path = str(tmp_path / "daemon.sock")
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service",
                "--socket",
                socket_path,
                "--store",
                str(tmp_path / "store"),
                "--workers",
                "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            ready = proc.stdout.readline()
            assert ready.strip() == f"SERVICE_READY unix:{socket_path}"

            graph = _graph(seed=53)

            async def drive():
                client = await ServiceClient.connect(socket_path=socket_path)
                try:
                    result_of(await client.ping())
                    responses = await asyncio.gather(
                        *[
                            client.certify(graph, ["connected"])
                            for _ in range(3)
                        ]
                    )
                    for response in responses:
                        result = result_of(response)
                        assert result["reports"]["connected"]["accepted"]
                finally:
                    await client.close()

            asyncio.run(drive())
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=120)
        except BaseException:
            proc.kill()
            proc.communicate()
            raise

        assert proc.returncode == 0, err
        metrics_lines = [
            line for line in out.splitlines()
            if line.startswith("SERVICE_METRICS ")
        ]
        assert len(metrics_lines) == 1, out
        snap = json.loads(metrics_lines[0][len("SERVICE_METRICS "):])
        assert snap["completed"]["certify"] == 3
        assert snap["prover_runs"] == 1
        assert snap["coalesced_requests"] == 2
        assert snap["in_flight"] == 0
        assert snap["store"]["entries"] == 1


# ----------------------------------------------------------------------
# Metrics primitives.
# ----------------------------------------------------------------------
class TestMetricsPrimitives:
    def test_latency_histogram_buckets(self):
        histogram = LatencyHistogram()
        for value in (0.0004, 0.02, 0.02, 3.0, 99.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 5
        assert snap["max_s"] == 99.0
        assert snap["buckets"]["<=0.001s"] == 1
        assert snap["buckets"]["<=0.025s"] == 2
        assert snap["buckets"]["<=5s"] == 1
        assert snap["buckets"][">10s"] == 1
        assert round(snap["total_s"], 4) == 102.0404

    def test_service_metrics_lifecycle(self):
        metrics = ServiceMetrics()
        metrics.request_started("certify")
        metrics.request_started("certify")
        metrics.request_completed("certify", 0.2)
        metrics.request_failed("certify", 0.1)
        metrics.coalesced()
        metrics.prover_run()
        metrics.store_served(True)
        metrics.store_served(False)
        snap = metrics.snapshot()
        assert snap["received"] == {"certify": 2}
        assert snap["completed"] == {"certify": 1}
        assert snap["failed"] == {"certify": 1}
        assert snap["in_flight"] == 0
        assert snap["in_flight_peak"] == 2
        assert snap["coalesced_requests"] == 1
        assert snap["prover_runs"] == 1
        assert snap["store_hits"] == 1
        assert snap["store_misses"] == 1
        assert snap["latency"]["certify"]["count"] == 2
