"""Tests for Sections 4 and 5: lane partitions, completions, lanewidth,
merges, hierarchies — every bound the paper states, asserted."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConstructionSequence,
    KLanePartition,
    apply_construction,
    bridge_merge,
    build_completion,
    build_hierarchy,
    build_lane_partition,
    construction_sequence_from_completion,
    evaluate_hierarchy,
    f_bound,
    g_bound,
    greedy_lane_partition,
    h_bound,
    hierarchy_depth,
    parent_merge,
    random_lanewidth_sequence,
    tree_merge,
    validate_hierarchy,
)
from repro.core.hierarchy import to_klane
from repro.core.klane_graph import KLaneGraph
from repro.core.lanewidth import final_designated
from repro.courcelle import algebra_for
from repro.courcelle.boundary import REAL, VIRTUAL
from repro.graphs import Graph
from repro.graphs.generators import (
    caterpillar_graph,
    cycle_graph,
    ladder_graph,
    path_graph,
    random_pathwidth_graph,
    spider_graph,
    star_graph,
)
from repro.mso.properties import is_bipartite
from repro.pathwidth import PathDecomposition
from repro.pathwidth.exact import exact_path_decomposition


def _rep_of(graph):
    return exact_path_decomposition(graph).to_interval_representation()


class TestBoundFunctions:
    def test_values_match_paper(self):
        assert [f_bound(k) for k in (1, 2, 3)] == [1, 4, 18]
        assert [g_bound(k) for k in (1, 2, 3)] == [0, 6, 32]
        assert [h_bound(k) for k in (1, 2, 3)] == [0, 9, 49]

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            f_bound(0)


class TestGreedyLanePartition:
    def test_width_bound(self):
        rep = _rep_of(cycle_graph(10))
        partition = greedy_lane_partition(rep)
        assert partition.width <= rep.width()

    def test_partition_valid(self):
        rep = _rep_of(ladder_graph(5))
        greedy_lane_partition(rep).validate()

    def test_invalid_partition_rejected(self):
        rep = _rep_of(path_graph(4))
        # Two overlapping intervals in one lane.
        with pytest.raises(ValueError):
            KLanePartition(rep, [[0, 1], [2], [3]])


class TestProposition46:
    FAMILIES = [
        path_graph(20),
        cycle_graph(12),
        caterpillar_graph(6, 2),
        ladder_graph(8),
        spider_graph(3, 3),
        star_graph(8),
    ]

    @pytest.mark.parametrize("graph", FAMILIES, ids=lambda g: f"n{g.n}m{g.m}")
    def test_bounds_on_families(self, graph):
        rep = _rep_of(graph)
        k = rep.width()
        result = build_lane_partition(graph, rep)
        result.partition.validate()
        result.weak_embedding.validate()
        result.head_embedding.validate()
        assert result.partition.width <= f_bound(k)
        assert result.weak_embedding.congestion() <= g_bound(k)
        assert result.full_embedding().congestion() <= h_bound(k)

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=30, deadline=None)
    def test_bounds_on_random_graphs(self, seed):
        rng = random.Random(seed)
        k = rng.choice([1, 2, 3])
        graph, bags = random_pathwidth_graph(30, k, rng)
        rep = PathDecomposition(graph, bags).to_interval_representation()
        width = rep.width()
        result = build_lane_partition(graph, rep)
        result.partition.validate()
        result.full_embedding().validate()
        assert result.partition.width <= f_bound(width)
        assert result.weak_embedding.congestion() <= g_bound(width)
        assert result.full_embedding().congestion() <= h_bound(width)

    def test_requires_connected(self):
        g = Graph(vertices=[0, 1])
        rep_source = Graph(edges=[(0, 1)])
        from repro.pathwidth.interval import IntervalRepresentation

        rep = IntervalRepresentation(g, {0: (0, 0), 1: (1, 1)})
        with pytest.raises(ValueError):
            build_lane_partition(g, rep)


class TestCompletion:
    def test_real_subgraph_roundtrip(self):
        g = cycle_graph(8)
        rep = _rep_of(g)
        partition = build_lane_partition(g, rep).partition
        completion = build_completion(g, partition)
        assert set(completion.real_subgraph().edges()) == set(g.edges())

    def test_lanes_become_paths(self):
        g = caterpillar_graph(4, 2)
        rep = _rep_of(g)
        partition = build_lane_partition(g, rep).partition
        completion = build_completion(g, partition)
        for lane in partition.lanes:
            for a, b in zip(lane, lane[1:]):
                assert completion.graph.has_edge(a, b)

    def test_heads_form_path(self):
        g = ladder_graph(5)
        rep = _rep_of(g)
        partition = build_lane_partition(g, rep).partition
        completion = build_completion(g, partition)
        heads = partition.heads()
        for a, b in zip(heads, heads[1:]):
            assert completion.graph.has_edge(a, b)

    def test_weak_completion_skips_heads(self):
        g = ladder_graph(4)
        rep = _rep_of(g)
        partition = build_lane_partition(g, rep).partition
        completion = build_completion(g, partition, weak=True)
        assert completion.e2 == []


class TestConstructionSequences:
    def test_apply_simple(self):
        seq = ConstructionSequence(
            width=2,
            initial_vertices=(0, 1),
            initial_edge_tags=(REAL,),
            ops=[("V", 0, 2, REAL), ("E", 0, 1, REAL)],
        )
        g = apply_construction(seq)
        assert g.n == 3
        assert g.has_edge(0, 2) and g.has_edge(2, 1)

    def test_duplicate_edge_rejected(self):
        seq = ConstructionSequence(
            width=2,
            initial_vertices=(0, 1),
            ops=[("E", 0, 1, REAL)],
        )
        with pytest.raises(ValueError):
            apply_construction(seq)

    def test_self_lane_rejected(self):
        seq = ConstructionSequence(
            width=2, initial_vertices=(0, 1), ops=[("E", 1, 1, REAL)]
        )
        with pytest.raises(ValueError):
            apply_construction(seq)

    def test_random_sequences_connected(self):
        rng = random.Random(2)
        for _ in range(15):
            seq = random_lanewidth_sequence(3, rng.randrange(20), rng)
            g = apply_construction(seq)
            assert g.is_connected()
            assert g.n == seq.n

    def test_proposition_52_roundtrip(self):
        """completion -> sequence -> graph reproduces the completion."""
        rng = random.Random(9)
        for k in (1, 2, 3):
            g, bags = random_pathwidth_graph(25, k, rng)
            rep = PathDecomposition(g, bags).to_interval_representation()
            partition = build_lane_partition(g, rep).partition
            completion = build_completion(g, partition)
            seq = construction_sequence_from_completion(completion)
            rebuilt = apply_construction(seq)
            assert set(rebuilt.edges()) == set(completion.graph.edges())
            for u, v in rebuilt.edges():
                assert rebuilt.edge_label(u, v) == completion.graph.edge_label(u, v)


class TestKLaneMerges:
    def _single_vertex(self, name, lane):
        return KLaneGraph(
            Graph(vertices=[name]), frozenset([lane]), {lane: name}, {lane: name}
        )

    def test_bridge_merge(self):
        a = self._single_vertex("a", 0)
        b = self._single_vertex("b", 1)
        merged = bridge_merge(a, b, 0, 1)
        assert merged.graph.has_edge("a", "b")
        assert merged.lanes == frozenset([0, 1])

    def test_bridge_merge_requires_disjoint_lanes(self):
        a = self._single_vertex("a", 0)
        b = self._single_vertex("b", 0)
        with pytest.raises(ValueError):
            bridge_merge(a, b, 0, 0)

    def test_parent_merge(self):
        parent = KLaneGraph(
            Graph(edges=[("p", "q")]), frozenset([0]), {0: "p"}, {0: "q"}
        )
        child = KLaneGraph(
            Graph(edges=[("q", "r")]), frozenset([0]), {0: "q"}, {0: "r"}
        )
        merged = parent_merge(child, parent)
        assert merged.t_out[0] == "r"
        assert merged.t_in[0] == "p"
        assert merged.graph.m == 2

    def test_parent_merge_rejects_lane_superset(self):
        parent = self._single_vertex("p", 0)
        child = KLaneGraph(
            Graph(vertices=["p", "x"]),
            frozenset([0, 1]),
            {0: "p", 1: "x"},
            {0: "p", 1: "x"},
        )
        with pytest.raises(ValueError):
            parent_merge(child, parent)

    def test_tree_merge_matches_sequential(self):
        parent = KLaneGraph(
            Graph(edges=[("p", "q")]), frozenset([0]), {0: "p"}, {0: "q"}
        )
        child = KLaneGraph(
            Graph(edges=[("q", "r")]), frozenset([0]), {0: "q"}, {0: "r"}
        )
        grandchild = KLaneGraph(
            Graph(edges=[("r", "s")]), frozenset([0]), {0: "r"}, {0: "s"}
        )
        merged = tree_merge(
            [parent, child, grandchild], {0: None, 1: 0, 2: 1}, 0
        )
        assert merged.t_out[0] == "s"
        assert merged.graph.n == 4


class TestProposition56:
    @given(st.integers(min_value=0, max_value=2000))
    @settings(max_examples=40, deadline=None)
    def test_random_hierarchies(self, seed):
        rng = random.Random(seed)
        w = rng.choice([2, 3, 4])
        seq = random_lanewidth_sequence(w, rng.randrange(0, 22), rng)
        graph = apply_construction(seq)
        root = build_hierarchy(seq)
        validate_hierarchy(root, graph)
        assert hierarchy_depth(root) <= 2 * w  # Observation 5.5
        klane = to_klane(root)
        assert set(klane.graph.edges()) == set(graph.edges())
        assert klane.t_out == final_designated(seq)

    def test_depth_bound_is_observed(self):
        rng = random.Random(4)
        worst = 0
        for _ in range(30):
            w = 3
            seq = random_lanewidth_sequence(w, 20, rng, edge_probability=0.5)
            root = build_hierarchy(seq)
            worst = max(worst, hierarchy_depth(root))
        assert worst <= 2 * 3

    def test_evaluation_matches_direct_checks(self):
        rng = random.Random(6)
        for _ in range(20):
            w = rng.choice([2, 3])
            seq = random_lanewidth_sequence(w, rng.randrange(0, 20), rng)
            graph = apply_construction(seq)
            root = build_hierarchy(seq)
            cases = {
                "connected": graph.is_connected(),
                "acyclic": graph.is_forest(),
                "bipartite": is_bipartite(graph),
                "even-order": graph.n % 2 == 0,
            }
            for key, want in cases.items():
                evaluation = evaluate_hierarchy(root, algebra_for(key))
                assert evaluation.accepts(root) == want

    def test_full_chain_from_pathwidth(self):
        rng = random.Random(8)
        for k in (1, 2):
            graph, bags = random_pathwidth_graph(20, k, rng)
            rep = PathDecomposition(graph, bags).to_interval_representation()
            partition = build_lane_partition(graph, rep).partition
            completion = build_completion(graph, partition)
            seq = construction_sequence_from_completion(completion)
            root = build_hierarchy(seq)
            validate_hierarchy(root, completion.graph)
            evaluation = evaluate_hierarchy(root, algebra_for("connected"))
            assert evaluation.accepts(root)  # real subgraph is connected
