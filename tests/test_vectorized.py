"""Tests for the PR 8 vectorized verification hot path.

The contract under test is *verdict identity*: the batched numpy
kernels (:class:`repro.api.VectorizedExecutor`) and the shared-memory
process-pool executor (:class:`repro.api.SharedMemoryExecutor`) must
return exactly the reference executor's (accepted, per-vertex verdicts,
rejecting set) on every configuration and labeling — honest or
adversarially mutated — because kernels only *accept* when every
reference check provably passes and everything else falls back to the
reference ``LocalView`` path.  The differential harness runs the
vectorized executor in ``audit`` mode, which re-checks every
kernel-accept against the reference verifier and raises on divergence.

Also covered: the executor registry (:func:`repro.api.make_executor`),
shared-memory segment lifecycle (unlink on close / context exit / after
an injected worker crash; attach from a fresh interpreter), the
``AuditPlan`` engine override with the transplant-attack regression,
the columnar bulk decoder, and the service-level engine selection.
"""

import json
import os
import random
import subprocess
import sys
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    ArtifactCache,
    AuditCase,
    AuditPlan,
    CertificationSession,
    SerialExecutor,
    SharedMemoryExecutor,
    TransplantAttack,
    VectorizedExecutor,
    VerificationEngine,
    VerificationReport,
    executor_names,
    make_executor,
    register_executor,
)
from repro.codec import decode_labeling_columnar, encode_labeling
from repro.core import certify_lanewidth_graph, random_lanewidth_sequence
from repro.experiments import lanewidth_workload, seed_stream
from repro.graphs.generators import cycle_graph
from repro.pls import HAVE_NUMPY, RoundArrays, pack_round_arrays
from repro.pls.adversary import (
    corrupt_one_label,
    drop_one_label,
    swap_two_labels,
)
from repro.pls.bits import SizeContext
from repro.pls.model import Configuration
from repro.pls.scheme import Labeling, ProofLabelingScheme
from repro.service.service import CertificationService, ServiceConfig

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy unavailable: kernel path cannot run"
)


def _case(seed: int, extra: int = 8, prop: str = "connected"):
    rng = random.Random(seed)
    edge_probability = 0.0 if prop != "connected" else 0.15
    sequence = random_lanewidth_sequence(
        3, extra, rng, edge_probability=edge_probability
    )
    config, scheme, labeling, _res = certify_lanewidth_graph(
        sequence, prop, rng
    )
    return config, scheme, labeling


def _assert_equivalent(config, scheme, labeling, executor=None):
    """Reference == vectorized on verdicts, acceptance, rejecting set."""
    serial = VerificationEngine(SerialExecutor()).verify(
        config, scheme, labeling
    )
    executor = executor if executor is not None else VectorizedExecutor(
        audit=True
    )
    vectorized = VerificationEngine(executor).verify(config, scheme, labeling)
    assert vectorized.verdicts == serial.verdicts
    assert vectorized.accepted == serial.accepted
    assert sorted(vectorized.rejecting_vertices, key=repr) == sorted(
        serial.rejecting_vertices, key=repr
    )
    return serial, vectorized


class VertexScheme(ProofLabelingScheme):
    """A non-Theorem-1 scheme: must run entirely on the reference path."""

    label_location = "vertices"

    def prove(self, config):
        return Labeling(
            "vertices",
            {v: 1 for v in config.graph.vertices()},
            SizeContext(config.n),
        )

    def verify(self, view):
        return view.own_certificate == 1

    def label_size_bits(self, label, ctx):
        return 1


class TestExecutorRegistry:
    def test_names(self):
        names = executor_names()
        for kind in ("serial", "parallel", "vectorized", "shared-memory"):
            assert kind in names

    def test_make_executor_kinds(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("vectorized"), VectorizedExecutor)
        shm = make_executor("shared_memory", max_workers=2)
        assert isinstance(shm, SharedMemoryExecutor)  # canonicalized
        shm.close()

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("quantum")

    def test_register_custom(self):
        class Custom(SerialExecutor):
            name = "custom-test"

        register_executor("custom-test", Custom)
        assert "custom-test" in executor_names()
        assert isinstance(make_executor("custom-test"), Custom)


@needs_numpy
class TestVectorizedDifferential:
    """The hypothesis harness: vectorized ≡ reference, audit on."""

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_honest_and_mutated_agree(self, seed):
        config, scheme, labeling = _case(seed)
        rng = random.Random(seed)
        candidates = [
            labeling,
            corrupt_one_label(labeling, rng),
            swap_two_labels(labeling, rng),
            drop_one_label(labeling, rng),
        ]
        for candidate in candidates:
            _assert_equivalent(config, scheme, candidate)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=4, deadline=None)
    def test_property_zoo_agrees(self, seed):
        for prop in ("acyclic", "bipartite"):
            config, scheme, labeling = _case(seed, prop=prop)
            rng = random.Random(seed)
            for candidate in (labeling, corrupt_one_label(labeling, rng)):
                _assert_equivalent(config, scheme, candidate)

    def test_honest_round_is_fully_kernel_accepted(self):
        config, scheme, labeling = _case(21, extra=12)
        _, report = _assert_equivalent(config, scheme, labeling)
        stats = report.kernel_stats
        assert stats["mode"] == "kernel"
        assert stats["engine"] == "vectorized"
        assert stats["kernel_accepted"] == config.graph.n
        assert stats["fallback_vertices"] == 0
        assert stats["compiled_vertices"] == config.graph.n

    def test_mutation_exercises_reference_fallback(self):
        """A dropped label cannot be kernel-accepted: it must be flagged
        into the reference path, and the verdicts still match."""
        config, scheme, labeling = _case(22, extra=12)
        bad = drop_one_label(labeling, random.Random(22))
        _, report = _assert_equivalent(config, scheme, bad)
        assert report.kernel_stats["mode"] == "kernel"
        assert report.kernel_stats["fallback_vertices"] >= 1
        assert not report.accepted

    def test_non_theorem1_scheme_runs_on_reference(self):
        scheme = VertexScheme()
        config = Configuration.with_random_ids(
            cycle_graph(6), random.Random(23)
        )
        labeling = scheme.prove(config)
        serial, report = _assert_equivalent(config, scheme, labeling)
        assert report.kernel_stats["mode"] == "reference"
        assert "profile" in report.kernel_stats["reason"]
        assert report.accepted and serial.accepted

    def test_kernel_stats_survive_json_round_trip(self):
        config, scheme, labeling = _case(24)
        report = VerificationEngine(VectorizedExecutor()).verify(
            config, scheme, labeling
        )
        data = json.loads(json.dumps(report.to_dict()))
        back = VerificationReport.from_dict(data)
        assert back.kernel_stats == report.kernel_stats
        assert back.kernel_stats["mode"] == "kernel"


@needs_numpy
class TestSharedMemoryExecutor:
    def test_verdicts_match_serial(self):
        config, scheme, labeling = _case(31, extra=12)
        rng = random.Random(31)
        with SharedMemoryExecutor(max_workers=2) as executor:
            for candidate in (labeling, corrupt_one_label(labeling, rng)):
                _assert_equivalent(config, scheme, candidate, executor)

    def test_close_unlinks_segments(self):
        from multiprocessing import shared_memory

        config, scheme, labeling = _case(32)
        executor = SharedMemoryExecutor(max_workers=2)
        report = VerificationEngine(executor).verify(config, scheme, labeling)
        assert report.accepted
        names = executor.segment_names()
        assert len(names) == 2  # arrays segment + verifier blob segment
        executor.close()
        assert executor.segment_names() == []
        for name in names:
            # The no-leak assertion: the named segment is gone.
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_context_exit_unlinks_segments(self):
        from multiprocessing import shared_memory

        config, scheme, labeling = _case(33)
        with SharedMemoryExecutor(max_workers=2) as executor:
            VerificationEngine(executor).verify(config, scheme, labeling)
            names = executor.segment_names()
            assert names
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_worker_crash_recovers_and_unlinks(self, monkeypatch):
        """An injected worker crash (os._exit) must not leak segments:
        the round recovers serially in the parent with correct verdicts
        and every published segment is unlinked."""
        from multiprocessing import shared_memory

        monkeypatch.setenv("REPRO_SHM_CRASH", "1")
        config, scheme, labeling = _case(34)
        executor = SharedMemoryExecutor(max_workers=2)
        try:
            report = VerificationEngine(executor).verify(
                config, scheme, labeling
            )
            names_after = executor.segment_names()
            assert names_after == []  # crash path closed them already
            assert report.accepted
            assert report.kernel_stats["mode"] == "reference"
            assert report.kernel_stats["reason"] == "worker pool crashed"
            serial = VerificationEngine(SerialExecutor()).verify(
                config, scheme, labeling
            )
            assert report.verdicts == serial.verdicts
        finally:
            executor.close()

    def test_fresh_interpreter_attaches_by_name(self):
        """A brand-new python process can attach to a published segment
        by name alone and rebuild the round arrays zero-copy."""
        import numpy as np
        from multiprocessing import shared_memory

        arrays = RoundArrays(
            n=3,
            m=2,
            indptr=np.asarray([0, 1, 2, 4], dtype=np.int64),
            neighbors=np.asarray([1, 2, 0, 1], dtype=np.int64),
            incident=np.asarray([0, 1, 0, 1], dtype=np.int64),
            identifiers=np.asarray([10, 20, 30], dtype=np.int64),
        )
        packed = pack_round_arrays(arrays, [2, 0, 1])
        segment = shared_memory.SharedMemory(
            create=True, size=int(packed.nbytes)
        )
        try:
            np.frombuffer(segment.buf, dtype=np.int64)[
                : packed.shape[0]
            ] = packed
            script = (
                "import sys, numpy as np\n"
                "from repro.api.vectorized import _shm_attach\n"
                "from repro.pls import unpack_round_arrays\n"
                "segment = _shm_attach(sys.argv[1])\n"
                "flat = np.frombuffer(segment.buf, dtype=np.int64)\n"
                "arrays, order = unpack_round_arrays(flat)\n"
                "out = (arrays.n, arrays.m, [int(x) for x in order])\n"
                "print(*out[:2], out[2])\n"
                "del arrays, order, flat\n"
                "segment.close()\n"
            )
            src_root = str(Path(__file__).resolve().parents[1] / "src")
            env = dict(os.environ)
            env["PYTHONPATH"] = os.pathsep.join(
                [src_root, env.get("PYTHONPATH", "")]
            )
            result = subprocess.run(
                [sys.executable, "-c", script, segment.name],
                capture_output=True,
                text=True,
                env=env,
                timeout=60,
            )
            assert result.returncode == 0, result.stderr
            assert result.stdout.strip() == "3 2 [2, 0, 1]"
        finally:
            segment.close()
            segment.unlink()


@needs_numpy
class TestAuditPlanEngine:
    @staticmethod
    def _transplant_plan(engine=None):
        def case_factory(trial, rng):
            sequence = random_lanewidth_sequence(
                3, 10, rng, edge_probability=0.0
            )
            config, scheme, labeling, _res = certify_lanewidth_graph(
                sequence, "acyclic", rng
            )
            return AuditCase(config, scheme, labeling, trial)

        def targets(trial, rng):
            return Configuration.with_random_ids(cycle_graph(12), rng)

        return AuditPlan(
            case_factory=case_factory,
            attacks=[TransplantAttack(targets)],
            trials=6,
            root_seed=19,
            name="transplant-engines",
            engine=engine,
        )

    def test_transplant_caught_identically_under_both_engines(self):
        """Right proof, wrong graph — the campaign must replay to the
        same per-attempt outcomes whether the round runs on the
        reference executor or the vectorized kernels."""
        baseline = self._transplant_plan().run()
        vectorized = self._transplant_plan("vectorized").run()
        assert [a.outcome for a in baseline.attempts] == [
            a.outcome for a in vectorized.attempts
        ]
        tally = vectorized.tally("transplant")
        assert tally.attempted > 0
        assert tally.all_rejected
        assert baseline.tallies == vectorized.tallies

    def test_run_engine_override_wins(self):
        plan = self._transplant_plan("serial")
        report = plan.run(engine="vectorized")
        assert report.tally("transplant").all_rejected

    def test_resolve_engine_kinds(self):
        plan = self._transplant_plan()
        assert isinstance(
            plan.resolve_engine().executor, SerialExecutor
        )
        assert isinstance(
            plan.resolve_engine("vectorized").executor, VectorizedExecutor
        )
        custom = VerificationEngine(VectorizedExecutor())
        assert plan.resolve_engine(custom) is custom


class TestColumnarDecode:
    def test_equals_reference_decode_with_sharing(self):
        _config, _scheme, labeling = _case(41, extra=12)
        encoded = encode_labeling(labeling)
        reference = encoded.decode()
        columnar = decode_labeling_columnar(encoded)
        assert columnar.location == reference.location
        assert columnar.mapping == reference.mapping
        assert columnar.size_context.n == reference.size_context.n

        def distinct_records(mapping):
            seen = set()
            for label in mapping.values():
                for record in label.certificate.stack:
                    seen.add(id(record))
                for embedded in label.embedded:
                    for record in embedded.payload.stack:
                        seen.add(id(record))
            return len(seen)

        assert distinct_records(columnar.mapping) <= distinct_records(
            reference.mapping
        )

    @needs_numpy
    def test_store_reverify_round_trips_through_columnar(self):
        """The store decodes via the columnar path since PR 8; a full
        persist → rehydrate → vectorized round must still accept."""
        from repro.api import CertificateStore

        with tempfile.TemporaryDirectory() as root:
            store = CertificateStore(root)
            sequence, _graph = lanewidth_workload(3, 32, 3)
            session = CertificationSession(
                rng=seed_stream(8, "ids").rng(3), store=store
            )
            session.certify(sequence, "connected", verify=False)
            fingerprint, prop, _path = store.entries()[0]
            stored = store.reverify(
                fingerprint,
                prop,
                engine=VerificationEngine(VectorizedExecutor(audit=True)),
            )
            assert stored.accepted
            assert stored.verification.kernel_stats["mode"] == "kernel"


@needs_numpy
class TestServiceEngine:
    def test_config_validates_and_canonicalizes(self, tmp_path):
        with pytest.raises(ValueError, match="unknown engine"):
            ServiceConfig(store_root=tmp_path, engine="bogus")
        config = ServiceConfig(store_root=tmp_path, engine="Shared_Memory")
        assert config.engine == "shared-memory"

    def test_vectorized_service_reverify(self, tmp_path):
        config = ServiceConfig(store_root=tmp_path, engine="vectorized")
        service = CertificationService(config)
        try:
            sequence, _graph = lanewidth_workload(3, 32, 5)
            session = CertificationSession(
                rng=seed_stream(8, "ids").rng(5), store=service.store
            )
            session.certify(sequence, "connected", verify=False)
            fingerprint, prop, _path = service.store.entries()[0]
            body = service._reverify_blocking(fingerprint, prop)
            stats = body["reports"][prop]["verification"]["kernel_stats"]
            assert stats["engine"] == "vectorized"
            assert stats["kernel_accepted"] == 32
            snap = service.snapshot()
            assert snap["engine"]["kind"] == "vectorized"
            assert snap["kernels"]["rounds"] == 1
            assert snap["kernels"]["kernel_accepted"] == 32
        finally:
            service.close_blocking()


@needs_numpy
class TestRoundArraysPersistence:
    """PR 9 satellite: packed RoundArrays survive process restarts."""

    def test_fresh_executor_reuses_persisted_pack(self, tmp_path):
        config, scheme, labeling = _case(3)
        first = VerificationEngine(
            VectorizedExecutor(artifacts=ArtifactCache(root=tmp_path))
        ).verify(config, scheme, labeling)
        assert first.kernel_stats["mode"] == "kernel"
        assert first.kernel_stats["arrays_cached"] is False
        # A fresh executor + fresh cache object over the same directory
        # models a restarted process: the pack comes back from disk.
        restarted = VectorizedExecutor(
            artifacts=ArtifactCache(root=tmp_path)
        )
        second = VerificationEngine(restarted).verify(
            config, scheme, labeling
        )
        assert second.kernel_stats["arrays_cached"] is True
        assert second.verdicts == first.verdicts
        assert second.accepted == first.accepted

    def test_corrupt_pack_is_rebuilt_not_fatal(self, tmp_path):
        from repro.api.vectorized import _arrays_cache_key

        config, scheme, labeling = _case(4)
        cache = ArtifactCache(root=tmp_path)
        cache.put(
            _arrays_cache_key(config),
            "round-arrays",
            {"pack": [1, 2, 3]},
            0.0,
        )
        report = VerificationEngine(
            VectorizedExecutor(artifacts=cache)
        ).verify(config, scheme, labeling)
        assert report.kernel_stats["mode"] == "kernel"
        assert report.kernel_stats["arrays_cached"] is False

    def test_session_lends_cache_to_vectorized_executor(self):
        sequence, _graph = lanewidth_workload(3, 16, 9)
        engine = VerificationEngine(VectorizedExecutor())
        session = CertificationSession(
            rng=seed_stream(8, "ids").rng(9), engine=engine
        )
        report = session.certify(sequence, "connected")
        assert report.accepted
        assert engine.executor.artifacts is session.artifacts

    def test_explicit_cache_not_replaced_by_session(self):
        sequence, _graph = lanewidth_workload(3, 16, 10)
        own = ArtifactCache()
        engine = VerificationEngine(VectorizedExecutor(artifacts=own))
        session = CertificationSession(
            rng=seed_stream(8, "ids").rng(10), engine=engine
        )
        session.certify(sequence, "connected")
        assert engine.executor.artifacts is own

    def test_shared_memory_executor_adopts_cache(self, tmp_path):
        config, scheme, labeling = _case(5)
        cache = ArtifactCache(root=tmp_path)
        with SharedMemoryExecutor(max_workers=2, artifacts=cache) as first:
            report = VerificationEngine(first).verify(
                config, scheme, labeling
            )
        assert report.kernel_stats.get("arrays_cached") is False
        with SharedMemoryExecutor(
            max_workers=2, artifacts=ArtifactCache(root=tmp_path)
        ) as restarted:
            second = VerificationEngine(restarted).verify(
                config, scheme, labeling
            )
        assert second.kernel_stats.get("arrays_cached") is True
        assert second.verdicts == report.verdicts


@needs_numpy
class TestCompiledRoundPersistence:
    """PR 10 tentpole: compiled rounds survive process restarts.

    The executor exports the whole compiled round (tables, virtual
    ports, edge owners) into a versioned envelope stored through the
    artifact cache, keyed by the labeling's wire digest chain.  A
    restarted process attaches it with **zero** recompilation; any
    stale, foreign, or corrupt envelope is a silent cache miss — never
    an exception, never a wrong verdict.
    """

    @staticmethod
    def _stamped_case(seed: int, extra: int = 24):
        """A `_case` whose labeling carries its wire digest (the
        compiled-round cache key requires one)."""
        from repro.codec import encode_labeling_columnar, stamp_wire_digest

        config, scheme, labeling = _case(seed, extra=extra)
        stamp_wire_digest(labeling, encode_labeling_columnar(labeling))
        return config, scheme, labeling

    def test_restarted_executor_attaches_compiled_round(self, tmp_path):
        config, scheme, labeling = self._stamped_case(3)
        first = VerificationEngine(
            VectorizedExecutor(
                artifacts=ArtifactCache(root=tmp_path), audit=True
            )
        ).verify(config, scheme, labeling)
        assert first.kernel_stats["mode"] == "kernel"
        assert first.kernel_stats["compiled_round_cached"] is False
        assert first.kernel_stats["compile_seconds"] > 0.0
        # Fresh executor + fresh cache object over the same directory
        # models a restarted process: the round attaches from disk.
        second = VerificationEngine(
            VectorizedExecutor(
                artifacts=ArtifactCache(root=tmp_path), audit=True
            )
        ).verify(config, scheme, labeling)
        assert second.kernel_stats["mode"] == "kernel"
        assert second.kernel_stats["compiled_round_cached"] is True
        assert second.kernel_stats["compile_seconds"] == 0.0
        assert second.verdicts == first.verdicts
        assert second.accepted == first.accepted

    def test_digestless_labeling_bypasses_envelope(self, tmp_path):
        """No wire digest -> no content key -> the envelope layer stays
        out of the way (arrays still persist; verdicts unchanged)."""
        config, scheme, labeling = _case(6)
        for _ in range(2):
            report = VerificationEngine(
                VectorizedExecutor(artifacts=ArtifactCache(root=tmp_path))
            ).verify(config, scheme, labeling)
            assert report.kernel_stats["mode"] == "kernel"
            assert report.kernel_stats["compiled_round_cached"] is False

    def test_shared_memory_ships_persisted_round(self, tmp_path):
        """The pool parent validates + ships the envelope blob; workers
        attach instead of compiling."""
        config, scheme, labeling = self._stamped_case(5)
        with SharedMemoryExecutor(
            max_workers=2, artifacts=ArtifactCache(root=tmp_path)
        ) as first:
            cold = VerificationEngine(first).verify(config, scheme, labeling)
        assert cold.kernel_stats.get("compiled_round_cached") is False
        with SharedMemoryExecutor(
            max_workers=2, artifacts=ArtifactCache(root=tmp_path)
        ) as restarted:
            warm = VerificationEngine(restarted).verify(
                config, scheme, labeling
            )
        assert warm.kernel_stats.get("compiled_round_cached") is True
        assert warm.kernel_stats.get("compile_seconds") == 0.0
        assert warm.verdicts == cold.verdicts
        assert warm.accepted == cold.accepted

    # -- envelope guards (PR 10 satellite): stale/corrupt == miss ------
    @staticmethod
    def _envelopes(root):
        """All (path, manifest) artifact files holding compiled rounds."""
        import pickle

        from repro.api.artifacts import ARTIFACT_MAGIC

        found = []
        for path in Path(root).glob("*.art"):
            payload = path.read_bytes()
            manifest = pickle.loads(payload[len(ARTIFACT_MAGIC):])
            if str(manifest.get("key", "")).startswith("compiled-round:"):
                found.append((path, manifest))
        return found

    def _tampered_run(self, tmp_path, mutate):
        """Cold run -> tamper every stored envelope -> restarted run.

        Returns the restarted report; asserts it recompiled cleanly
        with the cold run's exact verdicts.
        """
        import pickle

        from repro.api.artifacts import ARTIFACT_MAGIC

        config, scheme, labeling = self._stamped_case(9)
        cold = VerificationEngine(
            VectorizedExecutor(artifacts=ArtifactCache(root=tmp_path))
        ).verify(config, scheme, labeling)
        assert cold.kernel_stats["mode"] == "kernel"
        envelopes = self._envelopes(tmp_path)
        assert envelopes, "cold run stored no compiled-round envelope"
        for path, manifest in envelopes:
            mutate(manifest["outputs"]["state"])
            path.write_bytes(
                ARTIFACT_MAGIC + pickle.dumps(manifest, protocol=4)
            )
        report = VerificationEngine(
            VectorizedExecutor(artifacts=ArtifactCache(root=tmp_path))
        ).verify(config, scheme, labeling)
        assert report.kernel_stats["mode"] == "kernel"
        assert report.kernel_stats["compiled_round_cached"] is False
        assert report.verdicts == cold.verdicts
        assert report.accepted == cold.accepted
        return report

    def test_stale_version_envelope_recompiles(self, tmp_path):
        self._tampered_run(
            tmp_path,
            lambda state: state.update(compiled_round_version=999),
        )

    def test_stale_wire_version_envelope_recompiles(self, tmp_path):
        self._tampered_run(
            tmp_path, lambda state: state.update(wire_version=999)
        )

    def test_foreign_dtype_envelope_recompiles(self, tmp_path):
        self._tampered_run(
            tmp_path, lambda state: state.update(dtypes=(">i4", "|b1"))
        )

    def test_truncated_tables_envelope_recompiles(self, tmp_path):
        def chop(state):
            state["tables"]["r_type"] = state["tables"]["r_type"][:-1]

        self._tampered_run(tmp_path, chop)

    def test_inconsistent_indptr_envelope_recompiles(self, tmp_path):
        def skew(state):
            indptr = state["tables"]["ch_indptr"].copy()
            if indptr.shape[0] > 1:
                indptr[-1] += 1
            state["tables"]["ch_indptr"] = indptr

        self._tampered_run(tmp_path, skew)

    def test_gutted_state_envelope_recompiles(self, tmp_path):
        self._tampered_run(tmp_path, lambda state: state.clear())

    # -- fresh interpreter (PR 10 satellite) ---------------------------
    def test_persisted_round_survives_fresh_interpreter(self, tmp_path):
        """Two genuinely fresh processes over one cache directory: the
        first compiles + persists, the second attaches with
        ``compile_seconds == 0`` and identical verdicts — audit mode on
        in both, so every kernel accept is re-proved against the
        reference verifier."""
        script = (
            "import json, random, sys\n"
            "from repro.api import (ArtifactCache, VectorizedExecutor,\n"
            "                       VerificationEngine)\n"
            "from repro.codec import (encode_labeling_columnar,\n"
            "                         stamp_wire_digest)\n"
            "from repro.core import (certify_lanewidth_graph,\n"
            "                        random_lanewidth_sequence)\n"
            "rng = random.Random(7)\n"
            "sequence = random_lanewidth_sequence(\n"
            "    3, 16, rng, edge_probability=0.15)\n"
            "config, scheme, labeling, _res = certify_lanewidth_graph(\n"
            "    sequence, 'connected', rng)\n"
            "stamp_wire_digest(labeling, encode_labeling_columnar(labeling))\n"
            "report = VerificationEngine(VectorizedExecutor(\n"
            "    artifacts=ArtifactCache(root=sys.argv[1]))).verify(\n"
            "    config, scheme, labeling)\n"
            "stats = report.kernel_stats\n"
            "print(json.dumps({\n"
            "    'mode': stats.get('mode'),\n"
            "    'cached': stats.get('compiled_round_cached'),\n"
            "    'compile_seconds': stats.get('compile_seconds'),\n"
            "    'accepted': report.accepted,\n"
            "    'verdicts': sorted(\n"
            "        (str(v), bool(ok))\n"
            "        for v, ok in report.verdicts.items()),\n"
            "}))\n"
        )
        src_root = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src_root, env.get("PYTHONPATH", "")]
        )
        env["REPRO_VECTORIZED_AUDIT"] = "1"
        runs = []
        for _ in range(2):
            result = subprocess.run(
                [sys.executable, "-c", script, str(tmp_path)],
                capture_output=True,
                text=True,
                env=env,
                timeout=120,
            )
            assert result.returncode == 0, result.stderr
            runs.append(json.loads(result.stdout.strip()))
        first, second = runs
        assert first["mode"] == "kernel"
        assert first["cached"] is False
        assert second["mode"] == "kernel"
        assert second["cached"] is True
        assert second["compile_seconds"] == 0
        assert second["accepted"] is first["accepted"]
        assert second["verdicts"] == first["verdicts"]
