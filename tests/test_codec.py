"""Tests for the certificate wire codec (repro.codec).

The contract under test is the tentpole guarantee of the format:
``decode(encode(label)) == label`` for every label the pipeline can
produce, and the *measured* encoded size never exceeding the arithmetic
``label_bits`` accounting the reports used to quote.
"""

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import CertificationSession, certify
from repro.codec import (
    BitReader,
    BitStreamError,
    BitWriter,
    CodecError,
    WireHeader,
    decode_label,
    encode_label,
    encode_labeling,
    width_for,
    width_for_value,
)
from repro.core.certificates import label_bits
from repro.experiments import lanewidth_workload, pathwidth_workload


# ----------------------------------------------------------------------
# Bit-level I/O.
# ----------------------------------------------------------------------
class TestBitIO:
    @given(
        st.lists(
            st.integers(min_value=1, max_value=40).flatmap(
                lambda w: st.tuples(
                    st.integers(min_value=0, max_value=2**w - 1), st.just(w)
                )
            ),
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_field_sequence_round_trip(self, fields):
        writer = BitWriter()
        for value, width in fields:
            writer.write(value, width)
        assert writer.bit_length == sum(w for _v, w in fields)
        data = writer.to_bytes()
        assert len(data) == (writer.bit_length + 7) // 8
        reader = BitReader(data, writer.bit_length)
        for value, width in fields:
            assert reader.read(width) == value
        assert reader.remaining == 0

    def test_value_overflow_rejected(self):
        writer = BitWriter()
        with pytest.raises(BitStreamError):
            writer.write(4, 2)
        with pytest.raises(BitStreamError):
            writer.write(-1, 8)

    def test_truncated_read_rejected(self):
        writer = BitWriter()
        writer.write(5, 3)
        reader = BitReader(writer.to_bytes(), writer.bit_length)
        reader.read(3)
        with pytest.raises(BitStreamError):
            reader.read(1)

    def test_bit_limit_excludes_padding(self):
        writer = BitWriter()
        writer.write(1, 1)
        # One semantic bit, seven padding bits in the byte output.
        reader = BitReader(writer.to_bytes(), writer.bit_length)
        assert reader.read(1) == 1
        with pytest.raises(BitStreamError):
            reader.read(1)

    def test_width_helpers(self):
        assert width_for(1) == 1
        assert width_for(2) == 1
        assert width_for(3) == 2
        assert width_for(256) == 8
        assert width_for_value(0) == 1
        assert width_for_value(255) == 8
        assert width_for_value(256) == 9


# ----------------------------------------------------------------------
# Label round-trips over pipeline-generated labelings.
# ----------------------------------------------------------------------
def _lanewidth_labeling(width: int, n: int, seed: int):
    sequence, _graph = lanewidth_workload(width, n, seed)
    report = certify(sequence, "connected", rng=random.Random(seed + 1))
    assert not report.refused and report.accepted
    return report


def _accounted_bits(label, ctx) -> int:
    width = len(label.certificate.stack[0].info.lanes)
    return label_bits(label, ctx, width)


class TestLabelRoundTrip:
    @given(
        width=st.integers(min_value=2, max_value=4),
        n=st.integers(min_value=8, max_value=48),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=12, deadline=None)
    def test_lanewidth_round_trip_and_measured_bound(self, width, n, seed):
        report = _lanewidth_labeling(width, n, seed)
        labeling = report.labeling
        header = WireHeader.for_labeling(labeling)
        ctx = labeling.size_context
        for key, label in labeling.mapping.items():
            encoded = encode_label(label, header)
            decoded = decode_label(encoded.data, header, encoded.bit_length)
            assert decoded == label, f"round trip mismatch on edge {key}"
            # The wire encoding must never exceed the accounted size.
            assert encoded.bit_length <= _accounted_bits(label, ctx), key

    def test_pathwidth_mode_round_trip(self):
        graph, decomposition = pathwidth_workload(24, 2, seed=5)
        report = certify(
            graph,
            "connected",
            k=2,
            rng=random.Random(6),
            decomposer=lambda _g: decomposition,
        )
        assert report.accepted
        encoded = encode_labeling(report.labeling)
        assert encoded.decode().mapping == report.labeling.mapping

    def test_labeling_level_encode_matches_report_metrics(self):
        report = _lanewidth_labeling(3, 24, seed=11)
        encoded = encode_labeling(report.labeling)
        assert report.max_label_bits == encoded.max_bits
        assert report.total_label_bits == encoded.total_bits
        assert report.mean_label_bits == pytest.approx(encoded.mean_bits)
        # Measured is reported alongside (and below) the accounting.
        assert report.max_label_bits <= report.accounted_max_label_bits
        assert report.total_label_bits <= report.accounted_total_label_bits
        # The session attaches the wire form as a drill-down artifact.
        assert report.encoded.max_bits == encoded.max_bits

    def test_header_is_deterministic_and_picklable(self):
        report = _lanewidth_labeling(3, 20, seed=3)
        labeling = report.labeling
        h1 = WireHeader.for_labeling(labeling)
        h2 = WireHeader.for_labeling(labeling)
        assert h1 == h2
        revived = pickle.loads(pickle.dumps(h1))
        assert revived == h1
        # Decoding against the revived header (a fresh-process stand-in)
        # still reproduces the exact labels.
        key = next(iter(labeling.mapping))
        enc = encode_label(labeling.mapping[key], h1)
        assert decode_label(enc.data, revived, enc.bit_length) == (
            labeling.mapping[key]
        )

    def test_size_context_round_trip(self):
        report = _lanewidth_labeling(2, 16, seed=9)
        header = WireHeader.for_labeling(report.labeling)
        ctx = header.size_context()
        original = report.labeling.size_context
        assert (ctx.n, ctx.id_bits, ctx.counter_bits, ctx.class_bits) == (
            original.n,
            original.id_bits,
            original.counter_bits,
            original.class_bits,
        )


# ----------------------------------------------------------------------
# Malformed input handling.
# ----------------------------------------------------------------------
class TestMalformedStreams:
    def test_truncated_label_rejected(self):
        report = _lanewidth_labeling(2, 12, seed=21)
        labeling = report.labeling
        header = WireHeader.for_labeling(labeling)
        key = max(
            labeling.mapping, key=lambda k: len(labeling.mapping[k].certificate.stack)
        )
        enc = encode_label(labeling.mapping[key], header)
        with pytest.raises(CodecError):
            decode_label(enc.data[: len(enc.data) // 2], header)

    def test_wrong_bit_length_rejected(self):
        report = _lanewidth_labeling(2, 12, seed=22)
        labeling = report.labeling
        header = WireHeader.for_labeling(labeling)
        key = next(iter(labeling.mapping))
        enc = encode_label(labeling.mapping[key], header)
        with pytest.raises(CodecError):
            # Claiming extra trailing bits must be flagged, not ignored.
            decode_label(enc.data, header, enc.bit_length - 1)

    def test_non_theorem1_label_rejected(self):
        report = _lanewidth_labeling(2, 12, seed=23)
        header = WireHeader.for_labeling(report.labeling)
        with pytest.raises(CodecError):
            encode_label("not a label", header)

    def test_foreign_identifier_rejected(self):
        # A label mentioning an identifier outside the header's table
        # cannot be encoded against that header.
        a = _lanewidth_labeling(2, 12, seed=24)
        b = _lanewidth_labeling(2, 12, seed=941)
        header_a = WireHeader.for_labeling(a.labeling)
        foreign = next(iter(b.labeling.mapping.values()))
        with pytest.raises(CodecError):
            encode_label(foreign, header_a)

    def test_unsupported_version_rejected(self):
        report = _lanewidth_labeling(2, 12, seed=25)
        header = WireHeader.for_labeling(report.labeling)
        fields = {
            name: getattr(header, name)
            for name in (
                "n",
                "universe_bits",
                "class_count",
                "id_table",
                "states",
                "tags",
                "lane_bits",
                "node_width",
                "counter_width",
                "depth_width",
                "embed_width",
                "path_width",
                "child_width",
            )
        }
        with pytest.raises(CodecError):
            WireHeader(version=99, **fields)


# ----------------------------------------------------------------------
# Session-level batch: every property's labeling on one host must
# round-trip, and sizes must come from the wire form.
# ----------------------------------------------------------------------
def test_session_batch_reports_measured_sizes():
    sequence, _graph = lanewidth_workload(3, 20, seed=31)
    session = CertificationSession(rng=random.Random(32))
    reports = session.certify(
        sequence, ["connected", "acyclic", "even-order"]
    )
    for key, report in reports.items():
        if report.refused:
            continue
        assert report.accepted, key
        assert report.max_label_bits == report.encoded.max_bits
        assert report.max_label_bits <= report.accounted_max_label_bits
        assert report.encoded.decode().mapping == report.labeling.mapping


# ----------------------------------------------------------------------
# PR 10: the columnar bulk encoder must be byte-identical to the
# reference per-label encoder on every labeling the pipeline produces.
# ----------------------------------------------------------------------
def _assert_byte_identical(bulk, ref):
    assert bulk.header == ref.header
    assert bulk.location == ref.location
    assert set(bulk.labels) == set(ref.labels)
    for key in ref.labels:
        assert bulk.labels[key].data == ref.labels[key].data, key
        assert bulk.labels[key].bit_length == ref.labels[key].bit_length, key


class TestColumnarEncoderByteIdentity:
    @given(
        width=st.integers(min_value=2, max_value=4),
        n=st.integers(min_value=8, max_value=56),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=12, deadline=None)
    def test_direct_encoder_byte_identity(self, width, n, seed):
        """The *direct* ColumnarEncoder path (no fallback safety net —
        `encode_labeling_columnar` would silently mask a bulk-path bug
        by falling back to the reference encoder)."""
        numpy = pytest.importorskip("numpy")  # noqa: F841
        from repro.codec import ColumnarEncoder
        from repro.codec.wire import _EncodeMemo

        labeling = _lanewidth_labeling(width, n, seed).labeling
        ref = encode_labeling(labeling)
        memo = _EncodeMemo()
        header = WireHeader.for_labeling(labeling, memo)
        bulk = ColumnarEncoder(header, memo).encode(labeling)
        _assert_byte_identical(bulk, ref)

    def test_wrapper_byte_identity_and_round_trip(self):
        from repro.codec import encode_labeling_columnar

        labeling = _lanewidth_labeling(3, 40, seed=17).labeling
        ref = encode_labeling(labeling)
        bulk = encode_labeling_columnar(labeling)
        _assert_byte_identical(bulk, ref)
        assert bulk.decode().mapping == labeling.mapping

    def test_pathwidth_mode_byte_identity(self):
        pytest.importorskip("numpy")
        from repro.codec import ColumnarEncoder
        from repro.codec.wire import _EncodeMemo

        graph, decomposition = pathwidth_workload(24, 2, seed=5)
        report = certify(
            graph,
            "connected",
            k=2,
            rng=random.Random(6),
            decomposer=lambda _g: decomposition,
        )
        assert report.accepted
        ref = encode_labeling(report.labeling)
        memo = _EncodeMemo()
        header = WireHeader.for_labeling(report.labeling, memo)
        bulk = ColumnarEncoder(header, memo).encode(report.labeling)
        _assert_byte_identical(bulk, ref)
