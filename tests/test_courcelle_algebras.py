"""Differential validation of every homomorphism-class algebra.

The contract of Proposition 2.4 (realized by :class:`BoundedAlgebra`) is
that the finite-state classes decide the property under every composition.
Each algebra is replayed over randomized composition sequences alongside
the explicit :class:`BoundariedGraph` reference, and the verdicts must
agree with the property's independent ground-truth checker.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.courcelle import (
    BoundariedGraph,
    ProductAlgebra,
    WholeGraphAlgebra,
    algebra_for,
    available_algebra_keys,
    random_op_sequence,
)
from repro.courcelle.boundary import OpSequence, REAL, VIRTUAL
from repro.graphs import Graph
from repro.graphs.minors import _has_path_of_order
from repro.mso.properties import (
    has_dominating_set_at_most,
    has_hamiltonian_cycle,
    has_hamiltonian_path,
    has_independent_set_at_least,
    has_perfect_matching,
    has_vertex_cover_at_most,
    is_bipartite,
    is_q_colorable,
)

CHECKERS = {
    "connected": lambda g: g.is_connected(),
    "acyclic": lambda g: g.is_forest(),
    "bipartite": is_bipartite,
    "tree": lambda g: g.is_tree(),
    "even-order": lambda g: g.n % 2 == 0,
    "odd-order": lambda g: g.n % 2 == 1,
    "order-at-least-5": lambda g: g.n >= 5,
    "max-degree-2": lambda g: g.max_degree() <= 2,
    "max-degree-3": lambda g: g.max_degree() <= 3,
    "colorable-2": is_bipartite,
    "colorable-3": lambda g: is_q_colorable(g, 3),
    "vertex-cover-1": lambda g: has_vertex_cover_at_most(g, 1),
    "vertex-cover-2": lambda g: has_vertex_cover_at_most(g, 2),
    "vertex-cover-3": lambda g: has_vertex_cover_at_most(g, 3),
    "independent-set-2": lambda g: has_independent_set_at_least(g, 2),
    "independent-set-3": lambda g: has_independent_set_at_least(g, 3),
    "independent-set-4": lambda g: has_independent_set_at_least(g, 4),
    "dominating-set-1": lambda g: has_dominating_set_at_most(g, 1),
    "dominating-set-2": lambda g: has_dominating_set_at_most(g, 2),
    "perfect-matching": has_perfect_matching,
    "hamiltonian-path": has_hamiltonian_path,
    "hamiltonian-cycle": has_hamiltonian_cycle,
    "path-length-2": lambda g: _has_path_of_order(g, 3),
    "path-length-3": lambda g: _has_path_of_order(g, 4),
    "path-length-4": lambda g: _has_path_of_order(g, 5),
    "no-path-length-4": lambda g: not _has_path_of_order(g, 5),
    "star3-minor-free": lambda g: g.max_degree() <= 2,
    "k3-minor-free": lambda g: g.is_forest(),
    "p5-minor-free": lambda g: not _has_path_of_order(g, 5),
}


def _agree(seq, key):
    graph = seq.run_reference().real_subgraph()
    algebra = algebra_for(key)
    try:
        state, arity = seq.run_algebra(algebra)
    except ValueError:
        return  # arity guard tripped; nothing to compare
    assert algebra.accepts(state, arity) == bool(CHECKERS[key](graph)), (
        f"{key} disagrees on ops {seq.ops}"
    )


class TestBoundariedGraphReference:
    def test_new(self):
        bg = BoundariedGraph.new(3)
        assert bg.arity == 3
        assert bg.graph.n == 3 and bg.graph.m == 0

    def test_add_edge_and_tags(self):
        bg = BoundariedGraph.new(2).add_edge(0, 1, VIRTUAL)
        assert bg.graph.m == 1
        assert bg.real_subgraph().m == 0

    def test_duplicate_edge_rejected(self):
        bg = BoundariedGraph.new(2).add_edge(0, 1, REAL)
        with pytest.raises(ValueError):
            bg.add_edge(0, 1, REAL)

    def test_join_gluing(self):
        left = BoundariedGraph.new(2).add_edge(0, 1, REAL)
        right = BoundariedGraph.new(2).add_edge(0, 1, REAL)
        glued = left.join(right, [(1, 0)])
        assert glued.arity == 3
        assert glued.graph.n == 3
        assert glued.graph.m == 2  # a path on 3 vertices

    def test_join_rejects_edge_identification(self):
        left = BoundariedGraph.new(2).add_edge(0, 1, REAL)
        right = BoundariedGraph.new(2).add_edge(0, 1, REAL)
        with pytest.raises(ValueError):
            left.join(right, [(0, 0), (1, 1)])

    def test_forget(self):
        bg = BoundariedGraph.new(3).forget([2, 0])
        assert bg.boundary == (2, 0)

    def test_forgotten_vertex_remains(self):
        bg = BoundariedGraph.new(3).forget([0])
        assert bg.graph.n == 3

    def test_triangle_via_ops(self):
        seq = OpSequence(
            [
                ("new", 3),
                ("edge", 0, 1, REAL),
                ("edge", 1, 2, REAL),
                ("edge", 0, 2, REAL),
            ]
        )
        g = seq.run_reference().real_subgraph()
        assert g.is_cycle_graph()


class TestRegistry:
    def test_unknown_key(self):
        with pytest.raises(KeyError):
            algebra_for("no-such-property")

    def test_available_keys_nonempty(self):
        keys = available_algebra_keys()
        assert "connected" in keys
        assert any("vertex-cover" in k for k in keys)

    @pytest.mark.parametrize("key", sorted(CHECKERS))
    def test_all_keys_resolve(self, key):
        assert algebra_for(key) is not None


class TestHandPickedSequences:
    """Small deterministic compositions with known outcomes."""

    def _path3(self):
        return OpSequence(
            [("new", 3), ("edge", 0, 1, REAL), ("edge", 1, 2, REAL)]
        )

    def _triangle(self):
        return OpSequence(
            [
                ("new", 3),
                ("edge", 0, 1, REAL),
                ("edge", 1, 2, REAL),
                ("edge", 0, 2, REAL),
            ]
        )

    def _two_triangles_glued(self):
        """Two triangles sharing one vertex (a bowtie)."""
        return OpSequence(
            [
                ("new", 3),
                ("edge", 0, 1, REAL),
                ("edge", 1, 2, REAL),
                ("edge", 0, 2, REAL),
                ("new", 3),
                ("edge", 0, 1, REAL),
                ("edge", 1, 2, REAL),
                ("edge", 0, 2, REAL),
                ("join", ((0, 0),)),
            ]
        )

    def test_path_connected(self):
        alg = algebra_for("connected")
        state, arity = self._path3().run_algebra(alg)
        assert alg.accepts(state, arity)

    def test_triangle_not_acyclic(self):
        alg = algebra_for("acyclic")
        state, arity = self._triangle().run_algebra(alg)
        assert not alg.accepts(state, arity)

    def test_triangle_not_bipartite(self):
        alg = algebra_for("bipartite")
        state, arity = self._triangle().run_algebra(alg)
        assert not alg.accepts(state, arity)

    def test_triangle_hamiltonian_cycle(self):
        alg = algebra_for("hamiltonian-cycle")
        state, arity = self._triangle().run_algebra(alg)
        assert alg.accepts(state, arity)

    def test_path_no_hamiltonian_cycle(self):
        alg = algebra_for("hamiltonian-cycle")
        state, arity = self._path3().run_algebra(alg)
        assert not alg.accepts(state, arity)

    def test_bowtie_shapes(self):
        seq = self._two_triangles_glued()
        g = seq.run_reference().real_subgraph()
        assert g.n == 5 and g.m == 6
        for key in ("connected", "hamiltonian-path", "vertex-cover-2"):
            _agree(seq, key)

    def test_virtual_edges_invisible(self):
        seq = OpSequence(
            [("new", 3), ("edge", 0, 1, REAL), ("edge", 1, 2, VIRTUAL)]
        )
        alg = algebra_for("connected")
        state, arity = seq.run_algebra(alg)
        assert not alg.accepts(state, arity)  # real part is disconnected

    def test_parent_merge_figure_eight_cycle(self):
        """Gluing both ends of two length-2 paths creates a 4-cycle."""
        length2_path = [
            ("new", 3),
            ("edge", 0, 2, REAL),
            ("edge", 2, 1, REAL),
            ("forget", (0, 1)),
        ]
        seq = OpSequence(
            length2_path + length2_path + [("join", ((0, 0), (1, 1)))]
        )
        alg = algebra_for("acyclic")
        state, arity = seq.run_algebra(alg)
        assert not alg.accepts(state, arity)
        g = seq.run_reference().real_subgraph()
        assert g.has_cycle()
        assert g.is_cycle_graph()

    def test_gluing_identical_edges_rejected(self):
        """Gluing both endpoints of two 1-edge paths would identify the
        edges, which Parent-merge forbids (Section 5.2)."""
        seq = OpSequence(
            [
                ("new", 2),
                ("edge", 0, 1, REAL),
                ("new", 2),
                ("edge", 0, 1, REAL),
                ("join", ((0, 0), (1, 1))),
            ]
        )
        with pytest.raises(ValueError):
            seq.run_reference()


class TestDifferentialRandomized:
    """The main contract test: algebra == ground truth on random ops."""

    @pytest.mark.parametrize("key", sorted(CHECKERS))
    def test_small_sequences(self, key):
        for t in range(120):
            rng = random.Random(1000 + t)
            seq = random_op_sequence(rng, max_new=3, steps=10, virtual_probability=0.15)
            _agree(seq, key)

    @pytest.mark.parametrize(
        "key",
        [
            "connected",
            "acyclic",
            "bipartite",
            "vertex-cover-2",
            "independent-set-3",
            "dominating-set-1",
            "perfect-matching",
            "hamiltonian-path",
            "hamiltonian-cycle",
            "path-length-3",
        ],
    )
    def test_larger_sequences(self, key):
        for t in range(80):
            rng = random.Random(90_000 + t)
            seq = random_op_sequence(rng, max_new=4, steps=18, virtual_probability=0.25)
            _agree(seq, key)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_hypothesis_seeded(self, seed):
        rng = random.Random(seed)
        seq = random_op_sequence(rng, max_new=3, steps=12, virtual_probability=0.2)
        for key in ("connected", "acyclic", "bipartite", "hamiltonian-path"):
            _agree(seq, key)


class TestWholeGraphAlgebra:
    def test_matches_checker(self):
        rng = random.Random(5)
        seq = random_op_sequence(rng, max_new=3, steps=10)
        alg = WholeGraphAlgebra(lambda g: g.is_connected())
        state, arity = seq.run_algebra(alg)
        assert alg.accepts(state, arity) == seq.run_reference().real_subgraph().is_connected()


class TestProductAlgebra:
    def test_conjunction(self):
        seq = OpSequence([("new", 3), ("edge", 0, 1, REAL), ("edge", 1, 2, REAL)])
        prod = ProductAlgebra([algebra_for("connected"), algebra_for("acyclic")])
        state, arity = seq.run_algebra(prod)
        assert prod.accepts(state, arity)  # a path is a tree

    def test_disjunction(self):
        seq = OpSequence([("new", 2)])  # two isolated vertices
        prod = ProductAlgebra(
            [algebra_for("connected"), algebra_for("acyclic")], mode="or"
        )
        state, arity = seq.run_algebra(prod)
        assert prod.accepts(state, arity)  # acyclic holds

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            ProductAlgebra([], mode="xor")


class TestArityGuards:
    def test_coloring_guard(self):
        with pytest.raises(ValueError):
            algebra_for("colorable-3").new_vertices(12)

    def test_hamiltonian_guard(self):
        with pytest.raises(ValueError):
            algebra_for("hamiltonian-path").new_vertices(13)
