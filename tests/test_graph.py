"""Unit tests for the core Graph data structure."""

import pytest

from repro.graphs import Graph, edge_key
from repro.graphs.generators import cycle_graph, path_graph, star_graph


class TestEdgeKey:
    def test_canonical_order(self):
        assert edge_key(3, 1) == (1, 3)
        assert edge_key(1, 3) == (1, 3)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            edge_key(2, 2)


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.n == 0
        assert g.m == 0
        assert g.vertices() == []
        assert g.edges() == []

    def test_add_vertex_idempotent(self):
        g = Graph()
        g.add_vertex(1)
        g.add_vertex(1)
        assert g.n == 1

    def test_add_edge_creates_endpoints(self):
        g = Graph()
        g.add_edge(1, 2)
        assert g.n == 2
        assert g.m == 1
        assert g.has_edge(2, 1)

    def test_add_edge_idempotent(self):
        g = Graph(edges=[(1, 2), (1, 2), (2, 1)])
        assert g.m == 1

    def test_init_with_vertices_and_edges(self):
        g = Graph(vertices=[5], edges=[(1, 2)])
        assert set(g.vertices()) == {1, 2, 5}

    def test_remove_edge(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.has_edge(2, 3)
        assert 1 in g  # vertex stays

    def test_remove_missing_edge_raises(self):
        g = Graph(edges=[(1, 2)])
        with pytest.raises(KeyError):
            g.remove_edge(1, 3)

    def test_remove_vertex(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 3)])
        g.remove_vertex(2)
        assert g.n == 2
        assert g.m == 1
        assert g.has_edge(1, 3)


class TestLabels:
    def test_vertex_labels(self):
        g = Graph(vertices=[1, 2])
        g.set_vertex_label(1, "a")
        assert g.vertex_label(1) == "a"
        assert g.vertex_label(2) is None
        assert g.vertex_label(2, default="x") == "x"

    def test_vertex_label_missing_vertex(self):
        g = Graph()
        with pytest.raises(KeyError):
            g.set_vertex_label(1, "a")

    def test_edge_labels_symmetric(self):
        g = Graph(edges=[(1, 2)])
        g.set_edge_label(2, 1, "real")
        assert g.edge_label(1, 2) == "real"

    def test_edge_label_missing_edge(self):
        g = Graph(edges=[(1, 2)])
        with pytest.raises(KeyError):
            g.set_edge_label(1, 3, "x")

    def test_labels_survive_copy(self):
        g = Graph(edges=[(1, 2)])
        g.set_vertex_label(1, "a")
        g.set_edge_label(1, 2, "b")
        h = g.copy()
        assert h.vertex_label(1) == "a"
        assert h.edge_label(1, 2) == "b"

    def test_label_removed_with_edge(self):
        g = Graph(edges=[(1, 2)])
        g.set_edge_label(1, 2, "b")
        g.remove_edge(1, 2)
        g.add_edge(1, 2)
        assert g.edge_label(1, 2) is None


class TestQueries:
    def test_neighbors_is_copy(self):
        g = Graph(edges=[(1, 2)])
        nbrs = g.neighbors(1)
        nbrs.add(99)
        assert 99 not in g.neighbors(1)

    def test_degree(self):
        g = star_graph(4)
        assert g.degree(0) == 4
        assert g.degree(1) == 1
        assert g.max_degree() == 4

    def test_incident_edges(self):
        g = Graph(edges=[(2, 1), (2, 3)])
        assert g.incident_edges(2) == [(1, 2), (2, 3)]

    def test_iteration(self):
        g = Graph(vertices=[3, 1, 2])
        assert sorted(g) == [1, 2, 3]
        assert len(g) == 3


class TestTraversal:
    def test_bfs_order(self):
        g = path_graph(4)
        assert g.bfs_order(0) == [0, 1, 2, 3]

    def test_shortest_path_endpoints(self):
        g = cycle_graph(6)
        p = g.shortest_path(0, 3)
        assert p[0] == 0 and p[-1] == 3
        assert len(p) == 4  # distance 3 in a 6-cycle

    def test_shortest_path_same_vertex(self):
        g = path_graph(3)
        assert g.shortest_path(1, 1) == [1]

    def test_shortest_path_disconnected(self):
        g = Graph(vertices=[1, 2])
        assert g.shortest_path(1, 2) is None

    def test_shortest_path_edges_exist(self):
        g = cycle_graph(8)
        p = g.shortest_path(0, 4)
        for a, b in zip(p, p[1:]):
            assert g.has_edge(a, b)

    def test_distances(self):
        g = path_graph(5)
        assert g.distances_from(0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_components(self):
        g = Graph(edges=[(1, 2), (3, 4)])
        g.add_vertex(5)
        assert g.connected_components() == [[1, 2], [3, 4], [5]]

    def test_is_connected(self):
        assert path_graph(5).is_connected()
        assert not Graph(vertices=[1, 2]).is_connected()
        assert Graph().is_connected()

    def test_spanning_tree(self):
        g = cycle_graph(7)
        t = g.spanning_tree(0)
        assert t.n == 7
        assert t.m == 6
        assert t.is_connected()


class TestStructureTests:
    def test_cycle_detection(self):
        assert cycle_graph(4).has_cycle()
        assert not path_graph(4).has_cycle()
        assert not star_graph(3).has_cycle()

    def test_forest_and_tree(self):
        assert path_graph(4).is_forest()
        assert path_graph(4).is_tree()
        g = Graph(edges=[(1, 2), (3, 4)])
        assert g.is_forest()
        assert not g.is_tree()
        assert not cycle_graph(4).is_forest()

    def test_path_and_cycle_recognizers(self):
        assert path_graph(1).is_path_graph()
        assert path_graph(6).is_path_graph()
        assert not cycle_graph(6).is_path_graph()
        assert not star_graph(3).is_path_graph()
        assert cycle_graph(3).is_cycle_graph()
        assert not path_graph(3).is_cycle_graph()


class TestDerivation:
    def test_induced_subgraph(self):
        g = cycle_graph(5)
        h = g.induced_subgraph([0, 1, 2])
        assert h.edges() == [(0, 1), (1, 2)]

    def test_induced_subgraph_missing_vertex(self):
        g = path_graph(3)
        with pytest.raises(KeyError):
            g.induced_subgraph([0, 99])

    def test_edge_subgraph_keeps_all_vertices(self):
        g = cycle_graph(4)
        h = g.edge_subgraph([(0, 1)])
        assert h.n == 4
        assert h.m == 1

    def test_edge_subgraph_missing_edge(self):
        g = path_graph(3)
        with pytest.raises(KeyError):
            g.edge_subgraph([(0, 2)])

    def test_relabeled(self):
        g = path_graph(3)
        h = g.relabeled({0: 10, 1: 11, 2: 12})
        assert h.edges() == [(10, 11), (11, 12)]

    def test_relabeled_rejects_collision(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            g.relabeled({0: 1})

    def test_disjoint_union(self):
        g = path_graph(2)
        h = Graph(edges=[(10, 11)])
        u = g.disjoint_union(h)
        assert u.n == 4
        assert u.m == 2

    def test_disjoint_union_overlap_rejected(self):
        g = path_graph(2)
        with pytest.raises(ValueError):
            g.disjoint_union(path_graph(3))

    def test_same_graph(self):
        assert path_graph(4).same_graph(path_graph(4))
        assert not path_graph(4).same_graph(cycle_graph(4))

    def test_networkx_roundtrip(self):
        g = cycle_graph(5)
        assert Graph.from_networkx(g.to_networkx()).same_graph(g)


class TestFingerprintCacheInvalidation:
    """Graph.fingerprint is served from the CSR snapshot + a memo; every
    mutation class must invalidate it (regression for the cached path)."""

    def test_repeated_calls_are_memoized(self):
        g = path_graph(6)
        first = g.fingerprint()
        # Same snapshot, same label version: the memo must serve this.
        assert g.fingerprint() == first
        assert g._fp_cache[True][2] == first

    def test_structural_mutation_invalidates(self):
        g = path_graph(6)
        baseline = g.fingerprint()
        g.add_edge(0, 5)
        assert g.fingerprint() != baseline
        g.remove_edge(0, 5)
        assert g.fingerprint() == baseline  # content equality restored
        g.add_vertex(99)
        assert g.fingerprint() != baseline
        g.remove_vertex(99)
        assert g.fingerprint() == baseline

    def test_label_mutation_invalidates(self):
        g = path_graph(6)
        baseline = g.fingerprint()
        structural = g.fingerprint(include_labels=False)
        g.set_vertex_label(0, "x")
        assert g.fingerprint() != baseline
        assert g.fingerprint(include_labels=False) == structural
        g.set_edge_label(0, 1, "real")
        assert g.fingerprint() != baseline
        # Removing a labeled edge drops its label: fingerprint changes.
        g.remove_edge(0, 1)
        assert g.fingerprint(include_labels=False) != structural

    def test_copy_shares_snapshot_but_not_staleness(self):
        g = path_graph(5)
        baseline = g.fingerprint()
        h = g.copy()
        assert h.fingerprint() == baseline
        h.add_edge(0, 4)
        assert h.fingerprint() != baseline
        assert g.fingerprint() == baseline  # the original is untouched

    def test_pickle_roundtrip_recomputes(self):
        import pickle

        g = path_graph(5)
        g.set_vertex_label(2, "mid")
        baseline = g.fingerprint()
        clone = pickle.loads(pickle.dumps(g))
        assert clone.fingerprint() == baseline
