"""CSR core ≡ legacy dict-backed Graph semantics, and ViewFactory ≡
per-vertex view builders.

The array-backed refactor promises *identical observable behavior*: the
CSR snapshot is a read cache, not a semantic change.  These property
tests pin that — neighbors, degrees, edge sets, incident edges,
fingerprints, and locally-built views must agree with the reference
(dict-scan) constructions on arbitrary small graphs, through arbitrary
interleavings of mutation and reading.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import CSRAdjacency, Graph, edge_key
from repro.graphs.generators import random_connected_gnp
from repro.pls.model import (
    Configuration,
    ViewFactory,
    build_edge_view,
    build_vertex_view,
    view_factory_for,
)
from repro.pls.scheme import Labeling
from repro.pls.bits import SizeContext


@st.composite
def small_graphs(draw):
    """An arbitrary simple graph on 1..10 vertices, edges in random order."""
    n = draw(st.integers(min_value=1, max_value=10))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    chosen = [pair for pair in pairs if draw(st.booleans())]
    order = draw(st.permutations(chosen))
    g = Graph(vertices=range(n))
    for u, v in order:
        g.add_edge(u, v)
    return g


def _reference_edges(g: Graph) -> list:
    """The legacy edges() computation: scan adjacency sets, sort keys."""
    seen = []
    for u in g:
        for v in g.neighbors(u):
            if u <= v:
                seen.append((u, v))
    return sorted(seen)


class TestCSRAgreesWithDictBacking:
    @given(small_graphs())
    @settings(max_examples=60, deadline=None)
    def test_queries_match_reference(self, g):
        csr = g.csr
        assert list(csr.vertices) == sorted(set(g))
        assert g.vertices() == sorted(set(g))
        assert g.edges() == _reference_edges(g)
        assert g.m == len(_reference_edges(g))
        for v in g:
            assert g.neighbors_sorted(v) == tuple(sorted(g.neighbors(v)))
            assert g.degree(v) == len(g.neighbors(v))
            assert g.incident_edges(v) == sorted(
                edge_key(v, u) for u in g.neighbors(v)
            )

    @given(small_graphs())
    @settings(max_examples=60, deadline=None)
    def test_edge_index_is_stable_and_consistent(self, g):
        edges = g.edges()
        for e, (u, v) in enumerate(edges):
            assert g.edge_index(u, v) == e
            assert g.edge_index(v, u) == e
        # Stable across repeated reads (same snapshot).
        assert g.edges() == edges

    @given(small_graphs(), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_mutation_invalidates_snapshot(self, g, rng):
        before = g.edges()
        assert g.csr is g.csr  # cached while unmutated
        non_edges = [
            (u, v)
            for u in g.vertices()
            for v in g.vertices()
            if u < v and not g.has_edge(u, v)
        ]
        if non_edges:
            u, v = rng.choice(non_edges)
            g.add_edge(u, v)
            assert g.edges() == sorted(before + [(u, v)])
            g.remove_edge(u, v)
        assert g.edges() == before
        assert g.m == len(before)

    @given(small_graphs())
    @settings(max_examples=40, deadline=None)
    def test_fingerprint_matches_legacy_construction(self, g):
        # Rebuild through a different insertion order: fingerprints are
        # content hashes, not history hashes.
        rebuilt = Graph(vertices=reversed(g.vertices()))
        for u, v in reversed(g.edges()):
            rebuilt.add_edge(u, v)
        assert rebuilt.fingerprint() == g.fingerprint()
        assert rebuilt.fingerprint(include_labels=False) == g.fingerprint(
            include_labels=False
        )

    def test_copy_shares_snapshot_until_mutation(self):
        g = random_connected_gnp(12, 0.3, random.Random(5))
        snapshot = g.csr
        clone = g.copy()
        assert clone._csr is snapshot
        clone.add_edge(0, 11) if not clone.has_edge(0, 11) else clone.remove_edge(0, 11)
        assert g.csr is snapshot  # original untouched
        assert clone._csr is not snapshot or clone._csr is None

    def test_raw_csr_shape_invariants(self):
        g = Graph(edges=[(0, 2), (0, 1), (1, 2), (2, 3)])
        csr = g.csr
        assert isinstance(csr, CSRAdjacency)
        assert csr.n == 4 and csr.m == 4
        assert csr.indptr[0] == 0 and csr.indptr[-1] == 2 * csr.m
        for i in range(csr.n):
            row = csr.row(i)
            assert row == sorted(row)
            assert len(row) == csr.degrees[i]
            # incident edge indices point back at this row's edges
            for p, e in zip(row, csr.incident_row(i)):
                assert csr.edges[e] == edge_key(
                    csr.vertices[i], csr.vertices[p]
                )


@st.composite
def labeled_configurations(draw):
    """A connected configuration with random input labels + certificates."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    g = random_connected_gnp(draw(st.integers(2, 9)), 0.4, rng)
    for v in g.vertices():
        if rng.random() < 0.5:
            g.set_vertex_label(v, rng.randrange(3))
    for u, v in g.edges():
        if rng.random() < 0.5:
            g.set_edge_label(u, v, rng.randrange(3))
    config = Configuration.with_random_ids(g, rng)
    vertex_mapping = {
        v: rng.randrange(100) for v in g.vertices() if rng.random() < 0.8
    }
    edge_mapping = {
        key: rng.randrange(100) for key in g.edges() if rng.random() < 0.8
    }
    return config, vertex_mapping, edge_mapping


class TestViewFactoryMatchesReferenceBuilders:
    @given(labeled_configurations())
    @settings(max_examples=50, deadline=None)
    def test_vertex_views_identical(self, case):
        config, vertex_mapping, _ = case
        factory = ViewFactory(config, vertex_mapping, "vertices")
        for vertex in config.graph.vertices():
            assert factory.view(vertex) == build_vertex_view(
                config, vertex, vertex_mapping
            )

    @given(labeled_configurations())
    @settings(max_examples=50, deadline=None)
    def test_edge_views_identical(self, case):
        config, _, edge_mapping = case
        factory = ViewFactory(config, edge_mapping, "edges")
        for vertex in config.graph.vertices():
            assert factory.view(vertex) == build_edge_view(
                config, vertex, edge_mapping
            )

    def test_view_factory_for_accepts_labelings_and_mappings(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        config = Configuration.with_random_ids(g, random.Random(1))
        labeling = Labeling("edges", {(0, 1): 7}, SizeContext(3))
        factory = view_factory_for(config, labeling)
        assert factory.location == "edges"
        assert factory.view(1).ports[0].certificate == 7
        by_mapping = view_factory_for(config, {0: 1}, location="vertices")
        assert by_mapping.location == "vertices"
        try:
            view_factory_for(config, {0: 1})
        except ValueError as exc:
            assert "location" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("plain mapping without location must fail")
