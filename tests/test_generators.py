"""Tests for graph generators, including witness-decomposition guarantees."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import (
    assign_random_ids,
    binary_tree_graph,
    caterpillar_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    enumerate_graphs,
    grid_graph,
    ladder_graph,
    path_graph,
    random_caterpillar,
    random_connected_gnp,
    random_pathwidth_graph,
    random_tree,
    spider_graph,
    star_graph,
)
from repro.pathwidth import PathDecomposition
from repro.pathwidth.exact import exact_pathwidth


class TestClassicFamilies:
    def test_path(self):
        g = path_graph(5)
        assert (g.n, g.m) == (5, 4)
        assert g.is_path_graph()

    def test_path_single_vertex(self):
        assert path_graph(1).n == 1

    def test_cycle(self):
        g = cycle_graph(6)
        assert (g.n, g.m) == (6, 6)
        assert g.is_cycle_graph()

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(5)
        assert g.degree(0) == 5
        assert g.is_tree()

    def test_complete(self):
        g = complete_graph(5)
        assert g.m == 10

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(2, 3)
        assert g.m == 6
        assert not g.has_edge(0, 1)

    def test_ladder(self):
        g = ladder_graph(4)
        assert g.n == 8
        assert g.m == 3 + 3 + 4
        assert exact_pathwidth(g) == 2

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4
        assert exact_pathwidth(g) == 3

    def test_caterpillar_pathwidth_one(self):
        g = caterpillar_graph(5, 2)
        assert g.is_tree()
        assert exact_pathwidth(g) == 1

    def test_spider(self):
        g = spider_graph(3, 2)
        assert g.n == 7
        assert g.degree(0) == 3
        assert exact_pathwidth(g) == 2

    def test_binary_tree(self):
        g = binary_tree_graph(3)
        assert g.n == 15
        assert g.is_tree()


class TestRandomFamilies:
    def test_random_tree_is_tree(self):
        rng = random.Random(7)
        for n in (1, 2, 3, 10, 40):
            assert random_tree(n, rng).is_tree()

    def test_random_caterpillar_pathwidth(self):
        rng = random.Random(3)
        for _ in range(10):
            g = random_caterpillar(12, rng)
            assert g.is_tree()
            assert exact_pathwidth(g) <= 1

    def test_random_connected_gnp(self):
        rng = random.Random(5)
        g = random_connected_gnp(15, 0.1, rng)
        assert g.is_connected()

    def test_random_pathwidth_graph_witness(self):
        rng = random.Random(11)
        for k in (1, 2, 3):
            g, bags = random_pathwidth_graph(30, k, rng)
            decomposition = PathDecomposition(g, bags)  # validates (P1),(P2)
            assert decomposition.width() <= k
            assert g.is_connected()

    def test_random_pathwidth_tight_for_small_k(self):
        rng = random.Random(13)
        g, bags = random_pathwidth_graph(14, 2, rng)
        assert exact_pathwidth(g) <= 2

    @given(st.integers(min_value=1, max_value=25), st.integers(min_value=1, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_random_pathwidth_graph_properties(self, n, k):
        g, bags = random_pathwidth_graph(n, k, random.Random(n * 31 + k))
        assert g.n == n
        assert g.is_connected()
        assert PathDecomposition(g, bags).width() <= k


class TestEnumeration:
    def test_enumerate_counts(self):
        # 4 labeled connected graphs on 3 vertices: 3 paths + triangle.
        graphs = list(enumerate_graphs(3))
        assert len(graphs) == 4

    def test_enumerate_all_graphs(self):
        graphs = list(enumerate_graphs(3, connected_only=False))
        assert len(graphs) == 8

    def test_enumerate_connected(self):
        assert all(g.is_connected() for g in enumerate_graphs(4))


class TestIds:
    def test_ids_distinct(self):
        g = complete_graph(8)
        ids = assign_random_ids(g, random.Random(1))
        assert len(set(ids.values())) == g.n

    def test_ids_cover_vertices(self):
        g = path_graph(5)
        ids = assign_random_ids(g, random.Random(2))
        assert set(ids) == set(g.vertices())
