"""End-to-end tests of the Theorem 1 proof labeling scheme.

Completeness: honest prover => all vertices accept, on every family and
property.  Soundness: predicate-violating tampering => some vertex
rejects.  Label sizes: O(log n) accounting sanity.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LanewidthScheme,
    Theorem1Scheme,
    apply_construction,
    certify_lanewidth_graph,
    random_lanewidth_sequence,
)
from repro.graphs.generators import (
    caterpillar_graph,
    cycle_graph,
    ladder_graph,
    path_graph,
    random_pathwidth_graph,
    spider_graph,
    star_graph,
)
from repro.mso.properties import is_bipartite
from repro.pathwidth import PathDecomposition
from repro.pls.adversary import (
    corrupt_one_label,
    drop_one_label,
    swap_two_labels,
    transplant_labels,
)
from repro.pls.model import Configuration
from repro.pls.scheme import Labeling, ProverFailure
from repro.pls.simulator import prove_and_verify, run_verification
from repro.pls.transforms import EdgeToVertexScheme


class TestCompletenessNamedFamilies:
    CASES = [
        ("path", path_graph(10), 1),
        ("cycle", cycle_graph(8), 2),
        ("caterpillar", caterpillar_graph(4, 2), 1),
        ("ladder", ladder_graph(5), 2),
        ("star", star_graph(6), 1),
        ("spider", spider_graph(3, 2), 2),
    ]

    @pytest.mark.parametrize("name,graph,k", CASES, ids=lambda c: str(c))
    def test_connected_accepted(self, name, graph, k):
        if isinstance(name, (int,)) or not isinstance(name, str):
            pytest.skip("parametrization artifact")
        config = Configuration.with_random_ids(graph, random.Random(1))
        scheme = Theorem1Scheme("connected", k)
        labeling, result = prove_and_verify(config, scheme)
        assert result.accepted, result.rejecting_vertices[:5]

    def test_bipartite_on_even_cycle(self):
        config = Configuration.with_random_ids(cycle_graph(8), random.Random(2))
        scheme = Theorem1Scheme("bipartite", 2)
        _labeling, result = prove_and_verify(config, scheme)
        assert result.accepted

    def test_prover_fails_on_odd_cycle_bipartiteness(self):
        config = Configuration.with_random_ids(cycle_graph(7), random.Random(2))
        scheme = Theorem1Scheme("bipartite", 2)
        with pytest.raises(ProverFailure):
            scheme.prove(config)

    def test_prover_fails_on_pathwidth_excess(self):
        from repro.graphs.generators import complete_graph

        config = Configuration.with_random_ids(complete_graph(6), random.Random(3))
        scheme = Theorem1Scheme("connected", 1)
        with pytest.raises(ProverFailure):
            scheme.prove(config)

    def test_prover_fails_on_disconnected(self):
        from repro.graphs import Graph

        g = Graph(edges=[(0, 1), (2, 3)])
        config = Configuration.with_random_ids(g, random.Random(4))
        scheme = Theorem1Scheme("acyclic", 1)
        with pytest.raises(ProverFailure):
            scheme.prove(config)


class TestCompletenessRandom:
    PROPERTIES = ("connected", "acyclic", "bipartite", "even-order")

    @given(st.integers(min_value=0, max_value=3000))
    @settings(max_examples=20, deadline=None)
    def test_lanewidth_mode(self, seed):
        rng = random.Random(seed)
        w = rng.choice([2, 3, 4])
        seq = random_lanewidth_sequence(w, rng.randrange(0, 20), rng)
        graph = apply_construction(seq)
        truth = {
            "connected": graph.is_connected(),
            "acyclic": graph.is_forest(),
            "bipartite": is_bipartite(graph),
            "even-order": graph.n % 2 == 0,
        }
        for key in self.PROPERTIES:
            if truth[key]:
                _cfg, _scheme, _lab, result = certify_lanewidth_graph(seq, key, rng)
                assert result.accepted
            else:
                with pytest.raises(ProverFailure):
                    certify_lanewidth_graph(seq, key, rng)

    @given(st.integers(min_value=0, max_value=3000))
    @settings(max_examples=12, deadline=None)
    def test_pathwidth_mode(self, seed):
        rng = random.Random(seed)
        k = rng.choice([1, 2])
        graph, bags = random_pathwidth_graph(16, k, rng)
        decomposition = PathDecomposition(graph, bags)
        config = Configuration.with_random_ids(graph, rng)
        scheme = Theorem1Scheme(
            "connected", k, decomposer=lambda _g: decomposition
        )
        _labeling, result = prove_and_verify(config, scheme)
        assert result.accepted


class TestExpensiveAlgebras:
    """Table-based algebras run at small lanewidth (DESIGN.md scope note)."""

    @pytest.mark.parametrize(
        "key,truth",
        [
            ("colorable-3", None),
            ("vertex-cover-3", None),
            ("hamiltonian-path", None),
            ("perfect-matching", None),
        ],
    )
    def test_lanewidth2(self, key, truth):
        from repro.mso.properties import (
            has_hamiltonian_path,
            has_perfect_matching,
            has_vertex_cover_at_most,
            is_q_colorable,
        )

        checkers = {
            "colorable-3": lambda g: is_q_colorable(g, 3),
            "vertex-cover-3": lambda g: has_vertex_cover_at_most(g, 3),
            "hamiltonian-path": has_hamiltonian_path,
            "perfect-matching": has_perfect_matching,
        }
        rng = random.Random(5)
        accepted = 0
        for _ in range(8):
            seq = random_lanewidth_sequence(2, rng.randrange(0, 8), rng)
            graph = apply_construction(seq)
            want = checkers[key](graph)
            if want:
                _c, _s, _l, result = certify_lanewidth_graph(seq, key, rng)
                assert result.accepted
                accepted += 1
            else:
                with pytest.raises(ProverFailure):
                    certify_lanewidth_graph(seq, key, rng)
        # The family is generic enough that at least one positive occurs.
        assert accepted >= 1


class TestSoundness:
    def test_corruption_rejected(self):
        rng = random.Random(11)
        rejected = total = 0
        for _ in range(8):
            seq = random_lanewidth_sequence(3, 10, rng)
            config, scheme, labeling, _res = certify_lanewidth_graph(
                seq, "connected", rng
            )
            for _ in range(8):
                bad = corrupt_one_label(labeling, rng)
                if bad.mapping == labeling.mapping:
                    continue
                total += 1
                if not run_verification(config, scheme, bad).accepted:
                    rejected += 1
        # Nearly every mutation must be caught; the rare survivor is a
        # semantically redundant field on a *true* instance (documented).
        assert rejected >= total - 1

    def test_swap_and_drop_rejected(self):
        rng = random.Random(12)
        seq = random_lanewidth_sequence(3, 12, rng)
        config, scheme, labeling, _res = certify_lanewidth_graph(
            seq, "connected", rng
        )
        for attack in (swap_two_labels, drop_one_label):
            bad = attack(labeling, rng)
            if bad.mapping != labeling.mapping:
                assert not run_verification(config, scheme, bad).accepted

    def test_disconnecting_removal_rejected(self):
        rng = random.Random(13)
        caught = tampered = 0
        for _ in range(12):
            seq = random_lanewidth_sequence(3, 10, rng)
            config, scheme, labeling, _res = certify_lanewidth_graph(
                seq, "connected", rng
            )
            for u, v in config.graph.edges():
                g2 = config.graph.copy()
                g2.remove_edge(u, v)
                if g2.is_connected():
                    continue
                cfg2 = Configuration(g2, config.ids)
                mapping2 = {
                    key: value
                    for key, value in labeling.mapping.items()
                    if g2.has_edge(*key)
                }
                lab2 = Labeling("edges", mapping2, labeling.size_context)
                tampered += 1
                if not run_verification(cfg2, scheme, lab2).accepted:
                    caught += 1
        assert tampered > 0 and caught == tampered

    def test_cycle_creating_addition_rejected(self):
        rng = random.Random(14)
        caught = tampered = 0
        for _ in range(10):
            seq = random_lanewidth_sequence(3, 10, rng, edge_probability=0.0)
            config, scheme, labeling, _res = certify_lanewidth_graph(
                seq, "acyclic", rng
            )
            g = config.graph
            non_edges = [
                (a, b)
                for a, b in itertools.combinations(g.vertices(), 2)
                if not g.has_edge(a, b)
            ]
            u, v = non_edges[rng.randrange(len(non_edges))]
            g2 = g.copy()
            g2.add_edge(u, v)
            cfg2 = Configuration(g2, config.ids)
            tampered += 1
            if not run_verification(cfg2, scheme, labeling).accepted:
                caught += 1
        assert caught == tampered

    def test_transplant_rejected(self):
        rng = random.Random(15)
        seq_a = random_lanewidth_sequence(3, 10, rng, edge_probability=0.0)
        config_a, scheme, labeling_a, _ = certify_lanewidth_graph(
            seq_a, "acyclic", rng
        )
        # A different graph with a cycle but the same edge count is hard to
        # hit exactly; instead transplant onto a cycle of matching size.
        cycle = cycle_graph(config_a.graph.m)
        config_b = Configuration.with_random_ids(cycle, rng)
        transplanted = transplant_labels(labeling_a, cycle.edges())
        if transplanted is not None:
            result = run_verification(config_b, scheme, transplanted)
            assert not result.accepted


class TestLabelSizes:
    def test_bits_grow_logarithmically(self):
        rng = random.Random(21)
        sizes = []
        for extra in (16, 64, 256):
            seq = random_lanewidth_sequence(3, extra, rng)
            _cfg, scheme, labeling, result = certify_lanewidth_graph(
                seq, "connected", rng
            )
            assert result.accepted
            sizes.append(labeling.max_label_bits(scheme))
        # 16x more vertices must not even double the label size.
        assert sizes[-1] <= 2 * sizes[0]

    def test_edge_to_vertex_transform(self):
        rng = random.Random(22)
        seq = random_lanewidth_sequence(2, 10, rng)
        graph = apply_construction(seq)
        config = Configuration.with_random_ids(graph, rng)
        base = LanewidthScheme("connected", seq)
        wrapped = EdgeToVertexScheme(base)
        labeling, result = prove_and_verify(config, wrapped)
        assert result.accepted
        assert labeling.location == "vertices"
