"""Tests for the verification runtime (engine, executors, audits).

Covers the invariants the API redesign promises: executor-independent
verdicts (serial == parallel), observable fail-fast savings, separate
accounting of exception rejections, pickle-safe cross-process dispatch,
JSON round-trips, and the AuditPlan campaign surface — including the
transplant ("right proof, wrong graph") attack as a library call.
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    AuditCase,
    AuditPlan,
    AuditReport,
    CertificationReport,
    CertificationSession,
    MutationAttack,
    ParallelExecutor,
    SerialExecutor,
    StageTiming,
    SwapAttack,
    TransplantAttack,
    VerificationEngine,
    VerificationReport,
    certify,
    derive_rng,
    derive_seed,
    verify_labeling,
)
from repro.core import certify_lanewidth_graph, random_lanewidth_sequence
from repro.experiments import pathwidth_workload, seed_stream
from repro.graphs.generators import cycle_graph
from repro.pls.adversary import corrupt_one_label, drop_one_label
from repro.pls.bits import SizeContext
from repro.pls.model import Configuration
from repro.pls.scheme import Labeling, ProofLabelingScheme
from repro.pls.simulator import run_verification


def _honest_case(seed: int, extra: int = 10):
    rng = random.Random(seed)
    sequence = random_lanewidth_sequence(3, extra, rng)
    config, scheme, labeling, _res = certify_lanewidth_graph(
        sequence, "connected", rng
    )
    return config, scheme, labeling


class FragileScheme(ProofLabelingScheme):
    """Accepts any present certificate; *raises* on a missing one.

    Exercises the exception-rejection accounting: a raising verifier
    rejects, but the report must not fold it into verdict rejections.
    """

    label_location = "vertices"

    def prove(self, config):
        return Labeling(
            "vertices",
            {v: 1 for v in config.graph.vertices()},
            SizeContext(config.n),
        )

    def verify(self, view):
        if view.own_certificate is None:
            raise ValueError("certificate missing")
        return True

    def label_size_bits(self, label, ctx):
        return 1


class TestVerificationEngine:
    def test_serial_report_matches_legacy_result(self):
        config, scheme, labeling = _honest_case(1)
        report = VerificationEngine().verify(config, scheme, labeling)
        legacy = run_verification(config, scheme, labeling)
        assert report.accepted and legacy.accepted
        assert report.as_result().verdicts == legacy.verdicts
        assert report.vertices_total == config.graph.n
        assert report.views_built == config.graph.n
        assert report.executor == "serial"
        assert not report.short_circuited

    def test_chunk_accounting(self):
        config, scheme, labeling = _honest_case(2)
        engine = VerificationEngine(SerialExecutor(chunk_size=4))
        report = engine.verify(config, scheme, labeling)
        assert sum(c.size for c in report.chunks) == config.graph.n
        assert sum(c.views_built for c in report.chunks) == report.views_built
        assert len(report.chunks) == -(-config.graph.n // 4)

    def test_parallel_matches_serial(self):
        config, scheme, labeling = _honest_case(3)
        serial = VerificationEngine(SerialExecutor()).verify(
            config, scheme, labeling
        )
        parallel = VerificationEngine(
            ParallelExecutor(max_workers=2, chunk_size=3)
        ).verify(config, scheme, labeling)
        assert parallel.executor == "parallel"
        assert parallel.verdicts == serial.verdicts
        assert parallel.accepted == serial.accepted
        assert parallel.views_built == serial.views_built

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=6, deadline=None)
    def test_executors_agree_property(self, seed):
        """Serial and parallel verdicts are identical on the same
        configuration — honest or corrupted."""
        config, scheme, labeling = _honest_case(seed, extra=8)
        rng = random.Random(seed)
        candidates = [labeling, corrupt_one_label(labeling, rng)]
        for candidate in candidates:
            serial = VerificationEngine(SerialExecutor()).verify(
                config, scheme, candidate
            )
            parallel = VerificationEngine(
                ParallelExecutor(max_workers=2, chunk_size=3)
            ).verify(config, scheme, candidate)
            assert serial.verdicts == parallel.verdicts
            assert serial.accepted == parallel.accepted

    def test_fail_fast_short_circuits(self):
        config, scheme, labeling = _honest_case(4, extra=20)
        rng = random.Random(4)
        bad = corrupt_one_label(labeling, rng)
        assert bad.mapping != labeling.mapping
        engine = VerificationEngine(
            SerialExecutor(chunk_size=2), fail_fast=True
        )
        report = engine.verify(config, scheme, bad)
        assert not report.accepted
        assert report.fail_fast
        # The acceptance-criterion assertion: fewer views than vertices.
        assert report.views_built < report.vertices_total
        assert report.short_circuited
        assert report.rejecting_vertices  # at least the triggering vertex
        assert not report.as_result().accepted

    def test_fail_fast_parallel_agrees_on_verdict(self):
        config, scheme, labeling = _honest_case(5, extra=20)
        rng = random.Random(5)
        bad = corrupt_one_label(labeling, rng)
        assert bad.mapping != labeling.mapping
        report = VerificationEngine(
            ParallelExecutor(max_workers=2, chunk_size=2), fail_fast=True
        ).verify(config, scheme, bad)
        assert not report.accepted

    def test_fail_fast_accepting_instance_builds_all_views(self):
        config, scheme, labeling = _honest_case(6)
        report = VerificationEngine(
            SerialExecutor(), fail_fast=True
        ).verify(config, scheme, labeling)
        assert report.accepted
        assert report.views_built == report.vertices_total
        assert not report.short_circuited

    def test_exception_rejections_counted_separately(self):
        scheme = FragileScheme()
        config = Configuration.with_random_ids(
            cycle_graph(6), random.Random(7)
        )
        labeling = scheme.prove(config)
        bad = drop_one_label(labeling, random.Random(7))
        (dropped,) = [v for v, lab in bad.mapping.items() if lab is None]
        report = VerificationEngine().verify(config, scheme, bad)
        assert not report.accepted
        assert report.exception_rejections == (dropped,)
        assert report.verdict_rejections == ()
        assert report.rejecting_vertices == [dropped]
        # The legacy shim folds both kinds into a False verdict.
        assert run_verification(config, scheme, bad).verdicts[dropped] is False

    def test_location_mismatch_raises(self):
        config, scheme, labeling = _honest_case(8)
        wrong = Labeling("vertices", {}, labeling.size_context)
        with pytest.raises(ValueError, match="location"):
            VerificationEngine().verify(config, scheme, wrong)

    def test_parallel_handles_unpicklable_prover_state(self):
        """verifier_only() strips closures the pool cannot pickle."""
        graph, decomposition = pathwidth_workload(12, 2, seed=9)
        report = certify(
            graph,
            "connected",
            k=2,
            decomposer=lambda _g: decomposition,
            rng=random.Random(9),
        )
        parallel = VerificationEngine(
            ParallelExecutor(max_workers=2)
        ).verify(report.config, report.scheme, report.labeling)
        assert parallel.accepted

    def test_verify_labeling_helper(self):
        config, scheme, labeling = _honest_case(10)
        assert verify_labeling(config, scheme, labeling).accepted

    def test_parallel_pool_is_reused_across_rounds(self):
        config, scheme, labeling = _honest_case(24)
        with ParallelExecutor(max_workers=2, chunk_size=4) as executor:
            engine = VerificationEngine(executor)
            assert engine.verify(config, scheme, labeling).accepted
            pool = executor._pool
            assert pool is not None
            assert engine.verify(config, scheme, labeling).accepted
            assert executor._pool is pool  # no per-round pool churn
        assert executor._pool is None  # context exit closed it
        # A closed executor transparently restarts.
        assert engine.verify(config, scheme, labeling).accepted
        executor.close()

    def test_payload_pickled_exactly_once_per_pool(self, monkeypatch):
        """The pool-resident design's core promise: one ``pickle.dumps``
        of the (config, verifier, labeling) payload per pool lifetime,
        however many rounds run on it — and zero re-ships per chunk."""
        import pickle as real_pickle
        import types

        from repro.api import runtime as runtime_mod

        dumps_calls = []

        def counting_dumps(obj, *args, **kwargs):
            dumps_calls.append(obj)
            return real_pickle.dumps(obj, *args, **kwargs)

        # Patch only the runtime module's view of pickle: the pool's own
        # machinery (ForkingPickler) is deliberately out of scope.
        monkeypatch.setattr(
            runtime_mod,
            "pickle",
            types.SimpleNamespace(
                dumps=counting_dumps, loads=real_pickle.loads
            ),
        )
        config, scheme, labeling = _honest_case(26, extra=12)
        with ParallelExecutor(max_workers=2, chunk_size=2) as executor:
            engine = VerificationEngine(executor)
            for _ in range(3):  # many rounds, same payload, one pool
                assert engine.verify(config, scheme, labeling).accepted
            assert len(dumps_calls) == 1
            assert executor.payload_ships == 1
            # A different payload retires the pool and ships once more.
            other_config, other_scheme, other_labeling = _honest_case(27)
            assert engine.verify(
                other_config, other_scheme, other_labeling
            ).accepted
            assert len(dumps_calls) == 2
            assert executor.payload_ships == 2

    def test_pool_reships_after_structural_graph_mutation(self):
        """A pool is bound to one payload *snapshot*: editing the graph
        between rounds (same objects throughout) must retire the
        resident workers, keeping parallel verdicts equal to serial."""
        config, scheme, labeling = _honest_case(29)
        graph = config.graph
        with ParallelExecutor(max_workers=2, chunk_size=4) as executor:
            engine = VerificationEngine(executor)
            assert engine.verify(config, scheme, labeling).accepted
            ships = executor.payload_ships
            non_edge = next(
                (u, v)
                for u in graph.vertices()
                for v in graph.vertices()
                if u < v and not graph.has_edge(u, v)
            )
            graph.add_edge(*non_edge)  # in place: identity unchanged
            parallel_report = engine.verify(config, scheme, labeling)
            assert executor.payload_ships == ships + 1  # stale pool retired
            serial_report = VerificationEngine(SerialExecutor()).verify(
                config, scheme, labeling
            )
            # The unlabeled new edge makes vertices reject — on both
            # schedules identically.
            assert parallel_report.verdicts == serial_report.verdicts
            assert parallel_report.accepted == serial_report.accepted
            # Input-label edits are invisible to the CSR snapshot but
            # bump the label version — also a re-ship.
            graph.set_edge_label(*non_edge, "mutated")
            engine.verify(config, scheme, labeling)
            assert executor.payload_ships == ships + 2

    def test_fail_fast_does_not_dispatch_remaining_chunks(self):
        """Regression for submit-everything-then-cancel: after the first
        rejection surfaces, no further chunk may be dispatched, so the
        number of executed chunks is bounded by the dispatch window —
        not by the chunk count."""
        config, scheme, labeling = _honest_case(28, extra=30)
        vertices = sorted(config.graph.vertices(), key=repr)
        first = vertices[0]
        # Corrupt an edge incident to the canonically-first vertex so the
        # very first chunk rejects.
        bad_mapping = dict(labeling.mapping)
        key = next(k for k in sorted(bad_mapping, key=repr) if first in k)
        bad_mapping[key] = "garbage"
        bad = Labeling("edges", bad_mapping, labeling.size_context)
        window = 2
        with ParallelExecutor(
            max_workers=1, chunk_size=1, dispatch_window=window
        ) as executor:
            report = VerificationEngine(executor, fail_fast=True).verify(
                config, scheme, bad
            )
        total_chunks = len(vertices)
        assert total_chunks > window + 1
        assert not report.accepted
        assert report.short_circuited
        # Executed chunks never exceed the window; in particular the
        # remaining chunks were not dispatched after the rejection.
        assert len(report.chunks) <= window
        assert report.views_built <= window
        assert len(report.chunks) < total_chunks


class TestReportSerialization:
    def test_stage_timing_round_trip(self):
        timing = StageTiming("decompose", 0.25, cached=True)
        assert StageTiming.from_dict(json.loads(timing.to_json())) == timing

    def test_verification_report_round_trip(self):
        config, scheme, labeling = _honest_case(11)
        report = VerificationEngine(SerialExecutor(chunk_size=5)).verify(
            config, scheme, labeling
        )
        rebuilt = VerificationReport.from_dict(json.loads(report.to_json()))
        assert rebuilt.verdicts == report.verdicts
        assert rebuilt.accepted == report.accepted
        assert rebuilt.chunks == report.chunks
        assert rebuilt.views_built == report.views_built
        assert rebuilt.executor == report.executor

    def test_certification_report_round_trip(self):
        graph, decomposition = pathwidth_workload(10, 2, seed=12)
        report = certify(graph, "connected", k=2, rng=random.Random(12))
        rebuilt = CertificationReport.from_dict(json.loads(report.to_json()))
        assert rebuilt.property_key == report.property_key
        assert rebuilt.accepted == report.accepted
        assert rebuilt.max_label_bits == report.max_label_bits
        assert rebuilt.stage_timings == report.stage_timings
        assert rebuilt.stage_counters == report.stage_counters
        assert rebuilt.verification.verdicts == report.verification.verdicts
        # Raw artifacts are drill-down handles, not data.
        assert rebuilt.config is None and rebuilt.scheme is None

    def test_refused_report_round_trip(self):
        config = Configuration.with_random_ids(
            cycle_graph(5), random.Random(13)
        )
        report = certify(config, "acyclic", k=2)
        assert report.refused
        rebuilt = CertificationReport.from_dict(report.to_dict())
        assert rebuilt.refused and rebuilt.refusal == report.refusal
        assert rebuilt.verification is None


class TestSessionVerification:
    def test_verify_false_skips_the_round(self):
        session = CertificationSession(k=2, rng=random.Random(14))
        graph, _dec = pathwidth_workload(10, 2, seed=14)
        report = session.certify(graph, "connected", verify=False)
        assert report.accepted  # completeness: honest proofs accept
        assert report.verification is None and report.result is None

    def test_session_verify_replays_the_round(self):
        session = CertificationSession(k=2, rng=random.Random(15))
        graph, _dec = pathwidth_workload(10, 2, seed=15)
        report = session.certify(graph, "connected", verify=False)
        verification = session.verify(report)
        assert verification.accepted
        assert report.verification is verification
        assert report.result.accepted

    def test_session_verify_with_custom_engine(self):
        session = CertificationSession(k=2, rng=random.Random(16))
        graph, _dec = pathwidth_workload(10, 2, seed=16)
        report = session.certify(graph, "connected", verify=False)
        engine = VerificationEngine(SerialExecutor(chunk_size=3))
        verification = session.verify(report, engine=engine)
        assert verification.accepted and len(verification.chunks) > 1

    def test_session_verify_refuses_refused_reports(self):
        session = CertificationSession(k=2, rng=random.Random(17))
        config = Configuration.with_random_ids(
            cycle_graph(5), random.Random(17)
        )
        report = session.certify(config, "acyclic")
        assert report.refused
        with pytest.raises(ValueError, match="refused"):
            session.verify(report)

    def test_lazy_default_engine_does_not_block_later_adoption(self):
        """A default engine created on first use is not configuration:
        the facade must still accept an explicit engine afterwards."""
        session = CertificationSession(k=2, rng=random.Random(22))
        graph, _dec = pathwidth_workload(10, 2, seed=22)
        certify(graph, "connected", session=session)  # default engine runs
        assert session.engine is None
        engine = VerificationEngine(SerialExecutor(chunk_size=2))
        report = certify(graph, "acyclic", session=session, engine=engine)
        assert session.engine is engine
        assert report.verification is not None

    def test_certify_threads_engine_and_attaches_verification(self):
        engine = VerificationEngine(SerialExecutor(chunk_size=2))
        graph, _dec = pathwidth_workload(10, 2, seed=18)
        report = certify(
            graph, "connected", k=2, rng=random.Random(18), engine=engine
        )
        assert report.accepted
        assert report.verification is not None
        assert len(report.verification.chunks) > 1


class TestAudits:
    def test_transplant_attack_rejected(self):
        """Right proof, wrong graph: honest forest labels on a cycle."""

        def case_factory(trial, rng):
            sequence = random_lanewidth_sequence(
                3, 10, rng, edge_probability=0.0
            )
            config, scheme, labeling, _res = certify_lanewidth_graph(
                sequence, "acyclic", rng
            )
            return AuditCase(config, scheme, labeling, trial)

        def targets(trial, rng):
            # Built per attack call, so the case's edge count is unknown
            # here; a cycle on m vertices has exactly m edges, and the
            # transplant skips automatically on a count mismatch.
            return Configuration.with_random_ids(cycle_graph(12), rng)

        report = AuditPlan(
            case_factory=case_factory,
            attacks=[TransplantAttack(targets)],
            trials=6,
            root_seed=19,
            name="transplant-test",
        ).run()
        tally = report.tally("transplant")
        assert tally.attempted + tally.skipped == 6
        assert tally.attempted > 0  # some forests hit 12 edges
        assert tally.all_rejected  # soundness: every transplant caught

    def test_campaigns_replay_from_root_seed(self):
        def case_factory(trial, rng):
            config, scheme, labeling = _honest_case(rng.randrange(10**6))
            return AuditCase(config, scheme, labeling, trial)

        plan = AuditPlan(
            case_factory=case_factory,
            attacks=[MutationAttack(per_case=3), SwapAttack()],
            trials=3,
            root_seed=20,
            name="replay",
        )
        first, second = plan.run(), plan.run()
        assert first.attempts == second.attempts
        assert first.tallies == second.tallies

    def test_audit_report_round_trip(self):
        def case_factory(trial, rng):
            config, scheme, labeling = _honest_case(21)
            return AuditCase(config, scheme, labeling, trial)

        report = AuditPlan(
            case_factory=case_factory,
            attacks=[MutationAttack(per_case=2)],
            trials=2,
            root_seed=21,
            name="json",
        ).run()
        rebuilt = AuditReport.from_dict(json.loads(report.to_json()))
        assert rebuilt.tallies == report.tallies
        assert rebuilt.attempts == report.attempts

    def test_attack_data_reaches_attempts_structured(self):
        """AdversarialInstance.data rides onto the attempt records (and
        survives JSON) so campaigns never parse prose notes."""
        from repro.api import AdversarialInstance, AuditAttack

        class TaggingMutation(AuditAttack):
            name = "tagged"

            def instances(self, case, rng):
                from repro.pls.adversary import corrupt_one_label

                bad = corrupt_one_label(case.labeling, rng)
                yield AdversarialInstance(
                    case.config, bad, note="prose", data={"n": case.config.n}
                )

        def case_factory(trial, rng):
            config, scheme, labeling = _honest_case(23)
            return AuditCase(config, scheme, labeling, trial)

        report = AuditPlan(
            case_factory=case_factory,
            attacks=[TaggingMutation()],
            trials=1,
            root_seed=23,
            name="data",
        ).run()
        (attempt,) = report.attempts_for("tagged")
        assert attempt.data == {"n": 13}
        rebuilt = AuditReport.from_dict(json.loads(report.to_json()))
        assert rebuilt.attempts[0].data == {"n": 13}

    def test_distinct_attack_names_required(self):
        with pytest.raises(ValueError, match="distinct"):
            AuditPlan(
                case_factory=lambda t, r: None,
                attacks=[MutationAttack(), MutationAttack()],
                trials=1,
            )

    def test_attack_names_cannot_alias_streams(self):
        """"/" would collide with the stream-path separator; an attack
        named "case" must still not share the case factory's stream."""
        from repro.api import AuditAttack, EdgeRemovalAttack

        class Slashed(EdgeRemovalAttack):
            name = "a/b"

        with pytest.raises(ValueError, match="must not contain"):
            AuditPlan(
                case_factory=lambda t, r: None,
                attacks=[Slashed()],
                trials=1,
            )

        class CaseNamed(AuditAttack):
            name = "case"

        plan = AuditPlan(
            case_factory=lambda t, r: None,
            attacks=[CaseNamed()],
            trials=1,
            root_seed=3,
        )
        assert (
            plan.case_rng(0).random() != plan.attack_rng(CaseNamed(), 0).random()
        )

    def test_vacuous_campaign_is_not_a_pass(self):
        """All-skips campaigns must not read as perfect soundness."""
        from repro.api import EdgeRemovalAttack

        def case_factory(trial, rng):
            config, scheme, labeling = _honest_case(25)
            return AuditCase(config, scheme, labeling, trial)

        report = AuditPlan(
            case_factory=case_factory,
            attacks=[EdgeRemovalAttack(still_true=lambda g: True)],
            trials=2,
            root_seed=25,
            name="vacuous",
        ).run()
        tally = report.tally("edge-removal")
        assert not tally.exercised
        assert tally.skipped > 0
        assert not tally.all_rejected  # vacuous, not sound
        assert not report.all_rejected
        assert tally.rejection_rate == 0.0
        assert "vacuous" in report.summary()


class TestSeedStreams:
    def test_derivation_is_stable_and_named(self):
        assert derive_seed(0, "a", 1) == derive_seed(0, "a", 1)
        assert derive_seed(0, "a", 1) != derive_seed(0, "b", 1)
        assert derive_seed(0, "a", 1) != derive_seed(1, "a", 1)
        assert derive_rng(0, "a").random() == derive_rng(0, "a").random()

    def test_seed_stream_helper(self):
        stream = seed_stream(5, "e6")
        assert stream.seed(0) != stream.seed(1)
        assert stream.seed(3) == seed_stream(5, "e6").seed(3)
        child = stream.substream("mutation")
        assert child.seed(0) != stream.seed(0)
        assert child.rng(2).random() == child.rng(2).random()
