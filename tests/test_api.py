"""Tests for the repro.api facade, pipeline stages, and sessions.

Covers the prover failure paths as structured reports, the session's
structural-artifact cache (stage counters must show decompose/lanes/
hierarchy running exactly once per graph), fingerprint caching in the
lanewidth matcher, and the exact-decomposition cutoff parameter.
"""

import random

import pytest

import repro.api.pipeline as pipeline_module
from repro.api import (
    CertificationPipeline,
    CertificationReport,
    CertificationSession,
    DecomposeStage,
    EvaluateStage,
    LabelStage,
    MatchSequenceStage,
    PipelineContext,
    certify,
    theorem1_stages,
)
from repro.core import (
    LanewidthScheme,
    Theorem1Scheme,
    apply_construction,
    random_lanewidth_sequence,
)
from repro.graphs import Graph
from repro.graphs.generators import (
    caterpillar_graph,
    complete_graph,
    cycle_graph,
    path_graph,
    random_pathwidth_graph,
)
from repro.mso.properties import is_bipartite
from repro.pathwidth import PathDecomposition
from repro.pls.model import Configuration
from repro.pls.scheme import ProverFailure
from repro.pls.simulator import run_verification


STRUCTURAL = ("decompose", "lanes", "completion", "hierarchy")


class TestProverFailureReports:
    def test_single_vertex_refused(self):
        report = certify(Graph(vertices=[0]), "connected", k=1)
        assert report.refused and not report.accepted
        assert "two vertices" in report.refusal

    def test_disconnected_refused(self):
        g = Graph(edges=[(0, 1), (2, 3)])
        report = certify(g, "connected", k=1)
        assert report.refused
        assert "connected" in report.refusal

    def test_width_over_bound_refused(self):
        report = certify(complete_graph(6), "connected", k=1)
        assert report.refused
        assert "witness decomposition" in report.refusal
        # Structural refusals keep the timings of the stages that ran.
        assert [t.name for t in report.stage_timings] == ["decompose"]

    def test_property_false_at_root_refused(self):
        report = certify(cycle_graph(7), "bipartite", k=2)
        assert report.refused
        assert "does not hold" in report.refusal
        # The structural work succeeded; only evaluation refused.
        assert report.hierarchy_depth is not None
        assert report.stage_seconds("evaluate") >= 0.0

    def test_structural_refusal_covers_whole_batch(self):
        g = Graph(edges=[(0, 1), (2, 3)])
        reports = certify(g, ["connected", "acyclic", "even-order"], k=1)
        assert set(reports) == {"connected", "acyclic", "even-order"}
        assert all(r.refused for r in reports.values())

    def test_legacy_scheme_still_raises(self):
        scheme = Theorem1Scheme("connected", 1)
        config = Configuration.with_random_ids(
            complete_graph(6), random.Random(3)
        )
        with pytest.raises(ProverFailure):
            scheme.prove(config)


class TestSessionCaching:
    def test_batch_runs_structural_stages_once(self):
        rng = random.Random(40)
        graph = caterpillar_graph(4, 2)  # a tree: all four properties hold
        session = CertificationSession(k=1, rng=rng)
        properties = ["connected", "acyclic", "bipartite", "even-order"]
        reports = session.certify(graph, properties)
        assert len(reports) == 4
        for report in reports.values():
            assert report.accepted, report.summary()
            for name in STRUCTURAL:
                assert report.stage_counters[name] == 1
        assert session.stage_counters["evaluate"] == 4
        assert session.stage_counters["label"] == 4

    def test_second_certify_hits_cache(self):
        rng = random.Random(41)
        graph, bags = random_pathwidth_graph(18, 2, rng)
        decomposition = PathDecomposition(graph, bags)
        session = CertificationSession(
            k=2, decomposer=lambda _g: decomposition, rng=rng
        )
        first = session.certify(graph, "connected")
        assert not first.structure_cached
        second = session.certify(graph, "even-order")
        assert second.structure_cached
        # DecomposeStage must not have rerun.
        assert second.stage_counters["decompose"] == 1
        assert second.stage_counters["lanes"] == 1
        assert second.stage_counters["hierarchy"] == 1
        # Cached structural timings are flagged as such.
        cached_names = {t.name for t in second.stage_timings if t.cached}
        assert set(STRUCTURAL) <= cached_names
        fresh_names = {t.name for t in second.stage_timings if not t.cached}
        assert fresh_names == {"evaluate", "label"}

    def test_sequence_batch_matches_ground_truth(self):
        rng = random.Random(42)
        seq = random_lanewidth_sequence(3, 14, rng)
        graph = apply_construction(seq)
        truth = {
            "connected": graph.is_connected(),
            "acyclic": graph.is_forest(),
            "bipartite": is_bipartite(graph),
            "even-order": graph.n % 2 == 0,
        }
        session = CertificationSession(rng=rng)
        reports = session.certify(seq, list(truth))
        for key, want in truth.items():
            report = reports[key]
            assert report.accepted == want, report.summary()
            assert report.refused == (not want)
        assert session.stage_counters["match"] == 1
        assert session.stage_counters["hierarchy"] == 1
        assert session.stage_counters["evaluate"] == len(truth)

    def test_distinct_graphs_cached_separately(self):
        session = CertificationSession(k=1)
        session.certify(path_graph(6), "connected")
        session.certify(path_graph(7), "connected")
        assert session.cached_graphs == 2
        assert session.stage_counters["decompose"] == 2

    def test_report_verification_round_trip(self):
        session = CertificationSession(rng=random.Random(43))
        seq = random_lanewidth_sequence(2, 10, random.Random(5))
        report = session.certify(seq, "connected")
        assert report.accepted
        config, scheme, labeling, result = report.as_tuple()
        # The report's artifacts replay through the legacy simulator.
        replay = run_verification(config, scheme, labeling)
        assert replay.accepted
        # And the scheme's prove() regenerates an accepted labeling.
        labeling2 = scheme.prove(config)
        assert run_verification(config, scheme, labeling2).accepted

    def test_session_requires_k_for_graph_targets(self):
        session = CertificationSession()
        with pytest.raises(ValueError, match="pathwidth bound"):
            session.certify(path_graph(5), "connected")


class TestFingerprintCaching:
    def test_graph_fingerprint_semantics(self):
        a = path_graph(5)
        b = path_graph(5)
        assert a.fingerprint() == b.fingerprint()
        b.set_vertex_label(0, "x")
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint(include_labels=False) == b.fingerprint(
            include_labels=False
        )
        b.add_edge(0, 4)
        assert a.fingerprint(include_labels=False) != b.fingerprint(
            include_labels=False
        )

    def test_lanewidth_scheme_replays_construction_once(self, monkeypatch):
        calls = []
        real_apply = pipeline_module.apply_construction

        def counting_apply(seq):
            calls.append(seq)
            return real_apply(seq)

        monkeypatch.setattr(
            pipeline_module, "apply_construction", counting_apply
        )
        rng = random.Random(6)
        seq = random_lanewidth_sequence(2, 8, rng)
        graph = real_apply(seq)
        config = Configuration.with_random_ids(graph, rng)
        scheme = LanewidthScheme("connected", seq)
        scheme.prove(config)
        scheme.prove(config)
        scheme.prove(config)
        assert len(calls) == 1  # expected graph built once, then hashed

    def test_match_stage_rejects_wrong_graph(self):
        seq = random_lanewidth_sequence(2, 6, random.Random(7))
        stage = MatchSequenceStage(seq)
        wrong = Configuration.with_random_ids(path_graph(4), random.Random(8))
        with pytest.raises(ProverFailure, match="does not match"):
            stage.run(PipelineContext(config=wrong))


class TestDecomposeStageParameters:
    def test_exact_limit_is_overridable(self):
        # exact_limit=0 forces the heuristic even on tiny graphs; the
        # heuristic finds the optimal decomposition of a path.
        report = certify(path_graph(6), "connected", k=1, exact_limit=0)
        assert report.accepted

    def test_exact_limit_threads_through_scheme(self):
        scheme = Theorem1Scheme("connected", 1, exact_limit=0)
        config = Configuration.with_random_ids(path_graph(6), random.Random(9))
        labeling = scheme.prove(config)
        assert run_verification(config, scheme, labeling).accepted

    def test_stage_validates_parameters(self):
        with pytest.raises(ValueError):
            DecomposeStage(0)
        with pytest.raises(ValueError):
            DecomposeStage(1, exact_limit=-1)
        with pytest.raises(ValueError):
            Theorem1Scheme("connected", 0)


class TestPipelineDirectly:
    def test_theorem1_stage_list_produces_labeling(self):
        config = Configuration.with_random_ids(cycle_graph(8), random.Random(10))
        ctx = PipelineContext(config=config, algebra="connected")
        timings = CertificationPipeline(theorem1_stages(2)).run(ctx)
        assert ctx.labeling is not None
        assert [t.name for t in timings] == [
            "decompose",
            "lanes",
            "completion",
            "hierarchy",
            "evaluate",
            "label",
        ]
        assert all(t.seconds >= 0 for t in timings)

    def test_evaluate_stage_needs_algebra(self):
        ctx = PipelineContext(
            config=Configuration.with_random_ids(path_graph(3), random.Random(1))
        )
        with pytest.raises(ValueError, match="algebra"):
            EvaluateStage().run(ctx)

    def test_counters_count_refused_attempts(self):
        counters = {}
        config = Configuration.with_random_ids(cycle_graph(7), random.Random(2))
        ctx = PipelineContext(config=config, algebra="bipartite")
        with pytest.raises(ProverFailure):
            CertificationPipeline(theorem1_stages(2)).run(ctx, counters=counters)
        assert counters["evaluate"] == 1  # the refusing stage still counts
        assert "label" not in counters  # downstream stages never ran

    def test_report_summary_readable(self):
        report = certify(cycle_graph(8), "connected", k=2)
        assert "accepted" in report.summary()
        refused = certify(cycle_graph(7), "bipartite", k=2)
        assert "refused" in refused.summary()
        assert isinstance(report, CertificationReport)


class TestBatchKeyAndArgumentHandling:
    def test_same_class_algebras_get_distinct_reports(self):
        from repro.courcelle import algebra_for

        session = CertificationSession(rng=random.Random(50))
        seq = random_lanewidth_sequence(2, 8, random.Random(12))
        reports = session.certify(
            seq, [algebra_for("max-degree-2"), algebra_for("max-degree-5")]
        )
        assert len(reports) == 2  # no silent collapse by class name
        assert set(reports) == {"max-degree-2", "max-degree-5"}
        # Exact duplicates still get distinct (suffixed) reports.
        dup = session.certify(seq, ["connected", "connected"])
        assert set(dup) == {"connected", "connected#2"}

    def test_facade_rejects_conflicting_session_settings(self):
        session = CertificationSession(k=1)
        with pytest.raises(ValueError, match="k=1"):
            certify(path_graph(5), "connected", k=2, session=session)

    def test_facade_adopts_decomposer_on_bare_session(self):
        calls = []

        def witness(graph):
            calls.append(graph)
            return DecomposeStage(1).default_decomposer(graph)

        session = CertificationSession()
        report = certify(
            path_graph(5), "connected", k=1, session=session, decomposer=witness
        )
        assert report.accepted
        assert calls, "explicit decomposer was silently dropped"

    def test_mode_collision_does_not_share_structures(self):
        # The same graph reached as a sequence target must not satisfy a
        # later Theorem 1 target (which must run DecomposeStage and check
        # the width bound), and vice versa.
        session = CertificationSession(k=1, rng=random.Random(52))
        seq = random_lanewidth_sequence(3, 10, random.Random(14))
        graph = apply_construction(seq)
        as_sequence = session.certify(seq, "connected")
        assert as_sequence.accepted
        as_graph = session.certify(graph, "connected")
        assert not as_graph.structure_cached
        # Width-3 host, k=1 bound: Theorem 1 mode must refuse.
        assert as_graph.refused
        assert "witness decomposition" in as_graph.refusal
        assert session.stage_counters["decompose"] == 1

    def test_adopted_decomposer_invalidates_cached_structure(self):
        # A structure cached under the default decomposer must not
        # satisfy a later call that supplies an explicit witness.
        calls = []

        def witness(graph):
            calls.append(graph)
            return DecomposeStage(2).default_decomposer(graph)

        session = CertificationSession(k=2, rng=random.Random(53))
        graph = caterpillar_graph(3, 2)
        first = certify(graph, "connected", session=session)
        assert first.accepted and not calls
        second = certify(
            graph, "acyclic", session=session, decomposer=witness
        )
        assert second.accepted
        assert calls, "explicit decomposer ignored on cached structure"
        assert not second.structure_cached

    def test_report_scheme_reuses_cached_match_stage(self):
        session = CertificationSession(rng=random.Random(51))
        seq = random_lanewidth_sequence(2, 8, random.Random(13))
        reports = session.certify(seq, ["connected", "even-order"])
        stages = [
            s
            for r in reports.values()
            for s in r.scheme.stages
            if isinstance(s, MatchSequenceStage)
        ]
        assert len(stages) == 2
        # Same memoized matcher everywhere: replaying report.scheme.prove
        # compares fingerprints instead of rebuilding the graph.
        assert stages[0] is stages[1]
        assert stages[0]._expected_fingerprint is not None


def test_label_stage_and_mean_bits_accounting():
    session = CertificationSession(rng=random.Random(44))
    seq = random_lanewidth_sequence(3, 12, random.Random(11))
    report = session.certify(seq, "connected")
    assert report.max_label_bits >= report.mean_label_bits > 0
    assert report.total_label_bits == pytest.approx(
        report.mean_label_bits * report.config.graph.m
    )
    assert report.class_count and report.class_count > 0
