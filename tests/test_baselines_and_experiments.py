"""Tests for the baselines and the experiment harness."""

import math
import random

import pytest

from repro.baselines import FMRTScheme, UniversalScheme
from repro.core.lanewidth import interval_representation_of
from repro.experiments import (
    Table,
    fit_log_slope,
    lanewidth_workload,
    pathwidth_workload,
    property_truth,
)
from repro.experiments.reporting import series
from repro.graphs.generators import cycle_graph
from repro.pathwidth import PathDecomposition
from repro.pls.adversary import corrupt_one_label
from repro.pls.model import Configuration
from repro.pls.scheme import ProverFailure
from repro.pls.simulator import prove_and_verify, run_verification


class TestFMRT:
    def test_completeness(self):
        rng = random.Random(1)
        for n in (20, 60):
            graph, decomposition = pathwidth_workload(n, 2, seed=n)
            config = Configuration.with_random_ids(graph, rng)
            scheme = FMRTScheme("connected", 2, decomposer=lambda _g: decomposition)
            labeling, result = prove_and_verify(config, scheme)
            assert result.accepted

    def test_prover_fails_on_false_property(self):
        graph, decomposition = pathwidth_workload(15, 2, seed=3)
        config = Configuration.with_random_ids(graph, random.Random(3))
        scheme = FMRTScheme("acyclic", 2, decomposer=lambda _g: decomposition)
        if not graph.is_forest():
            with pytest.raises(ProverFailure):
                scheme.prove(config)

    def test_label_growth_is_superlogarithmic(self):
        """FMRT labels grow strictly faster than log n (the log² signature)."""
        sizes = (32, 512)
        ratios = []
        for n in sizes:
            graph, decomposition = pathwidth_workload(n, 2, seed=n)
            config = Configuration.with_random_ids(graph, random.Random(n))
            scheme = FMRTScheme("connected", 2, decomposer=lambda _g: decomposition)
            labeling, _result = prove_and_verify(config, scheme)
            ratios.append(labeling.max_label_bits(scheme) / math.log2(n))
        assert ratios[1] > ratios[0]

    def test_corruption_mostly_rejected(self):
        rng = random.Random(5)
        graph, decomposition = pathwidth_workload(20, 2, seed=9)
        config = Configuration.with_random_ids(graph, rng)
        scheme = FMRTScheme("connected", 2, decomposer=lambda _g: decomposition)
        labeling, _ = prove_and_verify(config, scheme)
        rejected = trials = 0
        for _ in range(15):
            bad = corrupt_one_label(labeling, rng)
            if bad.mapping == labeling.mapping:
                continue
            trials += 1
            if not run_verification(config, scheme, bad).accepted:
                rejected += 1
        assert rejected >= trials // 2  # size comparator: partial soundness


class TestUniversal:
    def test_completeness_and_size(self):
        rng = random.Random(2)
        config = Configuration.with_random_ids(cycle_graph(20), rng)
        scheme = UniversalScheme(lambda g: g.is_connected())
        labeling, result = prove_and_verify(config, scheme)
        assert result.accepted
        # Theta(m * log n): 20 edges, two ids each, plus the vertex list.
        assert labeling.max_label_bits(scheme) >= 40 * 10

    def test_rejects_wrong_structure(self):
        rng = random.Random(3)
        config = Configuration.with_random_ids(cycle_graph(10), rng)
        scheme = UniversalScheme(lambda g: g.is_connected())
        labeling, _ = prove_and_verify(config, scheme)
        g2 = config.graph.copy()
        g2.remove_edge(0, 1)
        result = run_verification(Configuration(g2, config.ids), scheme, labeling)
        assert not result.accepted

    def test_prover_fails(self):
        from repro.graphs import Graph

        g = Graph(vertices=[0, 1])
        config = Configuration.with_random_ids(g, random.Random(4))
        scheme = UniversalScheme(lambda x: x.is_connected())
        with pytest.raises(ProverFailure):
            scheme.prove(config)


class TestHarness:
    def test_workloads(self):
        seq, graph = lanewidth_workload(3, 40, seed=1)
        assert graph.n >= 40
        graph2, decomposition = pathwidth_workload(25, 2, seed=2)
        assert decomposition.width() <= 2
        truth = property_truth(graph2)
        assert truth["connected"] is True

    def test_interval_representation_of_sequence(self):
        seq, graph = lanewidth_workload(3, 30, seed=5)
        rep = interval_representation_of(seq)
        rep.validate()
        assert rep.width() <= seq.width + 1
        decomposition = PathDecomposition.from_interval_representation(rep)
        assert decomposition.width() <= seq.width

    def test_table_render(self):
        table = Table("demo", ["a", "b"])
        table.add(1, 2)
        text = table.render()
        assert "demo" in text and "| 1 | 2 |" in text
        with pytest.raises(ValueError):
            table.add(1)

    def test_series_and_slope(self):
        assert "series: s (2, 4)" == series("s", [(2, 4)])
        # y = 3*log2(x): slope must be ~3.
        points = [(2**i, 3 * i) for i in range(1, 8)]
        assert abs(fit_log_slope(points) - 3) < 1e-9
