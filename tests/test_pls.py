"""Tests for the PLS framework: model, simulator, classic schemes,
pointer scheme, transforms, and the lower-bound splice attack."""

import random

import pytest

from repro.graphs import Graph
from repro.graphs.generators import (
    cycle_graph,
    ladder_graph,
    path_graph,
    random_tree,
    star_graph,
)
from repro.pls import (
    AcyclicityScheme,
    BipartitenessScheme,
    Configuration,
    EdgeToVertexScheme,
    PointerScheme,
    SpanningTreeScheme,
    run_verification,
)
from repro.pls.adversary import corrupt_one_label, transplant_labels
from repro.pls.bits import ClassIndexer, SizeContext, id_bits_for, uint_bits
from repro.pls.classic import TREE_MARK
from repro.pls.lower_bound import DistanceModScheme, find_collision, splice_attack
from repro.pls.scheme import ProverFailure
from repro.pls.simulator import prove_and_verify


class TestConfiguration:
    def test_distinct_ids_required(self):
        g = path_graph(2)
        with pytest.raises(ValueError):
            Configuration(g, {0: 7, 1: 7})

    def test_ids_must_cover(self):
        g = path_graph(2)
        with pytest.raises(ValueError):
            Configuration(g, {0: 7})

    def test_random_ids(self):
        config = Configuration.with_random_ids(cycle_graph(6), random.Random(1))
        assert len(set(config.ids.values())) == 6

    def test_vertex_of_id(self):
        config = Configuration.with_random_ids(path_graph(3), random.Random(2))
        for v, x in config.ids.items():
            assert config.vertex_of_id(x) == v


class TestBits:
    def test_uint_bits(self):
        assert uint_bits(0) == 1
        assert uint_bits(1) == 1
        assert uint_bits(255) == 8

    def test_id_bits_scale(self):
        assert id_bits_for(2) < id_bits_for(2**20)
        assert id_bits_for(2**40) == 32  # capped at the universe

    def test_class_indexer(self):
        indexer = ClassIndexer()
        a = indexer.index_of("aaa")
        b = indexer.index_of("bbb")
        assert indexer.index_of("aaa") == a
        assert a != b
        assert indexer.class_count == 2
        assert indexer.bits_per_class == 1


class TestBipartiteness:
    def test_accepts_even_cycle(self):
        config = Configuration.with_random_ids(cycle_graph(8), random.Random(1))
        _lab, result = prove_and_verify(config, BipartitenessScheme())
        assert result.accepted

    def test_prover_fails_on_odd_cycle(self):
        config = Configuration.with_random_ids(cycle_graph(7), random.Random(1))
        with pytest.raises(ProverFailure):
            BipartitenessScheme().prove(config)

    def test_corruption_rejected(self):
        rng = random.Random(3)
        config = Configuration.with_random_ids(cycle_graph(10), rng)
        scheme = BipartitenessScheme()
        labeling, _ = prove_and_verify(config, scheme)
        bad = corrupt_one_label(labeling, rng)
        result = run_verification(config, scheme, bad)
        assert not result.accepted

    def test_one_bit_labels(self):
        config = Configuration.with_random_ids(path_graph(100), random.Random(4))
        scheme = BipartitenessScheme()
        labeling, _ = prove_and_verify(config, scheme)
        assert labeling.max_label_bits(scheme) == 1


class TestAcyclicity:
    def test_accepts_trees(self):
        rng = random.Random(5)
        for _ in range(5):
            config = Configuration.with_random_ids(random_tree(20, rng), rng)
            _lab, result = prove_and_verify(config, AcyclicityScheme())
            assert result.accepted

    def test_accepts_forests(self):
        g = Graph(edges=[(0, 1), (1, 2), (3, 4)])
        config = Configuration.with_random_ids(g, random.Random(6))
        _lab, result = prove_and_verify(config, AcyclicityScheme())
        assert result.accepted

    def test_prover_fails_on_cycle(self):
        config = Configuration.with_random_ids(cycle_graph(5), random.Random(6))
        with pytest.raises(ProverFailure):
            AcyclicityScheme().prove(config)

    def test_no_labeling_accepts_cycles(self):
        """Exhaustive small check of soundness on C4 with tiny label space."""
        from repro.pls.classic import RootedDistanceLabel
        from repro.pls.scheme import Labeling

        g = cycle_graph(4)
        config = Configuration(g, {v: v + 10 for v in g.vertices()})
        scheme = AcyclicityScheme()
        vertices = g.vertices()
        import itertools

        for roots in itertools.product([10, 11], repeat=4):
            for dists in itertools.product(range(4), repeat=4):
                mapping = {
                    v: RootedDistanceLabel(r, d)
                    for v, r, d in zip(vertices, roots, dists)
                }
                labeling = Labeling("vertices", mapping, SizeContext(4))
                assert not run_verification(config, scheme, labeling).accepted


class TestSpanningTree:
    def test_accepts_marked_tree(self):
        rng = random.Random(7)
        g = cycle_graph(9)
        tree = g.spanning_tree(0)
        for u, v in tree.edges():
            g.set_edge_label(u, v, TREE_MARK)
        config = Configuration.with_random_ids(g, rng)
        _lab, result = prove_and_verify(config, SpanningTreeScheme())
        assert result.accepted

    def test_prover_rejects_non_tree_marks(self):
        g = cycle_graph(4)
        for u, v in g.edges():
            g.set_edge_label(u, v, TREE_MARK)  # the whole cycle marked
        config = Configuration.with_random_ids(g, random.Random(8))
        with pytest.raises(ProverFailure):
            SpanningTreeScheme().prove(config)

    def test_unmarked_graph_fails(self):
        g = path_graph(4)  # no marks at all
        config = Configuration.with_random_ids(g, random.Random(8))
        with pytest.raises(ProverFailure):
            SpanningTreeScheme().prove(config)


class TestPointerScheme:
    def test_accepts(self):
        rng = random.Random(9)
        for g in (cycle_graph(8), ladder_graph(4), star_graph(5)):
            config = Configuration.with_random_ids(g, rng)
            _lab, result = prove_and_verify(config, PointerScheme())
            assert result.accepted

    def test_explicit_target(self):
        rng = random.Random(10)
        config = Configuration.with_random_ids(path_graph(6), rng)
        target = config.ids[3]
        _lab, result = prove_and_verify(config, PointerScheme(target))
        assert result.accepted

    def test_corruption_rejected(self):
        rng = random.Random(11)
        config = Configuration.with_random_ids(cycle_graph(8), rng)
        scheme = PointerScheme()
        labeling, _ = prove_and_verify(config, scheme)
        rejected = 0
        trials = 0
        for _ in range(20):
            bad = corrupt_one_label(labeling, rng)
            if bad.mapping == labeling.mapping:
                continue
            trials += 1
            if not run_verification(config, scheme, bad).accepted:
                rejected += 1
        assert rejected >= trials - 2  # redundant-field mutations may pass

    def test_transplant_to_other_graph_rejected(self):
        """Labels pointing at an id absent from the new graph must fail."""
        rng = random.Random(12)
        config_a = Configuration.with_random_ids(cycle_graph(6), rng)
        scheme = PointerScheme()
        labeling, _ = prove_and_verify(config_a, scheme)
        config_b = Configuration.with_random_ids(cycle_graph(6), rng)
        moved = transplant_labels(labeling, config_b.graph.edges())
        assert moved is not None
        result = run_verification(config_b, scheme, moved)
        assert not result.accepted


class TestEdgeToVertexTransform:
    def test_pointer_through_transform(self):
        rng = random.Random(13)
        config = Configuration.with_random_ids(ladder_graph(5), rng)
        scheme = EdgeToVertexScheme(PointerScheme())
        labeling, result = prove_and_verify(config, scheme)
        assert result.accepted
        assert labeling.location == "vertices"

    def test_requires_edge_scheme(self):
        with pytest.raises(ValueError):
            EdgeToVertexScheme(BipartitenessScheme())

    def test_corruption_rejected(self):
        rng = random.Random(14)
        config = Configuration.with_random_ids(cycle_graph(8), rng)
        scheme = EdgeToVertexScheme(PointerScheme())
        labeling, _ = prove_and_verify(config, scheme)
        rejected = trials = 0
        for _ in range(20):
            bad = corrupt_one_label(labeling, rng)
            if bad.mapping == labeling.mapping:
                continue
            trials += 1
            if not run_verification(config, scheme, bad).accepted:
                rejected += 1
        assert rejected >= trials - 2


class TestLowerBound:
    def test_scheme_complete_on_paths(self):
        rng = random.Random(15)
        for modulus in (3, 5, 64):
            config = Configuration.with_random_ids(path_graph(30), rng)
            _lab, result = prove_and_verify(config, DistanceModScheme(modulus))
            assert result.accepted, modulus

    def test_collision_finder(self):
        assert find_collision([0, 1, 0, 1, 0, 1]) is not None
        assert find_collision([0, 1, 2, 3, 4]) is None

    def test_attack_succeeds_below_log_n(self):
        rng = random.Random(16)
        for modulus in (4, 8, 16):
            outcome = splice_attack(DistanceModScheme(modulus), 64, rng)
            assert outcome.collision_found
            assert outcome.cycle_accepted  # the forged cycle slips through
            assert outcome.cycle_length % modulus == 0

    def test_attack_fails_at_log_n(self):
        rng = random.Random(17)
        outcome = splice_attack(DistanceModScheme(128), 64, rng)
        assert not outcome.collision_found

    def test_sound_scheme_rejects_cycles(self):
        """With modulus >= n the scheme rejects every tested cycle labeling."""
        rng = random.Random(18)
        scheme = DistanceModScheme(50)
        g = cycle_graph(8)
        config = Configuration.with_random_ids(g, rng)
        from repro.pls.scheme import Labeling

        for _ in range(200):
            mapping = {v: rng.randrange(50) for v in g.vertices()}
            labeling = Labeling("vertices", mapping, SizeContext(8))
            assert not run_verification(config, scheme, labeling).accepted
