"""Tests for the MSO2 syntax, parser, semantics, and property zoo."""

import itertools

import pytest

from repro.graphs import Graph
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    enumerate_graphs,
    path_graph,
    star_graph,
)
from repro.mso import (
    Adj,
    And,
    EdgeSetVar,
    EdgeVar,
    Eq,
    Exists,
    ForAll,
    In,
    Inc,
    Not,
    VertexSetVar,
    VertexVar,
    check_formula,
    parse_formula,
)
from repro.mso.parser import ParseError
from repro.mso.properties import (
    PROPERTY_ZOO,
    is_bipartite,
    is_caterpillar_forest,
    is_q_colorable,
    has_dominating_set_at_most,
    has_hamiltonian_cycle,
    has_hamiltonian_path,
    has_independent_set_at_least,
    has_perfect_matching,
    has_vertex_cover_at_most,
)
from repro.mso.syntax import HasLabel, quantifier_depth


class TestSyntax:
    def test_sort_check_in(self):
        with pytest.raises(TypeError):
            In(VertexVar("v"), EdgeSetVar("F"))

    def test_sort_check_eq(self):
        with pytest.raises(TypeError):
            Eq(VertexVar("v"), EdgeVar("e"))

    def test_sort_check_adj(self):
        with pytest.raises(TypeError):
            Adj(VertexVar("v"), EdgeVar("e"))

    def test_free_variables(self):
        v, u = VertexVar("v"), VertexVar("u")
        f = Exists(v, Adj(v, u))
        assert f.free_variables() == frozenset({u})

    def test_operators(self):
        v, u = VertexVar("v"), VertexVar("u")
        f = Adj(v, u) & ~Eq(v, u)
        assert isinstance(f, And)
        assert isinstance(f.right, Not)

    def test_quantifier_depth(self):
        f = parse_formula("forall u:V. exists v:V. adj(u,v)")
        assert quantifier_depth(f) == 2


class TestParser:
    def test_simple(self):
        f = parse_formula("forall v:V. v = v")
        assert check_formula(path_graph(2), f)

    def test_unbound_variable(self):
        with pytest.raises(ParseError):
            parse_formula("adj(u, v)")

    def test_free_declarations(self):
        f = parse_formula("adj(u, v)", free={"u": "V", "v": "V"})
        g = path_graph(2)
        assert check_formula(g, f, {VertexVar("u"): 0, VertexVar("v"): 1})

    def test_neq(self):
        f = parse_formula("forall u:V, v:V. adj(u,v) -> u != v")
        assert check_formula(cycle_graph(4), f)

    def test_implication_right_assoc(self):
        # a -> b -> c parses as a -> (b -> c).  With a=False, c=False:
        # right-assoc gives True, left-assoc would give False.
        f = parse_formula("forall u:V. u != u -> u = u -> u != u")
        assert check_formula(path_graph(2), f)

    def test_quantifier_wide_scope(self):
        # exists binds everything to its right.
        f = parse_formula("exists v:V. v in S & v = v", free={"S": "SV"})
        g = path_graph(2)
        assert check_formula(g, f, {VertexSetVar("S"): frozenset({0})})
        assert not check_formula(g, f, {VertexSetVar("S"): frozenset()})

    def test_trailing_tokens(self):
        with pytest.raises(ParseError):
            parse_formula("forall v:V. v = v v")

    def test_bad_sort(self):
        with pytest.raises(ParseError):
            parse_formula("forall v:Q. v = v")

    def test_edge_quantifiers(self):
        f = parse_formula("forall e:E. exists v:V. inc(e, v)")
        assert check_formula(cycle_graph(5), f)

    def test_set_quantifier(self):
        f = parse_formula("exists F:SE. forall e:E. e in F")
        assert check_formula(path_graph(4), f)

    def test_label_literal(self):
        f = parse_formula("exists v:V. label(v) = 'red'")
        g = path_graph(2)
        assert not check_formula(g, f)
        g.set_vertex_label(1, "red")
        assert check_formula(g, f)


class TestSemantics:
    def test_unassigned_free_variable(self):
        f = parse_formula("adj(u, v)", free={"u": "V", "v": "V"})
        with pytest.raises(ValueError):
            check_formula(path_graph(2), f)

    def test_shadowing_restores_binding(self):
        # exists v. (v in S & exists v. ~(v in S)): inner v shadows outer.
        v = VertexVar("v")
        S = VertexSetVar("S")
        inner = Exists(v, Not(In(v, S)))
        f = Exists(v, And(In(v, S), inner))
        g = path_graph(2)
        assert check_formula(g, f, {S: frozenset({0})})

    def test_set_quantifier_limit(self):
        f = parse_formula("exists S:SV. forall v:V. v in S")
        with pytest.raises(ValueError):
            check_formula(path_graph(20), f)

    def test_inc_semantics(self):
        f = parse_formula("forall e:E. exists u:V, v:V. inc(e,u) & inc(e,v) & u != v")
        assert check_formula(star_graph(4), f)

    def test_edge_label(self):
        e = EdgeVar("e")
        f = Exists(e, HasLabel(e, "virtual"))
        g = path_graph(3)
        assert not check_formula(g, f)
        g.set_edge_label(0, 1, "virtual")
        assert check_formula(g, f)


class TestDirectCheckers:
    def test_bipartite(self):
        assert is_bipartite(path_graph(5))
        assert is_bipartite(cycle_graph(6))
        assert not is_bipartite(cycle_graph(5))

    def test_colorable(self):
        assert is_q_colorable(cycle_graph(5), 3)
        assert not is_q_colorable(complete_graph(4), 3)
        assert is_q_colorable(complete_graph(4), 4)

    def test_hamiltonian_path(self):
        assert has_hamiltonian_path(path_graph(6))
        assert has_hamiltonian_path(cycle_graph(6))
        assert not has_hamiltonian_path(star_graph(3))

    def test_hamiltonian_cycle(self):
        assert has_hamiltonian_cycle(cycle_graph(5))
        assert has_hamiltonian_cycle(complete_graph(4))
        assert not has_hamiltonian_cycle(path_graph(5))
        assert not has_hamiltonian_cycle(path_graph(2))

    def test_perfect_matching(self):
        assert has_perfect_matching(path_graph(4))
        assert not has_perfect_matching(path_graph(3))
        assert not has_perfect_matching(star_graph(3))
        assert has_perfect_matching(cycle_graph(6))

    def test_vertex_cover(self):
        assert has_vertex_cover_at_most(star_graph(5), 1)
        assert not has_vertex_cover_at_most(path_graph(5), 1)
        assert has_vertex_cover_at_most(path_graph(5), 2)

    def test_independent_set(self):
        assert has_independent_set_at_least(star_graph(5), 5)
        assert not has_independent_set_at_least(complete_graph(4), 2)

    def test_dominating_set(self):
        assert has_dominating_set_at_most(star_graph(5), 1)
        assert not has_dominating_set_at_most(path_graph(7), 2)
        assert has_dominating_set_at_most(path_graph(7), 3)

    def test_caterpillar_forest(self):
        from repro.graphs.generators import caterpillar_graph, spider_graph

        assert is_caterpillar_forest(caterpillar_graph(5, 3))
        assert is_caterpillar_forest(path_graph(7))
        assert not is_caterpillar_forest(spider_graph(3, 2))
        assert not is_caterpillar_forest(cycle_graph(4))


class TestZooFormulaAgreement:
    """Every stated formula must agree with its direct checker.

    This is the semantic half of Proposition 2.4's correctness contract.
    Exhaustive over all graphs on 3 vertices and all connected graphs on 4;
    sampled (first 40) over all graphs on 4 vertices.
    """

    @pytest.mark.parametrize(
        "name", [n for n, p in sorted(PROPERTY_ZOO.items()) if p.formula is not None]
    )
    def test_formula_matches_checker_n3(self, name):
        prop = PROPERTY_ZOO[name]
        for g in enumerate_graphs(3, connected_only=False):
            assert prop.check(g) == check_formula(g, prop.formula), g.edges()

    @pytest.mark.parametrize(
        "name", [n for n, p in sorted(PROPERTY_ZOO.items()) if p.formula is not None]
    )
    def test_formula_matches_checker_n4_sample(self, name):
        prop = PROPERTY_ZOO[name]
        for g in itertools.islice(enumerate_graphs(4, connected_only=False), 40):
            assert prop.check(g) == check_formula(g, prop.formula), g.edges()
