"""Tests for edit-batch recertification (repro.incremental + graph edits).

The acceptance contract of the incremental subsystem:

* **strict edits** — batches are declarative, canonical on the wire,
  and all-or-nothing against the base graph;
* **repair validity** — a non-fallback repair is a valid path
  decomposition of the edited graph within the width bound (hypothesis
  property over random graphs and edit streams), and the fallback
  reasons fire exactly when promised;
* **incremental ≡ cold** — after any stream of edit batches, the
  incremental report matches a cold certification of the evolved graph
  over the same witness bags: verdict, measured encoded bits, class
  counts — including through the fallback path;
* **region ≡ full** — the dirty-region verdict equals the full-round
  verdict on honest updates, and rejects forged/stale certificates in
  the dirty region exactly like a full round (AuditPlan campaign);
* **observability** — certifier/store/service counters (updates,
  bags_dirtied, artifacts_reused, full_fallbacks) stay truthful.
"""

import asyncio
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    AdversarialInstance,
    AuditAttack,
    AuditCase,
    AuditPlan,
    CertificationSession,
    MutationAttack,
    VerificationEngine,
)
from repro.graphs import Edit, EditBatch, EditError, apply_edits
from repro.graphs.edits import (
    add_edge,
    remove_edge,
    set_edge_label,
    set_vertex_label,
)
from repro.graphs.generators import (
    caterpillar_graph,
    path_graph,
    random_pathwidth_graph,
)
from repro.incremental import (
    DirtyRegionExecutor,
    IncrementalCertifier,
    repair_decomposition,
    witness_decomposer,
)
from repro.pathwidth import PathDecomposition
from repro.pls.model import Configuration
from repro.service import CertificationService, ServiceConfig, graph_to_wire


# ----------------------------------------------------------------------
# Shared builders.
# ----------------------------------------------------------------------
def _instance(n, k, seed):
    """A random pathwidth-<=k graph plus its witness decomposition."""
    graph, bags = random_pathwidth_graph(n, k, random.Random(seed))
    return graph, PathDecomposition(graph, bags)


def _certifier(graph, decomposition, k=2, properties=("connected",), **kw):
    return IncrementalCertifier(
        graph,
        list(properties),
        k=k,
        decomposer=witness_decomposer(decomposition),
        rng=random.Random(7),
        **kw,
    )


def _still_connected(graph, u, v):
    probe = graph.copy()
    probe.remove_edge(u, v)
    return probe.is_connected()


def _random_batch(graph, rng, size=None, structural_ok=True):
    """One applicable batch drawn against the *current* graph state."""
    edits = []
    state = graph.copy()
    for _ in range(size or rng.randint(1, 3)):
        kinds = ["set_vertex_label"]
        edges = sorted(state.edges(), key=repr)
        if structural_ok and edges:
            kinds.append("remove_edge")
            kinds.append("set_edge_label")
        vertices = sorted(state.vertices())
        spare = [
            (u, v)
            for i, u in enumerate(vertices)
            for v in vertices[i + 1:]
            if not state.has_edge(u, v)
        ]
        if structural_ok and spare:
            kinds.append("add_edge")
        kind = rng.choice(kinds)
        if kind == "add_edge":
            u, v = rng.choice(spare)
            edits.append(add_edge(u, v))
            state.add_edge(u, v)
        elif kind == "remove_edge":
            u, v = rng.choice(edges)
            edits.append(remove_edge(u, v))
            state.remove_edge(u, v)
        elif kind == "set_edge_label":
            u, v = rng.choice(edges)
            edits.append(set_edge_label(u, v, rng.randint(0, 5)))
            state.set_edge_label(u, v, rng.randint(0, 5))
        else:
            v = rng.choice(vertices)
            edits.append(set_vertex_label(v, rng.randint(0, 5)))
            state.set_vertex_label(v, rng.randint(0, 5))
    return EditBatch(edits)


# ----------------------------------------------------------------------
# Edits: validation, wire form, strict application.
# ----------------------------------------------------------------------
class TestEdits:
    def test_kind_validation(self):
        with pytest.raises(EditError):
            Edit("grow_vertex", 1, 2)
        with pytest.raises(EditError):
            Edit("add_edge", 1)  # needs both endpoints

    def test_wire_roundtrip(self):
        batch = EditBatch(
            [
                add_edge(1, 2),
                add_edge(3, 4, label="t"),
                remove_edge(5, 6),
                set_vertex_label(7, "m"),
                set_edge_label(8, 9, 2),
            ]
        )
        assert EditBatch.from_wire(batch.to_wire()) == batch
        assert batch.to_wire()[1] == ["add_edge", 3, 4, "t"]

    def test_malformed_wire(self):
        with pytest.raises(EditError):
            EditBatch.from_wire([["add_edge", 1]])
        with pytest.raises(EditError):
            EditBatch.from_wire([["set_vertex_label", 1]])
        with pytest.raises(EditError):
            EditBatch.from_wire("not-a-list")

    def test_classification(self):
        batch = EditBatch([add_edge(1, 2), set_vertex_label(3, "x")])
        assert [e.kind for e in batch.structural()] == ["add_edge"]
        assert not batch.vertex_labels_only()
        assert not batch.relabels_edges()
        assert EditBatch([add_edge(1, 2, label="t")]).relabels_edges()
        labels = EditBatch([set_vertex_label(1, "a"), set_vertex_label(2, "b")])
        assert labels.vertex_labels_only()
        assert batch.touched_vertices() == {1, 2, 3}

    def test_apply_is_strict_and_copying(self):
        graph = path_graph(4)
        with pytest.raises(EditError, match="already present"):
            apply_edits(graph, EditBatch([add_edge(0, 1)]))
        with pytest.raises(EditError, match="not in graph"):
            apply_edits(graph, EditBatch([remove_edge(0, 2)]))
        with pytest.raises(EditError, match="endpoint"):
            apply_edits(graph, EditBatch([add_edge(0, 99)]))
        with pytest.raises(EditError, match="self-loop"):
            apply_edits(graph, EditBatch([add_edge(2, 2)]))
        # All-or-nothing: the valid prefix must not leak onto the base.
        batch = EditBatch([add_edge(0, 2), remove_edge(0, 9)])
        with pytest.raises(EditError, match="edit #1"):
            apply_edits(graph, batch)
        assert not graph.has_edge(0, 2)

    def test_apply_order_within_batch(self):
        graph = path_graph(4)
        out = apply_edits(
            graph, EditBatch([add_edge(0, 2), set_edge_label(0, 2, "new")])
        )
        assert out.edge_label(0, 2) == "new"
        assert not graph.has_edge(0, 2)  # base untouched


# ----------------------------------------------------------------------
# Decomposition repair.
# ----------------------------------------------------------------------
class TestRepair:
    def test_remove_edge_never_falls_back(self):
        graph, decomposition = _instance(20, 2, seed=3)
        u, v = sorted(graph.edges(), key=repr)[0]
        batch = EditBatch([remove_edge(u, v)])
        new_graph = apply_edits(graph, batch)
        result = repair_decomposition(decomposition, new_graph, batch, 2)
        assert not result.fallback
        assert result.dirty_bags  # the covering bags are dirty
        result.decomposition.validate()

    def test_vertex_labels_dirty_nothing(self):
        graph, decomposition = _instance(16, 2, seed=4)
        batch = EditBatch([set_vertex_label(3, "m"), set_vertex_label(5, "n")])
        new_graph = apply_edits(graph, batch)
        result = repair_decomposition(decomposition, new_graph, batch, 2)
        assert not result.fallback
        assert result.dirty_bags == ()

    def test_add_edge_covered_is_free(self):
        # A path's decomposition has a bag per edge; adding an edge
        # whose endpoints share a bag must not extend anything.
        graph = path_graph(6)
        bags = [[i, i + 1] for i in range(5)]
        decomposition = PathDecomposition(graph, bags)
        graph2 = graph.copy()
        graph2.remove_edge(2, 3)
        decomp2 = PathDecomposition(graph2, bags)
        batch = EditBatch([add_edge(2, 3)])
        result = repair_decomposition(decomp2, graph, batch, 1)
        assert not result.fallback and result.extended_bags == 0

    def test_add_edge_bridges_disjoint_intervals(self):
        graph = path_graph(6)
        bags = [[i, i + 1] for i in range(5)]
        decomposition = PathDecomposition(graph, bags)
        batch = EditBatch([add_edge(0, 5)])
        new_graph = apply_edits(graph, batch)
        # k=1 cannot absorb a third vertex per bag: must fall back.
        tight = repair_decomposition(decomposition, new_graph, batch, 1)
        assert tight.fallback and "width" in tight.reason
        # k=2 can: the repair extends bags and stays valid.
        wide = repair_decomposition(
            decomposition, new_graph, batch, 2, max_dirty_fraction=1.0
        )
        assert not wide.fallback and wide.extended_bags > 0
        wide.decomposition.validate()
        assert wide.decomposition.width() <= 2

    def test_dirty_fraction_fallback(self):
        graph, decomposition = _instance(20, 2, seed=5)
        u, v = sorted(graph.edges(), key=repr)[0]
        batch = EditBatch([remove_edge(u, v)])
        new_graph = apply_edits(graph, batch)
        result = repair_decomposition(
            decomposition, new_graph, batch, 2, max_dirty_fraction=0.0
        )
        assert result.fallback and "dirty region" in result.reason

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=8, max_value=24),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_repair_is_valid_or_fallback(self, n, seed):
        """Any applicable batch: repaired decomposition is valid, in-bound."""
        rng = random.Random(seed)
        graph, decomposition = _instance(n, 2, seed)
        batch = _random_batch(graph, rng)
        new_graph = apply_edits(graph, batch)
        result = repair_decomposition(
            decomposition, new_graph, batch, 2, max_dirty_fraction=1.0
        )
        if result.fallback:
            assert "width" in result.reason
            return
        result.decomposition.validate()  # P1 + P2 + coverage, or raises
        assert result.decomposition.width() <= 2
        assert all(
            0 <= i < len(decomposition.bags) for i in result.dirty_bags
        )


# ----------------------------------------------------------------------
# Dirty-region executor.
# ----------------------------------------------------------------------
class TestDirtyRegionExecutor:
    def _case(self, seed=2):
        graph, decomposition = _instance(14, 2, seed)
        inc = _certifier(graph, decomposition)
        base = inc.baseline()
        return inc, base.reports["connected"]

    def test_region_grows_by_hops(self):
        graph = path_graph(9)
        executor = DirtyRegionExecutor(frontier_hops=0)
        assert executor.region_for(graph, {4}) == {4}
        assert DirtyRegionExecutor(frontier_hops=1).region_for(
            graph, {4}
        ) == {3, 4, 5}
        assert DirtyRegionExecutor(frontier_hops=2).region_for(
            graph, {4}
        ) == {2, 3, 4, 5, 6}
        # Vertices not in the graph are ignored, not crashed on.
        assert DirtyRegionExecutor().region_for(graph, {99}) == set()

    def test_honest_region_accepts(self):
        _inc, report = self._case()
        executor = DirtyRegionExecutor()
        region = executor.verify_region(
            report.config, report.scheme, report.labeling, {0, 1}
        )
        assert region.accepted and region.mode == "region"
        assert 0 < region.region_size <= report.config.n

    def test_forged_certificate_in_region_rejected(self):
        _inc, report = self._case()
        mapping = dict(report.labeling.mapping)
        edge = sorted(mapping, key=repr)[0]
        mapping[edge] = None  # drop one certificate
        forged = type(report.labeling)(
            report.labeling.location, mapping, report.labeling.size_context
        )
        executor = DirtyRegionExecutor()
        region = executor.verify_region(
            report.config, report.scheme, forged, set(edge)
        )
        assert not region.accepted
        assert region.rejections

    def test_full_round_escape_hatch(self):
        _inc, report = self._case()
        executor = DirtyRegionExecutor()
        full = executor.full_round(report.config, report.scheme, report.labeling)
        assert full.accepted and full.mode == "full"
        assert full.region_size == report.config.n
        assert full.full_report is not None


# ----------------------------------------------------------------------
# The incremental certifier: equivalence with cold certification.
# ----------------------------------------------------------------------
def _cold_facts(inc, properties=("connected",)):
    """Cold-certify the certifier's current state over the same bags."""
    session = CertificationSession(
        k=inc.k, decomposer=witness_decomposer(inc.decomposition)
    )
    facts = {}
    for key, report in session.certify(
        inc.config, list(properties), verify=True
    ).items():
        facts[key] = {
            "refused": report.refused,
            "accepted": report.accepted,
            "class_count": report.class_count,
            "total_bits": report.total_label_bits,
            "max_bits": report.max_label_bits,
        }
    return facts


def _incremental_facts(report):
    return {
        key: {
            "refused": rep.refused,
            "accepted": rep.accepted,
            "class_count": rep.class_count,
            "total_bits": rep.total_label_bits,
            "max_bits": rep.max_label_bits,
        }
        for key, rep in report.reports.items()
    }


class TestIncrementalCertifier:
    def test_baseline_then_label_only_reuses_everything(self):
        graph, decomposition = _instance(18, 2, seed=11)
        inc = _certifier(graph, decomposition)
        base = inc.baseline()
        assert base.accepted and base.mode == "baseline"
        report = inc.update(EditBatch([set_vertex_label(2, "hot")]))
        assert report.accepted and report.mode == "region"
        assert report.stages_run == 0  # the whole chain resolved
        assert report.artifacts_reused == 6
        assert inc.metrics.updates == 1

    def test_update_auto_baselines(self):
        graph, decomposition = _instance(12, 2, seed=12)
        inc = _certifier(graph, decomposition)
        report = inc.update(EditBatch([set_vertex_label(1, "x")]))
        assert report.accepted and inc.baselined

    def test_empty_batch_rejected(self):
        graph, decomposition = _instance(10, 2, seed=13)
        inc = _certifier(graph, decomposition)
        with pytest.raises(ValueError, match="non-empty"):
            inc.update(EditBatch([]))

    def test_failed_edit_leaves_state_untouched(self):
        graph, decomposition = _instance(10, 2, seed=14)
        inc = _certifier(graph, decomposition)
        inc.baseline()
        before = inc.graph.fingerprint()
        with pytest.raises(EditError):
            inc.update(EditBatch([remove_edge(0, 999)]))
        assert inc.graph.fingerprint() == before
        assert inc.metrics.updates == 0  # a refused batch is not an update

    def test_periodic_full_round(self):
        graph, decomposition = _instance(14, 2, seed=15)
        inc = _certifier(graph, decomposition, full_round_every=2)
        inc.baseline()
        first = inc.update(EditBatch([set_vertex_label(0, 1)]))
        second = inc.update(EditBatch([set_vertex_label(1, 1)]))
        third = inc.update(EditBatch([set_vertex_label(2, 1)]))
        assert [r.mode for r in (first, second, third)] == [
            "region",
            "full",
            "region",
        ]
        assert inc.metrics.full_rounds == 1

    def test_fallback_path_recertifies_fully(self):
        graph, decomposition = _instance(16, 2, seed=16)
        inc = _certifier(graph, decomposition, max_dirty_fraction=0.0)
        inc.baseline()
        u, v = next(
            (a, b)
            for a, b in sorted(graph.edges(), key=repr)
            if _still_connected(graph, a, b)
        )
        report = inc.update(EditBatch([remove_edge(u, v)]))
        assert report.mode == "fallback"
        assert report.repair.fallback
        assert inc.metrics.full_fallbacks == 1
        # The full round ran (the fallback escape hatch).
        assert report.rounds["connected"].mode == "full"
        # Equivalence holds through the fallback too: the certifier's
        # recorded decomposition is the one the session actually used.
        assert _incremental_facts(report) == _cold_facts(inc)

    def test_disconnecting_edit_refuses_and_recovers(self):
        graph = path_graph(8)
        bags = [[i, i + 1] for i in range(7)]
        inc = _certifier(graph, PathDecomposition(graph, bags))
        inc.baseline()
        cut = inc.update(EditBatch([remove_edge(3, 4)]))
        assert not cut.accepted
        assert cut.refusals  # the prover refused the disconnected graph
        healed = inc.update(EditBatch([add_edge(3, 4)]))
        assert healed.accepted

    def test_refused_fallback_rebaselines_on_next_update(self):
        # A width fallback whose from-scratch search refuses leaves no
        # live decomposition; the stream must recover once an edit
        # brings the graph back within reach.
        graph = path_graph(6)
        bags = [[i, i + 1] for i in range(5)]
        inc = _certifier(graph, PathDecomposition(graph, bags), k=1)
        inc.baseline()
        grow = inc.update(EditBatch([add_edge(0, 5)]))  # pathwidth 2 > k
        assert grow.mode == "fallback" and not grow.accepted
        assert "width" in grow.repair.reason
        assert not inc.baselined
        healed = inc.update(EditBatch([remove_edge(0, 5)]))
        assert healed.mode == "fallback" and healed.accepted
        assert healed.repair.reason == "no live decomposition"
        assert inc.baselined
        assert inc.metrics.full_fallbacks == 2

    def test_policy_fallback_keeps_repaired_witness(self):
        # A dirty-fraction fallback rebuilt every certificate but the
        # repaired bags stayed the witness — no re-search happened.
        graph, decomposition = _instance(16, 2, seed=17)
        inc = _certifier(graph, decomposition, max_dirty_fraction=0.0)
        inc.baseline()
        u, v = next(
            (a, b)
            for a, b in sorted(graph.edges(), key=repr)
            if _still_connected(graph, a, b)
        )
        report = inc.update(EditBatch([remove_edge(u, v)]))
        assert report.mode == "fallback" and report.accepted
        assert inc.baselined
        inc.decomposition.validate()

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(min_value=8, max_value=18),
        seed=st.integers(min_value=0, max_value=10_000),
        batches=st.integers(min_value=1, max_value=3),
    )
    def test_incremental_equals_cold(self, n, seed, batches):
        """Verdict, measured bits, and class counts match a cold run."""
        rng = random.Random(seed)
        graph, decomposition = _instance(n, 2, seed)
        inc = _certifier(graph, decomposition)
        inc.baseline()
        engine = VerificationEngine()
        report = None
        for _ in range(batches):
            batch = _random_batch(inc.graph, rng)
            report = inc.update(batch)
            for key, prop_report in report.reports.items():
                if prop_report.refused:
                    continue
                # Region verdict ≡ full-round verdict, every step.
                full = engine.verify(
                    prop_report.config,
                    prop_report.scheme,
                    prop_report.labeling,
                )
                assert report.rounds[key].accepted == full.accepted
        if inc.decomposition is None:
            # The stream ran out of witnesses (a width fallback whose
            # re-search refused); the reports must say so honestly.
            assert all(r.refused for r in report.reports.values())
        else:
            assert _incremental_facts(report) == _cold_facts(inc)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_label_only_equals_cold_bit_for_bit(self, seed):
        graph, decomposition = _instance(14, 2, seed)
        inc = _certifier(graph, decomposition)
        inc.baseline()
        rng = random.Random(seed)
        report = inc.update(_random_batch(inc.graph, rng, structural_ok=False))
        assert report.stages_run == 0
        assert _incremental_facts(report) == _cold_facts(inc)


# ----------------------------------------------------------------------
# Adversarial edit campaign: reuse never degrades soundness.
# ----------------------------------------------------------------------
class StaleRetentionAttack(AuditAttack):
    """Edit the graph, keep the pre-edit certificates verbatim.

    ``mode='add'`` splices an uncertified edge in; ``mode='remove'``
    deletes a certified edge (choosing one that keeps the graph
    connected, so acceptance would be a pure soundness failure rather
    than a true 'property now false' outcome).
    """

    def __init__(self, mode: str):
        self.mode = mode
        self.name = f"stale-{mode}"

    def instances(self, case, rng):
        graph = case.config.graph
        if self.mode == "add":
            vertices = sorted(graph.vertices())
            spare = [
                (u, v)
                for i, u in enumerate(vertices)
                for v in vertices[i + 1:]
                if not graph.has_edge(u, v)
            ]
            if not spare:
                yield None
                return
            u, v = rng.choice(spare)
            edited = apply_edits(graph, EditBatch([add_edge(u, v)]))
        else:
            candidates = []
            for u, v in sorted(graph.edges(), key=repr):
                probe = graph.copy()
                probe.remove_edge(u, v)
                if probe.is_connected():
                    candidates.append((u, v))
            if not candidates:
                yield None
                return
            u, v = rng.choice(candidates)
            edited = apply_edits(graph, EditBatch([remove_edge(u, v)]))
        yield AdversarialInstance(
            Configuration(edited, case.config.ids),
            case.labeling,
            note=f"{self.mode} {{{u}, {v}}} with stale certificates",
        )


class TestAdversarialEditCampaign:
    def test_stale_certificates_rejected(self):
        def case_factory(trial, rng):
            graph, bags = random_pathwidth_graph(14, 2, rng)
            inc = IncrementalCertifier(
                graph,
                ["connected"],
                k=2,
                decomposer=witness_decomposer(PathDecomposition(graph, bags)),
                rng=rng,
            )
            report = inc.baseline().reports["connected"]
            return AuditCase(report.config, report.scheme, report.labeling, trial)

        plan = AuditPlan(
            case_factory,
            [
                StaleRetentionAttack("add"),
                StaleRetentionAttack("remove"),
                MutationAttack(per_case=2),
            ],
            trials=5,
            root_seed=12,
            name="incremental-audit",
        )
        report = plan.run()
        assert report.all_rejected, report.summary()
        assert report.tally("stale-add").attempted >= 4
        assert report.tally("stale-remove").attempted >= 4

    def test_region_round_rejects_stale_certificates(self):
        """The incremental round itself (not just a full round) rejects."""
        graph, decomposition = _instance(14, 2, seed=21)
        inc = _certifier(graph, decomposition)
        report = inc.baseline().reports["connected"]
        vertices = sorted(graph.vertices())
        u, v = next(
            (a, b)
            for i, a in enumerate(vertices)
            for b in vertices[i + 1:]
            if not graph.has_edge(a, b)
        )
        edited = apply_edits(graph, EditBatch([add_edge(u, v)]))
        region = DirtyRegionExecutor().verify_region(
            Configuration(edited, report.config.ids),
            report.scheme,
            report.labeling,
            {u, v},
        )
        assert not region.accepted


# ----------------------------------------------------------------------
# Metrics plumbing: certifier -> store -> service.
# ----------------------------------------------------------------------
class TestIncrementalMetrics:
    def test_store_counters(self, tmp_path):
        from repro.api import CertificateStore

        store = CertificateStore(tmp_path / "store")
        graph, decomposition = _instance(12, 2, seed=31)
        inc = _certifier(graph, decomposition, store=store)
        inc.baseline()
        inc.update(EditBatch([set_vertex_label(0, "m")]))
        u, v = sorted(inc.graph.edges(), key=repr)[0]
        inc.update(EditBatch([remove_edge(u, v)]))
        snapshot = store.metrics.snapshot()
        assert snapshot["updates"] == 2
        assert snapshot["artifacts_reused"] >= 6
        assert snapshot["bags_dirtied"] >= 1
        stats = store.stats()
        assert stats["incremental"]["updates"] == 2

    def test_certifier_metrics_to_dict(self):
        graph, decomposition = _instance(10, 2, seed=32)
        inc = _certifier(graph, decomposition)
        inc.baseline()
        inc.update(EditBatch([set_vertex_label(0, 1)]))
        snap = inc.metrics.to_dict()
        assert snap["updates"] == 1
        assert snap["region_rounds"] == 1
        assert set(snap) >= {
            "updates",
            "bags_dirtied",
            "artifacts_reused",
            "full_fallbacks",
        }


# ----------------------------------------------------------------------
# The service update op.
# ----------------------------------------------------------------------
def _service(tmp_path, **overrides):
    config = ServiceConfig(store_root=tmp_path / "store", **overrides)
    return CertificationService(config)


class TestServiceUpdateOp:
    def test_bootstrap_evolve_and_metrics(self, tmp_path):
        service = _service(tmp_path)
        graph = caterpillar_graph(10, 2)

        async def scenario():
            boot = await service.handle(
                {
                    "id": 1,
                    "op": "update",
                    "graph": graph_to_wire(graph),
                    "properties": ["connected"],
                }
            )
            assert boot["ok"], boot
            fingerprint = boot["result"]["fingerprint"]
            assert boot["result"]["baseline"]["mode"] == "baseline"
            assert boot["result"]["baseline"]["accepted"]
            assert boot["result"]["update"] is None

            evolved = await service.handle(
                {
                    "id": 2,
                    "op": "update",
                    "fingerprint": fingerprint,
                    "properties": ["connected"],
                    "edits": [["set_vertex_label", 3, "hot"]],
                }
            )
            assert evolved["ok"], evolved
            body = evolved["result"]["update"]
            assert body["accepted"] and body["mode"] == "region"
            assert body["stages_run"] == 0  # full artifact reuse
            assert evolved["result"]["fingerprint"] != fingerprint

            structural = await service.handle(
                {
                    "id": 3,
                    "op": "update",
                    "fingerprint": evolved["result"]["fingerprint"],
                    "properties": ["connected"],
                    "edits": [["add_edge", 0, 2]],
                }
            )
            assert structural["ok"], structural
            assert structural["result"]["update"]["accepted"]

            metrics = await service.handle({"id": 4, "op": "metrics"})
            return boot, metrics["result"]

        _boot, snapshot = asyncio.run(scenario())
        assert snapshot["incremental"]["updates"] == 2
        assert snapshot["incremental"]["artifacts_reused"] >= 6
        assert snapshot["store"]["incremental"]["updates"] == 2
        service.close_blocking()

    def test_stale_and_malformed_addressing(self, tmp_path):
        service = _service(tmp_path)
        graph = caterpillar_graph(8, 1)

        async def scenario():
            boot = await service.handle(
                {
                    "id": 1,
                    "op": "update",
                    "graph": graph_to_wire(graph),
                    "properties": ["connected"],
                }
            )
            fingerprint = boot["result"]["fingerprint"]
            await service.handle(
                {
                    "id": 2,
                    "op": "update",
                    "fingerprint": fingerprint,
                    "properties": ["connected"],
                    "edits": [["set_vertex_label", 0, "x"]],
                }
            )
            stale = await service.handle(
                {
                    "id": 3,
                    "op": "update",
                    "fingerprint": fingerprint,  # one state behind now
                    "properties": ["connected"],
                    "edits": [["set_vertex_label", 1, "y"]],
                }
            )
            missing = await service.handle(
                {
                    "id": 4,
                    "op": "update",
                    "fingerprint": "no-such-state",
                    "properties": ["connected"],
                    "edits": [["set_vertex_label", 1, "y"]],
                }
            )
            malformed = await service.handle(
                {
                    "id": 5,
                    "op": "update",
                    "fingerprint": fingerprint,
                    "properties": ["connected"],
                    "edits": [["explode", 1]],
                }
            )
            no_edits = await service.handle(
                {
                    "id": 6,
                    "op": "update",
                    "fingerprint": fingerprint,
                    "properties": ["connected"],
                }
            )
            return stale, missing, malformed, no_edits

        stale, missing, malformed, no_edits = asyncio.run(scenario())
        assert not stale["ok"] and "no incremental state" in stale["error"]
        assert not missing["ok"]
        assert not malformed["ok"] and "malformed edits" in malformed["error"]
        assert not no_edits["ok"] and "non-empty" in no_edits["error"]
        service.close_blocking()

    def test_identical_updates_coalesce(self, tmp_path):
        service = _service(tmp_path)
        graph = caterpillar_graph(8, 1)

        async def scenario():
            boot = await service.handle(
                {
                    "id": 1,
                    "op": "update",
                    "graph": graph_to_wire(graph),
                    "properties": ["connected"],
                }
            )
            fingerprint = boot["result"]["fingerprint"]
            request = {
                "op": "update",
                "fingerprint": fingerprint,
                "properties": ["connected"],
                "edits": [["set_vertex_label", 2, "hot"]],
            }
            first, second = await asyncio.gather(
                service.handle(dict(request, id=2)),
                service.handle(dict(request, id=3)),
            )
            return first, second

        first, second = asyncio.run(scenario())
        assert first["ok"] and second["ok"]
        # One of the two was served by the other's computation.
        assert first["meta"]["coalesced"] or second["meta"]["coalesced"]
        assert service.metrics.updates == 1  # the batch applied once
        service.close_blocking()
