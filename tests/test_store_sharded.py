"""Tests for the sharded certificate-store layout (repro.api.store v2).

The PR 6 store contract: entries live in fingerprint-prefix shards,
writes are atomic under concurrent writers (unique temp + os.replace),
flat pre-shard stores keep loading (dual-read + lazy migration), the
store accounts for itself (stats/len/entries + StoreMetrics), and a
byte budget evicts least-recently-used entries.
"""

import os
import random
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import (
    CertificateStore,
    StoreError,
    StoreMetrics,
    certify,
)
from repro.api.store import SHARD_PREFIX_LEN
from repro.experiments import lanewidth_workload

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _certified(seed=81, n=18, store=None):
    sequence, graph = lanewidth_workload(3, n, seed)
    report = certify(
        sequence, "connected", rng=random.Random(seed + 1), store=store
    )
    assert report.accepted and not report.refused
    return report, graph


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestShardedLayout:
    def test_entry_lands_in_its_shard(self, tmp_path):
        store = CertificateStore(tmp_path)
        report, graph = _certified(seed=81)
        path = store.save(report)
        fingerprint = graph.fingerprint()
        assert path.parent == tmp_path / fingerprint[:SHARD_PREFIX_LEN]
        assert path == store.path_for(fingerprint, "connected")
        # Nothing cert-shaped sits at the legacy flat location.
        assert not store.flat_path_for(fingerprint, "connected").exists()

    def test_distinct_prefixes_get_distinct_shards(self, tmp_path):
        store = CertificateStore(tmp_path)
        fingerprints = set()
        seed = 82
        # Graphs until two fingerprints disagree on their shard prefix.
        while len({fp[:SHARD_PREFIX_LEN] for fp in fingerprints}) < 2:
            report, graph = _certified(seed=seed, n=12)
            store.save(report)
            fingerprints.add(graph.fingerprint())
            seed += 1
            assert seed < 120, "fingerprint prefixes suspiciously clustered"
        stats = store.stats()
        assert stats["shards"] >= 2
        assert stats["entries"] == len(fingerprints)

    def test_stats_len_entries_across_layouts(self, tmp_path):
        store = CertificateStore(tmp_path)
        report_a, graph_a = _certified(seed=83)
        report_b, graph_b = _certified(seed=84)
        path_a = store.save(report_a)
        store.save(report_b)
        # Demote one entry to the legacy flat layout by hand.
        flat_a = store.flat_path_for(graph_a.fingerprint(), "connected")
        os.replace(path_a, flat_a)

        assert len(store) == 2
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["flat_entries"] == 1
        assert stats["shards"] == 1
        assert stats["bytes"] == sum(
            p.stat().st_size for _f, _k, p in store.entries()
        )
        assert stats["tmp_orphans"] == 0
        assert stats["byte_budget"] is None

        listed = {(f, k) for f, k, _p in store.entries()}
        assert listed == {
            (graph_a.fingerprint(), "connected"),
            (graph_b.fingerprint(), "connected"),
        }

    def test_empty_store_accounting(self, tmp_path):
        store = CertificateStore(tmp_path / "never-created")
        assert len(store) == 0
        assert store.entries() == []
        assert store.stats()["entries"] == 0


class TestFlatMigration:
    def test_load_migrates_flat_entry(self, tmp_path):
        store = CertificateStore(tmp_path)
        report, graph = _certified(seed=85, store=store)
        fingerprint = graph.fingerprint()
        sharded = store.path_for(fingerprint, "connected")
        flat = store.flat_path_for(fingerprint, "connected")
        os.replace(sharded, flat)

        assert (fingerprint, "connected") in store  # dual-read membership
        loaded = store.load(fingerprint, "connected")
        assert loaded.accepted
        # The act of serving moved the entry to its canonical shard.
        assert sharded.exists()
        assert not flat.exists()
        assert store.metrics.snapshot()["migrated"] == 1
        # Second load is a plain sharded hit, no further migration.
        store.load(fingerprint, "connected")
        assert store.metrics.snapshot()["migrated"] == 1

    def test_migrate_flat_walks_everything(self, tmp_path):
        store = CertificateStore(tmp_path)
        graphs = []
        for seed in (86, 87):
            report, graph = _certified(seed=seed)
            path = store.save(report)
            os.replace(
                path, store.flat_path_for(graph.fingerprint(), "connected")
            )
            graphs.append(graph)
        # A non-envelope straggler must be left alone, not destroyed.
        bogus = tmp_path / "notes.cert"
        bogus.write_bytes(b"not an envelope")

        assert store.migrate_flat() == 2
        assert store.stats()["flat_entries"] == 1  # just the bogus file
        assert bogus.exists()
        for graph in graphs:
            assert store.path_for(graph.fingerprint(), "connected").exists()
        assert store.migrate_flat() == 0  # idempotent

    def test_fresh_process_reads_flat_layout_store(self, tmp_path):
        """A store written before the shard layout still serves a fresh
        interpreter, which transparently settles the entry into its
        shard — the ISSUE's compatibility acceptance criterion."""
        store = CertificateStore(tmp_path)
        report, graph = _certified(seed=88, store=store)
        fingerprint = graph.fingerprint()
        # Recreate the pre-shard world: entry directly under root.
        os.replace(
            store.path_for(fingerprint, "connected"),
            store.flat_path_for(fingerprint, "connected"),
        )
        script = (
            "import sys\n"
            "from repro.api import CertificateStore, CertificationSession\n"
            "store = CertificateStore(sys.argv[1])\n"
            "report = store.load(sys.argv[2], 'connected')\n"
            "session = CertificationSession()\n"
            "verification = session.verify(report)\n"
            "assert verification.accepted, verification.summary()\n"
            "assert session.stage_counters == {}, session.stage_counters\n"
            "assert store.metrics.snapshot()['migrated'] == 1\n"
            "print('MIGRATED-AND-REVERIFIED')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path), fingerprint],
            capture_output=True,
            text=True,
            env=_subprocess_env(),
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "MIGRATED-AND-REVERIFIED" in proc.stdout
        assert store.path_for(fingerprint, "connected").exists()


class TestAtomicSave:
    def test_injected_publish_failure_leaves_no_partial_entry(
        self, tmp_path, monkeypatch
    ):
        store = CertificateStore(tmp_path)
        report, graph = _certified(seed=89)
        fingerprint = graph.fingerprint()

        import repro.api.store as store_module

        def exploding_replace(src, dst):
            raise OSError("injected mid-write failure")

        monkeypatch.setattr(store_module.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="injected"):
            store.save(report)
        monkeypatch.undo()

        # No entry was published, and the temp file was reclaimed.
        assert not store.path_for(fingerprint, "connected").exists()
        assert len(store) == 0
        assert store.stats()["tmp_orphans"] == 0
        assert store.metrics.snapshot()["saves"] == 0

    def test_injected_failure_preserves_previous_entry(
        self, tmp_path, monkeypatch
    ):
        store = CertificateStore(tmp_path)
        report, graph = _certified(seed=90, store=store)
        fingerprint = graph.fingerprint()

        import repro.api.store as store_module

        real_replace = os.replace

        def exploding_replace(src, dst):
            raise OSError("injected overwrite failure")

        monkeypatch.setattr(store_module.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="injected"):
            store.save(report)
        monkeypatch.setattr(store_module.os, "replace", real_replace)

        # The overwrite failed wholesale: the old entry is untouched.
        loaded = store.load(fingerprint, "connected")
        assert loaded.accepted
        assert len(store) == 1

    def test_concurrent_same_key_writers_use_distinct_temps(self, tmp_path):
        """Two saves of one key must never share a temp path — the exact
        interleaving the old deterministic ``.cert.tmp`` name allowed."""
        store = CertificateStore(tmp_path)
        report, graph = _certified(seed=91)
        seen = []

        import repro.api.store as store_module

        real_replace = os.replace

        def recording_replace(src, dst):
            seen.append(str(src))
            return real_replace(src, dst)

        try:
            store_module.os.replace = recording_replace
            store.save(report)
            store.save(report)
        finally:
            store_module.os.replace = real_replace
        assert len(seen) == 2
        assert seen[0] != seen[1]
        assert all(name.endswith(".tmp") for name in seen)

    def test_orphan_cleanup(self, tmp_path):
        store = CertificateStore(tmp_path)
        report, graph = _certified(seed=92, store=store)
        shard = store.shard_for(graph.fingerprint())
        crash_a = shard / "half-written.cert.1234.a.tmp"
        crash_b = tmp_path / "flat-era-crash.cert.tmp"
        crash_a.write_bytes(b"partial")
        crash_b.write_bytes(b"partial")
        assert store.stats()["tmp_orphans"] == 2

        # Young temp files might be another writer's in-flight publish.
        assert store.clean_orphans(max_age_seconds=3600) == 0
        assert crash_a.exists()

        assert store.clean_orphans(max_age_seconds=0) == 2
        assert not crash_a.exists() and not crash_b.exists()
        assert store.stats()["tmp_orphans"] == 0
        assert store.metrics.snapshot()["orphans_cleaned"] == 2
        # The real entry survived the sweep.
        assert store.load(graph.fingerprint(), "connected").accepted


class TestEviction:
    def _aged_store(self, tmp_path):
        """Three entries with controlled mtimes: a < b < c."""
        store = CertificateStore(tmp_path)
        entries = []
        now = time.time()
        for offset, seed in enumerate((93, 94, 95)):
            report, graph = _certified(seed=seed)
            path = store.save(report)
            stamp = now - 1000 + offset * 100
            os.utime(path, (stamp, stamp))
            entries.append((graph.fingerprint(), path))
        return store, entries

    def test_compact_evicts_lru_and_load_bumps_recency(self, tmp_path):
        store, entries = self._aged_store(tmp_path)
        (fp_a, path_a), (fp_b, path_b), (fp_c, path_c) = entries
        # Serving the oldest entry makes it the most recently used.
        store.load(fp_a, "connected")

        total = store.stats()["bytes"]
        evicted = store.compact(byte_budget=total - 1)
        # b is now the least recently used; a was bumped, c is newest.
        assert evicted == [path_b]
        assert not path_b.exists()
        assert path_a.exists() and path_c.exists()
        assert store.load(fp_a, "connected").accepted
        assert store.load(fp_c, "connected").accepted
        snap = store.metrics.snapshot()
        assert snap["evictions"] == 1
        assert snap["bytes_evicted"] > 0

    def test_compact_without_budget_only_cleans_orphans(self, tmp_path):
        store, entries = self._aged_store(tmp_path)
        assert store.compact() == []
        assert len(store) == 3

    def test_save_with_budget_triggers_eviction(self, tmp_path):
        plain = CertificateStore(tmp_path)
        report_a, graph_a = _certified(seed=96)
        path_a = plain.save(report_a)
        size = path_a.stat().st_size
        # Make the first entry look old so the budget evicts it, not
        # the entry being saved (save + compact run within one tick).
        old = time.time() - 1000
        os.utime(path_a, (old, old))

        bounded = CertificateStore(tmp_path, byte_budget=size + size // 2)
        report_b, graph_b = _certified(seed=97)
        bounded.save(report_b)

        assert len(bounded) == 1
        assert not path_a.exists()
        assert bounded.load(graph_b.fingerprint(), "connected").accepted
        assert bounded.metrics.snapshot()["evictions"] == 1

    def test_byte_budget_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            CertificateStore(tmp_path, byte_budget=0)

    def test_compact_never_touches_artifacts(self, tmp_path):
        store = CertificateStore(tmp_path)
        report, graph = _certified(seed=98, store=store)
        artifacts = list((tmp_path / "artifacts").glob("*.art"))
        assert artifacts, "session with a store should persist artifacts"
        store.compact(byte_budget=1)  # evict every certificate
        assert len(store) == 0
        assert list((tmp_path / "artifacts").glob("*.art")) == artifacts


class TestSharedMetrics:
    def test_hit_miss_counters(self, tmp_path):
        metrics = StoreMetrics()
        store = CertificateStore(tmp_path, metrics=metrics)
        report, graph = _certified(seed=99, store=store)
        store.load(graph.fingerprint(), "connected")
        with pytest.raises(StoreError):
            store.load("0" * 64, "connected")
        snap = metrics.snapshot()
        assert snap["saves"] == 1
        assert snap["hits"] == 1
        assert snap["misses"] == 1

    def test_shared_instance_aggregates_two_stores(self, tmp_path):
        metrics = StoreMetrics()
        store_a = CertificateStore(tmp_path / "a", metrics=metrics)
        store_b = CertificateStore(tmp_path / "b", metrics=metrics)
        _certified(seed=100, store=store_a)
        _certified(seed=101, store=store_b)
        assert metrics.snapshot()["saves"] == 2


WORKER_SCRIPT = """
import random
import sys
from repro.api import CertificateStore, certify
from repro.experiments import lanewidth_workload

store_root, worker_seed = sys.argv[1], int(sys.argv[2])
store = CertificateStore(store_root)

# Every worker certifies the same shared graph (same fingerprint, same
# entry path -> concurrent same-key writers) ...
shared_seq, shared_graph = lanewidth_workload(3, 14, 7000)
certify(shared_seq, "connected", rng=random.Random(worker_seed), store=store)

# ... and one private graph of its own (disjoint shards, most likely).
own_seq, own_graph = lanewidth_workload(3, 14, 7000 + worker_seed)
certify(own_seq, "connected", rng=random.Random(worker_seed + 1), store=store)

# Both must be immediately loadable through the same store.
for graph in (shared_graph, own_graph):
    report = store.load(graph.fingerprint(), "connected")
    assert report.accepted
print("WORKER-OK", own_graph.fingerprint())
"""


class TestConcurrentProcesses:
    def test_multiprocess_writers_share_one_store(self, tmp_path):
        """N processes certify into one sharded store at once: the same
        shared graph (same-key writer races) plus one graph each.  Every
        entry must load cleanly afterwards and nothing may be left
        half-written."""
        workers = 3
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", WORKER_SCRIPT, str(tmp_path), str(i)],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=_subprocess_env(),
            )
            for i in range(1, workers + 1)
        ]
        own_fingerprints = set()
        for proc in procs:
            out, err = proc.communicate(timeout=300)
            assert proc.returncode == 0, err
            own_fingerprints.add(out.split("WORKER-OK")[-1].strip())

        store = CertificateStore(tmp_path)
        # workers distinct graphs + 1 shared graph, each saved once.
        assert len(store) == workers + 1
        assert store.stats()["tmp_orphans"] == 0
        for fingerprint, key, _path in store.entries():
            assert key == "connected"
            assert store.load(fingerprint, key).accepted
        shared = {f for f, _k, _p in store.entries()} - own_fingerprints
        assert len(shared) == 1  # the contended graph, published intact
