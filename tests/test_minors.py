"""Tests for minor containment: structural shortcuts vs general search."""

import random

import pytest

from repro.graphs import Graph
from repro.graphs.generators import (
    binary_tree_graph,
    caterpillar_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    ladder_graph,
    path_graph,
    random_caterpillar,
    spider_graph,
    star_graph,
)
from repro.graphs.minors import (
    _spider_leg_lengths,
    contains_minor,
    excluded_forest_pathwidth_bound,
    find_minor_model,
    is_minor_free,
)


def _validate_model(graph, pattern, model):
    """Check the definition of a minor model directly."""
    used = set()
    for h, branch in model.items():
        assert branch, "empty branch set"
        assert not (branch & used), "overlapping branch sets"
        used |= branch
        assert graph.induced_subgraph(branch).is_connected()
    for a, b in pattern.edges():
        assert any(
            graph.has_edge(u, v) for u in model[a] for v in model[b]
        ), f"pattern edge {a}-{b} not realized"


class TestGeneralSearch:
    def test_k3_in_cycle_model(self):
        g = cycle_graph(6)
        model = find_minor_model(g, complete_graph(3))
        assert model is not None
        _validate_model(g, complete_graph(3), model)

    def test_k4_in_grid_model(self):
        g = grid_graph(3, 3)
        model = find_minor_model(g, complete_graph(4))
        assert model is not None
        _validate_model(g, complete_graph(4), model)

    def test_k4_not_in_ladder(self):
        assert find_minor_model(ladder_graph(4), complete_graph(4)) is None

    def test_k23_in_cycle_with_chord(self):
        g = cycle_graph(6)
        g.add_edge(0, 3)
        assert contains_minor(g, complete_bipartite_graph(2, 3)) is False
        g.add_edge(1, 4)
        assert contains_minor(g, complete_bipartite_graph(2, 3)) is True

    def test_pattern_larger_than_host(self):
        assert find_minor_model(path_graph(3), complete_graph(4)) is None

    def test_empty_pattern(self):
        assert find_minor_model(path_graph(3), Graph()) == {}

    def test_disconnected_pattern(self):
        two_edges = Graph(edges=[(0, 1), (2, 3)])
        assert contains_minor(path_graph(5), two_edges)
        assert not contains_minor(path_graph(2), two_edges)


class TestShortcuts:
    def test_path_minor_is_subpath(self):
        assert contains_minor(cycle_graph(9), path_graph(9))
        assert not contains_minor(cycle_graph(9), path_graph(10))
        assert contains_minor(binary_tree_graph(2), path_graph(5))

    def test_k3_is_cycle(self):
        assert contains_minor(cycle_graph(3), complete_graph(3))
        assert not contains_minor(binary_tree_graph(3), complete_graph(3))

    def test_star_needs_connected_neighborhood(self):
        # No degree-4 vertex, but contracting the central edge gives one.
        double_star = Graph(edges=[(0, 1), (0, 2), (0, 3), (3, 4), (3, 5)])
        assert contains_minor(double_star, star_graph(4))
        assert not contains_minor(path_graph(10), star_graph(3))
        assert contains_minor(star_graph(5), star_graph(5))
        assert not contains_minor(star_graph(4), star_graph(5))

    def test_spider_leg_detection(self):
        assert sorted(_spider_leg_lengths(spider_graph(3, 2))) == [2, 2, 2]
        assert _spider_leg_lengths(star_graph(3)) == [1, 1, 1]
        assert _spider_leg_lengths(path_graph(5)) is None
        assert _spider_leg_lengths(caterpillar_graph(3, 2)) is None

    def test_spider_in_trees(self):
        spider = spider_graph(3, 2)
        assert contains_minor(binary_tree_graph(3), spider)
        assert not contains_minor(caterpillar_graph(8, 3), spider)
        assert contains_minor(spider_graph(3, 3), spider)

    def test_spider_in_cycle_is_absent(self):
        assert not contains_minor(cycle_graph(12), spider_graph(3, 2))

    def test_caterpillars_are_spider_free(self):
        rng = random.Random(2)
        spider = spider_graph(3, 2)
        for _ in range(10):
            g = random_caterpillar(20, rng)
            assert is_minor_free(g, spider)


class TestAgreementWithGeneralSearch:
    """Shortcut paths must agree with the exponential general search."""

    @pytest.mark.parametrize(
        "host",
        [
            path_graph(7),
            cycle_graph(7),
            star_graph(5),
            caterpillar_graph(3, 1),
            spider_graph(3, 2),
            binary_tree_graph(2),
            ladder_graph(3),
        ],
    )
    @pytest.mark.parametrize(
        "pattern",
        [
            path_graph(4),
            star_graph(3),
            spider_graph(3, 1),
            spider_graph(3, 2),
            complete_graph(3),
        ],
    )
    def test_shortcuts_match_search(self, host, pattern):
        expected = find_minor_model(host, pattern) is not None
        assert contains_minor(host, pattern) == expected


class TestExcludedForestBound:
    def test_star(self):
        assert excluded_forest_pathwidth_bound(star_graph(3)) == 2

    def test_path(self):
        assert excluded_forest_pathwidth_bound(path_graph(5)) == 3

    def test_rejects_cycles(self):
        with pytest.raises(ValueError):
            excluded_forest_pathwidth_bound(cycle_graph(4))

    def test_bound_holds_empirically(self):
        # P5-minor-free graphs have pathwidth <= 3: spot-check small hosts.
        from repro.pathwidth.exact import exact_pathwidth

        pattern = path_graph(5)
        bound = excluded_forest_pathwidth_bound(pattern)
        hosts = [star_graph(6), complete_graph(4), caterpillar_graph(2, 3)]
        for host in hosts:
            if is_minor_free(host, pattern):
                assert exact_pathwidth(host) <= bound
