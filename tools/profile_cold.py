"""Profile the cold certification path, stage by stage.

The cold path is one ``certify`` call in a fresh process: decompose the
host, prove the hierarchy, assemble + wire-encode the labels, compile
the vectorized verification round, and run it.  This harness drives
exactly that under :mod:`cProfile` and reports two views:

* a **stage table** — wall-clock seconds per pipeline stage (from the
  report's own ``stage_timings``) plus the PR 10 cold-path counters
  (``encode_seconds``, ``compile_seconds``, verifier round time), each
  with its share of the end-to-end total;
* the **top-N profile rows** by cumulative time, for drilling into
  whatever stage dominates.

Output is human-readable on stdout plus one machine-readable JSON file
(``--json``, default ``profile_cold.json``) and a ``PROFILE_JSON`` line
— the same trajectory convention the E-series benchmarks use.  CI runs
this as a smoke step on a small workload; locally, crank ``--n`` up.

Usage::

    PYTHONPATH=src python tools/profile_cold.py [--n 256] [--seed 8]
        [--engine vectorized] [--json profile_cold.json] [--top 15]
"""

import argparse
import cProfile
import io
import json
import pstats
import sys
import time

from repro.api import CertificationSession, VerificationEngine, make_executor
from repro.experiments import lanewidth_workload, seed_stream

#: Pipeline stages folded into the "prove" row of the summary table —
#: everything between the decomposition and the wire encode.
PROVE_STAGES = ("lanes", "completion", "match", "hierarchy", "evaluate", "label")


def run_cold(n: int, seed: int, engine_kind: str):
    """One fresh-process certify (prove + encode + compile + verify)."""
    sequence, _graph = lanewidth_workload(3, n, seed)
    engine = VerificationEngine(make_executor(engine_kind))
    session = CertificationSession(
        rng=seed_stream(8, "ids").rng(seed), engine=engine
    )
    started = time.perf_counter()
    report = session.certify(sequence, "connected")
    total_s = time.perf_counter() - started
    return report, total_s


def stage_rows(report, total_s: float):
    """(name, seconds) rows for the summary table, coarsest first."""
    decompose_s = report.stage_seconds("decompose")
    prove_s = sum(report.stage_seconds(name) for name in PROVE_STAGES)
    verify_s = (
        report.verification.elapsed_seconds
        if report.verification is not None
        else 0.0
    )
    # Kernel compile happens *inside* the verification round; report it
    # as its own row and leave only the kernel evaluation under verify.
    rows = [
        ("decompose", decompose_s),
        ("prove", prove_s),
        ("encode", report.encode_seconds),
        ("compile", report.compile_seconds),
        ("verify", max(0.0, verify_s - report.compile_seconds)),
    ]
    accounted = sum(seconds for _name, seconds in rows)
    rows.append(("other", max(0.0, total_s - accounted)))
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=256, help="host size")
    parser.add_argument("--seed", type=int, default=8)
    parser.add_argument(
        "--engine",
        default="vectorized",
        help="executor kind (serial/parallel/vectorized/shared-memory)",
    )
    parser.add_argument("--json", default="profile_cold.json")
    parser.add_argument(
        "--top", type=int, default=15, help="profile rows to print"
    )
    args = parser.parse_args(argv)

    profiler = cProfile.Profile()
    profiler.enable()
    report, total_s = run_cold(args.n, args.seed, args.engine)
    profiler.disable()
    if report.refused:
        print(f"prover refused: {report.refusal}", file=sys.stderr)
        return 1

    rows = stage_rows(report, total_s)
    print(f"cold path, n={args.n}, engine={args.engine}")
    print(f"{'stage':<12}{'seconds':>10}{'share':>8}")
    for name, seconds in rows:
        share = seconds / total_s if total_s else 0.0
        print(f"{name:<12}{seconds:>10.4f}{share:>7.1%}")
    print(f"{'total':<12}{total_s:>10.4f}")

    stats = pstats.Stats(profiler, stream=io.StringIO())
    stream = io.StringIO()
    stats.stream = stream
    stats.sort_stats("cumulative").print_stats(args.top)
    print()
    print(stream.getvalue().rstrip())

    kernel_stats = (
        report.verification.kernel_stats
        if report.verification is not None
        else None
    ) or {}
    payload = {
        "tool": "profile_cold",
        "n": args.n,
        "seed": args.seed,
        "engine": args.engine,
        "accepted": report.accepted,
        "total_s": round(total_s, 6),
        "stages": {name: round(seconds, 6) for name, seconds in rows},
        "compiled_round_cached": bool(
            kernel_stats.get("compiled_round_cached", False)
        ),
        "kernel_mode": kernel_stats.get("mode"),
    }
    with open(args.json, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("PROFILE_JSON " + json.dumps(payload, sort_keys=True))
    return 0 if report.accepted else 1


if __name__ == "__main__":
    raise SystemExit(main())
