#!/usr/bin/env python3
"""Fail on broken relative links in the repo's markdown docs.

Scans ``README.md`` and ``docs/*.md`` (plus any extra paths given on the
command line) for inline markdown links and reference definitions,
resolves every relative target against the linking file's directory, and
exits non-zero listing each target that does not exist on disk.
External links (``http(s)://``, ``mailto:``) and pure in-page anchors
(``#...``) are skipped; a ``path#fragment`` link is checked for the
``path`` part only.

Used by the CI ``docs`` job; run locally with::

    python tools/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Inline links/images: [text](target) — target up to the first
#: unescaped ')' (good enough for the plain paths these docs use).
_INLINE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Reference definitions: [label]: target
_REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def _strip_code(text: str) -> str:
    """Remove fenced and inline code spans — links there are examples."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`]*`", "", text)


def targets_in(path: Path) -> list:
    text = _strip_code(path.read_text(encoding="utf-8"))
    found = _INLINE.findall(text) + _REFDEF.findall(text)
    return [t for t in found if t]


def check_file(path: Path) -> list:
    """Return ``(target, resolved)`` for every broken relative link."""
    broken = []
    for target in targets_in(path):
        if target.startswith(_SKIP_PREFIXES) or target.startswith("#"):
            continue
        bare = target.split("#", 1)[0]
        if not bare:
            continue
        resolved = (path.parent / bare).resolve()
        if not resolved.exists():
            broken.append((target, resolved))
    return broken


def _display(path: Path) -> str:
    """Repo-relative rendering when possible, verbatim otherwise."""
    try:
        return str(path.resolve().relative_to(REPO))
    except ValueError:
        return str(path)


def main(argv: list) -> int:
    files = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))
    files += [Path(arg) for arg in argv]
    failures = 0
    for path in files:
        if not path.exists():
            print(f"MISSING FILE {path}")
            failures += 1
            continue
        for target, resolved in check_file(path):
            print(f"BROKEN {_display(path)}: ({target}) -> {resolved}")
            failures += 1
    checked = ", ".join(_display(p) for p in files if p.exists())
    if failures:
        print(f"{failures} broken link(s) across {checked}")
        return 1
    print(f"all relative links resolve across {checked}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
