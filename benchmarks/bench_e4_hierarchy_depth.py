"""E4/F4 — Observation 5.5: hierarchy depth <= 2k.

Measures the depth distribution of Proposition 5.6 hierarchies over
random lanewidth-k constructions and full pipeline runs.
"""

import random
from collections import Counter

from repro.core import build_hierarchy, hierarchy_depth, random_lanewidth_sequence
from repro.experiments import Table


def _depths(width: int, trials: int, ops: int) -> Counter:
    counter: Counter = Counter()
    for t in range(trials):
        rng = random.Random(width * 911 + t)
        seq = random_lanewidth_sequence(width, ops, rng, edge_probability=0.5)
        counter[hierarchy_depth(build_hierarchy(seq))] += 1
    return counter


def test_e4_hierarchy_depth(benchmark):
    table = Table(
        "E4: Observation 5.5 — hierarchy depth vs the 2k bound",
        ["k (lanewidth)", "2k bound", "max depth seen", "depth histogram"],
    )
    for width in (2, 3, 4, 5):
        counter = _depths(width, trials=40, ops=30)
        worst = max(counter)
        assert worst <= 2 * width
        histogram = " ".join(f"{d}:{c}" for d, c in sorted(counter.items()))
        table.add(width, 2 * width, worst, histogram)
    table.show()

    benchmark(_depths, 3, 10, 30)
