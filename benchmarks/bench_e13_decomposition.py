"""E13 — exact decomposition engines: branch-and-bound vs DP vs heuristic.

Three series, one per claim the PR 9 engine makes:

* **small** (n ≤ 14, the old ``_EXACT_LIMIT`` regime): the
  branch-and-bound width must equal the subset-DP optimum on *every*
  case — asserted, not just recorded — with wall-clock for both engines
  and the heuristic portfolio's width alongside;
* **scale** (planted ``random_pathwidth_graph`` instances far past the
  DP's 2^n wall): the search must *prove* optimality within the budget
  (default: n=50, pathwidth ≤ 6, 10 s) — the regime where the subset DP
  is simply infeasible (2^50 states);
* **e2e** (end-to-end certification buckets): ``certify`` runs twice on
  graphs where the heuristic portfolio is measurably suboptimal — once
  heuristic-only (no budget) and once with ``exact_budget_ms`` — and the
  series records achieved width, hierarchy depth, and measured label
  bits for both.  The E1/E4 benches are lanewidth workloads with no
  decompose stage, so this is where the decomposition engine's
  downstream effect on depth/bits lives.  Gate: the budgeted width is
  never worse than the heuristic's.

Output follows the house pattern: a ``BENCH_JSON`` line on stdout plus
a JSON file (``E13_OUT``, default ``BENCH_E13.json`` in the working
directory; the committed baseline at ``benchmarks/BENCH_E13.json`` is
refused unless ``E13_OUT`` names it explicitly).

Environment knobs (CI's smoke step shrinks everything):
``E13_SMALL_SIZES``, ``E13_SMALL_TRIALS``, ``E13_SCALE_N``,
``E13_SCALE_K``, ``E13_SCALE_TRIALS``, ``E13_SCALE_BUDGET_MS``,
``E13_E2E_BUCKETS`` (``n:p:seed`` triples, comma-separated; empty
skips the series), ``E13_E2E_BUDGET_MS``, ``E13_OUT``.
"""

import json
import os
import random
import time

from repro.api import certify
from repro.experiments import Table
from repro.graphs import Graph
from repro.graphs.generators import random_pathwidth_graph
from repro.pathwidth import branch_and_bound_ordering, exact_pathwidth
from repro.pathwidth.heuristics import heuristic_path_decomposition

SMALL_SIZES = tuple(
    int(n) for n in os.environ.get("E13_SMALL_SIZES", "8,11,14").split(",")
)
SMALL_TRIALS = int(os.environ.get("E13_SMALL_TRIALS", "3"))
SCALE_N = int(os.environ.get("E13_SCALE_N", "50"))
SCALE_K = int(os.environ.get("E13_SCALE_K", "6"))
SCALE_TRIALS = int(os.environ.get("E13_SCALE_TRIALS", "5"))
SCALE_BUDGET_MS = float(os.environ.get("E13_SCALE_BUDGET_MS", "10000"))
E2E_BUCKETS = os.environ.get("E13_E2E_BUCKETS", "40:0.07:4,40:0.07:5,60:0.05:4")
E2E_BUDGET_MS = float(os.environ.get("E13_E2E_BUDGET_MS", "4000"))
OUT_PATH = os.environ.get("E13_OUT", "BENCH_E13.json")
BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_E13.json")


def _gnp(seed: int, n: int, p: float) -> Graph:
    """A connected G(n, p) draw (reseeded until connected)."""
    rng = random.Random(seed)
    while True:
        g = Graph(vertices=range(n))
        for u in range(n):
            for v in range(u + 1, n):
                if rng.random() < p:
                    g.add_edge(u, v)
        if g.is_connected():
            return g


def _small_series():
    table = Table(
        "E13a: B&B vs DP vs heuristic (n <= 14)",
        ["n", "seed", "width", "dp_s", "bnb_s", "heur_width"],
    )
    series = []
    for n in SMALL_SIZES:
        for seed in range(SMALL_TRIALS):
            g = _gnp(seed, n, 0.3)
            t0 = time.perf_counter()
            dp_width = exact_pathwidth(g, engine="dp")
            dp_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            result = branch_and_bound_ordering(g)
            bnb_s = time.perf_counter() - t0
            heur_width = heuristic_path_decomposition(g).width()
            # The headline gate: B&B matches the DP optimum everywhere.
            assert result.optimal
            assert result.width == dp_width, (
                f"B&B width {result.width} != DP width {dp_width} "
                f"on n={n} seed={seed}"
            )
            assert result.width <= heur_width
            series.append(
                {
                    "n": n,
                    "seed": seed,
                    "width": dp_width,
                    "dp_s": round(dp_s, 6),
                    "bnb_s": round(bnb_s, 6),
                    "heuristic_width": heur_width,
                    "nodes_expanded": result.stats.nodes_expanded,
                    "memo_hits": result.stats.memo_hits,
                }
            )
            table.add(
                n,
                seed,
                dp_width,
                f"{dp_s:.4f}",
                f"{bnb_s:.4f}",
                heur_width,
            )
    table.show()
    return series


def _scale_series():
    table = Table(
        f"E13b: planted n={SCALE_N}, pathwidth <= {SCALE_K} "
        f"(budget {SCALE_BUDGET_MS:g} ms; DP infeasible at 2^n states)",
        ["seed", "heur_width", "bnb_width", "optimal", "bnb_s", "nodes"],
    )
    series = []
    for seed in range(SCALE_TRIALS):
        g, _bags = random_pathwidth_graph(
            SCALE_N, SCALE_K, rng=random.Random(seed)
        )
        heur_width = heuristic_path_decomposition(g).width()
        t0 = time.perf_counter()
        result = branch_and_bound_ordering(g, budget_ms=SCALE_BUDGET_MS)
        bnb_s = time.perf_counter() - t0
        assert result.width <= heur_width
        assert result.width <= SCALE_K
        # The scale gate: optimality *proven* within budget, in a size
        # regime the subset DP cannot touch.
        assert result.optimal, (
            f"budget {SCALE_BUDGET_MS}ms expired on seed {seed} "
            f"(incumbent width {result.width})"
        )
        series.append(
            {
                "n": SCALE_N,
                "k": SCALE_K,
                "seed": seed,
                "heuristic_width": heur_width,
                "bnb_width": result.width,
                "optimal": result.optimal,
                "bnb_s": round(bnb_s, 6),
                "nodes_expanded": result.stats.nodes_expanded,
                "memo_hits": result.stats.memo_hits,
                "lower_bound": result.stats.lower_bound,
            }
        )
        table.add(
            seed,
            heur_width,
            result.width,
            result.optimal,
            f"{bnb_s:.3f}",
            result.stats.nodes_expanded,
        )
    table.show()
    return series


def _e2e_series():
    """Certification buckets: heuristic-only vs budgeted-B&B witness."""
    table = Table(
        "E13c: end-to-end certify (heuristic vs bnb witness)",
        [
            "n",
            "seed",
            "h_width",
            "b_width",
            "h_depth",
            "b_depth",
            "h_bits",
            "b_bits",
        ],
    )
    series = []
    buckets = [b for b in E2E_BUCKETS.split(",") if b]
    for bucket in buckets:
        n_str, p_str, seed_str = bucket.split(":")
        n, p, seed = int(n_str), float(p_str), int(seed_str)
        g = _gnp(seed, n, p)
        heur_width = heuristic_path_decomposition(g).width()
        # Same k bound for both runs, so only the witness engine varies.
        k = heur_width
        rng_ids = random.Random(seed)
        heuristic = certify(
            g, "connected", k=k, rng=random.Random(rng_ids.random()),
            verify=False,
        )
        budgeted = certify(
            g, "connected", k=k, rng=random.Random(rng_ids.random()),
            verify=False, exact_budget_ms=E2E_BUDGET_MS,
        )
        assert not heuristic.refused and not budgeted.refused
        h_stats = heuristic.decomposition_stats
        b_stats = budgeted.decomposition_stats
        assert h_stats["engine"] == "heuristic"
        assert b_stats["engine"] == "bnb"
        # The CI gate: the budgeted witness is never wider.
        assert b_stats["width"] <= h_stats["width"], (
            f"bnb width {b_stats['width']} exceeds heuristic "
            f"{h_stats['width']} on n={n} seed={seed}"
        )
        series.append(
            {
                "n": n,
                "p": p,
                "seed": seed,
                "k": k,
                "heuristic": {
                    "width": h_stats["width"],
                    "hierarchy_depth": heuristic.hierarchy_depth,
                    "total_label_bits": heuristic.total_label_bits,
                    "max_label_bits": heuristic.max_label_bits,
                },
                "bnb": {
                    "width": b_stats["width"],
                    "optimal": b_stats["optimal"],
                    "hierarchy_depth": budgeted.hierarchy_depth,
                    "total_label_bits": budgeted.total_label_bits,
                    "max_label_bits": budgeted.max_label_bits,
                    "nodes_expanded": b_stats.get("nodes_expanded"),
                },
            }
        )
        table.add(
            n,
            seed,
            h_stats["width"],
            b_stats["width"],
            heuristic.hierarchy_depth,
            budgeted.hierarchy_depth,
            heuristic.total_label_bits,
            budgeted.total_label_bits,
        )
    table.show()
    return series


def test_e13_decomposition(benchmark):
    payload = {
        "bench": "e13_decomposition",
        "small": _small_series(),
        "scale": _scale_series(),
        "e2e": _e2e_series(),
    }
    improved = sum(
        1
        for row in payload["e2e"]
        if row["bnb"]["width"] < row["heuristic"]["width"]
    )
    payload["e2e_width_improvements"] = improved

    if (
        "E13_OUT" not in os.environ
        and os.path.abspath(OUT_PATH) == os.path.abspath(BASELINE_PATH)
    ):
        raise RuntimeError(
            "refusing to overwrite the committed baseline "
            f"{BASELINE_PATH}; set E13_OUT to refresh it deliberately"
        )
    with open(OUT_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("BENCH_JSON " + json.dumps(payload, sort_keys=True))

    # Time the smallest planted instance so the smoke run stays tiny.
    g, _bags = random_pathwidth_graph(
        min(SCALE_N, 30), min(SCALE_K, 3), rng=random.Random(0)
    )
    benchmark(branch_and_bound_ordering, g, 5_000)
