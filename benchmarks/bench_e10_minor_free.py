"""E10 — Corollary 1.2: certifying F-minor-freeness for forests F.

Three forest patterns with exact minor-freeness characterizations:

* K_3 (as a degenerate "forest obstruction" via acyclicity): K_3-minor-free
  = forest;
* the star K_{1,3}: K_{1,3}-minor-free = max degree <= 2;
* the path P_5: P_5-minor-free = no path on 5 vertices.

For each: certify minor-free instances with O(log n) labels, confirm the
prover refuses minor-containing instances, and cross-check against the
brute-force minor search on small hosts.
"""

import random

from repro.core import apply_construction, certify_lanewidth_graph, random_lanewidth_sequence
from repro.experiments import Table
from repro.graphs.generators import complete_graph, path_graph, star_graph
from repro.graphs.minors import excluded_forest_pathwidth_bound, is_minor_free
from repro.pls.scheme import ProverFailure

PATTERNS = [
    ("K3 (triangle)", complete_graph(3), "k3-minor-free"),
    ("K1,3 (star)", star_graph(3), "star3-minor-free"),
    ("P5 (path)", path_graph(5), "p5-minor-free"),
]


def _run_pattern(algebra_key: str, pattern, trials: int) -> tuple:
    certified = refused = agree = total = 0
    bits = 0
    for t in range(trials):
        rng = random.Random(6000 + t)
        # Small, sparse hosts so both minor-free and minor-containing
        # instances occur (dense hosts almost always contain the minors).
        seq = random_lanewidth_sequence(
            2, rng.randrange(1, 7), rng, edge_probability=0.15
        )
        graph = apply_construction(seq)
        truth = is_minor_free(graph, pattern)
        total += 1
        try:
            _cfg, scheme, labeling, result = certify_lanewidth_graph(
                seq, algebra_key, rng
            )
            assert result.accepted
            certified += 1
            bits = max(bits, labeling.max_label_bits(scheme))
            if truth:
                agree += 1
        except ProverFailure:
            refused += 1
            if not truth:
                agree += 1
    return certified, refused, agree, total, bits


def test_e10_minor_free(benchmark):
    table = Table(
        "E10: Corollary 1.2 — F-minor-free certification for forests F",
        [
            "pattern F",
            "pw bound (|F|-2)",
            "certified",
            "refused",
            "agree w/ brute force",
            "trials",
            "max bits",
        ],
    )
    for name, pattern, key in PATTERNS:
        if pattern.is_forest():
            bound = excluded_forest_pathwidth_bound(pattern)
        else:
            bound = "-(K3 is not a forest; acyclicity route)"
        certified, refused, agree, total, bits = _run_pattern(key, pattern, trials=25)
        table.add(name, bound, certified, refused, agree, total, bits)
        assert agree == total  # certification agrees with brute force
        assert certified > 0 and refused > 0  # both outcomes exercised
    table.show()

    benchmark(_run_pattern, "star3-minor-free", star_graph(3), 5)
