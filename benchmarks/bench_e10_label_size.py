"""E10b — measured wire-encoded label size: the O(log n) claim on bytes.

(E10 proper is the minor-freeness experiment in
``bench_e10_minor_free.py``; this companion took the "label size" half
of the slot when the wire codec landed — the ``e10_label_size`` id below
is what tooling should key on.)

E1 established the Θ(log n) shape on the *accounted* sizes; since the
wire codec landed, reports quote the *measured* encoding (exact bit
length of each label's byte string, ``docs/FORMAT.md``).  This benchmark
regenerates the headline curve on the measured figure — max encoded
bits vs n over lanewidth families — asserts it stays sub-linear with a
``≈ c*log n`` fit, checks measured ≤ accounted pointwise, and emits the
whole series as one machine-readable ``BENCH_JSON`` line:

    BENCH_JSON {"bench": "e10_label_size", "series": [...], ...}
"""

import json
import math
import random

from repro.api import CertificationSession
from repro.experiments import Table, fit_log_slope, lanewidth_workload

SIZES = (32, 128, 512, 2048)
WIDTHS = (2, 3)
PROPERTY = "connected"


def _measure(width: int, n: int, seed: int):
    """Certify one host and return its report (labels only, no round)."""
    sequence, _graph = lanewidth_workload(width, n, seed)
    session = CertificationSession(rng=random.Random(seed + 1))
    # verify=False: E10 measures certificate bytes, not the round.
    report = session.certify(sequence, PROPERTY, verify=False)
    assert not report.refused, report.refusal
    return report


def test_e10_label_size(benchmark):
    table = Table(
        "E10b: measured wire-encoded label size vs n",
        ["w", "n", "max_encoded_bits", "accounted_bits", "bits/log2(n)", "stored_KiB"],
    )
    payload = {"bench": "e10_label_size", "property": PROPERTY, "series": []}

    for width in WIDTHS:
        points = []
        for n in SIZES:
            report = _measure(width, n, seed=width * 9000 + n)
            bits = report.max_label_bits
            accounted = report.accounted_max_label_bits
            # The wire encoding is the ground truth and must never
            # exceed what the arithmetic accounting promised.
            assert bits <= accounted, (width, n, bits, accounted)
            points.append((n, bits))
            table.add(
                width,
                n,
                bits,
                accounted,
                f"{bits / math.log2(n):.1f}",
                f"{report.encoded.total_bytes / 1024:.1f}",
            )
        slope = fit_log_slope(points)
        lo, hi = points[0], points[-1]
        n_ratio = hi[0] / lo[0]
        bits_ratio = hi[1] / lo[1]
        log_ratio = math.log2(hi[0]) / math.log2(lo[0])
        # Sub-linear: 64x the vertices must come nowhere near 64x the
        # bits; c.log n shape: growth tracks log2 n up to a constant.
        assert bits_ratio < 0.25 * n_ratio, (width, points)
        assert bits_ratio <= 1.6 * log_ratio, (width, points)
        payload["series"].append(
            {
                "width": width,
                "points": [
                    {"n": n, "max_encoded_bits": b} for n, b in points
                ],
                "log2_slope": round(slope, 2),
                "bits_ratio": round(bits_ratio, 3),
                "n_ratio": n_ratio,
            }
        )

    table.show()
    print("BENCH_JSON " + json.dumps(payload, sort_keys=True))

    benchmark(_measure, 3, 256, 77)
