"""E14 — cold-path annihilation: persisted rounds + columnar encode.

PR 10 attacks the two costs that dominate a *cold* certification — the
first run in a fresh process, nothing resident:

* **kernel compile** — the vectorized round used to recompile its
  tables on every restart.  Now the compiled round is exported into a
  versioned envelope and persisted through the artifact cache, keyed by
  the labeling's wire digest; a restarted process attaches it with
  zero recompilation (``compiled_round_cached=True``,
  ``compile_seconds == 0``).
* **wire encode** — the per-label bit loop is replaced by the columnar
  bulk encoder (one interned field column + one vectorized packing),
  byte-identical by construction and asserted here.

Two legs per n:

* ``cold_s`` vs ``restart_s`` — full verification wall-clock with a
  fresh executor over an empty cache directory (compile + verify +
  envelope store) vs a fresh executor + fresh cache object over the
  *warmed* directory (attach + verify) — the restarted-process story.
* ``encode_perlabel_s`` vs ``encode_bulk_s`` — the per-label
  ``encode_label`` loop (one header, no shared interning — what a
  caller without the bulk entry point pays) vs the columnar bulk
  encoder over the same labeling, byte-identity asserted against the
  reference ``encode_labeling``.  The legs run interleaved (same loop
  iteration, per-round ratios, median reported) because sequential
  timing on a noisy box skews either way by 30-50%.

The committed baseline lives at ``benchmarks/BENCH_E14.json`` (refresh
deliberately via ``E14_OUT``; the bench refuses to overwrite it
otherwise).  Knobs: ``E14_SIZES`` (comma-separated n values; CI smoke
uses a tiny workload), ``E14_ENCODE_ROUNDS``, and
``E14_REQUIRE_SPEEDUP`` — when set, assert at the largest n that the
restart leg is >= 2x cold and the bulk encode >= 3x the per-label
loop (the gates the committed baseline was generated under).
"""

import gc
import json
import os
import statistics
import tempfile
import time

from repro.api import (
    ArtifactCache,
    CertificationSession,
    VerificationEngine,
    make_executor,
)
from repro.codec import (
    WireHeader,
    encode_label,
    encode_labeling,
    encode_labeling_columnar,
)
from repro.experiments import Table, lanewidth_workload, seed_stream

SIZES = tuple(
    int(size) for size in os.environ.get("E14_SIZES", "64,256,1024").split(",")
)
ENCODE_ROUNDS = int(os.environ.get("E14_ENCODE_ROUNDS", "15"))
OUT_PATH = os.environ.get("E14_OUT", "BENCH_E14.json")
ROOT_SEED = 8
BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_E14.json")


def _prove(n: int, seed: int):
    """Labels only; the session stamps the labeling's wire digest."""
    sequence, _graph = lanewidth_workload(3, n, seed)
    session = CertificationSession(rng=seed_stream(ROOT_SEED, "ids").rng(seed))
    report = session.certify(sequence, "connected", verify=False)
    assert not report.refused, report.refusal
    return report


def _timed_verify(engine, config, scheme, labeling):
    t0 = time.perf_counter()
    report = engine.verify(config, scheme, labeling)
    return report, time.perf_counter() - t0


def _byte_identical(bulk, ref):
    assert bulk.header == ref.header
    assert set(bulk.labels) == set(ref.labels)
    for key in ref.labels:
        assert bulk.labels[key].data == ref.labels[key].data, key
        assert bulk.labels[key].bit_length == ref.labels[key].bit_length, key


def test_e14_cold_path(benchmark):
    table = Table(
        "E14: cold-path annihilation",
        [
            "n",
            "cold_s",
            "restart_s",
            "cold_x",
            "enc_perlabel_s",
            "enc_bulk_s",
            "enc_x",
        ],
    )
    payload = {"bench": "e14_cold_path", "property": "connected", "series": []}
    with tempfile.TemporaryDirectory() as root:
        for n in SIZES:
            report = _prove(n, seed=n)
            config, scheme, labeling = (
                report.config,
                report.scheme,
                report.labeling,
            )
            cache_root = os.path.join(root, f"cold-{n}")
            # Cold leg: fresh executor over an *empty* cache directory —
            # pays arrays pack + kernel compile + envelope store.
            cold_engine = VerificationEngine(
                make_executor(
                    "vectorized", artifacts=ArtifactCache(root=cache_root)
                )
            )
            cold_report, cold_s = _timed_verify(
                cold_engine, config, scheme, labeling
            )
            # Restart leg: fresh executor + fresh cache object over the
            # warmed directory — a restarted process attaching the
            # persisted compiled round.
            restart_engine = VerificationEngine(
                make_executor(
                    "vectorized", artifacts=ArtifactCache(root=cache_root)
                )
            )
            restart_report, restart_s = _timed_verify(
                restart_engine, config, scheme, labeling
            )
            assert cold_report.accepted
            assert restart_report.verdicts == cold_report.verdicts
            assert restart_report.accepted == cold_report.accepted
            kernel = (cold_report.kernel_stats or {}).get("mode") == "kernel"
            if kernel:
                assert (
                    cold_report.kernel_stats.get("compiled_round_cached")
                    is False
                ), "cold leg unexpectedly found a persisted round"
                assert (
                    restart_report.kernel_stats.get("compiled_round_cached")
                    is True
                ), "restart leg recompiled despite the persisted envelope"
                assert (
                    restart_report.kernel_stats.get("compile_seconds") == 0
                ), "attached round reported nonzero compile time"
            # Encode legs, interleaved: the per-label encode_label loop
            # vs the columnar bulk encoder, per-round ratios, median.
            # Collector paused over the timed region (standard bench
            # hygiene — cyclic-GC pauses land on whichever leg is
            # running and at these sizes swamp the signal).
            perlabel_times, bulk_times, ratios = [], [], []
            gc.collect()
            gc.disable()
            try:
                for _ in range(ENCODE_ROUNDS):
                    t0 = time.perf_counter()
                    header = WireHeader.for_labeling(labeling)
                    for label in labeling.mapping.values():
                        encode_label(label, header)
                    t1 = time.perf_counter()
                    bulk = encode_labeling_columnar(labeling)
                    t2 = time.perf_counter()
                    perlabel_times.append(t1 - t0)
                    bulk_times.append(t2 - t1)
                    ratios.append((t1 - t0) / max(t2 - t1, 1e-9))
            finally:
                gc.enable()
            _byte_identical(bulk, encode_labeling(labeling))
            # Headline ratio from each leg's best-of (timing noise is
            # one-sided additive — the same estimator pytest-benchmark
            # leads with); the per-round median rides in the payload.
            encode_perlabel_s = min(perlabel_times)
            encode_bulk_s = min(bulk_times)
            encode_x = encode_perlabel_s / max(encode_bulk_s, 1e-9)
            encode_x_median = statistics.median(ratios)
            cold_x = cold_s / max(restart_s, 1e-9)
            point = {
                "n": n,
                "cold_s": round(cold_s, 6),
                "restart_s": round(restart_s, 6),
                "cold_speedup": round(cold_x, 2),
                "encode_perlabel_s": round(encode_perlabel_s, 6),
                "encode_bulk_s": round(encode_bulk_s, 6),
                "encode_speedup": round(encode_x, 2),
                "encode_speedup_median": round(encode_x_median, 2),
                "encode_rounds": ENCODE_ROUNDS,
                "cold_kernel_stats": cold_report.kernel_stats,
                "restart_kernel_stats": restart_report.kernel_stats,
            }
            payload["series"].append(point)
            table.add(
                n,
                f"{cold_s:.3f}",
                f"{restart_s:.3f}",
                f"{cold_x:.1f}x",
                f"{encode_perlabel_s:.4f}",
                f"{encode_bulk_s:.4f}",
                f"{encode_x:.1f}x",
            )
        table.show()

    if os.environ.get("E14_REQUIRE_SPEEDUP"):
        # The PR 10 gates, checked at the largest n (the committed
        # baseline is generated under this knob; CI smoke runs tiny
        # workloads where fixed overheads drown the ratios).
        top = payload["series"][-1]
        assert top["cold_speedup"] >= 2.0, (
            f"restart leg only {top['cold_speedup']}x over cold at "
            f"n={top['n']} (need >= 2x)"
        )
        assert top["encode_speedup"] >= 3.0, (
            f"bulk encode only {top['encode_speedup']}x over the "
            f"per-label loop at n={top['n']} (need >= 3x)"
        )

    if (
        "E14_OUT" not in os.environ
        and os.path.abspath(OUT_PATH) == os.path.abspath(BASELINE_PATH)
    ):
        raise RuntimeError(
            "refusing to overwrite the committed baseline "
            f"{BASELINE_PATH}; set E14_OUT to refresh it deliberately"
        )
    with open(OUT_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("BENCH_JSON " + json.dumps(payload, sort_keys=True))

    # Time the steady-state attach-and-verify round for the plugin's
    # trend tracking; keep it tiny so CI smoke stays fast.
    small = min(SIZES)
    report = _prove(small, seed=small)
    engine = VerificationEngine(make_executor("vectorized"))
    engine.verify(report.config, report.scheme, report.labeling)
    benchmark(
        engine.verify, report.config, report.scheme, report.labeling
    )
