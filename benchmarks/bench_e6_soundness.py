"""E6 — Soundness: tampering that violates the predicate is rejected.

Three adversaries: label mutation, disconnecting edge removal, and
cycle-creating edge addition.  Predicate-violating configurations must be
rejected in 100% of trials; mutated labels on *true* instances are
reported separately (rare survivors are formally benign — soundness
constrains false instances only).
"""

import itertools
import random

from repro.core import certify_lanewidth_graph, random_lanewidth_sequence
from repro.experiments import Table
from repro.pls.adversary import corrupt_one_label
from repro.pls.model import Configuration
from repro.pls.scheme import Labeling
from repro.pls.simulator import run_verification


def _mutation_rate(trials: int) -> tuple:
    rejected = total = 0
    for t in range(trials):
        rng = random.Random(2000 + t)
        seq = random_lanewidth_sequence(3, 10, rng)
        config, scheme, labeling, _res = certify_lanewidth_graph(seq, "connected", rng)
        for _ in range(6):
            bad = corrupt_one_label(labeling, rng)
            if bad.mapping == labeling.mapping:
                continue
            total += 1
            if not run_verification(config, scheme, bad).accepted:
                rejected += 1
    return rejected, total


def _removal_rate(trials: int) -> tuple:
    rejected = total = 0
    for t in range(trials):
        rng = random.Random(3000 + t)
        seq = random_lanewidth_sequence(3, 10, rng)
        config, scheme, labeling, _res = certify_lanewidth_graph(seq, "connected", rng)
        for u, v in config.graph.edges():
            g2 = config.graph.copy()
            g2.remove_edge(u, v)
            if g2.is_connected():
                continue  # predicate still true: not a soundness case
            cfg2 = Configuration(g2, config.ids)
            mapping2 = {
                key: value
                for key, value in labeling.mapping.items()
                if g2.has_edge(*key)
            }
            total += 1
            if not run_verification(
                cfg2, scheme, Labeling("edges", mapping2, labeling.size_context)
            ).accepted:
                rejected += 1
    return rejected, total


def _addition_rate(trials: int) -> tuple:
    rejected = total = 0
    for t in range(trials):
        rng = random.Random(4000 + t)
        seq = random_lanewidth_sequence(3, 10, rng, edge_probability=0.0)
        config, scheme, labeling, _res = certify_lanewidth_graph(seq, "acyclic", rng)
        g = config.graph
        non_edges = [
            (a, b)
            for a, b in itertools.combinations(g.vertices(), 2)
            if not g.has_edge(a, b)
        ]
        u, v = non_edges[rng.randrange(len(non_edges))]
        g2 = g.copy()
        g2.add_edge(u, v)  # creates a cycle: predicate now false
        total += 1
        if not run_verification(
            Configuration(g2, config.ids), scheme, labeling
        ).accepted:
            rejected += 1
    return rejected, total


def test_e6_soundness(benchmark):
    table = Table(
        "E6: soundness under tampering (predicate-violating cases)",
        ["adversary", "rejected", "trials", "rate"],
    )
    for name, fn, trials in (
        ("label mutation (true instance)", _mutation_rate, 12),
        ("disconnecting edge removal", _removal_rate, 12),
        ("cycle-creating edge addition", _addition_rate, 12),
    ):
        rejected, total = fn(trials)
        table.add(name, rejected, total, f"{rejected / max(total, 1):.3f}")
        if name != "label mutation (true instance)":
            assert rejected == total  # hard soundness requirement
        else:
            assert rejected >= total - 2  # benign survivors tolerated
    table.show()

    benchmark(_mutation_rate, 3)
