"""E6 — Soundness: tampering that violates the predicate is rejected.

Three adversaries, now declared as an :class:`repro.api.AuditPlan`
instead of hand-rolled loops: label mutation, disconnecting edge
removal, and cycle-creating edge addition.  Predicate-violating
configurations must be rejected in 100% of trials; mutated labels on
*true* instances are reported separately (rare survivors are formally
benign — soundness constrains false instances only).

Every random choice derives from ``ROOT_SEED`` through named streams;
``E6_TRIALS`` (env) shrinks the campaign for CI smoke runs.
"""

import os

from repro.api import (
    AuditCase,
    AuditPlan,
    EdgeAdditionAttack,
    EdgeRemovalAttack,
    MutationAttack,
)
from repro.core import certify_lanewidth_graph, random_lanewidth_sequence
from repro.experiments import Table

ROOT_SEED = 6
TRIALS = int(os.environ.get("E6_TRIALS", "12"))


def _case_factory(algebra, edge_probability=None):
    """Honest-instance factory: one random lanewidth graph per trial."""

    def factory(trial, rng):
        kwargs = {}
        if edge_probability is not None:
            kwargs["edge_probability"] = edge_probability
        sequence = random_lanewidth_sequence(3, 10, rng, **kwargs)
        config, scheme, labeling, _res = certify_lanewidth_graph(
            sequence, algebra, rng
        )
        return AuditCase(config, scheme, labeling, trial)

    return factory


def _mutation_campaign(trials: int):
    """Mutate labels of *true* instances (survivors formally benign)."""
    return AuditPlan(
        case_factory=_case_factory("connected"),
        attacks=[MutationAttack(per_case=6)],
        trials=trials,
        root_seed=ROOT_SEED,
        name="e6-mutation",
    ).run()


def _removal_campaign(trials: int):
    """Delete every disconnecting edge under the original proof."""
    return AuditPlan(
        case_factory=_case_factory("connected"),
        attacks=[EdgeRemovalAttack(still_true=lambda g: g.is_connected())],
        trials=trials,
        root_seed=ROOT_SEED,
        name="e6-removal",
    ).run()


def _addition_campaign(trials: int):
    """Add a cycle-creating edge to a certified forest."""
    return AuditPlan(
        case_factory=_case_factory("acyclic", edge_probability=0.0),
        attacks=[EdgeAdditionAttack(per_case=1)],
        trials=trials,
        root_seed=ROOT_SEED,
        name="e6-addition",
    ).run()


def test_e6_soundness(benchmark):
    table = Table(
        "E6: soundness under tampering (predicate-violating cases)",
        ["adversary", "rejected", "trials", "rate"],
    )
    campaigns = (
        ("label mutation (true instance)", _mutation_campaign, "mutation"),
        ("disconnecting edge removal", _removal_campaign, "edge-removal"),
        ("cycle-creating edge addition", _addition_campaign, "edge-addition"),
    )
    for name, campaign, attack in campaigns:
        tally = campaign(TRIALS).tally(attack)
        table.add(
            name,
            tally.rejected,
            tally.attempted,
            f"{tally.rejection_rate:.3f}",
        )
        if name != "label mutation (true instance)":
            assert tally.all_rejected  # hard soundness requirement
            assert tally.attempted > 0
        else:
            assert tally.rejected >= tally.attempted - 2  # benign survivors
    table.show()

    benchmark(_mutation_campaign, 3)
