"""E7 — the KKP Omega(log n) lower bound, demonstrated constructively.

For the DistanceMod(M) scheme family (labels of ceil(log2 M) bits), the
cut-and-splice adversary forges an accepted cycle whenever M < n - 2 and
finds no collision once M reaches n: the exact log2(n) bit threshold the
theorem predicts.
"""

import math
import random

from repro.experiments import Table
from repro.pls.lower_bound import DistanceModScheme, splice_attack

N = 96


def _attack(modulus: int, seed: int):
    return splice_attack(DistanceModScheme(modulus), N, random.Random(seed))


def test_e7_lower_bound(benchmark):
    table = Table(
        f"E7: splice attack on DistanceMod(M) over the path on n={N} vertices",
        ["M", "label bits", "collision found", "forged cycle accepted", "cycle length"],
    )
    for modulus in (4, 8, 16, 32, 64, 128, 256):
        outcome = _attack(modulus, seed=modulus)
        bits = max(1, math.ceil(math.log2(modulus)))
        table.add(
            modulus,
            bits,
            outcome.collision_found,
            outcome.cycle_accepted,
            outcome.cycle_length or "-",
        )
        if modulus <= N - 3:
            assert outcome.collision_found and outcome.cycle_accepted
        if modulus >= N:
            assert not outcome.collision_found
    table.show()
    print(
        "threshold: attacks succeed for M < n (sub-log labels), fail at "
        f"M >= n = {N} (log2(n) = {math.log2(N):.1f} bits)"
    )

    benchmark(_attack, 16, 1)
