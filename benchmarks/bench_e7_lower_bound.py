"""E7 — the KKP Omega(log n) lower bound, demonstrated constructively.

For the DistanceMod(M) scheme family (labels of ceil(log2 M) bits), the
cut-and-splice adversary forges an accepted cycle whenever M < n - 2 and
finds no collision once M reaches n: the exact log2(n) bit threshold the
theorem predicts.

The campaign runs through :class:`repro.api.AuditPlan` — one trial per
modulus, a custom :class:`SpliceForgery` attack performing the surgery —
so here the *attacker* is audited: a forgery that gets **accepted** is
the theorem's predicted soundness failure, and the "skipped" outcome
(no collision to splice) marks the schemes with enough label bits.
"""

import math

from repro.api import AdversarialInstance, AuditAttack, AuditCase, AuditPlan
from repro.experiments import Table
from repro.pls.lower_bound import DistanceModScheme, forge_spliced_cycle
from repro.pls.model import Configuration

from repro.graphs.generators import path_graph

N = 96
MODULI = (4, 8, 16, 32, 64, 128, 256)
ROOT_SEED = 7


class SpliceForgery(AuditAttack):
    """Cut-and-splice: close a repeated-label segment into a cycle."""

    name = "splice"

    def instances(self, case, rng):
        forged = forge_spliced_cycle(case.config, case.labeling)
        if forged is None:
            yield None  # no collision: labels are long enough
            return
        config, labeling, _positions = forged
        yield AdversarialInstance(
            config,
            labeling,
            note=f"spliced cycle of length {config.graph.n}",
            data={"cycle_length": config.graph.n},
        )


def _case_factory(trial, rng):
    """Honest path instance under DistanceMod(MODULI[trial])."""
    scheme = DistanceModScheme(MODULI[trial])
    config = Configuration.with_random_ids(path_graph(N), rng)
    return AuditCase(config, scheme, scheme.prove(config), trial)


def _campaign(trials: int):
    return AuditPlan(
        case_factory=_case_factory,
        attacks=[SpliceForgery()],
        trials=trials,
        root_seed=ROOT_SEED,
        name="e7-splice",
    ).run()


def test_e7_lower_bound(benchmark):
    report = _campaign(len(MODULI))
    table = Table(
        f"E7: splice attack on DistanceMod(M) over the path on n={N} vertices",
        ["M", "label bits", "collision found", "forged cycle accepted", "cycle length"],
    )
    for trial, modulus in enumerate(MODULI):
        (attempt,) = report.attempts_for("splice", trial)
        collision_found = attempt.outcome != "skipped"
        cycle_accepted = attempt.outcome == "accepted"
        length = attempt.data.get("cycle_length")
        bits = max(1, math.ceil(math.log2(modulus)))
        table.add(
            modulus,
            bits,
            collision_found,
            cycle_accepted,
            length or "-",
        )
        if modulus <= N - 3:
            assert collision_found and cycle_accepted
        if modulus >= N:
            assert not collision_found
    table.show()
    print(
        "threshold: attacks succeed for M < n (sub-log labels), fail at "
        f"M >= n = {N} (log2(n) = {math.log2(N):.1f} bits)"
    )

    benchmark(_campaign, 3)
