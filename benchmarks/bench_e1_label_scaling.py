"""E1/F1 — Theorem 1's headline: label size grows as Θ(log n).

Regenerates the label-size table over lanewidth families w ∈ {2, 3, 4}
and n up to 2^11, for four MSO2 properties, and asserts the shape: the
bits/log2(n) ratio stays within a constant band (no log² growth).

Measured through ``repro.api``: single-property points use the facade;
the extra-property sweep shares one :class:`CertificationSession` per
``n`` so the structural stages (sequence match + hierarchy) run once for
all four properties on the same host.
"""

import math
import random

from repro.api import CertificationSession, certify
from repro.experiments import Table, fit_log_slope, lanewidth_workload
from repro.experiments.reporting import series

SIZES = (32, 128, 512, 2048)
WIDTHS = (2, 3, 4)
PROPERTY = "connected"
EXTRA_PROPERTIES = ("acyclic", "bipartite", "even-order")


def _measure(width: int, n: int, key: str, seed: int) -> int:
    sequence, _graph = lanewidth_workload(width, n, seed)
    report = certify(sequence, key, rng=random.Random(seed + 1))
    if report.refused:
        return -1
    assert report.accepted
    return report.max_label_bits


def test_e1_label_scaling(benchmark):
    table = Table(
        "E1: label size vs n (Theorem 1 claim: Θ(log n))",
        ["w", "property", "n", "max_bits", "bits/log2(n)"],
    )
    all_series = []

    for width in WIDTHS:
        points = []
        for n in SIZES:
            bits = _measure(width, n, PROPERTY, seed=width * 1000 + n)
            if bits < 0:
                continue
            points.append((n, bits))
            table.add(width, PROPERTY, n, bits, f"{bits / math.log2(n):.1f}")
        all_series.append((f"E1-w{width}-{PROPERTY}", points))
        # Shape assertion: quadrupling log n must not quadruple the bits —
        # Θ(log n) means bits scale ~linearly in log n; allow slack for the
        # additive constant but rule out Θ(log² n) blowup.
        lo, hi = points[0], points[-1]
        log_ratio = math.log2(hi[0]) / math.log2(lo[0])
        assert hi[1] <= 1.6 * log_ratio * lo[1], (width, points)

    # The extra properties share one host per n: batch them in a session
    # so decompose-side work runs once and only evaluate/label repeat.
    extra_points = {key: [] for key in EXTRA_PROPERTIES}
    for n in SIZES[:3]:
        sequence, _graph = lanewidth_workload(3, n, 7000 + n)
        session = CertificationSession(rng=random.Random(7001 + n))
        reports = session.certify(sequence, list(EXTRA_PROPERTIES))
        assert session.stage_counters["hierarchy"] == 1  # shared structure
        for key in EXTRA_PROPERTIES:
            report = reports[key]
            if report.refused:
                continue
            assert report.accepted
            bits = report.max_label_bits
            extra_points[key].append((n, bits))
            table.add(3, key, n, bits, f"{bits / math.log2(n):.1f}")
    for key in EXTRA_PROPERTIES:
        if extra_points[key]:
            all_series.append((f"E1-w3-{key}", extra_points[key]))

    table.show()
    for name, points in all_series:
        print(series(name, points))
        print(f"slope(bits vs log2 n) for {name}: {fit_log_slope(points):.1f}")

    benchmark(_measure, 3, 256, PROPERTY, 42)
