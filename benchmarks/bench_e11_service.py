"""E11 — certification as a service: concurrent clients over one daemon.

The service layer's serving regimes, measured end to end through the
real socket stack (unix-socket daemon + multiplexing clients), all on
``verify: false`` certify requests — the paper's completeness theorem
is what makes skipping the round safe on the honest path, and the
round stays replayable on demand (the fourth regime):

* **coalesced** — M clients fire the *same* certify request at once;
  the coalescer runs the prover exactly once and fans the answer out
  (asserted through the metrics snapshot: ``prover_runs == 1``,
  ``coalesced_requests == M-1`` — the ISSUE's observability criterion);
* **cold** — G distinct graphs certified for the first time (every
  request proves: decomposition, hierarchy, evaluation, labeling);
* **warm** — the same G requests again; every certificate is served
  from the sharded store without re-decoding the per-edge payloads
  (``load(decode=False)``) — certify-once, serve-many;
* **reverify** — the round replayed from the store for each graph
  (decode + full verification, zero prover stages).

The series — requests/second per regime, per host size — is persisted
for trajectory tracking: one machine-readable ``BENCH_JSON`` line on
stdout *and* a ``BENCH_E11.json`` file (path override: ``E11_OUT``),
which CI uploads as an artifact.  The committed baseline lives at
``benchmarks/BENCH_E11.json`` and records the headline ratio: warm
serving at least 5x cold throughput.  Environment knobs: ``E11_SIZES``
(comma-separated host sizes; CI's smoke step uses a tiny workload),
``E11_CLIENTS`` (concurrent connections), ``E11_GRAPHS`` (distinct
graphs per sweep), ``E11_OUT``.
"""

import asyncio
import json
import os
import tempfile
import time

from repro.experiments import Table, lanewidth_workload
from repro.service import (
    CertificationService,
    Daemon,
    ServiceClient,
    ServiceConfig,
    result_of,
)

E11_SIZES = tuple(
    int(size) for size in os.environ.get("E11_SIZES", "32,64,128").split(",")
)
E11_CLIENTS = int(os.environ.get("E11_CLIENTS", "8"))
E11_GRAPHS = int(os.environ.get("E11_GRAPHS", "6"))
E11_OUT = os.environ.get("E11_OUT", "BENCH_E11.json")

PROPERTY = "connected"


def _hosts(n: int):
    """One shared graph (the coalescing target) + G distinct graphs."""
    _seq, shared = lanewidth_workload(2, n, 0xE11)
    graphs = [
        lanewidth_workload(2, n, 0xE11 + 1 + i)[1] for i in range(E11_GRAPHS)
    ]
    return shared, graphs


async def _drive(socket_path: str, shared, graphs) -> dict:
    """All four phases against one freshly started daemon."""
    clients = [
        await ServiceClient.connect(socket_path=socket_path)
        for _ in range(E11_CLIENTS)
    ]
    try:
        # Phase 1 — coalesced: every client asks for the same thing at
        # the same time, against an empty store.
        began = time.perf_counter()
        responses = await asyncio.gather(
            *[
                client.certify(shared, [PROPERTY], verify=False)
                for client in clients
            ]
        )
        coalesced_s = time.perf_counter() - began
        for response in responses:
            assert not result_of(response)["reports"][PROPERTY]["refused"]
        flags = sorted(r["meta"]["coalesced"] for r in responses)
        assert flags == [False] + [True] * (E11_CLIENTS - 1), flags

        snap = result_of(await clients[0].metrics())
        # The observability criterion: M identical concurrent requests
        # -> exactly one prover run, M-1 coalesced, visible in metrics.
        assert snap["prover_runs"] == 1, snap
        assert snap["coalesced_requests"] == E11_CLIENTS - 1, snap

        async def sweep(expect_served: str) -> float:
            began = time.perf_counter()
            swept = await asyncio.gather(
                *[
                    clients[i % E11_CLIENTS].certify(
                        graph, [PROPERTY], verify=False
                    )
                    for i, graph in enumerate(graphs)
                ]
            )
            elapsed = time.perf_counter() - began
            for response in swept:
                result = result_of(response)
                assert not result["reports"][PROPERTY]["refused"]
                assert result["served"][PROPERTY] == expect_served, result
            return elapsed

        # Phase 2 — cold: G distinct graphs, all proven from scratch.
        cold_s = await sweep("prover")
        # Phase 3 — warm: the same G requests, served from the store.
        warm_s = await sweep("store")

        # Phase 4 — reverify: replay the verification round on each
        # stored certificate (decode + round, zero prover stages).
        fingerprints = [graph.fingerprint() for graph in graphs]
        began = time.perf_counter()
        replays = await asyncio.gather(
            *[
                clients[i % E11_CLIENTS].reverify(fingerprint, PROPERTY)
                for i, fingerprint in enumerate(fingerprints)
            ]
        )
        reverify_s = time.perf_counter() - began
        for response in replays:
            replay = result_of(response)["reports"][PROPERTY]
            assert replay["accepted"] is True, replay
            assert replay["verification"]["accepted"] is True

        final = result_of(await clients[0].metrics())
        assert final["prover_runs"] == 1 + E11_GRAPHS
        assert final["store_hits"] == 2 * E11_GRAPHS  # warm + reverify
        assert final["store"]["entries"] == 1 + E11_GRAPHS
        result_of(await clients[0].shutdown())
    finally:
        for client in clients:
            await client.close()
    return {
        "coalesced_s": coalesced_s,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "reverify_s": reverify_s,
        "metrics": final,
    }


async def _one_size(n: int) -> dict:
    shared, graphs = _hosts(n)
    with tempfile.TemporaryDirectory() as root:
        # k=3: the daemon certifies bare wire graphs, and the witness
        # search on a 2-lane host occasionally settles for width 3.
        service = CertificationService(
            ServiceConfig(store_root=os.path.join(root, "store"),
                          k=3, worker_threads=4)
        )
        daemon = Daemon(
            service, socket_path=os.path.join(root, "e11.sock")
        )
        runner = asyncio.ensure_future(daemon.run())
        while daemon.address is None:
            await asyncio.sleep(0.005)
        timings = await _drive(
            daemon.address[len("unix:"):], shared, graphs
        )
        await asyncio.wait_for(runner, timeout=300)
    metrics = timings["metrics"]
    return {
        "n": n,
        "clients": E11_CLIENTS,
        "graphs": E11_GRAPHS,
        "coalesced_rps": round(E11_CLIENTS / timings["coalesced_s"], 2),
        "cold_rps": round(E11_GRAPHS / timings["cold_s"], 2),
        "warm_rps": round(E11_GRAPHS / timings["warm_s"], 2),
        "reverify_rps": round(E11_GRAPHS / timings["reverify_s"], 2),
        "warm_over_cold": round(timings["cold_s"] / timings["warm_s"], 2),
        "prover_runs": metrics["prover_runs"],
        "coalesced_requests": metrics["coalesced_requests"],
        "store_hits": metrics["store_hits"],
    }


def test_e11_service_throughput(benchmark):
    table = Table(
        "E11: daemon throughput by serving regime (req/s)",
        ["n", "cold_rps", "warm_rps", "reverify_rps", "coalesced_rps",
         "warm/cold"],
    )
    payload = {
        "bench": "e11_service",
        "clients": E11_CLIENTS,
        "graphs_per_sweep": E11_GRAPHS,
        "property": PROPERTY,
        "series": [],
    }
    for n in E11_SIZES:
        point = asyncio.run(_one_size(n))
        # Warm serving must beat cold proving outright at every size;
        # the committed baseline records the actual multiple (>=5x on
        # the default workload).
        assert point["warm_over_cold"] > 1.0, point
        payload["series"].append(point)
        table.add(
            n,
            f"{point['cold_rps']:.1f}",
            f"{point['warm_rps']:.1f}",
            f"{point['reverify_rps']:.1f}",
            f"{point['coalesced_rps']:.1f}",
            f"{point['warm_over_cold']:.1f}x",
        )
    table.show()

    with open(E11_OUT, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("BENCH_JSON " + json.dumps(payload, sort_keys=True))

    # The benchmarked unit: the service front-end itself (validation,
    # coalescer, metrics, response envelope) on the cheapest op — the
    # per-request overhead every regime pays.
    with tempfile.TemporaryDirectory() as root:
        service = CertificationService(
            ServiceConfig(store_root=os.path.join(root, "store"),
                          worker_threads=1)
        )
        try:
            benchmark(
                lambda: asyncio.run(service.handle({"id": 0, "op": "ping"}))
            )
        finally:
            service.close_blocking()
