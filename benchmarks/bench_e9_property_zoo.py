"""E9 — Proposition 2.4/6.1 in practice: algebra ≡ MSO ≡ direct checkers.

Three-way agreement counts across the property zoo, exhaustively on all
labeled graphs with 4 vertices and on random composition sequences.
The three columns correspond to the three semantics the reproduction
implements independently: naive MSO model checking, direct polynomial
checkers, and the finite-state homomorphism-class algebras.
"""

import itertools
import random

from repro.courcelle import algebra_for, random_op_sequence
from repro.experiments import Table
from repro.graphs.generators import enumerate_graphs
from repro.mso import check_formula
from repro.mso.properties import PROPERTY_ZOO

ZOO_WITH_ALGEBRAS = [
    ("connected", "connected"),
    ("acyclic", "acyclic"),
    ("bipartite", "bipartite"),
    ("tree", "tree"),
    ("3-colorable", "colorable-3"),
    ("vertex-cover<=2", "vertex-cover-2"),
    ("independent-set>=2", "independent-set-2"),
    ("dominating-set<=2", "dominating-set-2"),
    ("perfect-matching", "perfect-matching"),
    ("hamiltonian-cycle", "hamiltonian-cycle"),
    ("hamiltonian-path", "hamiltonian-path"),
    ("even-order", "even-order"),
    ("max-degree<=2", "max-degree-2"),
]


def _zoo_agreement() -> list:
    rows = []
    graphs = list(enumerate_graphs(4, connected_only=False))
    for prop_name, algebra_key in ZOO_WITH_ALGEBRAS:
        prop = PROPERTY_ZOO[prop_name]
        formula_checked = mso_agree = 0
        algebra_agree = algebra_total = 0
        for g in graphs:
            want = prop.check(g)
            if prop.formula is not None:
                formula_checked += 1
                if check_formula(g, prop.formula) == want:
                    mso_agree += 1
        for t in range(60):
            rng = random.Random(hash((prop_name, t)) & 0xFFFF)
            seq = random_op_sequence(rng, max_new=3, steps=10)
            graph = seq.run_reference().real_subgraph()
            want = prop.check(graph)
            algebra = algebra_for(algebra_key)
            try:
                state, arity = seq.run_algebra(algebra)
            except ValueError:
                continue
            algebra_total += 1
            if algebra.accepts(state, arity) == want:
                algebra_agree += 1
        rows.append(
            (
                prop_name,
                f"{mso_agree}/{formula_checked}" if formula_checked else "n/a",
                f"{algebra_agree}/{algebra_total}",
            )
        )
        assert mso_agree == formula_checked
        assert algebra_agree == algebra_total
    return rows


def test_e9_property_zoo(benchmark):
    table = Table(
        "E9: three-semantics agreement (MSO formula / direct / algebra)",
        ["property", "MSO==direct (all n=4 graphs)", "algebra==direct (random ops)"],
    )
    for row in _zoo_agreement():
        table.add(*row)
    table.show()

    benchmark(lambda: _zoo_agreement()[:3])
