"""E9 — Proposition 2.4/6.1 in practice: algebra ≡ MSO ≡ direct checkers.

Three-way agreement counts across the property zoo, exhaustively on all
labeled graphs with 4 vertices and on random composition sequences.
The three columns correspond to the three semantics the reproduction
implements independently: naive MSO model checking, direct polynomial
checkers, and the finite-state homomorphism-class algebras.

The second test runs the zoo end-to-end through ``repro.api``: one
:class:`CertificationSession` batch-proves every property against each
random host, so the structural stages run once per host — the
certification verdicts must agree with the direct checkers.

The third test is the plan-cache trajectory series: batch-certify the
whole zoo against one host **cold** (empty artifact cache) and **warm**
(a fresh session over the persisted cache), per host size.  The warm
pass must run zero structural stages, and the series — cold seconds,
warm seconds, speedup — is persisted for trajectory tracking: one
machine-readable ``BENCH_JSON`` line on stdout *and* a ``BENCH_E9.json``
file (path override: ``E9_OUT``), which CI uploads as an artifact.  The
first committed baseline lives at ``benchmarks/BENCH_E9.json``.
Environment knobs: ``E9_SIZES`` (comma-separated host sizes; CI's smoke
step uses a tiny workload) and ``E9_OUT``.
"""

import itertools
import json
import os
import random
import tempfile
import time

from repro.api import CertificateStore, CertificationSession
from repro.core import apply_construction, random_lanewidth_sequence
from repro.courcelle import algebra_for, random_op_sequence
from repro.experiments import Table, lanewidth_workload
from repro.graphs.generators import enumerate_graphs
from repro.mso import check_formula
from repro.mso.properties import PROPERTY_ZOO

E9_SIZES = tuple(
    int(size) for size in os.environ.get("E9_SIZES", "32,64,128").split(",")
)
E9_OUT = os.environ.get("E9_OUT", "BENCH_E9.json")

ZOO_WITH_ALGEBRAS = [
    ("connected", "connected"),
    ("acyclic", "acyclic"),
    ("bipartite", "bipartite"),
    ("tree", "tree"),
    ("3-colorable", "colorable-3"),
    ("vertex-cover<=2", "vertex-cover-2"),
    ("independent-set>=2", "independent-set-2"),
    ("dominating-set<=2", "dominating-set-2"),
    ("perfect-matching", "perfect-matching"),
    ("hamiltonian-cycle", "hamiltonian-cycle"),
    ("hamiltonian-path", "hamiltonian-path"),
    ("even-order", "even-order"),
    ("max-degree<=2", "max-degree-2"),
]


def _zoo_agreement() -> list:
    rows = []
    graphs = list(enumerate_graphs(4, connected_only=False))
    for prop_name, algebra_key in ZOO_WITH_ALGEBRAS:
        prop = PROPERTY_ZOO[prop_name]
        formula_checked = mso_agree = 0
        algebra_agree = algebra_total = 0
        for g in graphs:
            want = prop.check(g)
            if prop.formula is not None:
                formula_checked += 1
                if check_formula(g, prop.formula) == want:
                    mso_agree += 1
        for t in range(60):
            rng = random.Random(hash((prop_name, t)) & 0xFFFF)
            seq = random_op_sequence(rng, max_new=3, steps=10)
            graph = seq.run_reference().real_subgraph()
            want = prop.check(graph)
            algebra = algebra_for(algebra_key)
            try:
                state, arity = seq.run_algebra(algebra)
            except ValueError:
                continue
            algebra_total += 1
            if algebra.accepts(state, arity) == want:
                algebra_agree += 1
        rows.append(
            (
                prop_name,
                f"{mso_agree}/{formula_checked}" if formula_checked else "n/a",
                f"{algebra_agree}/{algebra_total}",
            )
        )
        assert mso_agree == formula_checked
        assert algebra_agree == algebra_total
    return rows


def test_e9_property_zoo(benchmark):
    table = Table(
        "E9: three-semantics agreement (MSO formula / direct / algebra)",
        ["property", "MSO==direct (all n=4 graphs)", "algebra==direct (random ops)"],
    )
    for row in _zoo_agreement():
        table.add(*row)
    table.show()

    benchmark(lambda: _zoo_agreement()[:3])


# Properties batch-certified end-to-end (cheap algebras at lanewidth 2;
# the table-based ones stay feasible because the hosts are small).
BATCH_ZOO = [
    ("connected", "connected"),
    ("acyclic", "acyclic"),
    ("bipartite", "bipartite"),
    ("tree", "tree"),
    ("even-order", "even-order"),
    ("max-degree<=2", "max-degree-2"),
    ("3-colorable", "colorable-3"),
]


def _batch_certified_agreement(trials: int) -> list:
    keys = [key for _name, key in BATCH_ZOO]
    rows = []
    for prop_name, algebra_key in BATCH_ZOO:
        rows.append([prop_name, algebra_key, 0, 0])
    session_counters = {}
    for t in range(trials):
        rng = random.Random(0xE9 + t)
        seq = random_lanewidth_sequence(2, rng.randrange(4, 14), rng)
        graph = apply_construction(seq)
        session = CertificationSession(rng=rng)
        reports = session.certify(seq, keys)
        # The batch shares one hierarchy: structural stages ran once.
        assert session.stage_counters["hierarchy"] == 1
        assert session.stage_counters["evaluate"] == len(keys)
        for row, (prop_name, algebra_key) in zip(rows, BATCH_ZOO):
            want = PROPERTY_ZOO[prop_name].check(graph)
            got = reports[algebra_key].accepted
            row[3] += 1
            if got == want:
                row[2] += 1
        for name, count in session.stage_counters.items():
            session_counters[name] = session_counters.get(name, 0) + count
    return [
        (name, key, f"{agree}/{total}", agree == total)
        for name, key, agree, total in rows
    ] + [("(stage totals)", str(session_counters), "", True)]


def test_e9_batch_certification(benchmark):
    table = Table(
        "E9b: batch-certified verdicts vs direct checkers (one session/host)",
        ["property", "algebra key", "certified==direct", "ok"],
    )
    rows = _batch_certified_agreement(trials=12)
    for row in rows:
        table.add(*row)
        assert row[3], row
    table.show()

    benchmark(_batch_certified_agreement, 2)


# ----------------------------------------------------------------------
# E9c: cold-cache vs warm-cache batch certification (the plan series).
# ----------------------------------------------------------------------
ZOO_KEYS = [key for _name, key in BATCH_ZOO]
STRUCTURAL_NODES = ("decompose", "lanes", "completion", "match", "hierarchy")


def _certify_zoo(n: int, store: CertificateStore, seed: int):
    """One full-zoo batch through a fresh session over ``store``.

    Returns ``(seconds, session, reports)``.  The identifier rng is
    seeded per (n, seed) so cold and warm passes draw the same
    configuration — the realistic re-serve shape, and what lets the
    warm pass resolve the id-keyed label artifacts too.
    """
    sequence, _graph = lanewidth_workload(2, n, seed)
    session = CertificationSession(rng=random.Random(0xE9C + n), store=store)
    began = time.perf_counter()
    reports = session.certify(sequence, ZOO_KEYS, verify=False)
    return time.perf_counter() - began, session, reports


def test_e9_artifact_cache_speedup(benchmark):
    table = Table(
        "E9c: zoo batch certification, cold vs warm artifact cache (seconds)",
        ["n", "cold_s", "warm_s", "speedup", "warm structural runs"],
    )
    payload = {
        "bench": "e9_property_zoo_cache",
        "properties": ZOO_KEYS,
        "series": [],
    }
    for n in E9_SIZES:
        with tempfile.TemporaryDirectory() as root:
            store = CertificateStore(root)
            cold_s, cold_session, cold_reports = _certify_zoo(n, store, seed=n)
            warm_s, warm_session, warm_reports = _certify_zoo(n, store, seed=n)
            structural_runs = sum(
                warm_session.stage_counters.get(name, 0)
                for name in STRUCTURAL_NODES
            )
            # The acceptance contract: a warm cache runs zero structural
            # nodes, and the reports are indistinguishable from cold.
            assert structural_runs == 0, warm_session.stage_counters
            for key in ZOO_KEYS:
                assert warm_reports[key].refused == cold_reports[key].refused
                if not cold_reports[key].refused:
                    assert warm_reports[key].structure_cached
                    assert (
                        warm_reports[key].total_label_bits
                        == cold_reports[key].total_label_bits
                    )
            speedup = cold_s / warm_s if warm_s > 0 else float("inf")
            point = {
                "n": n,
                "cold_s": round(cold_s, 6),
                "warm_s": round(warm_s, 6),
                "speedup": round(speedup, 2),
                "warm_structural_runs": structural_runs,
            }
            payload["series"].append(point)
            table.add(
                n, f"{cold_s:.3f}", f"{warm_s:.3f}", f"{speedup:.1f}x",
                structural_runs,
            )
    table.show()
    # The headline claim, on the largest host of the series: warm must
    # beat cold (the committed baseline records the actual multiple).
    largest = payload["series"][-1]
    assert largest["warm_s"] < largest["cold_s"], largest

    with open(E9_OUT, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("BENCH_JSON " + json.dumps(payload, sort_keys=True))

    def _cold_round(n: int) -> float:
        # A fresh store per round keeps every timed iteration cold —
        # reusing one store would mix one cold round into warm ones.
        with tempfile.TemporaryDirectory() as root:
            return _certify_zoo(n, CertificateStore(root), 7)[0]

    benchmark(_cold_round, min(E9_SIZES))
