"""E9 — Proposition 2.4/6.1 in practice: algebra ≡ MSO ≡ direct checkers.

Three-way agreement counts across the property zoo, exhaustively on all
labeled graphs with 4 vertices and on random composition sequences.
The three columns correspond to the three semantics the reproduction
implements independently: naive MSO model checking, direct polynomial
checkers, and the finite-state homomorphism-class algebras.

The second test runs the zoo end-to-end through ``repro.api``: one
:class:`CertificationSession` batch-proves every property against each
random host, so the structural stages run once per host — the
certification verdicts must agree with the direct checkers.
"""

import itertools
import random

from repro.api import CertificationSession
from repro.core import apply_construction, random_lanewidth_sequence
from repro.courcelle import algebra_for, random_op_sequence
from repro.experiments import Table
from repro.graphs.generators import enumerate_graphs
from repro.mso import check_formula
from repro.mso.properties import PROPERTY_ZOO

ZOO_WITH_ALGEBRAS = [
    ("connected", "connected"),
    ("acyclic", "acyclic"),
    ("bipartite", "bipartite"),
    ("tree", "tree"),
    ("3-colorable", "colorable-3"),
    ("vertex-cover<=2", "vertex-cover-2"),
    ("independent-set>=2", "independent-set-2"),
    ("dominating-set<=2", "dominating-set-2"),
    ("perfect-matching", "perfect-matching"),
    ("hamiltonian-cycle", "hamiltonian-cycle"),
    ("hamiltonian-path", "hamiltonian-path"),
    ("even-order", "even-order"),
    ("max-degree<=2", "max-degree-2"),
]


def _zoo_agreement() -> list:
    rows = []
    graphs = list(enumerate_graphs(4, connected_only=False))
    for prop_name, algebra_key in ZOO_WITH_ALGEBRAS:
        prop = PROPERTY_ZOO[prop_name]
        formula_checked = mso_agree = 0
        algebra_agree = algebra_total = 0
        for g in graphs:
            want = prop.check(g)
            if prop.formula is not None:
                formula_checked += 1
                if check_formula(g, prop.formula) == want:
                    mso_agree += 1
        for t in range(60):
            rng = random.Random(hash((prop_name, t)) & 0xFFFF)
            seq = random_op_sequence(rng, max_new=3, steps=10)
            graph = seq.run_reference().real_subgraph()
            want = prop.check(graph)
            algebra = algebra_for(algebra_key)
            try:
                state, arity = seq.run_algebra(algebra)
            except ValueError:
                continue
            algebra_total += 1
            if algebra.accepts(state, arity) == want:
                algebra_agree += 1
        rows.append(
            (
                prop_name,
                f"{mso_agree}/{formula_checked}" if formula_checked else "n/a",
                f"{algebra_agree}/{algebra_total}",
            )
        )
        assert mso_agree == formula_checked
        assert algebra_agree == algebra_total
    return rows


def test_e9_property_zoo(benchmark):
    table = Table(
        "E9: three-semantics agreement (MSO formula / direct / algebra)",
        ["property", "MSO==direct (all n=4 graphs)", "algebra==direct (random ops)"],
    )
    for row in _zoo_agreement():
        table.add(*row)
    table.show()

    benchmark(lambda: _zoo_agreement()[:3])


# Properties batch-certified end-to-end (cheap algebras at lanewidth 2;
# the table-based ones stay feasible because the hosts are small).
BATCH_ZOO = [
    ("connected", "connected"),
    ("acyclic", "acyclic"),
    ("bipartite", "bipartite"),
    ("tree", "tree"),
    ("even-order", "even-order"),
    ("max-degree<=2", "max-degree-2"),
    ("3-colorable", "colorable-3"),
]


def _batch_certified_agreement(trials: int) -> list:
    keys = [key for _name, key in BATCH_ZOO]
    rows = []
    for prop_name, algebra_key in BATCH_ZOO:
        rows.append([prop_name, algebra_key, 0, 0])
    session_counters = {}
    for t in range(trials):
        rng = random.Random(0xE9 + t)
        seq = random_lanewidth_sequence(2, rng.randrange(4, 14), rng)
        graph = apply_construction(seq)
        session = CertificationSession(rng=rng)
        reports = session.certify(seq, keys)
        # The batch shares one hierarchy: structural stages ran once.
        assert session.stage_counters["hierarchy"] == 1
        assert session.stage_counters["evaluate"] == len(keys)
        for row, (prop_name, algebra_key) in zip(rows, BATCH_ZOO):
            want = PROPERTY_ZOO[prop_name].check(graph)
            got = reports[algebra_key].accepted
            row[3] += 1
            if got == want:
                row[2] += 1
        for name, count in session.stage_counters.items():
            session_counters[name] = session_counters.get(name, 0) + count
    return [
        (name, key, f"{agree}/{total}", agree == total)
        for name, key, agree, total in rows
    ] + [("(stage totals)", str(session_counters), "", True)]


def test_e9_batch_certification(benchmark):
    table = Table(
        "E9b: batch-certified verdicts vs direct checkers (one session/host)",
        ["property", "algebra key", "certified==direct", "ok"],
    )
    rows = _batch_certified_agreement(trials=12)
    for row in rows:
        table.add(*row)
        assert row[3], row
    table.show()

    benchmark(_batch_certified_agreement, 2)
