"""E5 — Completeness: the honest prover makes every vertex accept.

Acceptance-rate grid over families × properties (must be 100% whenever
the property holds; the prover correctly refuses otherwise).
"""

import random

from repro.core import apply_construction, certify_lanewidth_graph, random_lanewidth_sequence
from repro.experiments import Table, property_truth
from repro.pls.scheme import ProverFailure

PROPERTIES = ("connected", "acyclic", "bipartite", "even-order")


def _grid(width: int, trials: int) -> dict:
    stats = {key: [0, 0, 0] for key in PROPERTIES}  # accepted, refused, total
    for t in range(trials):
        rng = random.Random(width * 131 + t)
        seq = random_lanewidth_sequence(width, rng.randrange(5, 25), rng)
        graph = apply_construction(seq)
        truth = property_truth(graph)
        for key in PROPERTIES:
            stats[key][2] += 1
            try:
                _c, _s, _l, result = certify_lanewidth_graph(seq, key, rng)
                assert result.accepted and truth[key]
                stats[key][0] += 1
            except ProverFailure:
                assert not truth[key]
                stats[key][1] += 1
    return stats


def test_e5_completeness(benchmark):
    table = Table(
        "E5: completeness grid (accepted must equal property-holds)",
        ["w", "property", "accepted", "prover refused", "trials", "violations"],
    )
    for width in (2, 3, 4):
        stats = _grid(width, trials=20)
        for key, (accepted, refused, total) in stats.items():
            table.add(width, key, accepted, refused, total, 0)
    table.show()

    benchmark(_grid, 3, 4)
