"""E5 — Completeness: the honest prover makes every vertex accept.

Acceptance-rate grid over families × properties (must be 100% whenever
the property holds; the prover correctly refuses otherwise).

Each trial batches all four properties through one
:class:`repro.api.CertificationSession` call, so the hierarchy is built
once per random host instead of once per (host, property) pair — the
batch-proving speedup the staged pipeline exists for.
"""

import random

from repro.core import apply_construction, random_lanewidth_sequence
from repro.experiments import Table, batch_certify, property_truth

PROPERTIES = ("connected", "acyclic", "bipartite", "even-order")


def _grid(width: int, trials: int) -> dict:
    stats = {key: [0, 0, 0] for key in PROPERTIES}  # accepted, refused, total
    for t in range(trials):
        rng = random.Random(width * 131 + t)
        seq = random_lanewidth_sequence(width, rng.randrange(5, 25), rng)
        graph = apply_construction(seq)
        truth = property_truth(graph)
        reports, session = batch_certify(
            seq, list(PROPERTIES), seed=width * 131 + t
        )
        assert session.stage_counters["hierarchy"] == 1  # one build per host
        for key in PROPERTIES:
            stats[key][2] += 1
            report = reports[key]
            if report.refused:
                assert not truth[key]
                stats[key][1] += 1
            else:
                assert report.accepted and truth[key]
                stats[key][0] += 1
    return stats


def test_e5_completeness(benchmark):
    table = Table(
        "E5: completeness grid (accepted must equal property-holds)",
        ["w", "property", "accepted", "prover refused", "trials", "violations"],
    )
    for width in (2, 3, 4):
        stats = _grid(width, trials=20)
        for key, (accepted, refused, total) in stats.items():
            table.add(width, key, accepted, refused, total, 0)
    table.show()

    benchmark(_grid, 3, 4)
