"""E3/F3 — Proposition 4.6: lanes <= f(k), congestion <= g(k)/h(k).

Measures, over random connected graphs of interval width k, the worst
observed lane count and embedding congestion against the paper's bounds.
"""

from repro.core import build_lane_partition, f_bound, g_bound, h_bound
from repro.experiments import Table, pathwidth_workload, seed_stream

ROOT_SEED = 3


def _measure(k: int, trials: int, n: int) -> tuple:
    stream = seed_stream(ROOT_SEED, f"e3-width-{k}")
    worst_lanes = worst_weak = worst_full = 0
    for t in range(trials):
        graph, decomposition = pathwidth_workload(n, k - 1, seed=stream.seed(t))
        rep = decomposition.to_interval_representation()
        result = build_lane_partition(graph, rep)
        result.partition.validate()
        result.full_embedding().validate()
        worst_lanes = max(worst_lanes, result.partition.width)
        worst_weak = max(worst_weak, result.weak_embedding.congestion())
        worst_full = max(worst_full, result.full_embedding().congestion())
    return worst_lanes, worst_weak, worst_full


def test_e3_lanes_and_congestion(benchmark):
    table = Table(
        "E3: Proposition 4.6 bounds (worst over 25 random graphs, n=60)",
        ["k", "lanes", "f(k)", "weak_congestion", "g(k)", "full_congestion", "h(k)"],
    )
    for k in (2, 3, 4):
        lanes, weak, full = _measure(k, trials=25, n=60)
        table.add(k, lanes, f_bound(k), weak, g_bound(k), full, h_bound(k))
        assert lanes <= f_bound(k)
        assert weak <= g_bound(k)
        assert full <= h_bound(k)
    table.show()

    benchmark(_measure, 3, 5, 60)
