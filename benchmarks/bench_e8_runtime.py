"""E8 — prover and verifier runtime scaling.

The prover is a centralized algorithm (quasi-linear here); the verifier
is a single local round, now driven by the pluggable
:class:`repro.api.VerificationEngine`.  The table reports wall-clock
times per n for the serial executor and the chunked process-pool
executor (identical verdicts, different scheduling), plus the per-vertex
cost; the benchmark fixture times the n=256 prover.
"""

import time

from repro.api import ParallelExecutor, SerialExecutor, VerificationEngine
from repro.core import LanewidthScheme
from repro.experiments import Table, lanewidth_workload, seed_stream
from repro.pls.model import Configuration

SIZES = (64, 256, 1024)
ROOT_SEED = 8


def _prove(n: int, seed: int):
    sequence, graph = lanewidth_workload(3, n, seed)
    config = Configuration.with_random_ids(
        graph, seed_stream(ROOT_SEED, "ids").rng(seed)
    )
    scheme = LanewidthScheme("connected", sequence)
    labeling = scheme.prove(config)
    return config, scheme, labeling


def test_e8_runtime(benchmark):
    table = Table(
        "E8: runtime scaling (seconds)",
        ["n", "prove_s", "verify_serial_s", "verify_parallel_s", "verify_per_vertex_ms"],
    )
    serial = VerificationEngine(SerialExecutor())
    parallel = VerificationEngine(ParallelExecutor(max_workers=2))
    for n in SIZES:
        t0 = time.perf_counter()
        config, scheme, labeling = _prove(n, seed=n)
        t1 = time.perf_counter()
        serial_report = serial.verify(config, scheme, labeling)
        t2 = time.perf_counter()
        parallel_report = parallel.verify(config, scheme, labeling)
        t3 = time.perf_counter()
        assert serial_report.accepted
        # Scheduling must not change semantics.
        assert parallel_report.verdicts == serial_report.verdicts
        assert serial_report.views_built == n
        table.add(
            n,
            f"{t1 - t0:.3f}",
            f"{t2 - t1:.3f}",
            f"{t3 - t2:.3f}",
            f"{1000 * (t2 - t1) / n:.2f}",
        )
    table.show()
    parallel.executor.close()

    benchmark(_prove, 256, 7)
