"""E8 — prover, verifier, and store-backed re-verification runtime.

The prover is a centralized algorithm (quasi-linear here); the verifier
is a single local round, driven by the pluggable
:class:`repro.api.VerificationEngine`.  The table reports wall-clock
times per n for the serial executor and the chunked process-pool
executor (identical verdicts, different scheduling), the per-vertex
cost, and the **stored path**: persist the wire-encoded certificates to
a :class:`repro.api.CertificateStore`, then load + re-verify from disk
in a cold session — the certify-once / re-verify-many workflow, whose
cost excludes every prover stage.  The benchmark fixture times the
n=256 prover.
"""

import tempfile
import time

from repro.api import (
    CertificateStore,
    CertificationSession,
    ParallelExecutor,
    SerialExecutor,
    VerificationEngine,
)
from repro.experiments import Table, lanewidth_workload, seed_stream

SIZES = (64, 256, 1024)
ROOT_SEED = 8


def _prove(n: int, seed: int, store=None):
    """Certify one lanewidth host (labels only) through the session."""
    sequence, _graph = lanewidth_workload(3, n, seed)
    session = CertificationSession(
        rng=seed_stream(ROOT_SEED, "ids").rng(seed), store=store
    )
    report = session.certify(sequence, "connected", verify=False)
    assert not report.refused, report.refusal
    return report


def test_e8_runtime(benchmark):
    table = Table(
        "E8: runtime scaling (seconds)",
        [
            "n",
            "prove_s",
            "verify_serial_s",
            "verify_parallel_s",
            "store_reverify_s",
            "verify_per_vertex_ms",
        ],
    )
    serial = VerificationEngine(SerialExecutor())
    parallel = VerificationEngine(ParallelExecutor(max_workers=2))
    with tempfile.TemporaryDirectory() as root:
        store = CertificateStore(root)
        for n in SIZES:
            t0 = time.perf_counter()
            report = _prove(n, seed=n, store=store)
            t1 = time.perf_counter()
            config, scheme, labeling = (
                report.config,
                report.scheme,
                report.labeling,
            )
            serial_report = serial.verify(config, scheme, labeling)
            t2 = time.perf_counter()
            parallel_report = parallel.verify(config, scheme, labeling)
            t3 = time.perf_counter()
            # Stored path: decode from disk + run the round, no prover.
            fingerprint = config.graph.fingerprint()
            stored = store.reverify(fingerprint, "connected", engine=serial)
            t4 = time.perf_counter()
            assert serial_report.accepted
            # Scheduling must not change semantics.
            assert parallel_report.verdicts == serial_report.verdicts
            assert serial_report.views_built == n
            # The stored round sees the exact same certificates.
            assert stored.accepted
            assert stored.labeling.mapping == labeling.mapping
            table.add(
                n,
                f"{t1 - t0:.3f}",
                f"{t2 - t1:.3f}",
                f"{t3 - t2:.3f}",
                f"{t4 - t3:.3f}",
                f"{1000 * (t2 - t1) / n:.2f}",
            )
        table.show()
    parallel.executor.close()

    benchmark(_prove, 256, 7)
