"""E8 — prover, verifier, and store-backed re-verification runtime.

The prover is a centralized algorithm (quasi-linear here); the verifier
is a single local round, driven by the pluggable
:class:`repro.api.VerificationEngine`.  The table reports wall-clock
times per n for every registered executor kind — the serial reference,
the pool-resident range-chunked process pool, the PR 8 vectorized
(batched numpy kernels) executor, and the shared-memory process-pool
executor — plus the **stored path**: persist the wire-encoded
certificates to a :class:`repro.api.CertificateStore`, then load +
re-verify from disk in a cold session (certify-once / re-verify-many,
no prover stages anywhere).

The kernel executors compile the round once and then evaluate it in
microseconds, so each of their rows carries **two** numbers:

* ``cold_s`` — first verification of a never-seen round (compile +
  kernels; what a one-shot CLI run pays);
* ``steady_s`` — re-verifying the same resident round (what the daemon
  and the store's re-verify-many loop pay after warm-up; best of
  ``STEADY_REPEATS``).

Every executor row records its ``kind``, and the kernel rows their
``kernel_stats`` counters, so the trajectory file is self-describing.

The whole series is persisted for trajectory tracking: one
machine-readable ``BENCH_JSON`` line on stdout *and* a JSON file.  The
committed baseline lives at ``benchmarks/BENCH_E8.json``; to protect it
from accidental refreshes the benchmark **refuses** to overwrite that
exact file unless ``E8_OUT`` explicitly names it — the default output
goes to the working directory instead.

Environment knobs: ``E8_SIZES`` (comma-separated n values; CI's smoke
step uses a tiny workload), ``E8_OUT`` (output path, may point at the
committed baseline to refresh it deliberately), and
``E8_REQUIRE_PARALLEL_WIN`` (when set: assert the shared-memory
executor's steady-state beats serial at the largest n — the CI gate for
the PR 4 "parallel loses to serial" regression being fixed).
"""

import json
import os
import tempfile
import time

from repro.api import (
    ArtifactCache,
    CertificateStore,
    CertificationSession,
    VerificationEngine,
    make_executor,
)
from repro.experiments import Table, lanewidth_workload, seed_stream

SIZES = tuple(
    int(size) for size in os.environ.get("E8_SIZES", "64,256,1024").split(",")
)
OUT_PATH = os.environ.get("E8_OUT", "BENCH_E8.json")
ROOT_SEED = 8
STEADY_REPEATS = 3
BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_E8.json")


def _prove(n: int, seed: int, store=None):
    """Certify one lanewidth host (labels only) through the session."""
    sequence, _graph = lanewidth_workload(3, n, seed)
    session = CertificationSession(
        rng=seed_stream(ROOT_SEED, "ids").rng(seed), store=store
    )
    report = session.certify(sequence, "connected", verify=False)
    assert not report.refused, report.refusal
    return report


def _timed_verify(engine, config, scheme, labeling):
    t0 = time.perf_counter()
    report = engine.verify(config, scheme, labeling)
    return report, time.perf_counter() - t0


def _steady(engine, config, scheme, labeling):
    """Best-of re-verification time for an already-resident round."""
    best = None
    for _ in range(STEADY_REPEATS):
        _, seconds = _timed_verify(engine, config, scheme, labeling)
        best = seconds if best is None else min(best, seconds)
    return best


def test_e8_runtime(benchmark):
    table = Table(
        "E8: runtime scaling (seconds)",
        [
            "n",
            "prove_s",
            "serial_s",
            "parallel_s",
            "vec_cold_s",
            "compile_s",
            "vec_steady_s",
            "shm_cold_s",
            "shm_steady_s",
            "reverify_s",
        ],
    )
    payload = {"bench": "e8_runtime", "property": "connected", "series": []}
    serial = VerificationEngine(make_executor("serial"))
    parallel = VerificationEngine(make_executor("parallel", max_workers=2))
    with tempfile.TemporaryDirectory() as root:
        store = CertificateStore(root)
        for n in SIZES:
            # Kernel executors are per-n so every cold row really is
            # cold (their round caches are keyed by round identity).
            vectorized = VerificationEngine(make_executor("vectorized"))
            shm = VerificationEngine(
                make_executor("shared-memory", max_workers=2)
            )
            t0 = time.perf_counter()
            report = _prove(n, seed=n, store=store)
            t1 = time.perf_counter()
            config, scheme, labeling = (
                report.config,
                report.scheme,
                report.labeling,
            )
            serial_report, serial_s = _timed_verify(
                serial, config, scheme, labeling
            )
            parallel_report, parallel_s = _timed_verify(
                parallel, config, scheme, labeling
            )
            vec_report, vec_cold_s = _timed_verify(
                vectorized, config, scheme, labeling
            )
            vec_steady_s = _steady(vectorized, config, scheme, labeling)
            shm_report, shm_cold_s = _timed_verify(
                shm, config, scheme, labeling
            )
            shm_steady_s = _steady(shm, config, scheme, labeling)
            # PR 9: fresh-process pack reuse.  A disk-backed artifact
            # cache persists the packed RoundArrays columns, so a
            # brand-new executor's cold round (a restarted process)
            # skips re-packing.  Gated on kernel_stats, not wall-clock:
            # the restart round must report arrays_cached=True.
            arrays_root = os.path.join(root, f"arrays-{n}")
            vec_persist = VerificationEngine(
                make_executor(
                    "vectorized", artifacts=ArtifactCache(root=arrays_root)
                )
            )
            persist_report, persist_cold_s = _timed_verify(
                vec_persist, config, scheme, labeling
            )
            vec_restart = VerificationEngine(
                make_executor(
                    "vectorized", artifacts=ArtifactCache(root=arrays_root)
                )
            )
            restart_report, restart_cold_s = _timed_verify(
                vec_restart, config, scheme, labeling
            )
            if (persist_report.kernel_stats or {}).get("mode") == "kernel":
                assert (
                    persist_report.kernel_stats.get("arrays_cached") is False
                ), "first cold round unexpectedly found a cached pack"
                assert (
                    restart_report.kernel_stats.get("arrays_cached") is True
                ), "restarted executor re-packed despite the artifact cache"
                # PR 10: the restarted process also attaches the
                # persisted *compiled round* — zero recompilation.
                assert (
                    persist_report.kernel_stats.get("compiled_round_cached")
                    is False
                ), "first cold round unexpectedly found a compiled round"
                assert (
                    restart_report.kernel_stats.get("compiled_round_cached")
                    is True
                ), "restarted executor recompiled despite the envelope"
                assert (
                    restart_report.kernel_stats.get("compile_seconds") == 0
                ), "attached round reported nonzero compile time"
            # Stored path: decode from disk + run the round, no prover.
            fingerprint = config.graph.fingerprint()
            t3 = time.perf_counter()
            stored = store.reverify(fingerprint, "connected", engine=serial)
            reverify_s = time.perf_counter() - t3
            assert serial_report.accepted
            # Scheduling must not change semantics (the smoke step's
            # every-executor == serial verdict assertion).
            for other in (
                parallel_report,
                vec_report,
                shm_report,
                persist_report,
                restart_report,
            ):
                assert other.verdicts == serial_report.verdicts
                assert other.accepted == serial_report.accepted
            assert serial_report.views_built == n
            assert parallel_report.views_built == n
            # The stored round sees the exact same certificates.
            assert stored.accepted
            assert stored.labeling.mapping == labeling.mapping
            shm.executor.close()
            vec_compile_s = float(
                (vec_report.kernel_stats or {}).get("compile_seconds", 0.0)
            )
            point = {
                "n": n,
                "prove_s": round(t1 - t0, 6),
                "vec_compile_s": round(vec_compile_s, 6),
                "serial_s": round(serial_s, 6),
                "parallel_s": round(parallel_s, 6),
                "reverify_s": round(reverify_s, 6),
                "serial_views_per_s": round(
                    serial_report.views_built / serial_s, 1
                ),
                "parallel_views_per_s": round(
                    parallel_report.views_built / parallel_s, 1
                ),
                "executors": [
                    {"kind": "serial", "verify_s": round(serial_s, 6)},
                    {"kind": "parallel", "verify_s": round(parallel_s, 6)},
                    {
                        "kind": "vectorized",
                        "cold_s": round(vec_cold_s, 6),
                        "steady_s": round(vec_steady_s, 6),
                        "kernel_stats": vec_report.kernel_stats,
                    },
                    {
                        "kind": "shared-memory",
                        "cold_s": round(shm_cold_s, 6),
                        "steady_s": round(shm_steady_s, 6),
                        "kernel_stats": shm_report.kernel_stats,
                    },
                    {
                        "kind": "vectorized+artifacts",
                        "cold_s": round(persist_cold_s, 6),
                        "restart_cold_s": round(restart_cold_s, 6),
                        "kernel_stats": restart_report.kernel_stats,
                    },
                ],
            }
            payload["series"].append(point)
            table.add(
                n,
                f"{point['prove_s']:.3f}",
                f"{serial_s:.3f}",
                f"{parallel_s:.3f}",
                f"{vec_cold_s:.3f}",
                f"{vec_compile_s:.4f}",
                f"{vec_steady_s:.4f}",
                f"{shm_cold_s:.3f}",
                f"{shm_steady_s:.4f}",
                f"{reverify_s:.3f}",
            )
        table.show()
    parallel.executor.close()

    if os.environ.get("E8_REQUIRE_PARALLEL_WIN"):
        # CI gate: at the largest n, resident shared-memory verification
        # must beat the serial round (the PR 4 open item).
        top = payload["series"][-1]
        shm_row = next(
            row for row in top["executors"] if row["kind"] == "shared-memory"
        )
        assert shm_row["steady_s"] < top["serial_s"], (
            f"shared-memory steady {shm_row['steady_s']}s is not faster "
            f"than serial {top['serial_s']}s at n={top['n']}"
        )

    if (
        "E8_OUT" not in os.environ
        and os.path.abspath(OUT_PATH) == os.path.abspath(BASELINE_PATH)
    ):
        raise RuntimeError(
            "refusing to overwrite the committed baseline "
            f"{BASELINE_PATH}; set E8_OUT to refresh it deliberately"
        )
    with open(OUT_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("BENCH_JSON " + json.dumps(payload, sort_keys=True))

    # Scale the timed prover with the workload so E8_SIZES smoke runs
    # (CI) stay tiny; the default series still times the n=256 prover.
    benchmark(_prove, min(256, max(SIZES)), 7)
