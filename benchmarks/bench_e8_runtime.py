"""E8 — prover, verifier, and store-backed re-verification runtime.

The prover is a centralized algorithm (quasi-linear here); the verifier
is a single local round, driven by the pluggable
:class:`repro.api.VerificationEngine`.  The table reports wall-clock
times per n for the serial executor and the pool-resident range-chunked
process-pool executor (identical verdicts, different scheduling), the
views-built throughput of each, and the **stored path**: persist the
wire-encoded certificates to a :class:`repro.api.CertificateStore`, then
load + re-verify from disk in a cold session — the certify-once /
re-verify-many workflow, whose cost excludes every prover stage.

The whole series is persisted for trajectory tracking: one
machine-readable ``BENCH_JSON`` line on stdout *and* a ``BENCH_E8.json``
file (path override: ``E8_OUT``), which CI uploads as an artifact.  The
first committed baseline lives at ``benchmarks/BENCH_E8.json``.

Environment knobs: ``E8_SIZES`` (comma-separated n values; CI's smoke
step uses a tiny workload) and ``E8_OUT``.  The benchmark fixture times
the n=256 prover.
"""

import json
import os
import tempfile
import time

from repro.api import (
    CertificateStore,
    CertificationSession,
    ParallelExecutor,
    SerialExecutor,
    VerificationEngine,
)
from repro.experiments import Table, lanewidth_workload, seed_stream

SIZES = tuple(
    int(size) for size in os.environ.get("E8_SIZES", "64,256,1024").split(",")
)
OUT_PATH = os.environ.get("E8_OUT", "BENCH_E8.json")
ROOT_SEED = 8


def _prove(n: int, seed: int, store=None):
    """Certify one lanewidth host (labels only) through the session."""
    sequence, _graph = lanewidth_workload(3, n, seed)
    session = CertificationSession(
        rng=seed_stream(ROOT_SEED, "ids").rng(seed), store=store
    )
    report = session.certify(sequence, "connected", verify=False)
    assert not report.refused, report.refusal
    return report


def test_e8_runtime(benchmark):
    table = Table(
        "E8: runtime scaling (seconds)",
        [
            "n",
            "prove_s",
            "verify_serial_s",
            "verify_parallel_s",
            "store_reverify_s",
            "serial_views/s",
            "parallel_views/s",
        ],
    )
    payload = {"bench": "e8_runtime", "property": "connected", "series": []}
    serial = VerificationEngine(SerialExecutor())
    parallel = VerificationEngine(ParallelExecutor(max_workers=2))
    with tempfile.TemporaryDirectory() as root:
        store = CertificateStore(root)
        for n in SIZES:
            t0 = time.perf_counter()
            report = _prove(n, seed=n, store=store)
            t1 = time.perf_counter()
            config, scheme, labeling = (
                report.config,
                report.scheme,
                report.labeling,
            )
            serial_report = serial.verify(config, scheme, labeling)
            t2 = time.perf_counter()
            parallel_report = parallel.verify(config, scheme, labeling)
            t3 = time.perf_counter()
            # Stored path: decode from disk + run the round, no prover.
            fingerprint = config.graph.fingerprint()
            stored = store.reverify(fingerprint, "connected", engine=serial)
            t4 = time.perf_counter()
            assert serial_report.accepted
            # Scheduling must not change semantics (the smoke step's
            # serial == parallel verdict assertion).
            assert parallel_report.verdicts == serial_report.verdicts
            assert parallel_report.accepted == serial_report.accepted
            assert serial_report.views_built == n
            assert parallel_report.views_built == n
            # The stored round sees the exact same certificates.
            assert stored.accepted
            assert stored.labeling.mapping == labeling.mapping
            serial_s = t2 - t1
            parallel_s = t3 - t2
            reverify_s = t4 - t3
            point = {
                "n": n,
                "prove_s": round(t1 - t0, 6),
                "serial_s": round(serial_s, 6),
                "parallel_s": round(parallel_s, 6),
                "reverify_s": round(reverify_s, 6),
                "serial_views_per_s": round(
                    serial_report.views_built / serial_s, 1
                ),
                "parallel_views_per_s": round(
                    parallel_report.views_built / parallel_s, 1
                ),
            }
            payload["series"].append(point)
            table.add(
                n,
                f"{point['prove_s']:.3f}",
                f"{serial_s:.3f}",
                f"{parallel_s:.3f}",
                f"{reverify_s:.3f}",
                f"{point['serial_views_per_s']:.0f}",
                f"{point['parallel_views_per_s']:.0f}",
            )
        table.show()
    parallel.executor.close()

    with open(OUT_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("BENCH_JSON " + json.dumps(payload, sort_keys=True))

    # Scale the timed prover with the workload so E8_SIZES smoke runs
    # (CI) stay tiny; the default series still times the n=256 prover.
    benchmark(_prove, min(256, max(SIZES)), 7)
