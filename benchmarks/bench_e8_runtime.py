"""E8 — prover and verifier runtime scaling.

The prover is a centralized algorithm (quasi-linear here); the verifier
is a single local round.  The table reports wall-clock times per n; the
benchmark fixture times the n=256 prover.
"""

import random
import time

from repro.core import LanewidthScheme
from repro.experiments import Table, lanewidth_workload
from repro.pls.model import Configuration
from repro.pls.simulator import run_verification

SIZES = (64, 256, 1024)


def _prove(n: int, seed: int):
    sequence, graph = lanewidth_workload(3, n, seed)
    config = Configuration.with_random_ids(graph, random.Random(seed))
    scheme = LanewidthScheme("connected", sequence)
    labeling = scheme.prove(config)
    return config, scheme, labeling


def test_e8_runtime(benchmark):
    table = Table(
        "E8: runtime scaling (seconds)",
        ["n", "prove_s", "verify_s", "verify_per_vertex_ms"],
    )
    for n in SIZES:
        t0 = time.perf_counter()
        config, scheme, labeling = _prove(n, seed=n)
        t1 = time.perf_counter()
        result = run_verification(config, scheme, labeling)
        t2 = time.perf_counter()
        assert result.accepted
        table.add(
            n,
            f"{t1 - t0:.3f}",
            f"{t2 - t1:.3f}",
            f"{1000 * (t2 - t1) / n:.2f}",
        )
    table.show()

    benchmark(_prove, 256, 7)
