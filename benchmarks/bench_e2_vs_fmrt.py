"""E2/F2 — Theorem 1 vs the FMRT'24 baseline vs the universal scheme.

The paper's improvement: O(log n) labels where FMRT'24 needs O(log² n).
Both schemes run on the *same* lanewidth-3 workload (pathwidth <= 3 with
a witness decomposition derived from the construction via Proposition
5.2), so the constants are comparable and the asymptotic shape is
visible at laptop sizes: ours/log2(n) stays in a constant band while
fmrt/log2(n) keeps growing (its depth factor is itself Θ(log n)).

A second table runs the full Section 4 pipeline (pathwidth -> f(k+1)
lanes) at small n, documenting the paper's constant blow-up: the f(k)
lane counts dominate the label size long before the log n asymptotics
bite — exactly the trade the theory makes (optimal in n, astronomical
in k).
"""

import math
import random

from repro.baselines import FMRTScheme, UniversalScheme
from repro.core import LanewidthScheme, Theorem1Scheme
from repro.core.lanewidth import interval_representation_of
from repro.experiments import Table, lanewidth_workload, pathwidth_workload
from repro.experiments.reporting import fit_log_slope, series
from repro.pathwidth import PathDecomposition
from repro.pls.model import Configuration
from repro.pls.simulator import prove_and_verify

SIZES = (24, 64, 160, 420, 1000)
WIDTH = 3


def _measure(n: int, seed: int) -> tuple:
    sequence, graph = lanewidth_workload(WIDTH, n, seed)
    rng = random.Random(seed + 1)
    config = Configuration.with_random_ids(graph, rng)

    ours_scheme = LanewidthScheme("connected", sequence)
    ours_label, ours_result = prove_and_verify(config, ours_scheme)
    assert ours_result.accepted
    ours = ours_label.max_label_bits(ours_scheme)

    decomposition = PathDecomposition.from_interval_representation(
        interval_representation_of(sequence)
    )
    fmrt_scheme = FMRTScheme(
        "connected", decomposition.width(), decomposer=lambda _g: decomposition
    )
    fmrt_label, fmrt_result = prove_and_verify(config, fmrt_scheme)
    assert fmrt_result.accepted
    fmrt = fmrt_label.max_label_bits(fmrt_scheme)

    universal_scheme = UniversalScheme(lambda g: g.is_connected())
    universal_label, universal_result = prove_and_verify(config, universal_scheme)
    assert universal_result.accepted
    universal = universal_label.max_label_bits(universal_scheme)
    return ours, fmrt, universal


def test_e2_vs_fmrt(benchmark):
    table = Table(
        "E2: ours (Θ(log n)) vs FMRT'24 (Θ(log² n)) vs universal (Θ(m log n))",
        ["n", "ours_bits", "fmrt_bits", "universal_bits", "ours/log2n", "fmrt/log2n"],
    )
    ours_points, fmrt_points = [], []
    for n in SIZES:
        ours, fmrt, universal = _measure(n, seed=n)
        table.add(
            n,
            ours,
            fmrt,
            universal,
            f"{ours / math.log2(n):.1f}",
            f"{fmrt / math.log2(n):.1f}",
        )
        ours_points.append((n, ours))
        fmrt_points.append((n, fmrt))
    table.show()
    print(series("E2-ours", ours_points))
    print(series("E2-fmrt", fmrt_points))

    # Shape claims.  Ours: bits ~ c*log n, so bits/log2(n) stays within a
    # constant band across a 5x log-range.
    ratios = [bits / math.log2(n) for n, bits in ours_points]
    assert max(ratios) <= 2.5 * min(ratios), ratios
    # FMRT: per-log-n cost grows with n (the Θ(log² n) signature).
    fmrt_ratios = [bits / math.log2(n) for n, bits in fmrt_points]
    assert fmrt_ratios[-1] > 1.3 * fmrt_ratios[0], fmrt_ratios
    print(
        f"slopes vs log2 n: ours={fit_log_slope(ours_points):.1f}, "
        f"fmrt={fit_log_slope(fmrt_points):.1f} "
        "(fmrt slope includes the extra log factor)"
    )

    benchmark(_measure, 64, 1)


def test_e2_full_pipeline_constants(benchmark):
    """The Section 4 front end: optimal in n, enormous in k (documented)."""
    table = Table(
        "E2b: full pipeline constants (pathwidth front end, k=2)",
        ["n", "lanes w", "ours_bits", "note"],
    )
    for n in (24, 48, 96):
        graph, decomposition = pathwidth_workload(n, 2, seed=n)
        config = Configuration.with_random_ids(graph, random.Random(n))
        scheme = Theorem1Scheme("connected", 2, decomposer=lambda _g: decomposition)
        labeling, result = prove_and_verify(config, scheme)
        assert result.accepted
        width = max(
            len(label.certificate.stack[0].info.lanes)
            for label in labeling.mapping.values()
        )
        table.add(
            n,
            width,
            labeling.max_label_bits(scheme),
            "constants ~ w^2 per record",
        )
    table.show()

    benchmark(pathwidth_workload, 48, 2, 1)
