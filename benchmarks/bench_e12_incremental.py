"""E12 — incremental recertification: edit streams vs cold reproving.

The incremental layer's claim, measured end to end: for the drift a
self-stabilizing monitor rides (mostly load relabels, occasionally a
link failure with a local replacement — the stream
``examples/self_stabilizing_monitor.py`` narrates), recertifying
through :class:`repro.incremental.IncrementalCertifier` beats
reproving the evolved graph from scratch.  Two sections per host size:

* **per-kind** — one edit of each kind applied incrementally vs a cold
  certification of the same evolved graph (fresh session, same witness
  bags, same identifier assignment, full verification round).  Vertex
  relabels leave the certification identity untouched, so the whole
  artifact chain resolves from cache; structural edits repair the
  decomposition locally and re-chain without re-searching.  The ratios
  are reported transparently per kind — structural edits buy a smaller
  multiple than relabels, and the committed baseline records both;
* **monitor-mix stream** — the headline: a drift stream (one structural
  batch per ``E12_STRUCTURAL_EVERY`` intervals, relabels otherwise)
  recertified incrementally vs reproving cold after every batch.  The
  committed baseline (``benchmarks/BENCH_E12.json``) records the
  measured multiple: at ``n >= 128`` the incremental path is at least
  5x faster, and the benchmark asserts that gate.  The final states are
  cross-checked for equivalence (verdict, measured label bits, class
  count) so the speed never comes from certifying something weaker.

One machine-readable ``BENCH_JSON`` line on stdout *and* a
``BENCH_E12.json`` file (path override: ``E12_OUT``), which CI uploads
as an artifact.  Environment knobs: ``E12_SIZES`` (comma-separated
host sizes; CI's smoke step uses a tiny workload), ``E12_EDITS``
(stream length), ``E12_STRUCTURAL_EVERY``, ``E12_OUT``.
"""

import json
import os
import random
import time

from repro.api import CertificationSession
from repro.experiments import Table
from repro.graphs import EditBatch
from repro.graphs.edits import (
    add_edge,
    remove_edge,
    set_edge_label,
    set_vertex_label,
)
from repro.graphs.generators import random_pathwidth_graph
from repro.incremental import IncrementalCertifier, witness_decomposer
from repro.pathwidth import PathDecomposition

E12_SIZES = tuple(
    int(size) for size in os.environ.get("E12_SIZES", "128,256").split(",")
)
E12_EDITS = int(os.environ.get("E12_EDITS", "12"))
E12_STRUCTURAL_EVERY = int(os.environ.get("E12_STRUCTURAL_EVERY", "4"))
E12_OUT = os.environ.get("E12_OUT", "BENCH_E12.json")

PROPERTY = "connected"
K = 2


def _monitor(n: int, seed: int) -> IncrementalCertifier:
    rng = random.Random(seed)
    graph, bags = random_pathwidth_graph(n, K, rng)
    return IncrementalCertifier(
        graph,
        [PROPERTY],
        k=K,
        decomposer=witness_decomposer(PathDecomposition(graph, bags)),
        rng=rng,
    )


def _safe_removal(graph):
    """An edge whose loss keeps the network connected."""
    for u, v in sorted(graph.edges(), key=repr):
        probe = graph.copy()
        probe.remove_edge(u, v)
        if probe.is_connected():
            return u, v
    raise RuntimeError("no connectivity-preserving edge to remove")


def _local_addition(monitor, rng):
    """A replacement link between nodes already sharing a bag."""
    spare = sorted(
        {
            (u, v)
            for bag in monitor.decomposition.bags
            for u in bag
            for v in bag
            if u < v and not monitor.graph.has_edge(u, v)
        }
    )
    if not spare:
        raise RuntimeError("no in-bag spare pair to splice")
    return rng.choice(spare)


def _drift_batch(monitor, rng, step: int) -> EditBatch:
    if E12_STRUCTURAL_EVERY and step % E12_STRUCTURAL_EVERY == 0:
        lost = _safe_removal(monitor.graph)
        gained = _local_addition(monitor, rng)
        return EditBatch([remove_edge(*lost), add_edge(*gained)])
    vertex = rng.choice(sorted(monitor.graph.vertices()))
    return EditBatch([set_vertex_label(vertex, rng.randint(0, 9))])


def _facts(report) -> dict:
    return {
        "refused": report.refused,
        "accepted": report.accepted,
        "class_count": report.class_count,
        "total_bits": report.total_label_bits,
    }


def _cold_certify(monitor) -> tuple:
    """Reprove the monitor's current state from scratch, timed.

    A fresh session (no cache, no store) over the same witness bags and
    identifier assignment: what every batch would cost without the
    incremental layer — full pipeline plus a whole-network round.
    """
    session = CertificationSession(
        k=monitor.k, decomposer=witness_decomposer(monitor.decomposition)
    )
    began = time.perf_counter()
    report = session.certify(monitor.config, PROPERTY, verify=True)
    return time.perf_counter() - began, report


def _per_kind(n: int) -> list:
    monitor = _monitor(n, seed=0xE12)
    monitor.baseline()
    rng = random.Random(0xE12 + 1)
    kinds = []
    for kind, batch in (
        ("vertex_label", lambda: EditBatch([set_vertex_label(0, "hot")])),
        (
            "edge_label",
            lambda: EditBatch(
                [set_edge_label(*sorted(monitor.graph.edges(), key=repr)[0], 7)]
            ),
        ),
        (
            "remove_edge",
            lambda: EditBatch([remove_edge(*_safe_removal(monitor.graph))]),
        ),
        (
            "add_edge",
            lambda: EditBatch([add_edge(*_local_addition(monitor, rng))]),
        ),
    ):
        began = time.perf_counter()
        report = monitor.update(batch())
        incremental_s = time.perf_counter() - began
        assert report.accepted, (kind, report.mode)
        cold_s, cold = _cold_certify(monitor)
        assert _facts(report.reports[PROPERTY]) == _facts(cold), kind
        kinds.append(
            {
                "kind": kind,
                "mode": report.mode,
                "stages_run": report.stages_run,
                "artifacts_reused": report.artifacts_reused,
                "incremental_ms": round(incremental_s * 1e3, 2),
                "full_ms": round(cold_s * 1e3, 2),
                "speedup": round(cold_s / incremental_s, 2),
            }
        )
    return kinds


def _stream(n: int) -> dict:
    monitor = _monitor(n, seed=0xE12)
    monitor.baseline()
    rng = random.Random(0xE12 + 2)
    incremental_s = full_s = 0.0
    final = None
    for step in range(1, E12_EDITS + 1):
        batch = _drift_batch(monitor, rng, step)
        began = time.perf_counter()
        final = monitor.update(batch)
        incremental_s += time.perf_counter() - began
        assert final.accepted, (step, final.mode)
        cold_s, cold = _cold_certify(monitor)
        full_s += cold_s
    # Equivalence: the last incremental state is exactly what the cold
    # reprove concludes about the same graph — verdict, bits, classes.
    assert _facts(final.reports[PROPERTY]) == _facts(cold)
    metrics = monitor.metrics
    assert metrics.updates == E12_EDITS, metrics
    assert metrics.artifacts_reused > 0, metrics
    return {
        "edits": E12_EDITS,
        "structural_every": E12_STRUCTURAL_EVERY,
        "incremental_ms": round(incremental_s * 1e3, 2),
        "full_ms": round(full_s * 1e3, 2),
        "speedup": round(full_s / incremental_s, 2),
        "bags_dirtied": metrics.bags_dirtied,
        "artifacts_reused": metrics.artifacts_reused,
        "full_fallbacks": metrics.full_fallbacks,
        "region_rounds": metrics.region_rounds,
        "full_rounds": metrics.full_rounds,
    }


def test_e12_incremental_recertification(benchmark):
    table = Table(
        "E12: edit-stream recertification, incremental vs cold (ms)",
        ["n", "workload", "incremental", "full", "speedup"],
    )
    payload = {
        "bench": "e12_incremental",
        "property": PROPERTY,
        "k": K,
        "series": [],
    }
    for n in E12_SIZES:
        kinds = _per_kind(n)
        stream = _stream(n)
        payload["series"].append({"n": n, "per_kind": kinds, "stream": stream})
        for point in kinds:
            table.add(
                n,
                f"one {point['kind']}",
                f"{point['incremental_ms']:.1f}",
                f"{point['full_ms']:.1f}",
                f"{point['speedup']:.1f}x",
            )
        table.add(
            n,
            f"{stream['edits']}-batch monitor mix",
            f"{stream['incremental_ms']:.1f}",
            f"{stream['full_ms']:.1f}",
            f"{stream['speedup']:.1f}x",
        )
        # Incremental must win outright at every size; at monitor scale
        # the ISSUE's acceptance gate is a 5x multiple on the stream.
        assert stream["speedup"] > 1.0, stream
        if n >= 128:
            assert stream["speedup"] >= 5.0, stream
    table.show()

    with open(E12_OUT, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("BENCH_JSON " + json.dumps(payload, sort_keys=True))

    # The benchmarked unit: the cheapest real update — an identity-
    # preserving relabel resolved entirely from the artifact chain,
    # the per-interval overhead every monitor pays.
    monitor = _monitor(32, seed=0xE12)
    monitor.baseline()
    toggle = iter(range(10**9))
    benchmark(
        lambda: monitor.update(
            EditBatch([set_vertex_label(0, next(toggle) % 2)])
        )
    )
