"""Adversarial session: corrupting proofs and breaking weak schemes.

Part 1 — tamper with honest Theorem 1 certificates (mutations, swaps,
graph edits) and watch the verifier catch every predicate violation.

Part 2 — the KKP Omega(log n) lower bound in action: the cut-and-splice
adversary forges an accepted cycle against any sub-logarithmic scheme in
the DistanceMod family, and fails exactly when labels reach log2(n) bits.

Run:  python examples/soundness_attack.py
"""

import math
import random

from repro.core import certify_lanewidth_graph, random_lanewidth_sequence
from repro.pls.adversary import corrupt_one_label, swap_two_labels
from repro.pls.lower_bound import DistanceModScheme, splice_attack
from repro.pls.model import Configuration
from repro.pls.simulator import run_verification


def main() -> None:
    rng = random.Random(99)

    print("Part 1: tampering with Theorem 1 certificates")
    seq = random_lanewidth_sequence(3, 12, rng)
    config, scheme, labeling, result = certify_lanewidth_graph(seq, "connected", rng)
    print(f"  honest proof accepted: {result.accepted}")

    rejected = 0
    for _ in range(25):
        bad = corrupt_one_label(labeling, rng)
        if not run_verification(config, scheme, bad).accepted:
            rejected += 1
    print(f"  label mutations rejected: {rejected}/25")

    bad = swap_two_labels(labeling, rng)
    print(f"  swapped labels rejected: {not run_verification(config, scheme, bad).accepted}")

    disconnected = 0
    caught = 0
    for u, v in config.graph.edges():
        g2 = config.graph.copy()
        g2.remove_edge(u, v)
        if g2.is_connected():
            continue
        disconnected += 1
        from repro.pls.scheme import Labeling

        cfg2 = Configuration(g2, config.ids)
        mapping2 = {k: val for k, val in labeling.mapping.items() if g2.has_edge(*k)}
        if not run_verification(
            cfg2, scheme, Labeling("edges", mapping2, labeling.size_context)
        ).accepted:
            caught += 1
    print(f"  disconnecting edge removals rejected: {caught}/{disconnected}")

    print("\nPart 2: the Omega(log n) splice attack (n = 80)")
    n = 80
    print(f"  {'M':>5s} {'bits':>5s} {'collision':>10s} {'cycle accepted':>15s}")
    for modulus in (4, 16, 64, 128):
        outcome = splice_attack(DistanceModScheme(modulus), n, rng)
        bits = max(1, math.ceil(math.log2(modulus)))
        print(f"  {modulus:>5d} {bits:>5d} {str(outcome.collision_found):>10s} "
              f"{str(outcome.cycle_accepted):>15s}")
    print(f"  threshold at log2({n}) = {math.log2(n):.1f} bits, as the theorem predicts")


if __name__ == "__main__":
    main()
