"""Adversarial session: corrupting proofs and breaking weak schemes.

Part 1 — a declarative :class:`repro.api.AuditPlan` mounts mutation,
swap, and disconnecting-edge-removal attacks on honest Theorem 1
certificates; the fail-fast verification engine catches every predicate
violation while building only a fraction of the local views.

Part 2 — the KKP Omega(log n) lower bound in action: the cut-and-splice
adversary forges an accepted cycle against any sub-logarithmic scheme in
the DistanceMod family, and fails exactly when labels reach log2(n) bits.

Run:  python examples/soundness_attack.py
"""

import math
import random

from repro.api import (
    AuditCase,
    AuditPlan,
    EdgeRemovalAttack,
    MutationAttack,
    SwapAttack,
)
from repro.core import certify_lanewidth_graph, random_lanewidth_sequence
from repro.pls.lower_bound import DistanceModScheme, splice_attack


def make_case(trial, rng):
    """One honest instance per trial: prove connectivity, keep the proof."""
    sequence = random_lanewidth_sequence(3, 12, rng)
    config, scheme, labeling, result = certify_lanewidth_graph(
        sequence, "connected", rng
    )
    assert result.accepted  # completeness: the honest proof passes
    return AuditCase(config, scheme, labeling, trial)


def main() -> None:
    print("Part 1: tampering with Theorem 1 certificates (AuditPlan)")
    plan = AuditPlan(
        case_factory=make_case,
        attacks=[
            MutationAttack(per_case=25),
            SwapAttack(),
            EdgeRemovalAttack(still_true=lambda g: g.is_connected()),
        ],
        trials=1,
        root_seed=99,
        name="tamper",
    )
    report = plan.run()
    for line in report.summary().splitlines():
        print(f"  {line}")
    print(f"  every attack rejected: {report.all_rejected}")

    print("\nPart 2: the Omega(log n) splice attack (n = 80)")
    n = 80
    rng = random.Random(99)
    print(f"  {'M':>5s} {'bits':>5s} {'collision':>10s} {'cycle accepted':>15s}")
    for modulus in (4, 16, 64, 128):
        outcome = splice_attack(DistanceModScheme(modulus), n, rng)
        bits = max(1, math.ceil(math.log2(modulus)))
        print(f"  {modulus:>5d} {bits:>5d} {str(outcome.collision_found):>10s} "
              f"{str(outcome.cycle_accepted):>15s}")
    print(f"  threshold at log2({n}) = {math.log2(n):.1f} bits, as the theorem predicts")


if __name__ == "__main__":
    main()
