"""Drive the certification daemon end to end: spawn, certify, coalesce.

Launches ``python -m repro.service`` as a real subprocess on a unix
socket, waits for its ``SERVICE_READY`` handshake, and then exercises
the serving matrix through the async :class:`repro.service.ServiceClient`:

* a liveness ``ping``;
* five *identical* concurrent certify requests — the daemon runs the
  prover once and coalesces the rest (asserted via the metrics
  snapshot: ``prover_runs == 1``, ``coalesced_requests > 0``);
* a warm repeat served from the sharded certificate store;
* a ``reverify`` replaying the verification round from disk;
* an ``update`` stream — bootstrap an incremental certification, then
  recertify a relabel batch addressed by fingerprint (asserting zero
  prover stages ran and the ``incremental`` metrics block moved);
* a graceful ``shutdown``, after which the daemon flushes one final
  ``SERVICE_METRICS`` line and exits 0.

CI runs this script as the service smoke test.

Run:  python examples/service_client.py
"""

import asyncio
import os
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.experiments import lanewidth_workload
from repro.graphs.generators import caterpillar_graph
from repro.service import ServiceClient, result_of


def spawn_daemon(socket_path: str, store_root: str) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "--socket", socket_path,
            "--store", store_root,
            "--k", "3",
            "--workers", "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    ready = proc.stdout.readline().strip()
    assert ready == f"SERVICE_READY unix:{socket_path}", ready
    print(f"daemon up: {ready}")
    return proc


async def drive(socket_path: str) -> None:
    _sequence, graph = lanewidth_workload(2, 24, 2025)
    print(f"network: n={graph.n}, m={graph.m}, "
          f"fingerprint {graph.fingerprint()[:16]}...")

    async with await ServiceClient.connect(socket_path=socket_path) as client:
        pong = result_of(await client.ping())
        print(f"ping -> protocol v{pong['protocol_version']}")

        # -- five identical requests, all in flight at once ------------
        responses = await asyncio.gather(
            *[client.certify(graph, ["connected"]) for _ in range(5)]
        )
        for response in responses:
            assert result_of(response)["reports"]["connected"]["accepted"]
        joined = sum(r["meta"]["coalesced"] for r in responses)
        print(f"5 identical concurrent certifies: {5 - joined} computed, "
              f"{joined} coalesced")

        snapshot = result_of(await client.metrics())
        assert snapshot["prover_runs"] == 1, snapshot
        assert snapshot["coalesced_requests"] > 0, snapshot
        print(f"metrics agree: prover_runs={snapshot['prover_runs']}, "
              f"coalesced_requests={snapshot['coalesced_requests']}")

        # -- warm repeat: served from the sharded store ----------------
        warm = result_of(await client.certify(graph, ["connected"]))
        assert warm["served"]["connected"] == "store", warm["served"]
        print(f"warm repeat served from: {warm['served']['connected']}")

        # -- replay the verification round from disk -------------------
        replay = result_of(
            await client.reverify(graph.fingerprint(), "connected")
        )
        verification = replay["reports"]["connected"]["verification"]
        assert verification["accepted"], verification
        print(f"reverify: round re-run on {verification['views_built']} "
              f"local views, accepted")

        # -- an edit stream through the update op ----------------------
        stream = caterpillar_graph(10, 2)
        boot = result_of(await client.update(["connected"], graph=stream))
        assert boot["baseline"]["accepted"], boot
        print(f"update stream bootstrapped at {boot['fingerprint'][:16]}...")

        evolved = result_of(
            await client.update(
                ["connected"],
                fingerprint=boot["fingerprint"],
                edits=[["set_vertex_label", 3, "hot"]],
            )
        )
        body = evolved["update"]
        assert body["accepted"] and body["mode"] == "region", body
        assert body["stages_run"] == 0, body  # whole chain from cache
        print(f"relabel batch: {body['mode']} round, "
              f"{body['artifacts_reused']} artifacts reused, "
              f"0 prover stages run")

        final = result_of(await client.metrics())
        assert final["incremental"]["updates"] == 1, final
        print(f"store: {final['store']['entries']} entries in "
              f"{final['store']['shards']} shard(s), "
              f"{final['store']['bytes']} bytes; "
              f"incremental updates: {final['incremental']['updates']}")

        stopping = result_of(await client.shutdown())
        assert stopping["stopping"] is True


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        socket_path = os.path.join(root, "repro.sock")
        proc = spawn_daemon(socket_path, os.path.join(root, "certs"))
        try:
            asyncio.run(drive(socket_path))
            out, err = proc.communicate(timeout=120)
        except BaseException:
            proc.kill()
            proc.communicate()
            raise
        if proc.returncode != 0:
            sys.stderr.write(err)
            raise SystemExit("daemon did not exit cleanly")
        flushed = [
            line for line in out.splitlines()
            if line.startswith("SERVICE_METRICS ")
        ]
        assert len(flushed) == 1, out
        print("daemon drained and flushed its final metrics snapshot")


if __name__ == "__main__":
    main()
