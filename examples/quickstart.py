"""Quickstart: certify an MSO2 property with O(log n)-bit labels.

Builds a random bounded-pathwidth network, runs the Theorem 1 pipeline
for "the network is connected" through the one-line ``repro.api.certify``
facade, and prints the structured report: verdict, certificate sizes,
and per-stage timings.

Run:  python examples/quickstart.py
"""

import math
import random

from repro.api import certify
from repro.graphs.generators import random_pathwidth_graph
from repro.pathwidth import PathDecomposition


def main() -> None:
    rng = random.Random(2025)

    # A random connected network with pathwidth <= 2 and its witness
    # decomposition (generators return both, so large instances never
    # need the NP-hard pathwidth computation).
    graph, bags = random_pathwidth_graph(60, 2, rng)
    decomposition = PathDecomposition(graph, bags)
    print(f"network: n={graph.n} vertices, m={graph.m} edges, "
          f"witness pathwidth={decomposition.width()}")

    # One call: decompose -> lanes -> completion -> hierarchy ->
    # evaluate -> label, then the distributed verification round.
    report = certify(
        graph, "connected", k=2, rng=rng, decomposer=lambda _g: decomposition
    )
    if report.refused:
        print(f"prover refused: {report.refusal}")
        return
    print(f"verification round: all accept = {report.accepted}")
    print(report.summary())

    # Sizes are *measured*: the exact bit lengths of the labels' wire
    # encodings (docs/FORMAT.md), not an arithmetic estimate — that one
    # is reported alongside and is always an upper bound.
    bits = report.max_label_bits
    print(f"max certificate size: {bits} encoded bits "
          f"({bits / math.log2(graph.n):.1f} x log2(n); "
          f"accounting bound {report.accounted_max_label_bits} bits)")
    print(f"mean certificate size: {report.mean_label_bits:.1f} bits, "
          f"{report.class_count} homomorphism classes, "
          f"hierarchy depth {report.hierarchy_depth}")
    print("stage timings:", "; ".join(str(t) for t in report.stage_timings))

    # The raw artifacts are still there for drill-down.
    labeling = report.labeling
    some_edge = graph.edges()[0]
    label = labeling.mapping[some_edge]
    kinds = [type(r).__name__ for r in label.certificate.stack]
    print(f"edge {some_edge}: ownership stack {' -> '.join(kinds)}, "
          f"{len(label.embedded)} embedded virtual edges")


if __name__ == "__main__":
    main()
