"""Quickstart: certify an MSO2 property with O(log n)-bit labels.

Builds a random bounded-pathwidth network, runs the Theorem 1 prover for
"the network is connected", executes the distributed verification round,
and prints the certificate sizes.

Run:  python examples/quickstart.py
"""

import math
import random

from repro.core import Theorem1Scheme
from repro.graphs.generators import random_pathwidth_graph
from repro.pathwidth import PathDecomposition
from repro.pls.model import Configuration
from repro.pls.simulator import prove_and_verify


def main() -> None:
    rng = random.Random(2025)

    # A random connected network with pathwidth <= 2 and its witness
    # decomposition (generators return both, so large instances never
    # need the NP-hard pathwidth computation).
    graph, bags = random_pathwidth_graph(60, 2, rng)
    decomposition = PathDecomposition(graph, bags)
    print(f"network: n={graph.n} vertices, m={graph.m} edges, "
          f"witness pathwidth={decomposition.width()}")

    # Every processor gets a distinct O(log n)-bit identifier.
    config = Configuration.with_random_ids(graph, rng)

    # The scheme: MSO2 property 'connected' + pathwidth bound 2.
    scheme = Theorem1Scheme("connected", k=2, decomposer=lambda _g: decomposition)

    labeling, result = prove_and_verify(config, scheme)
    print(f"verification round: all accept = {result.accepted}")

    bits = labeling.max_label_bits(scheme)
    print(f"max certificate size: {bits} bits "
          f"({bits / math.log2(graph.n):.1f} x log2(n))")
    print(f"class count observed: {labeling.size_context.n} vertices, "
          f"{labeling.size_context.class_bits}-bit class fields")

    # Peek at one label's structure.
    some_edge = graph.edges()[0]
    label = labeling.mapping[some_edge]
    kinds = [type(r).__name__ for r in label.certificate.stack]
    print(f"edge {some_edge}: ownership stack {' -> '.join(kinds)}, "
          f"{len(label.embedded)} embedded virtual edges")


if __name__ == "__main__":
    main()
