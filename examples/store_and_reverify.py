"""Certify once, store the certificates, re-verify from disk.

The Theorem 1 prover is the expensive half of the scheme; the
verification round is one cheap local sweep.  The
:class:`repro.api.CertificateStore` splits the two across time (and
processes): ``certify(..., store=...)`` persists the wire-encoded
certificates (see ``docs/FORMAT.md``), and any later process can
``store.load(...)`` + verify without re-running a single prover stage.

This example certifies two properties on one network, stores them,
re-verifies in-process (showing the empty stage counters), re-*certifies*
against the store's artifact cache (showing zero structural prover
stages), and then re-verifies from a *separate interpreter* to prove
the stored bytes are self-sufficient.

Run:  python examples/store_and_reverify.py
"""

import os
import random
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.api import CertificateStore, CertificationSession, certify
from repro.graphs.generators import random_pathwidth_graph
from repro.pathwidth import PathDecomposition


def main() -> None:
    rng = random.Random(2025)
    graph, bags = random_pathwidth_graph(48, 2, rng)
    decomposition = PathDecomposition(graph, bags)
    fingerprint = graph.fingerprint()
    print(f"network: n={graph.n}, m={graph.m}, "
          f"fingerprint {fingerprint[:16]}...")

    # A named cache_key makes the witness decomposer's artifacts
    # persistable: the plan layer keys the decompose node on it instead
    # of the closure's identity (see repro.api.plan).
    def witness(_graph):
        return decomposition

    witness.cache_key = f"witness-{fingerprint[:12]}"

    with tempfile.TemporaryDirectory() as root:
        store = CertificateStore(root)

        # -- certify once: prover runs, wire-encoded labels are saved --
        reports = certify(
            graph,
            ["connected", "even-order"],
            k=2,
            rng=rng,
            decomposer=witness,
            store=store,
        )
        for key, report in reports.items():
            print(report.summary())
            print(f"  stored: {report.encoded.total_bytes} bytes of "
                  f"certificates ({report.total_label_bits} semantic bits)")
        print(f"store now holds {len(store)} entries under {root}")

        # -- re-verify in-process: load + one round, zero prover stages --
        session = CertificationSession()
        loaded = store.load(fingerprint, "connected")
        verification = session.verify(loaded)
        print(f"re-verify from store: {verification.summary()}")
        print(f"prover stages run on the stored path: "
              f"{session.stage_counters or 'none'}")

        # -- re-CERTIFY against the same store: the artifact cache
        #    (persisted next to the certificates) resolves every
        #    structural stage, so only per-identifier label work runs --
        warm = CertificationSession(
            k=2, rng=random.Random(7), decomposer=witness, store=store
        )
        warm_report = warm.certify(graph, "connected")
        structural = [
            name for name in ("decompose", "lanes", "completion", "hierarchy")
            if name in warm.stage_counters
        ]
        print(f"warm re-certify: {warm_report.summary()}")
        print(f"  structural stages rerun: {structural or 'none'} "
              f"(structure_cached={warm_report.structure_cached})")

        # -- the same thing from a fresh interpreter: the stored bytes
        #    are the whole truth, no Python state carries over --
        script = (
            "import sys\n"
            "from repro.api import CertificateStore, VerificationEngine\n"
            "store = CertificateStore(sys.argv[1])\n"
            "report = store.reverify(sys.argv[2], 'connected',\n"
            "                        engine=VerificationEngine())\n"
            "assert report.accepted, report.verification.summary()\n"
            "print('fresh process: ' + report.verification.summary())\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script, root, fingerprint],
            capture_output=True,
            text=True,
            env=env,
            check=False,
        )
        sys.stdout.write(proc.stdout)
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            raise SystemExit("fresh-process re-verification failed")


if __name__ == "__main__":
    main()
