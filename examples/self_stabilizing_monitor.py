"""Self-stabilization motivation: detecting illegal network states.

Local certification originates in self-stabilization (Section 1): each
processor must detect, from local information only, whether the global
state is legal.  This example simulates a network whose marked routing
tree drifts (links fail and are replaced incorrectly); the spanning-tree
proof labeling scheme localizes the fault — some vertex near the damage
rejects, triggering recovery.

Run:  python examples/self_stabilizing_monitor.py
"""

import random

from repro.graphs.generators import random_pathwidth_graph
from repro.pls.classic import TREE_MARK, SpanningTreeScheme
from repro.pls.model import Configuration
from repro.pls.simulator import prove_and_verify, run_verification


def main() -> None:
    rng = random.Random(42)
    graph, _bags = random_pathwidth_graph(30, 2, rng)
    tree = graph.spanning_tree(0)
    for u, v in tree.edges():
        graph.set_edge_label(u, v, TREE_MARK)
    config = Configuration.with_random_ids(graph, rng)
    scheme = SpanningTreeScheme()
    labeling, result = prove_and_verify(config, scheme)
    print(f"legal state: routing tree certified = {result.accepted}")

    # Fault: a tree link is unmarked and a random non-tree link is marked
    # instead — the classic drift a self-stabilizing protocol must catch.
    tree_edges = [e for e in graph.edges() if graph.edge_label(*e) == TREE_MARK]
    other_edges = [e for e in graph.edges() if graph.edge_label(*e) != TREE_MARK]
    lost = tree_edges[rng.randrange(len(tree_edges))]
    gained = other_edges[rng.randrange(len(other_edges))]
    graph.set_edge_label(*lost, None)
    graph.set_edge_label(*gained, TREE_MARK)
    print(f"fault injected: unmarked {lost}, marked {gained}")

    result = run_verification(config, scheme, labeling)
    print(f"verification now accepts: {result.accepted}")
    print(f"fault localized at vertices: {result.rejecting_vertices}")
    print("a self-stabilizing controller would reset exactly this region")


if __name__ == "__main__":
    main()
