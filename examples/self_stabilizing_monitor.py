"""Self-stabilization motivation: certifying an evolving network.

Local certification originates in self-stabilization (Section 1): each
processor must detect, from local information only, whether the global
state is legal.  This example drives :mod:`repro.incremental` the way a
self-stabilizing monitor would: the network's links drift (an edit
stream), every batch is recertified incrementally — untouched
certificates are reused from the artifact cache and the verification
round re-checks only the dirty region plus its certified frontier —
and a fault (an edit the certificates were *not* updated for)
is caught and localized by the round.

Run:  python examples/self_stabilizing_monitor.py
"""

import random

from repro.graphs import EditBatch, apply_edits
from repro.graphs.edits import add_edge, remove_edge, set_vertex_label
from repro.graphs.generators import random_pathwidth_graph
from repro.incremental import (
    DirtyRegionExecutor,
    IncrementalCertifier,
    witness_decomposer,
)
from repro.pathwidth import PathDecomposition
from repro.pls.model import Configuration

PROPERTY = "connected"


def drift(monitor, rng):
    """One monitoring interval's worth of churn.

    Mostly load relabels (cheap: the certification identity is
    untouched), occasionally a link failure with a replacement spliced
    in between nearby nodes — links that already share a bag of the
    maintained decomposition, so the repair stays local.
    """
    graph = monitor.graph
    if rng.random() < 0.5:
        vertex = rng.choice(sorted(graph.vertices()))
        return EditBatch([set_vertex_label(vertex, rng.randint(0, 9))])
    safe = [
        (u, v)
        for u, v in sorted(graph.edges(), key=repr)
        if _still_connected(graph, u, v)
    ]
    spare = sorted(
        {
            (u, v)
            for bag in monitor.decomposition.bags
            for u in bag
            for v in bag
            if u < v and not graph.has_edge(u, v)
        }
    )
    if not safe or not spare:
        vertex = rng.choice(sorted(graph.vertices()))
        return EditBatch([set_vertex_label(vertex, "idle")])
    lost, gained = rng.choice(safe), rng.choice(spare)
    return EditBatch([remove_edge(*lost), add_edge(*gained)])


def _still_connected(graph, u, v):
    probe = graph.copy()
    probe.remove_edge(u, v)
    return probe.is_connected()


def main() -> None:
    rng = random.Random(42)
    graph, bags = random_pathwidth_graph(30, 2, rng)
    monitor = IncrementalCertifier(
        graph,
        [PROPERTY],
        k=2,
        decomposer=witness_decomposer(PathDecomposition(graph, bags)),
        rng=rng,
        full_round_every=4,  # periodic whole-network sweep
    )
    base = monitor.baseline()
    print(f"legal state: network certified = {base.accepted}")

    report = base
    for step in range(6):
        batch = drift(monitor, rng)
        report = monitor.update(batch)
        kinds = ",".join(edit.kind for edit in batch)
        print(
            f"interval {step}: [{kinds}] -> {report.mode} round, "
            f"accepted={report.accepted}, stages run={report.stages_run}, "
            f"artifacts reused={report.artifacts_reused}"
        )
    print(f"monitor counters: {monitor.metrics.to_dict()}")

    # Fault: a link fails but the certificates are NOT updated — the
    # drift a self-stabilizing controller must detect.  The round over
    # the stale labeling rejects, and the rejecting vertices localize
    # the damage (the recovery region).
    certified = report.reports[PROPERTY]
    lost = next(
        (u, v)
        for u, v in sorted(monitor.graph.edges(), key=repr)
        if _still_connected(monitor.graph, u, v)
    )
    faulted = apply_edits(monitor.graph, EditBatch([remove_edge(*lost)]))
    round_ = DirtyRegionExecutor().full_round(
        Configuration(faulted, dict(monitor.config.ids)),
        certified.scheme,
        certified.labeling,
    )
    print(f"fault injected: link {lost} lost, certificates left stale")
    print(f"verification now accepts: {round_.accepted}")
    print(f"fault localized at vertices: {sorted(round_.rejections, key=repr)}")
    print("a self-stabilizing controller would reset exactly this region")


if __name__ == "__main__":
    main()
