"""The property zoo: three semantics for every headline property.

For each property of Section 1.2 the library provides (1) the MSO2
formula, (2) an independent direct checker, and (3) a finite-state
homomorphism-class algebra (Proposition 2.4).  This example evaluates
all three on a caterpillar and a lanewidth-2 host and prints the
agreement.

The certification column is batch-proven through one
:class:`repro.api.CertificationSession`: the structural stages (sequence
match + hierarchy) run once for the host graph and every property reuses
them — only algebra evaluation and labeling rerun per property.

Run:  python examples/property_zoo.py
"""

import random

from repro.api import CertificationSession
from repro.core import apply_construction, random_lanewidth_sequence
from repro.graphs.generators import caterpillar_graph
from repro.mso import check_formula
from repro.mso.properties import PROPERTY_ZOO

ALGEBRA_OF = {
    "connected": "connected",
    "acyclic": "acyclic",
    "bipartite": "bipartite",
    "3-colorable": "colorable-3",
    "vertex-cover<=2": "vertex-cover-2",
    "perfect-matching": "perfect-matching",
    "hamiltonian-path": "hamiltonian-path",
    "even-order": "even-order",
}


def main() -> None:
    rng = random.Random(11)
    graph = caterpillar_graph(4, 1)
    print(f"host: caterpillar, n={graph.n}, m={graph.m}")

    # Certify on a lanewidth-2 rendition of a caterpillar-like graph —
    # one shared host, one session, eight properties, one hierarchy.
    seq2 = random_lanewidth_sequence(2, 7, random.Random(3), edge_probability=0.0)
    g2 = apply_construction(seq2)
    session = CertificationSession(rng=rng)
    reports = session.certify(seq2, list(ALGEBRA_OF.values()))

    print(f"{'property':22s} {'direct':>7s} {'MSO':>5s} {'certified':>10s}")
    for name, key in ALGEBRA_OF.items():
        prop = PROPERTY_ZOO[name]
        direct = prop.check(graph)
        mso = (
            check_formula(graph, prop.formula)
            if prop.formula is not None and graph.n <= 10
            else None
        )
        want = prop.check(g2)
        certified = reports[key].accepted
        agreement = "==" if certified == want else "MISMATCH"
        mso_text = "-" if mso is None else str(mso)
        print(f"{name:22s} {str(direct):>7s} {mso_text:>5s} "
              f"{str(certified):>10s} ({agreement} direct on cert host)")

    counters = session.stage_counters
    print(f"\nstructural reuse: match x{counters.get('match', 0)}, "
          f"hierarchy x{counters.get('hierarchy', 0)}, "
          f"evaluate x{counters.get('evaluate', 0)}, "
          f"label x{counters.get('label', 0)} "
          f"({len(ALGEBRA_OF)} properties, 1 hierarchy)")


if __name__ == "__main__":
    main()
