"""The property zoo: three semantics for every headline property.

For each property of Section 1.2 the library provides (1) the MSO2
formula, (2) an independent direct checker, and (3) a finite-state
homomorphism-class algebra (Proposition 2.4).  This example evaluates
all three on a caterpillar and a small grid and prints the agreement.

Run:  python examples/property_zoo.py
"""

import random

from repro.core import LanewidthScheme, random_lanewidth_sequence, apply_construction
from repro.courcelle import algebra_for
from repro.graphs.generators import caterpillar_graph
from repro.mso import check_formula
from repro.mso.properties import PROPERTY_ZOO
from repro.pls.model import Configuration
from repro.pls.simulator import prove_and_verify
from repro.pls.scheme import ProverFailure

ALGEBRA_OF = {
    "connected": "connected",
    "acyclic": "acyclic",
    "bipartite": "bipartite",
    "3-colorable": "colorable-3",
    "vertex-cover<=2": "vertex-cover-2",
    "perfect-matching": "perfect-matching",
    "hamiltonian-path": "hamiltonian-path",
    "even-order": "even-order",
}


def main() -> None:
    rng = random.Random(11)
    graph = caterpillar_graph(4, 1)
    print(f"host: caterpillar, n={graph.n}, m={graph.m}")
    print(f"{'property':22s} {'direct':>7s} {'MSO':>5s} {'certified':>10s}")

    seq = random_lanewidth_sequence(2, 0, rng)  # only used for shape below

    for name, key in ALGEBRA_OF.items():
        prop = PROPERTY_ZOO[name]
        direct = prop.check(graph)
        mso = (
            check_formula(graph, prop.formula)
            if prop.formula is not None and graph.n <= 10
            else None
        )
        # Certify on a lanewidth-2 rendition of a caterpillar-like graph.
        seq2 = random_lanewidth_sequence(2, 7, random.Random(3), edge_probability=0.0)
        g2 = apply_construction(seq2)
        want = prop.check(g2)
        try:
            config = Configuration.with_random_ids(g2, rng)
            scheme = LanewidthScheme(algebra_for(key), seq2)
            _lab, result = prove_and_verify(config, scheme)
            certified = result.accepted
        except ProverFailure:
            certified = False
        agreement = "==" if certified == want else "MISMATCH"
        mso_text = "-" if mso is None else str(mso)
        print(f"{name:22s} {str(direct):>7s} {mso_text:>5s} "
              f"{str(certified):>10s} ({agreement} direct on cert host)")


if __name__ == "__main__":
    main()
