"""Corollary 1.2: certify F-minor-freeness for a forest F.

The Excluding Forest Theorem bounds the pathwidth of F-minor-free graphs
by |V(F)| - 2, so Theorem 1 certifies F-minor-freeness with O(log n)
bits.  This example certifies K_{1,3}-minor-freeness (equivalently,
maximum degree <= 2) and P_5-minor-freeness on generated networks, and
shows the prover refusing a network that does contain the minor.

Run:  python examples/certify_minor_free.py
"""

import random

from repro.core import certify_lanewidth_graph, random_lanewidth_sequence, apply_construction
from repro.graphs.generators import path_graph, star_graph
from repro.graphs.minors import excluded_forest_pathwidth_bound, is_minor_free
from repro.pls.scheme import ProverFailure


def main() -> None:
    rng = random.Random(7)

    for pattern_name, pattern, algebra_key in (
        ("K_{1,3} (the claw)", star_graph(3), "star3-minor-free"),
        ("P_5 (the 5-vertex path)", path_graph(5), "p5-minor-free"),
    ):
        bound = excluded_forest_pathwidth_bound(pattern)
        print(f"\npattern {pattern_name}: excluded-forest pathwidth bound = {bound}")
        certified = refused = 0
        for trial in range(30):
            seq = random_lanewidth_sequence(2, rng.randrange(1, 7), rng,
                                            edge_probability=0.15)
            graph = apply_construction(seq)
            truth = is_minor_free(graph, pattern)
            try:
                _cfg, scheme, labeling, result = certify_lanewidth_graph(
                    seq, algebra_key, rng
                )
                assert result.accepted and truth
                certified += 1
            except ProverFailure:
                assert not truth
                refused += 1
        print(f"  {certified} minor-free networks certified, "
              f"{refused} minor-containing networks correctly refused "
              f"(all 30 agree with brute-force minor search)")


if __name__ == "__main__":
    main()
