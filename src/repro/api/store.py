"""Persistent certificate store: certify once, re-verify many times.

A :class:`CertificateStore` is a directory of certified instances keyed
by ``(graph fingerprint, property key)``.  Each entry persists exactly
what a verification round needs — the configuration (graph + vertex
identifiers), the verifier half of the scheme, and the labeling in
**wire form** (the shared :class:`~repro.codec.WireHeader` plus one
encoded byte string per edge; see ``docs/FORMAT.md``) — so a fresh
process can :meth:`load` the entry and run
:meth:`~repro.api.runtime.VerificationEngine.verify` (or
``session.verify(report)``) without ever re-running a prover stage.

    store = CertificateStore("certs/")
    report = certify(graph, "connected", k=2, store=store)   # saved
    ...
    # later, possibly in another process:
    loaded = store.load(graph.fingerprint(), "connected")
    verification = store_session.verify(loaded)              # no proving

The on-disk envelope is a pickled manifest (magic-prefixed, versioned):
graphs, identifiers, and algebra states are arbitrary Python values, so
the *container* uses pickle while the certificate payloads themselves
stay raw codec bytes — the part whose size the paper bounds and the
reports measure.  Entries record the graph fingerprint they were proven
against and :meth:`load` recomputes it, so a corrupted or swapped graph
is rejected instead of silently verified.

Layout (v2, service-grade)
--------------------------
Entries live in **fingerprint-prefix shards**: ``<root>/<fp[:2]>/<fp
prefix>-<property slug>.cert``.  256 shards keep directory listings
short under millions of entries and let concurrent writers touch
disjoint directories.  The original flat layout (every entry directly
under ``<root>``) is still read — a flat entry found by :meth:`load` is
atomically migrated into its shard — so stores written before the shard
layout keep working (see ``docs/FORMAT.md`` § "Sharded store layout").

Concurrent-writer safety: :meth:`save` writes to a uniquely named temp
file in the destination shard and publishes it with :func:`os.replace`,
so readers never observe half an entry and two processes saving the same
key cannot interleave bytes — last writer wins wholesale.  A crash
between write and publish leaves only a ``*.tmp`` orphan, which
:meth:`clean_orphans` (called by :meth:`compact`) removes once stale.

Capacity: pass ``byte_budget=`` to bound the store's on-disk size.
:meth:`compact` (triggered by :meth:`save` when a budget is set) evicts
least-recently-used entries — :meth:`load` bumps an entry's mtime, so
recency is observable across processes — until the budget holds.  A
:class:`StoreMetrics` instance counts hits/misses/saves/evictions for
the service layer's observability snapshot.
"""

from __future__ import annotations

import itertools
import os
import pickle
import re
import threading
import time
from pathlib import Path
from typing import Optional

from repro.codec import (
    WIRE_VERSION,
    CodecError,
    EncodedLabel,
    EncodedLabeling,
    decode_labeling_columnar,
    encode_labeling_columnar,
    stamp_wire_digest,
)
from repro.courcelle.registry import resolve_algebra
from repro.pls.model import Configuration

#: File magic + envelope version; bumped when the manifest layout changes
#: (the label payload format is versioned separately by WIRE_VERSION).
#: The *directory* layout (flat vs sharded) is not part of the envelope:
#: v1 envelopes read identically from either location.
STORE_MAGIC = b"repro-cert\x00"
STORE_VERSION = 1

#: Shard name length: 2 hex characters of the fingerprint = 256 shards.
SHARD_PREFIX_LEN = 2

#: Temp files older than this are crash orphans, not writes in flight.
ORPHAN_AGE_SECONDS = 300.0

_SLUG_RE = re.compile(r"[^A-Za-z0-9._-]+")
_SHARD_RE = re.compile(r"^[0-9a-f]{%d}$" % SHARD_PREFIX_LEN)
_TMP_COUNTER = itertools.count()


class StoreError(ValueError):
    """Raised on missing, corrupted, or mismatched store entries."""


class StoreMetrics:
    """Lifetime counters for one store (thread-safe increments).

    ``hits``/``misses`` count :meth:`CertificateStore.load` outcomes
    (a miss is a lookup of an absent entry; corruption raises *and*
    counts as a miss — the entry is unusable either way), ``saves``
    successful publishes, ``evictions``/``bytes_evicted`` what
    :meth:`~CertificateStore.compact` removed, ``orphans_cleaned``
    stale temp files removed, and ``migrated`` flat-layout entries
    moved into their shard.  The incremental layer
    (:mod:`repro.incremental`) records its reuse against the store that
    backs it — :data:`INCREMENTAL_FIELDS`: ``updates`` edit batches
    applied, ``bags_dirtied`` by their decomposition repairs,
    ``artifacts_reused`` resolved from the artifact cache instead of
    re-proven, and ``full_fallbacks`` (repairs that gave up and re-ran
    the full search).  :meth:`snapshot` returns a JSON-safe dict; the
    service layer embeds it in its own metrics snapshot.
    """

    INCREMENTAL_FIELDS = (
        "updates",
        "bags_dirtied",
        "artifacts_reused",
        "full_fallbacks",
    )

    FIELDS = (
        "hits",
        "misses",
        "saves",
        "evictions",
        "bytes_evicted",
        "orphans_cleaned",
        "migrated",
    ) + INCREMENTAL_FIELDS

    def __init__(self):
        self._lock = threading.Lock()
        for name in self.FIELDS:
            setattr(self, name, 0)

    def add(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def snapshot(self) -> dict:
        with self._lock:
            return {name: getattr(self, name) for name in self.FIELDS}

    def __repr__(self) -> str:
        pairs = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"StoreMetrics({pairs})"


def _slug(text: str) -> str:
    """Human-readable filename stem for a property key.

    Distinct keys can collide after slugging (e.g. the session's
    duplicate suffix ``colorable#2`` vs a real ``colorable-2`` key), so
    the stem always ends with a short digest of the *exact* key — two
    different keys never share an entry path.
    """
    import hashlib

    stem = _SLUG_RE.sub("-", text) or "property"
    digest = hashlib.blake2b(text.encode(), digest_size=4).hexdigest()
    return f"{stem}-{digest}"


class CertificateStore:
    """A sharded directory of persisted certificates, one file per entry.

    Parameters
    ----------
    root:
        Directory holding the entries (created on first use).  Entry
        files are named ``<fingerprint prefix>-<property slug>-<key
        digest>.cert`` inside the ``<fingerprint[:2]>`` shard — the
        digest keeps distinct property keys on distinct paths even when
        they slug identically; the full fingerprint lives inside the
        envelope and is what :meth:`load` matches on.
    byte_budget:
        Optional cap on the summed size of entry files.  When set,
        :meth:`save` triggers :meth:`compact`, which evicts
        least-recently-used entries until the store fits.  ``None``
        (default) never evicts.
    metrics:
        Optional :class:`StoreMetrics` to count against (a fresh one is
        created otherwise) — share one instance to aggregate several
        stores, or read ``store.metrics.snapshot()``.

    Writers are concurrent-safe (unique temp file + ``os.replace``);
    there is still no cross-process *index*, because the workload is
    append-mostly and fingerprint-addressed — the filesystem is the
    index.
    """

    suffix = ".cert"

    def __init__(self, root, byte_budget: Optional[int] = None, metrics=None):
        if byte_budget is not None and byte_budget <= 0:
            raise ValueError("byte_budget must be positive (or None)")
        self.root = Path(root)
        self.byte_budget = byte_budget
        self.metrics = metrics if metrics is not None else StoreMetrics()
        self._artifact_cache = None

    # ------------------------------------------------------------------
    def artifact_cache(self):
        """The store's persistent prover-artifact cache (lazy, shared).

        Structural artifacts (decomposition, lanes, completion,
        hierarchy) and per-property evaluations live under
        ``<root>/artifacts/``, next to the certificates — see
        :mod:`repro.api.artifacts` and ``docs/FORMAT.md`` § "Artifact
        envelopes".  Sessions carrying this store adopt the cache
        automatically, so a fresh process certifying a previously seen
        graph runs zero structural prover stages.
        """
        if self._artifact_cache is None:
            from repro.api.artifacts import ArtifactCache

            self._artifact_cache = ArtifactCache(self.root / "artifacts")
        return self._artifact_cache

    # ------------------------------------------------------------------
    # Layout: shards, legacy flat paths, migration.
    # ------------------------------------------------------------------
    def shard_for(self, fingerprint: str) -> Path:
        """The shard directory owning ``fingerprint``."""
        return self.root / fingerprint[:SHARD_PREFIX_LEN]

    def _entry_name(self, fingerprint: str, property_key: str) -> str:
        return f"{fingerprint[:16]}-{_slug(property_key)}{self.suffix}"

    def path_for(self, fingerprint: str, property_key: str) -> Path:
        """Canonical (sharded) entry path for one ``(graph, property)``."""
        return self.shard_for(fingerprint) / self._entry_name(
            fingerprint, property_key
        )

    def flat_path_for(self, fingerprint: str, property_key: str) -> Path:
        """The pre-shard (flat) path the v1 layout used for this entry."""
        return self.root / self._entry_name(fingerprint, property_key)

    def _locate(self, fingerprint: str, property_key: str) -> Path:
        """Resolve the entry path, migrating a flat-layout entry.

        Prefers the sharded path; a legacy flat entry is moved into its
        shard with :func:`os.replace` (racing migrators are harmless —
        the loser's replace finds the source gone and simply retargets
        the shard path).  Returns the sharded path whether or not
        anything exists there, so callers get one canonical location.
        """
        sharded = self.path_for(fingerprint, property_key)
        if sharded.exists():
            return sharded
        flat = self.flat_path_for(fingerprint, property_key)
        if flat.exists():
            try:
                sharded.parent.mkdir(parents=True, exist_ok=True)
                os.replace(flat, sharded)
                self.metrics.add("migrated")
            except OSError:
                # Lost the migration race (or read-only media): whoever
                # won left the entry at the shard path; fall through.
                pass
        return sharded

    def migrate_flat(self) -> int:
        """Move every flat-layout entry into its shard; return the count.

        Idempotent and concurrent-safe (each move is an
        :func:`os.replace`).  :meth:`load` migrates lazily on access;
        this walks the whole root for stores that want the layout
        settled in one pass.
        """
        moved = 0
        for path in sorted(self.root.glob(f"*{self.suffix}")):
            try:
                manifest = self._read(path)
            except StoreError:
                continue  # unreadable flat entry: leave it for forensics
            target = self.path_for(
                manifest["fingerprint"], manifest["property_key"]
            )
            try:
                target.parent.mkdir(parents=True, exist_ok=True)
                os.replace(path, target)
            except OSError:
                continue
            moved += 1
        if moved:
            self.metrics.add("migrated", moved)
        return moved

    def _entry_paths(self) -> list:
        """Every entry file, sharded and (legacy) flat, sorted."""
        if not self.root.is_dir():
            return []
        paths = list(self.root.glob(f"*{self.suffix}"))
        for shard in self.root.iterdir():
            if shard.is_dir() and _SHARD_RE.match(shard.name):
                paths.extend(shard.glob(f"*{self.suffix}"))
        return sorted(paths)

    # ------------------------------------------------------------------
    # Enumeration and accounting.
    # ------------------------------------------------------------------
    def __contains__(self, key) -> bool:
        fingerprint, property_key = key
        return (
            self.path_for(fingerprint, property_key).exists()
            or self.flat_path_for(fingerprint, property_key).exists()
        )

    def __len__(self) -> int:
        return len(self._entry_paths())

    def entries(self) -> list:
        """Return ``(fingerprint, property_key, path)`` for every entry."""
        out = []
        for path in self._entry_paths():
            manifest = self._read(path)
            out.append((manifest["fingerprint"], manifest["property_key"], path))
        return out

    def stats(self) -> dict:
        """Layout accounting: entry count, bytes, shards, stragglers.

        Pure filesystem arithmetic (no envelope is parsed), so it is
        cheap enough for the service metrics snapshot.  Lifetime
        counters (hits/misses/evictions/...) live on :attr:`metrics`.
        """
        paths = self._entry_paths()
        total = 0
        shards = set()
        flat = 0
        for path in paths:
            try:
                total += path.stat().st_size
            except OSError:
                continue  # evicted/replaced underneath us mid-walk
            if path.parent == self.root:
                flat += 1
            else:
                shards.add(path.parent.name)
        orphans = len(self._orphan_paths(max_age_seconds=None))
        snapshot = self.metrics.snapshot()
        return {
            "entries": len(paths),
            "bytes": total,
            "shards": len(shards),
            "flat_entries": flat,
            "tmp_orphans": orphans,
            "byte_budget": self.byte_budget,
            # Edit-stream accounting (repro.incremental) rides along so
            # one stats() call answers "how much work did reuse save".
            "incremental": {
                name: snapshot[name]
                for name in StoreMetrics.INCREMENTAL_FIELDS
            },
        }

    # ------------------------------------------------------------------
    # Eviction / compaction / orphan cleanup.
    # ------------------------------------------------------------------
    def _orphan_paths(self, max_age_seconds: Optional[float]) -> list:
        """Temp files (optionally: older than ``max_age_seconds``)."""
        if not self.root.is_dir():
            return []
        candidates = list(self.root.glob("*.tmp"))
        for shard in self.root.iterdir():
            if shard.is_dir() and _SHARD_RE.match(shard.name):
                candidates.extend(shard.glob("*.tmp"))
        if max_age_seconds is None:
            return sorted(candidates)
        deadline = time.time() - max_age_seconds
        stale = []
        for path in candidates:
            try:
                if path.stat().st_mtime <= deadline:
                    stale.append(path)
            except OSError:
                continue  # the writer finished (or another cleaner won)
        return sorted(stale)

    def clean_orphans(
        self, max_age_seconds: float = ORPHAN_AGE_SECONDS
    ) -> int:
        """Remove stale ``*.tmp`` crash orphans; return how many.

        A temp file younger than ``max_age_seconds`` may be another
        process's write in flight and is left alone — pass ``0`` only
        when no writer can be active (tests, offline compaction).
        """
        removed = 0
        for path in self._orphan_paths(max_age_seconds):
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        if removed:
            self.metrics.add("orphans_cleaned", removed)
        return removed

    def compact(self, byte_budget: Optional[int] = None) -> list:
        """Evict least-recently-used entries until the budget holds.

        ``byte_budget`` defaults to the store's own; with neither set
        only orphan cleanup runs.  Recency is the entry file's mtime —
        :meth:`save` writes it fresh and :meth:`load` bumps it, so "used"
        means served, across processes.  Returns the evicted paths.
        The store's own artifact cache directory is never touched: a
        prover artifact miss is a recompute, priced separately.
        """
        self.clean_orphans()
        budget = self.byte_budget if byte_budget is None else byte_budget
        if budget is None:
            return []
        aged = []  # (mtime, size, path)
        total = 0
        for path in self._entry_paths():
            try:
                stat = path.stat()
            except OSError:
                continue
            aged.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        aged.sort()
        evicted = []
        for mtime, size, path in aged:
            if total <= budget:
                break
            try:
                path.unlink()
            except OSError:
                continue  # concurrent eviction/replacement: already gone
            total -= size
            evicted.append(path)
            self.metrics.add("evictions")
            self.metrics.add("bytes_evicted", size)
        return evicted

    # ------------------------------------------------------------------
    def save(self, report) -> Path:
        """Persist one certified report; return the entry path.

        The report must carry its artifacts (``config`` + ``labeling``,
        i.e. it came from a live ``certify`` call, not from JSON) and
        must not be a prover refusal.  The labeling is persisted in wire
        form — ``report.encoded`` when the session already encoded it,
        else encoded here — and the structured report metadata rides
        along so :meth:`load` can hand back a fully populated
        :class:`~repro.api.results.CertificationReport`.

        The write is atomic and concurrent-safe: the envelope goes to a
        uniquely named ``*.tmp`` in the destination shard, then is
        published with :func:`os.replace`.  A reader never sees a
        partial entry; a crash mid-write leaves only a temp orphan for
        :meth:`clean_orphans`.
        """
        if report.refused:
            raise StoreError("cannot store a refused report (no labeling)")
        if report.config is None or report.labeling is None:
            raise StoreError(
                "report carries no artifacts to store (was it rebuilt "
                "from JSON?)"
            )
        encoded = getattr(report, "encoded", None)
        if encoded is None:
            encoded = encode_labeling_columnar(report.labeling)
        config = report.config
        fingerprint = config.graph.fingerprint()
        scheme = report.scheme
        algebra = getattr(scheme, "algebra", None)
        if algebra is None or getattr(scheme, "max_width", None) is None:
            raise StoreError(
                "report scheme must expose the verifier half "
                "(algebra + max_width) to be storable"
            )
        manifest = {
            "store_version": STORE_VERSION,
            "wire_version": WIRE_VERSION,
            "fingerprint": fingerprint,
            "property_key": report.property_key,
            "graph": config.graph,
            "ids": dict(config.ids),
            "algebra_key": getattr(algebra, "key", None),
            "algebra": algebra,
            "max_width": scheme.max_width,
            "header": encoded.header,
            "labels": {
                key: (enc.data, enc.bit_length)
                for key, enc in encoded.labels.items()
            },
            "location": encoded.location,
            "report": report.to_dict(),
        }
        path = self.path_for(fingerprint, report.property_key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = STORE_MAGIC + pickle.dumps(manifest, protocol=4)
        # Unique temp name: two concurrent writers of the same entry
        # never share a temp file, so neither can publish the other's
        # half-written bytes.  Deliberately matches the "*.tmp" orphan
        # glob and not the "*.cert" entry glob.
        tmp = path.parent / (
            f"{path.name}.{os.getpid()}.{next(_TMP_COUNTER):x}.tmp"
        )
        try:
            tmp.write_bytes(payload)
            os.replace(tmp, path)  # atomic publish
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        self.metrics.add("saves")
        if self.byte_budget is not None:
            self.compact()
        return path

    # ------------------------------------------------------------------
    def _read(self, path: Path) -> dict:
        try:
            payload = Path(path).read_bytes()
        except OSError as exc:
            raise StoreError(f"cannot read store entry {path}: {exc}") from exc
        if not payload.startswith(STORE_MAGIC):
            raise StoreError(f"{path} is not a certificate store entry")
        try:
            manifest = pickle.loads(payload[len(STORE_MAGIC):])
        except Exception as exc:
            # Truncated/bit-flipped envelopes must surface as the
            # documented StoreError, not a raw pickle exception.
            raise StoreError(
                f"corrupted store envelope in {path}: {exc}"
            ) from exc
        if not isinstance(manifest, dict):
            raise StoreError(f"corrupted store envelope in {path}")
        if manifest.get("store_version") != STORE_VERSION:
            raise StoreError(
                f"unsupported store version {manifest.get('store_version')} "
                f"in {path} (this build speaks v{STORE_VERSION})"
            )
        missing = [
            key
            for key in (
                "fingerprint",
                "property_key",
                "graph",
                "ids",
                "algebra",
                "algebra_key",
                "max_width",
                "header",
                "labels",
                "location",
                "report",
            )
            if key not in manifest
        ]
        if missing:
            raise StoreError(
                f"store entry {path} is missing fields: {', '.join(missing)}"
            )
        return manifest

    def load(
        self,
        fingerprint: str,
        property_key: str,
        path: Optional[Path] = None,
        decode: bool = True,
    ):
        """Rehydrate one entry as a ready-to-verify report.

        Returns a :class:`~repro.api.results.CertificationReport` whose
        artifacts (``config``, verifier-half ``scheme``, decoded
        ``labeling``, and the wire-form ``encoded``) are reconstructed
        from disk: ``session.verify(report)`` or a bare
        :class:`~repro.api.runtime.VerificationEngine` can run the round
        immediately, with zero prover stages.  The stored graph is
        re-fingerprinted on load and must match both the requested and
        the recorded fingerprint.

        ``decode=False`` skips decoding the per-edge certificates —
        ``report.labeling`` stays ``None`` while ``report.encoded`` and
        the report metadata are fully populated.  Decoding dominates
        rehydration cost, so this is the fast path for callers that
        serve the certificate without replaying the round (the service
        layer's ``verify: false`` certify requests); completeness makes
        that safe, and ``reverify`` replays the round on demand.

        Flat-layout (pre-shard) entries are found and migrated into
        their shard; serving an entry bumps its mtime, which is the
        recency signal :meth:`compact` evicts against.
        """
        path = path or self._locate(fingerprint, property_key)
        try:
            manifest = self._read(path)
        except StoreError:
            self.metrics.add("misses")
            raise
        if manifest["property_key"] != property_key:
            self.metrics.add("misses")
            raise StoreError(
                f"{path} holds property {manifest['property_key']!r}, "
                f"not {property_key!r}"
            )
        if manifest["fingerprint"] != fingerprint:
            self.metrics.add("misses")
            raise StoreError(
                f"{path} holds fingerprint "
                f"{manifest['fingerprint'][:16]}..., caller asked for "
                f"{fingerprint[:16]}..."
            )
        report = self._rehydrate(manifest, path, decode=decode)
        self.metrics.add("hits")
        try:
            os.utime(path)  # LRU recency bump (shared, cross-process)
        except OSError:
            pass  # read-only store: eviction recency degrades to save time
        return report

    def _rehydrate(self, manifest: dict, path: Path, decode: bool = True):
        """Build the ready-to-verify report from a validated manifest."""
        from repro.api.pipeline import PipelineScheme
        from repro.api.results import CertificationReport

        graph = manifest["graph"]
        observed = graph.fingerprint()
        if observed != manifest["fingerprint"]:
            raise StoreError(
                f"graph fingerprint mismatch in {path}: entry claims "
                f"{manifest['fingerprint'][:16]}..., graph hashes to "
                f"{observed[:16]}..."
            )
        encoded = EncodedLabeling(
            header=manifest["header"],
            labels={
                key: EncodedLabel(data=data, bit_length=bits)
                for key, (data, bits) in manifest["labels"].items()
            },
            location=manifest["location"],
        )
        labeling = None
        if decode:
            try:
                # Columnar bulk decode: equal to encoded.decode() but
                # shares sub-structure across edges, so downstream
                # rounds (and kernel compiles) see interned objects.
                labeling = decode_labeling_columnar(encoded)
            except CodecError as exc:
                raise StoreError(
                    f"corrupted certificate payload in {path}: {exc}"
                ) from exc
            # Re-stamp the wire identity so a reverify round can attach
            # a persisted compiled round with zero compile work.
            stamp_wire_digest(labeling, encoded)
        algebra = manifest["algebra"]
        if algebra is None and manifest["algebra_key"] is not None:
            algebra = resolve_algebra(manifest["algebra_key"])
        config = Configuration(graph, manifest["ids"])
        scheme = PipelineScheme(algebra, manifest["max_width"], ())
        report = CertificationReport.from_dict(manifest["report"])
        report.config = config
        report.scheme = scheme
        report.labeling = labeling
        report.encoded = encoded
        return report

    def load_path(self, path) -> "CertificationReport":
        """Rehydrate an entry from an explicit file path.

        The manifest is read and validated once (no double parse); the
        recorded fingerprint is still checked against the stored graph.
        """
        path = Path(path)
        return self._rehydrate(self._read(path), path)

    # ------------------------------------------------------------------
    def reverify(
        self,
        fingerprint: str,
        property_key: str,
        engine=None,
    ):
        """Load one entry and run the verification round on it.

        Returns the loaded report with ``report.verification`` /
        ``report.accepted`` refreshed by the round — the certify-once /
        re-verify-many fast path, with no prover stage anywhere.
        """
        from repro.api.runtime import VerificationEngine

        report = self.load(fingerprint, property_key)
        engine = engine or VerificationEngine()
        verification = engine.verify(
            report.config, report.scheme, report.labeling
        )
        report.verification = verification
        report.result = verification.as_result()
        report.accepted = verification.accepted
        return report
