"""Persistent certificate store: certify once, re-verify many times.

A :class:`CertificateStore` is a directory of certified instances keyed
by ``(graph fingerprint, property key)``.  Each entry persists exactly
what a verification round needs — the configuration (graph + vertex
identifiers), the verifier half of the scheme, and the labeling in
**wire form** (the shared :class:`~repro.codec.WireHeader` plus one
encoded byte string per edge; see ``docs/FORMAT.md``) — so a fresh
process can :meth:`load` the entry and run
:meth:`~repro.api.runtime.VerificationEngine.verify` (or
``session.verify(report)``) without ever re-running a prover stage.

    store = CertificateStore("certs/")
    report = certify(graph, "connected", k=2, store=store)   # saved
    ...
    # later, possibly in another process:
    loaded = store.load(graph.fingerprint(), "connected")
    verification = store_session.verify(loaded)              # no proving

The on-disk envelope is a pickled manifest (magic-prefixed, versioned):
graphs, identifiers, and algebra states are arbitrary Python values, so
the *container* uses pickle while the certificate payloads themselves
stay raw codec bytes — the part whose size the paper bounds and the
reports measure.  Entries record the graph fingerprint they were proven
against and :meth:`load` recomputes it, so a corrupted or swapped graph
is rejected instead of silently verified.
"""

from __future__ import annotations

import pickle
import re
from pathlib import Path
from typing import Optional

from repro.codec import (
    WIRE_VERSION,
    CodecError,
    EncodedLabel,
    EncodedLabeling,
    encode_labeling,
)
from repro.courcelle.registry import resolve_algebra
from repro.pls.model import Configuration

#: File magic + envelope version; bumped when the manifest layout changes
#: (the label payload format is versioned separately by WIRE_VERSION).
STORE_MAGIC = b"repro-cert\x00"
STORE_VERSION = 1

_SLUG_RE = re.compile(r"[^A-Za-z0-9._-]+")


class StoreError(ValueError):
    """Raised on missing, corrupted, or mismatched store entries."""


def _slug(text: str) -> str:
    """Human-readable filename stem for a property key.

    Distinct keys can collide after slugging (e.g. the session's
    duplicate suffix ``colorable#2`` vs a real ``colorable-2`` key), so
    the stem always ends with a short digest of the *exact* key — two
    different keys never share an entry path.
    """
    import hashlib

    stem = _SLUG_RE.sub("-", text) or "property"
    digest = hashlib.blake2b(text.encode(), digest_size=4).hexdigest()
    return f"{stem}-{digest}"


class CertificateStore:
    """A directory of persisted certificates, one file per entry.

    Parameters
    ----------
    root:
        Directory holding the entries (created on first use).  Entry
        files are named ``<fingerprint prefix>-<property slug>-<key
        digest>.cert`` — the digest keeps distinct property keys on
        distinct paths even when they slug identically; the full
        fingerprint lives inside the envelope and is what :meth:`load`
        matches on.

    The store is deliberately dumb — no index, no locking — because the
    workload it serves (benchmarks and deployments that certify once and
    re-verify many times) is append-mostly and fingerprint-addressed.
    """

    suffix = ".cert"

    def __init__(self, root):
        self.root = Path(root)
        self._artifact_cache = None

    # ------------------------------------------------------------------
    def artifact_cache(self):
        """The store's persistent prover-artifact cache (lazy, shared).

        Structural artifacts (decomposition, lanes, completion,
        hierarchy) and per-property evaluations live under
        ``<root>/artifacts/``, next to the certificates — see
        :mod:`repro.api.artifacts` and ``docs/FORMAT.md`` § "Artifact
        envelopes".  Sessions carrying this store adopt the cache
        automatically, so a fresh process certifying a previously seen
        graph runs zero structural prover stages.
        """
        if self._artifact_cache is None:
            from repro.api.artifacts import ArtifactCache

            self._artifact_cache = ArtifactCache(self.root / "artifacts")
        return self._artifact_cache

    # ------------------------------------------------------------------
    def path_for(self, fingerprint: str, property_key: str) -> Path:
        """Deterministic entry path for one ``(graph, property)`` pair."""
        return self.root / (
            f"{fingerprint[:16]}-{_slug(property_key)}{self.suffix}"
        )

    def __contains__(self, key) -> bool:
        fingerprint, property_key = key
        return self.path_for(fingerprint, property_key).exists()

    def __len__(self) -> int:
        return len(list(self.root.glob(f"*{self.suffix}")))

    def entries(self) -> list:
        """Return ``(fingerprint, property_key, path)`` for every entry."""
        out = []
        for path in sorted(self.root.glob(f"*{self.suffix}")):
            manifest = self._read(path)
            out.append((manifest["fingerprint"], manifest["property_key"], path))
        return out

    # ------------------------------------------------------------------
    def save(self, report) -> Path:
        """Persist one certified report; return the entry path.

        The report must carry its artifacts (``config`` + ``labeling``,
        i.e. it came from a live ``certify`` call, not from JSON) and
        must not be a prover refusal.  The labeling is persisted in wire
        form — ``report.encoded`` when the session already encoded it,
        else encoded here — and the structured report metadata rides
        along so :meth:`load` can hand back a fully populated
        :class:`~repro.api.results.CertificationReport`.
        """
        if report.refused:
            raise StoreError("cannot store a refused report (no labeling)")
        if report.config is None or report.labeling is None:
            raise StoreError(
                "report carries no artifacts to store (was it rebuilt "
                "from JSON?)"
            )
        encoded = getattr(report, "encoded", None)
        if encoded is None:
            encoded = encode_labeling(report.labeling)
        config = report.config
        fingerprint = config.graph.fingerprint()
        scheme = report.scheme
        algebra = getattr(scheme, "algebra", None)
        if algebra is None or getattr(scheme, "max_width", None) is None:
            raise StoreError(
                "report scheme must expose the verifier half "
                "(algebra + max_width) to be storable"
            )
        manifest = {
            "store_version": STORE_VERSION,
            "wire_version": WIRE_VERSION,
            "fingerprint": fingerprint,
            "property_key": report.property_key,
            "graph": config.graph,
            "ids": dict(config.ids),
            "algebra_key": getattr(algebra, "key", None),
            "algebra": algebra,
            "max_width": scheme.max_width,
            "header": encoded.header,
            "labels": {
                key: (enc.data, enc.bit_length)
                for key, enc in encoded.labels.items()
            },
            "location": encoded.location,
            "report": report.to_dict(),
        }
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(fingerprint, report.property_key)
        payload = STORE_MAGIC + pickle.dumps(manifest, protocol=4)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_bytes(payload)
        tmp.replace(path)  # atomic publish: readers never see half a file
        return path

    # ------------------------------------------------------------------
    def _read(self, path: Path) -> dict:
        try:
            payload = Path(path).read_bytes()
        except OSError as exc:
            raise StoreError(f"cannot read store entry {path}: {exc}") from exc
        if not payload.startswith(STORE_MAGIC):
            raise StoreError(f"{path} is not a certificate store entry")
        try:
            manifest = pickle.loads(payload[len(STORE_MAGIC):])
        except Exception as exc:
            # Truncated/bit-flipped envelopes must surface as the
            # documented StoreError, not a raw pickle exception.
            raise StoreError(
                f"corrupted store envelope in {path}: {exc}"
            ) from exc
        if not isinstance(manifest, dict):
            raise StoreError(f"corrupted store envelope in {path}")
        if manifest.get("store_version") != STORE_VERSION:
            raise StoreError(
                f"unsupported store version {manifest.get('store_version')} "
                f"in {path} (this build speaks v{STORE_VERSION})"
            )
        missing = [
            key
            for key in (
                "fingerprint",
                "property_key",
                "graph",
                "ids",
                "algebra",
                "algebra_key",
                "max_width",
                "header",
                "labels",
                "location",
                "report",
            )
            if key not in manifest
        ]
        if missing:
            raise StoreError(
                f"store entry {path} is missing fields: {', '.join(missing)}"
            )
        return manifest

    def load(
        self,
        fingerprint: str,
        property_key: str,
        path: Optional[Path] = None,
    ):
        """Rehydrate one entry as a ready-to-verify report.

        Returns a :class:`~repro.api.results.CertificationReport` whose
        artifacts (``config``, verifier-half ``scheme``, decoded
        ``labeling``, and the wire-form ``encoded``) are reconstructed
        from disk: ``session.verify(report)`` or a bare
        :class:`~repro.api.runtime.VerificationEngine` can run the round
        immediately, with zero prover stages.  The stored graph is
        re-fingerprinted on load and must match both the requested and
        the recorded fingerprint.
        """
        path = path or self.path_for(fingerprint, property_key)
        manifest = self._read(path)
        if manifest["property_key"] != property_key:
            raise StoreError(
                f"{path} holds property {manifest['property_key']!r}, "
                f"not {property_key!r}"
            )
        if manifest["fingerprint"] != fingerprint:
            raise StoreError(
                f"{path} holds fingerprint "
                f"{manifest['fingerprint'][:16]}..., caller asked for "
                f"{fingerprint[:16]}..."
            )
        return self._rehydrate(manifest, path)

    def _rehydrate(self, manifest: dict, path: Path):
        """Build the ready-to-verify report from a validated manifest."""
        from repro.api.pipeline import PipelineScheme
        from repro.api.results import CertificationReport

        graph = manifest["graph"]
        observed = graph.fingerprint()
        if observed != manifest["fingerprint"]:
            raise StoreError(
                f"graph fingerprint mismatch in {path}: entry claims "
                f"{manifest['fingerprint'][:16]}..., graph hashes to "
                f"{observed[:16]}..."
            )
        encoded = EncodedLabeling(
            header=manifest["header"],
            labels={
                key: EncodedLabel(data=data, bit_length=bits)
                for key, (data, bits) in manifest["labels"].items()
            },
            location=manifest["location"],
        )
        try:
            labeling = encoded.decode()
        except CodecError as exc:
            raise StoreError(
                f"corrupted certificate payload in {path}: {exc}"
            ) from exc
        algebra = manifest["algebra"]
        if algebra is None and manifest["algebra_key"] is not None:
            algebra = resolve_algebra(manifest["algebra_key"])
        config = Configuration(graph, manifest["ids"])
        scheme = PipelineScheme(algebra, manifest["max_width"], ())
        report = CertificationReport.from_dict(manifest["report"])
        report.config = config
        report.scheme = scheme
        report.labeling = labeling
        report.encoded = encoded
        return report

    def load_path(self, path) -> "CertificationReport":
        """Rehydrate an entry from an explicit file path.

        The manifest is read and validated once (no double parse); the
        recorded fingerprint is still checked against the stored graph.
        """
        path = Path(path)
        return self._rehydrate(self._read(path), path)

    # ------------------------------------------------------------------
    def reverify(
        self,
        fingerprint: str,
        property_key: str,
        engine=None,
    ):
        """Load one entry and run the verification round on it.

        Returns the loaded report with ``report.verification`` /
        ``report.accepted`` refreshed by the round — the certify-once /
        re-verify-many fast path, with no prover stage anywhere.
        """
        from repro.api.runtime import VerificationEngine

        report = self.load(fingerprint, property_key)
        engine = engine or VerificationEngine()
        verification = engine.verify(
            report.config, report.scheme, report.labeling
        )
        report.verification = verification
        report.result = verification.as_result()
        report.accepted = verification.accepted
        return report
