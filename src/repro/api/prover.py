"""Pool-resident parallel per-property proving.

The per-property plan nodes (evaluate → label) are independent across
properties: they share the structural artifacts (configuration,
hierarchy root, embedding) and nothing else.  That is the same shape as
the verification round's independent per-vertex checks, so this module
applies the same pool-resident dispatch pattern as
:class:`repro.api.runtime.ParallelExecutor`:

* the **structural payload** ``(config, root, embedding)`` is pickled
  exactly once per pool lifetime into the ``ProcessPoolExecutor``
  initializer, where each worker keeps it resident;
* per-property submissions carry only the pickled algebra instance;
* a pool is bound to one payload — batches over the same structural
  artifacts reuse it, a new payload retires it.  ``payload_ships``
  counts shipments, mirroring the executor's observability contract.

Determinism: a worker runs *exactly* the serial evaluate/label code
(:func:`~repro.core.hierarchy.evaluate_hierarchy`,
:class:`~repro.core.certificates.CertificateBuilder`) on a pickled copy
of the same artifacts.  Hierarchy evaluations are keyed by serial
``node_id`` (pickle-stable) and class fingerprints use the canonical
state form (:func:`~repro.courcelle.algebra.canonical_state_repr`), so
the returned labelings are bit-identical to a serial run — the tier-1
plan suite asserts it on the full wire encoding.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Optional

from repro.core.certificates import CertificateBuilder
from repro.core.hierarchy import evaluate_hierarchy
from repro.pls.bits import ClassIndexer


@dataclass
class PropertyOutcome:
    """What proving one property against a resident hierarchy produced."""

    refused: bool
    refusal: Optional[str] = None
    evaluation: object = None  # HierarchyEvaluation (node_id-keyed)
    class_count: Optional[int] = None
    mapping: Optional[dict] = None  # edge key -> Theorem1Label
    evaluate_seconds: float = 0.0
    label_seconds: float = 0.0


def prove_one_property(config, root, embedding, algebra) -> PropertyOutcome:
    """The serial evaluate+label body, shared by both dispatch modes.

    Mirrors :class:`~repro.api.pipeline.EvaluateStage` /
    :class:`~repro.api.pipeline.LabelStage` exactly — including the
    refusal message — so outcomes are indistinguishable from a pipeline
    run whichever side of a process boundary they were computed on.
    """
    began = perf_counter()
    evaluation = evaluate_hierarchy(root, algebra)
    accepted = evaluation.accepts(root)
    evaluate_seconds = perf_counter() - began
    if not accepted:
        return PropertyOutcome(
            refused=True,
            refusal="property does not hold on the real subgraph",
            evaluation=evaluation,
            evaluate_seconds=evaluate_seconds,
        )
    began = perf_counter()
    indexer = ClassIndexer()
    builder = CertificateBuilder(config, root, evaluation, indexer)
    mapping = builder.physical_labels(embedding)
    return PropertyOutcome(
        refused=False,
        evaluation=evaluation,
        class_count=indexer.class_count,
        mapping=mapping,
        evaluate_seconds=evaluate_seconds,
        label_seconds=perf_counter() - began,
    )


# -- worker-process state (set once per pool by the initializer) --------

_PROVER_PAYLOAD = None  # (config, root, embedding)


def _init_prover_worker(payload_bytes: bytes) -> None:
    """Pool initializer: rebuild the resident structural artifacts."""
    global _PROVER_PAYLOAD
    _PROVER_PAYLOAD = pickle.loads(payload_bytes)


def _prove_property(algebra_bytes: bytes) -> PropertyOutcome:
    """Worker-side entry point: one pickled algebra, nothing else."""
    config, root, embedding = _PROVER_PAYLOAD
    return prove_one_property(
        config, root, embedding, pickle.loads(algebra_bytes)
    )


class ParallelProver:
    """Fans the per-property evaluate/label nodes out to a process pool.

        session = CertificationSession(prover=ParallelProver(max_workers=4))
        reports = session.certify(graph, ZOO_KEYS)   # properties in parallel

    The prover only accelerates batches; a single property (or a batch
    fully served by the artifact cache) never touches the pool.  Use it
    as a context manager or call :meth:`close` to release the workers.
    """

    name = "parallel"

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        #: Payload shipments (= pool creations) over this prover's life.
        self.payload_ships = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_payload: Optional[tuple] = None

    # ------------------------------------------------------------------
    def _pool_for(self, config, root, embedding) -> ProcessPoolExecutor:
        if self._pool is not None:
            held = self._pool_payload
            if (
                held is not None
                and held[0] is config
                and held[1] is root
                and held[2] is embedding
                # Graph edits between batches re-ship, exactly like the
                # verification executor's payload identity contract.
                and held[3] is config.graph.csr
                and held[4] == config.graph.labels_version
            ):
                return self._pool
            self.close()
        blob = pickle.dumps((config, root, embedding))
        self.payload_ships += 1
        self._pool = ProcessPoolExecutor(
            max_workers=self.max_workers,
            initializer=_init_prover_worker,
            initargs=(blob,),
        )
        self._pool_payload = (
            config,
            root,
            embedding,
            config.graph.csr,
            config.graph.labels_version,
        )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self._pool_payload = None

    def __enter__(self) -> "ParallelProver":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def prove_batch(self, config, root, embedding, algebras) -> list:
        """Prove every algebra against the resident structural payload.

        Returns one :class:`PropertyOutcome` per algebra, in input
        order.  Worker exceptions propagate — the serial path raises
        them too (algebra arity guards and the like are prover bugs, not
        refusals).
        """
        algebras = list(algebras)
        if not algebras:
            return []
        pool = self._pool_for(config, root, embedding)
        futures = [
            pool.submit(_prove_property, pickle.dumps(algebra))
            for algebra in algebras
        ]
        return [future.result() for future in futures]
