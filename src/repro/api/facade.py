"""The one-line certification entry point.

    from repro.api import certify

    report = certify(graph, "connected", k=2)
    reports = certify(sequence, ["connected", "acyclic", "even-order"])

``certify`` builds a throwaway :class:`CertificationSession` (or reuses a
caller-supplied one) and returns structured
:class:`~repro.api.results.CertificationReport` objects.  For repeated
certification — many properties, many graphs — construct a session once
and call ``session.certify`` directly so the structural stages are
shared.

The legacy entry points (``Theorem1Scheme``, ``LanewidthScheme``,
``certify_lanewidth_graph``) are re-exported here; they are thin shims
whose provers delegate to the same pipeline stages.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

# Back-compat shims: same objects as repro.core, pipeline-backed.
from repro.core.scheme import (  # noqa: F401  (re-exported)
    LanewidthScheme,
    Theorem1Scheme,
    certify_lanewidth_graph,
)

from repro.api.runtime import VerificationEngine
from repro.api.session import CertificationSession


def certify(
    target,
    properties,
    k: Optional[int] = None,
    *,
    rng: Optional[random.Random] = None,
    decomposer: Optional[Callable] = None,
    exact_limit: Optional[int] = None,
    exact_engine: Optional[str] = None,
    exact_budget_ms: Optional[float] = None,
    session: Optional[CertificationSession] = None,
    verify: bool = True,
    engine: Optional[VerificationEngine] = None,
    store=None,
    artifacts=None,
    prover=None,
):
    """Certify MSO₂ ``properties`` on ``target`` and report the results.

    Parameters
    ----------
    target:
        A :class:`~repro.graphs.Graph` (random O(log n)-bit identifiers
        are attached), a :class:`~repro.pls.model.Configuration`, or a
        native :class:`~repro.core.lanewidth.ConstructionSequence`.
    properties:
        One registry key / algebra instance, or a list of them — a list
        is proven as a batch against one shared hierarchy.
    k:
        Pathwidth bound (required for graph targets; ignored for
        sequence targets, which carry their own width).
    rng:
        Identifier source for bare-graph targets.
    decomposer:
        Optional witness decomposition override, ``graph ->
        PathDecomposition``.
    exact_limit:
        Exact-decomposition cutoff for the default decomposer (see
        :class:`repro.api.pipeline.DecomposeStage`).
    exact_engine:
        Exact decomposition engine — ``"bnb"`` (branch-and-bound,
        default) or ``"dp"`` (legacy subset DP).
    exact_budget_ms:
        Wall-clock budget authorizing exact branch-and-bound attempts on
        graphs above ``exact_limit``; a timeout falls back to the best
        incumbent (never worse than the heuristic), recorded in
        ``report.decomposition_stats``.
    session:
        Reuse an existing session (and its structural cache) instead of
        creating a fresh one.
    verify:
        ``False`` skips the verification round (prove only); replay it
        later with ``session.verify(report)``.
    engine:
        The :class:`~repro.api.runtime.VerificationEngine` running the
        round — pick the executor (serial/parallel) and ``fail_fast``
        policy here.  Defaults to a serial engine.
    store:
        Optional :class:`~repro.api.store.CertificateStore`.  Every
        successful report is persisted to it in wire form (graph
        fingerprint + codec header + encoded labels), ready for
        ``store.load(...)`` / ``store.reverify(...)`` in this process or
        a later one — no prover stage reruns on the stored path.  The
        store's ``artifact_cache()`` additionally persists the prover's
        structural artifacts, so re-certifying a seen graph (even from a
        fresh process) skips every structural stage.
    artifacts:
        Optional :class:`~repro.api.artifacts.ArtifactCache` override
        for the prover-artifact cache (``None``: derived from ``store``,
        else in-memory).
    prover:
        Optional :class:`~repro.api.prover.ParallelProver`; batches
        dispatch their independent per-property evaluate/label work
        through its pool-resident workers.

    Returns a single :class:`CertificationReport` when ``properties`` is
    a single key, else ``{key: report}``.  Prover refusals are reported,
    not raised.  Report sizes (``max/mean/total_label_bits``) are
    measured wire-encoding bit lengths; the arithmetic estimate is kept
    in ``accounted_*_label_bits``.
    """
    if session is None:
        session = CertificationSession(
            k=k,
            decomposer=decomposer,
            exact_limit=exact_limit,
            exact_engine=exact_engine,
            exact_budget_ms=exact_budget_ms,
            rng=rng,
            engine=engine,
            store=store,
            artifacts=artifacts,
            prover=prover,
        )
    else:
        # Explicit arguments must not be silently dropped: adopt them on
        # a session that has none, refuse when they conflict (the cached
        # structures were built under the session's settings).
        for name, value in (
            ("k", k),
            ("decomposer", decomposer),
            ("exact_limit", exact_limit),
            ("exact_engine", exact_engine),
            ("exact_budget_ms", exact_budget_ms),
            ("engine", engine),
            ("store", store),
            ("prover", prover),
        ):
            if value is None:
                continue
            current = getattr(session, name)
            if current is None:
                if name == "store":
                    # Re-derives a lazily created store-less artifact
                    # cache so the store's persistence takes effect.
                    session.adopt_store(value)
                else:
                    setattr(session, name, value)
            elif current != value:
                raise ValueError(
                    f"session was configured with {name}={current!r}, got "
                    f"{name}={value!r}; use a separate session per setting"
                )
        if artifacts is not None:
            # ``session.artifacts`` is a lazily derived property; adopt
            # the explicit cache only while it is still unset.
            if session._artifacts is None:
                session._artifacts = artifacts
            elif session._artifacts is not artifacts:
                raise ValueError(
                    "session already carries an artifact cache; use a "
                    "separate session per cache"
                )
    return session.certify(target, properties, rng=rng, verify=verify)
