"""Structured certification results.

:class:`CertificationReport` replaces the untyped
``(config, scheme, labeling, result)`` tuple of the legacy
``certify_lanewidth_graph`` entry point with named fields: the verdict,
honest bit accounting (max/mean/total label bits, class count), the
structural shape (lane width, hierarchy depth), and per-stage wall-clock
timings plus the session's cumulative stage counters — the observability
surface the batching experiments assert against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class StageTiming:
    """Wall-clock seconds spent in one pipeline stage.

    ``cached`` marks timings replayed from a session's memoized
    structural artifacts: the stage did *not* run for this report — the
    figure records what the artifact originally cost.
    """

    name: str
    seconds: float
    cached: bool = False

    def __str__(self) -> str:
        suffix = " (cached)" if self.cached else ""
        return f"{self.name}: {self.seconds * 1e3:.2f} ms{suffix}"


@dataclass
class CertificationReport:
    """Everything one ``certify`` call learned about one property."""

    property_key: str
    accepted: bool
    #: True when the honest prover refused the instance (property false,
    #: width over bound, disconnected network, ...) — ``refusal`` says why.
    refused: bool = False
    refusal: Optional[str] = None

    # Instance shape.
    n: int = 0
    m: int = 0
    #: Certified lanewidth bound (f(k+1) in pathwidth mode).
    max_width: Optional[int] = None
    #: Lane count of the hierarchy root actually built.
    lane_count: Optional[int] = None
    hierarchy_depth: Optional[int] = None

    # Bit accounting (None when the prover refused).
    class_count: Optional[int] = None
    max_label_bits: Optional[int] = None
    mean_label_bits: Optional[float] = None
    total_label_bits: Optional[int] = None

    # Observability.
    stage_timings: tuple = ()
    #: Snapshot of the owning session's cumulative per-stage run counts
    #: at report creation time ({} for sessionless pipeline runs).
    stage_counters: dict = field(default_factory=dict)
    #: True when the structural stages were served from the session cache.
    structure_cached: bool = False

    # Raw artifacts for drill-down and legacy interop (never compared).
    config: object = field(default=None, repr=False, compare=False)
    scheme: object = field(default=None, repr=False, compare=False)
    labeling: object = field(default=None, repr=False, compare=False)
    result: object = field(default=None, repr=False, compare=False)

    def as_tuple(self) -> tuple:
        """Return the legacy ``(config, scheme, labeling, result)`` tuple."""
        return (self.config, self.scheme, self.labeling, self.result)

    @property
    def rejecting_vertices(self) -> list:
        """Vertices that rejected during verification ([] if accepted)."""
        if self.result is None:
            return []
        return self.result.rejecting_vertices

    def stage_seconds(self, name: str) -> float:
        """Total seconds attributed to the named stage in this report."""
        return sum(t.seconds for t in self.stage_timings if t.name == name)

    def summary(self) -> str:
        """One human-readable line, for examples and benchmark tables."""
        if self.refused:
            return (
                f"{self.property_key}: prover refused ({self.refusal}) "
                f"on n={self.n}, m={self.m}"
            )
        verdict = "accepted" if self.accepted else "REJECTED"
        cached = ", structure cached" if self.structure_cached else ""
        return (
            f"{self.property_key}: {verdict}, n={self.n}, m={self.m}, "
            f"max {self.max_label_bits} bits, mean "
            f"{self.mean_label_bits:.1f} bits, {self.class_count} classes, "
            f"depth {self.hierarchy_depth}{cached}"
        )
