"""Structured certification results.

:class:`CertificationReport` replaces the untyped
``(config, scheme, labeling, result)`` tuple of the legacy
``certify_lanewidth_graph`` entry point with named fields: the verdict,
honest bit accounting (max/mean/total label bits, class count), the
structural shape (lane width, hierarchy depth), and per-stage wall-clock
timings plus the session's cumulative stage counters — the observability
surface the batching experiments assert against.

Since the wire codec landed, the headline ``*_label_bits`` figures are
**measured**: the exact bit lengths of the labels' wire encodings
(:mod:`repro.codec`, ``docs/FORMAT.md``), not arithmetic estimates.  The
pre-codec accounting of ``label_bits()`` is still reported alongside as
``accounted_*_label_bits`` — the tier-1 suite asserts measured ≤
accounted, so the O(log n) claims only ever got *tighter*.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.api.runtime import VerificationReport


@dataclass(frozen=True)
class StageTiming:
    """Wall-clock seconds spent in one pipeline stage.

    ``cached`` marks timings replayed from a session's memoized
    structural artifacts: the stage did *not* run for this report — the
    figure records what the artifact originally cost.
    """

    name: str
    seconds: float
    cached: bool = False

    def __str__(self) -> str:
        suffix = " (cached)" if self.cached else ""
        return f"{self.name}: {self.seconds * 1e3:.2f} ms{suffix}"

    def to_dict(self) -> dict:
        return {"name": self.name, "seconds": self.seconds, "cached": self.cached}

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, data: dict) -> "StageTiming":
        return cls(
            name=data["name"],
            seconds=data["seconds"],
            cached=data.get("cached", False),
        )


@dataclass
class CertificationReport:
    """Everything one ``certify`` call learned about one property."""

    property_key: str
    accepted: bool
    #: True when the honest prover refused the instance (property false,
    #: width over bound, disconnected network, ...) — ``refusal`` says why.
    refused: bool = False
    refusal: Optional[str] = None

    # Instance shape.
    n: int = 0
    m: int = 0
    #: Certified lanewidth bound (f(k+1) in pathwidth mode).
    max_width: Optional[int] = None
    #: Lane count of the hierarchy root actually built.
    lane_count: Optional[int] = None
    hierarchy_depth: Optional[int] = None

    # Bit accounting (None when the prover refused).  The unqualified
    # figures are *measured* — exact wire-encoding bit lengths; the
    # ``accounted_*`` figures are the arithmetic ``label_bits`` estimate
    # kept for comparison (measured <= accounted, asserted in tier 1).
    class_count: Optional[int] = None
    max_label_bits: Optional[int] = None
    mean_label_bits: Optional[float] = None
    total_label_bits: Optional[int] = None
    accounted_max_label_bits: Optional[int] = None
    accounted_mean_label_bits: Optional[float] = None
    accounted_total_label_bits: Optional[int] = None

    # Observability.
    stage_timings: tuple = ()
    #: Snapshot of the owning session's cumulative per-stage run counts
    #: at report creation time ({} for sessionless pipeline runs).
    stage_counters: dict = field(default_factory=dict)
    #: True when the structural stages were served from the session cache.
    structure_cached: bool = False
    #: How the witness decomposition was obtained (``None`` in lanewidth
    #: mode or on refusal before the decompose stage): engine name
    #: ("bnb"/"dp"/"heuristic"/"witness"), achieved vs heuristic width,
    #: and — for the branch-and-bound — nodes expanded, memo hits,
    #: optimality/timeout flags.
    decomposition_stats: Optional[dict] = None

    # Cold-path observability: wall-clock spent wire-encoding the
    # labeling (0.0 when the encoded form came from the artifact cache),
    # kernel compile time of the verification round, and whether that
    # round attached to a persisted compiled-round envelope instead of
    # compiling.
    encode_seconds: float = 0.0
    compile_seconds: float = 0.0
    compiled_round_cached: bool = False

    #: Structured record of the verification round (``None`` when the
    #: prover refused or the round was skipped via ``verify=False``).
    verification: Optional[VerificationReport] = field(default=None, repr=False)

    # Raw artifacts for drill-down and legacy interop (never compared).
    config: object = field(default=None, repr=False, compare=False)
    scheme: object = field(default=None, repr=False, compare=False)
    labeling: object = field(default=None, repr=False, compare=False)
    result: object = field(default=None, repr=False, compare=False)
    #: The labeling in wire form (:class:`repro.codec.EncodedLabeling`)
    #: when this report came from a live certify call or a store load.
    encoded: object = field(default=None, repr=False, compare=False)

    def as_tuple(self) -> tuple:
        """Return the legacy ``(config, scheme, labeling, result)`` tuple."""
        return (self.config, self.scheme, self.labeling, self.result)

    @property
    def rejecting_vertices(self) -> list:
        """Vertices that rejected during verification ([] if accepted)."""
        if self.result is None:
            return []
        return self.result.rejecting_vertices

    def stage_seconds(self, name: str) -> float:
        """Total seconds attributed to the named stage in this report."""
        return sum(t.seconds for t in self.stage_timings if t.name == name)

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        """Machine-readable form for experiment output.

        Raw artifacts (config/scheme/labeling/result) are drill-down
        handles, not data — they are deliberately not serialized; the
        structured ``verification`` record is.
        """
        return {
            "property_key": self.property_key,
            "accepted": self.accepted,
            "refused": self.refused,
            "refusal": self.refusal,
            "n": self.n,
            "m": self.m,
            "max_width": self.max_width,
            "lane_count": self.lane_count,
            "hierarchy_depth": self.hierarchy_depth,
            "class_count": self.class_count,
            "max_label_bits": self.max_label_bits,
            "mean_label_bits": self.mean_label_bits,
            "total_label_bits": self.total_label_bits,
            "accounted_max_label_bits": self.accounted_max_label_bits,
            "accounted_mean_label_bits": self.accounted_mean_label_bits,
            "accounted_total_label_bits": self.accounted_total_label_bits,
            "stage_timings": [t.to_dict() for t in self.stage_timings],
            "stage_counters": dict(self.stage_counters),
            "structure_cached": self.structure_cached,
            "decomposition_stats": (
                dict(self.decomposition_stats)
                if self.decomposition_stats is not None
                else None
            ),
            "encode_seconds": self.encode_seconds,
            "compile_seconds": self.compile_seconds,
            "compiled_round_cached": self.compiled_round_cached,
            "verification": (
                self.verification.to_dict()
                if self.verification is not None
                else None
            ),
        }

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, data: dict) -> "CertificationReport":
        verification = data.get("verification")
        return cls(
            property_key=data["property_key"],
            accepted=data["accepted"],
            refused=data.get("refused", False),
            refusal=data.get("refusal"),
            n=data.get("n", 0),
            m=data.get("m", 0),
            max_width=data.get("max_width"),
            lane_count=data.get("lane_count"),
            hierarchy_depth=data.get("hierarchy_depth"),
            class_count=data.get("class_count"),
            max_label_bits=data.get("max_label_bits"),
            mean_label_bits=data.get("mean_label_bits"),
            total_label_bits=data.get("total_label_bits"),
            accounted_max_label_bits=data.get("accounted_max_label_bits"),
            accounted_mean_label_bits=data.get("accounted_mean_label_bits"),
            accounted_total_label_bits=data.get("accounted_total_label_bits"),
            stage_timings=tuple(
                StageTiming.from_dict(t) for t in data.get("stage_timings", ())
            ),
            stage_counters=dict(data.get("stage_counters", {})),
            structure_cached=data.get("structure_cached", False),
            decomposition_stats=data.get("decomposition_stats"),
            encode_seconds=data.get("encode_seconds", 0.0),
            compile_seconds=data.get("compile_seconds", 0.0),
            compiled_round_cached=data.get("compiled_round_cached", False),
            verification=(
                VerificationReport.from_dict(verification)
                if verification is not None
                else None
            ),
        )

    def summary(self) -> str:
        """One human-readable line, for examples and benchmark tables.

        The bit figures are measured wire-encoding sizes (see
        ``docs/FORMAT.md``), not the arithmetic estimate — that one is
        available as ``accounted_max_label_bits``.
        """
        if self.refused:
            return (
                f"{self.property_key}: prover refused ({self.refusal}) "
                f"on n={self.n}, m={self.m}"
            )
        verdict = "accepted" if self.accepted else "REJECTED"
        cached = ", structure cached" if self.structure_cached else ""
        decomposed = ""
        if self.decomposition_stats:
            stats = self.decomposition_stats
            decomposed = f", {stats.get('engine')} width {stats.get('width')}"
            heuristic = stats.get("heuristic_width")
            if heuristic is not None and heuristic != stats.get("width"):
                decomposed += f" (heuristic {heuristic})"
        return (
            f"{self.property_key}: {verdict}, n={self.n}, m={self.m}, "
            f"max {self.max_label_bits} encoded bits, mean "
            f"{self.mean_label_bits:.1f} bits, {self.class_count} classes, "
            f"depth {self.hierarchy_depth}{decomposed}{cached}"
        )
