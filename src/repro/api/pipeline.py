"""The staged certification pipeline.

Theorem 1's prover factors into reusable structural stages (path
decomposition → lane partition → completion → construction sequence →
hierarchy) followed by property-specific stages (algebra evaluation →
certificate labels).  This module makes each stage an explicit, swappable
object operating on a shared :class:`PipelineContext`, with a
:class:`CertificationPipeline` runner that records per-stage wall-clock
timings and run counts.

The split is what enables batch multi-property proving: the structural
stages depend only on the graph, so a :class:`repro.api.CertificationSession`
runs them once and replays :class:`EvaluateStage`/:class:`LabelStage`
per property (Bousquet–Feuilloley–Pierron's decomposition/evaluation
separation, made operational).

Two stage lists cover the two proving modes:

* :func:`theorem1_stages` — the full Section 4→6 pipeline for a graph
  with a pathwidth bound ``k``;
* :func:`lanewidth_stages` — native lanewidth constructions, where a
  :class:`MatchSequenceStage` replaces the Section 4 front end.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Callable, Optional

from repro.core.certificates import CertificateBuilder
from repro.core.completion import build_completion
from repro.core.construction import build_hierarchy
from repro.core.embedding import Embedding
from repro.core.hierarchy import (
    evaluate_hierarchy,
    hierarchy_depth,
    validate_hierarchy,
)
from repro.core.lane_partition import build_lane_partition, f_bound
from repro.core.lanewidth import (
    ConstructionSequence,
    apply_construction,
    construction_sequence_from_completion,
)
from repro.core.scheme import CertifyingScheme
from repro.courcelle.registry import resolve_algebra
from repro.pathwidth.branch_and_bound import (
    branch_and_bound_decomposition,
    ordering_from_decomposition,
)
from repro.pathwidth.exact import exact_path_decomposition
from repro.pathwidth.heuristics import heuristic_path_decomposition
from repro.pls.bits import ClassIndexer, SizeContext
from repro.pls.model import Configuration
from repro.pls.scheme import Labeling, ProverFailure

from repro.api.results import StageTiming

#: Default instance-size cutoff below which :class:`DecomposeStage`
#: always runs an exact engine to completion.  Above it, exact search
#: only happens when an ``exact_budget_ms`` deadline authorizes a
#: budgeted branch-and-bound attempt.  Overridable per stage
#: (``DecomposeStage(exact_limit=...)``), per scheme
#: (``Theorem1Scheme(..., exact_limit=...)``), and through the
#: facade/session ``exact_limit`` keyword.
DEFAULT_EXACT_DECOMPOSITION_LIMIT = 14

#: Default exact decomposition engine: the branch-and-bound vertex
#: separation search (``"bnb"``); ``"dp"`` selects the legacy subset DP.
DEFAULT_EXACT_ENGINE = "bnb"

#: Stage names whose artifacts depend only on the graph (memoizable).
STRUCTURAL_STAGES = ("decompose", "lanes", "completion", "match", "hierarchy")
#: Stage names that must rerun for every property.
PROPERTY_STAGES = ("evaluate", "label")


@dataclass
class PipelineContext:
    """The artifact blackboard the stages read from and write to."""

    config: Configuration
    #: Property under certification — a registry key or algebra instance;
    #: :class:`EvaluateStage` resolves and pins the instance here.
    algebra: object = None

    # Structural artifacts (graph-only; reusable across properties).
    decomposition: object = None  # PathDecomposition
    lanes: object = None  # LanePartitionResult
    completion: object = None  # CompletionResult
    sequence: Optional[ConstructionSequence] = None
    root: object = None  # HierarchyNode
    hierarchy_depth: Optional[int] = None
    embedding: Optional[Embedding] = None
    max_width: Optional[int] = None
    #: How the witness decomposition was obtained (engine, widths,
    #: search counters) — see :meth:`DecomposeStage.default_decomposer`.
    decomposition_stats: Optional[dict] = None

    # Property-specific artifacts.
    evaluation: object = None  # HierarchyEvaluation
    class_count: Optional[int] = None
    labeling: Optional[Labeling] = None

    #: Timings of every stage run against this context, in order.
    timings: list = field(default_factory=list)

    @property
    def graph(self):
        return self.config.graph

    def structural_copy(
        self, config: Optional[Configuration] = None, algebra=None
    ) -> "PipelineContext":
        """Clone the structural artifacts for another property (or config).

        The per-property fields (evaluation, labeling, timings) start
        fresh; the expensive graph-level artifacts are shared by
        reference — stages never mutate them after creation.
        """
        clone = replace(self, timings=[])
        clone.config = config or self.config
        clone.algebra = algebra
        clone.evaluation = None
        clone.class_count = None
        clone.labeling = None
        return clone


class Stage:
    """One pipeline step.

    ``run`` reads its inputs from the context and writes its artifacts
    back; it raises :class:`ProverFailure` when the honest prover must
    refuse (precondition or property violation).

    Stages additionally *declare* their dataflow for the plan layer
    (:mod:`repro.api.plan`): ``inputs`` and ``outputs`` name the
    :class:`PipelineContext` fields read and written (the sources
    ``"graph"``, ``"config"``, and ``"algebra"`` are provided by the
    caller), and :meth:`plan_params` returns the parameters that — along
    with the input artifacts — determine the outputs.  Together they
    give every produced artifact a content fingerprint, which is what
    lets a plan runner skip a node whose outputs are already resolved in
    an :class:`~repro.api.artifacts.ArtifactCache`.
    """

    name: str = "stage"
    #: Context fields (or sources) this stage reads.
    inputs: tuple = ()
    #: Context fields this stage writes.
    outputs: tuple = ()

    def run(self, ctx: PipelineContext) -> None:
        raise NotImplementedError

    def plan_params(self):
        """Return ``(params, persistable)`` for artifact fingerprinting.

        ``params`` is a stable, reprable value capturing every stage
        parameter that can change the outputs; ``persistable`` is False
        when the params are only meaningful inside this process (e.g. an
        ``id()`` of a closure), in which case the artifacts stay in the
        in-memory cache layer and are never written to disk.
        """
        return ((), True)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class DecomposeStage(Stage):
    """Find a width-``k`` witness path decomposition (or refuse).

    Parameters
    ----------
    k:
        The pathwidth bound being certified.
    decomposer:
        Optional override ``graph -> PathDecomposition`` (generators that
        already know a witness pass it here and skip the search).
    exact_limit:
        Instances with ``n <= exact_limit`` always get a *complete* exact
        search.  Larger ones get a budgeted branch-and-bound attempt when
        ``exact_budget_ms`` is set, and the heuristic portfolio
        otherwise.  ``None`` means
        :data:`DEFAULT_EXACT_DECOMPOSITION_LIMIT`.
    exact_engine:
        ``"bnb"`` (default) — the branch-and-bound vertex-separation
        search, no intrinsic size cap; ``"dp"`` — the legacy O(2^n)
        subset DP, still hard-gated at ``exact_limit``.
    exact_budget_ms:
        Wall-clock budget for exact search above ``exact_limit``
        (``"bnb"`` only).  The search is seeded with the heuristic
        incumbent, so a timeout falls back to an ordering at least as
        good as the heuristic's, with the attempt recorded in the
        ``decomposition_stats`` artifact.  ``None`` (default) disables
        exact attempts above the limit.
    """

    name = "decompose"
    inputs = ("graph",)
    outputs = ("decomposition", "max_width", "decomposition_stats")

    def __init__(
        self,
        k: int,
        decomposer: Optional[Callable] = None,
        exact_limit: Optional[int] = None,
        exact_engine: Optional[str] = None,
        exact_budget_ms: Optional[float] = None,
    ):
        if k < 1:
            raise ValueError("pathwidth bound must be at least 1")
        if exact_limit is None:
            exact_limit = DEFAULT_EXACT_DECOMPOSITION_LIMIT
        if exact_limit < 0:
            raise ValueError("exact_limit must be non-negative")
        if exact_engine is None:
            exact_engine = DEFAULT_EXACT_ENGINE
        if exact_engine not in ("bnb", "dp"):
            raise ValueError(
                f"unknown exact_engine {exact_engine!r}; expected 'bnb' or 'dp'"
            )
        if exact_budget_ms is not None and exact_budget_ms <= 0:
            raise ValueError("exact_budget_ms must be positive")
        self.k = k
        self.decomposer = decomposer
        self.exact_limit = exact_limit
        self.exact_engine = exact_engine
        self.exact_budget_ms = exact_budget_ms

    def _engine_params(self):
        return (
            "k", self.k, "exact_limit", self.exact_limit,
            "exact_engine", self.exact_engine,
            "exact_budget_ms", self.exact_budget_ms,
        )

    def plan_params(self):
        if self.decomposer is None:
            return (self._engine_params(), True)
        # An explicit witness decomposer is arbitrary code; a declared
        # ``cache_key`` makes its artifacts persistable, otherwise they
        # are keyed by object identity and stay memory-only.
        cache_key = getattr(self.decomposer, "cache_key", None)
        if cache_key is not None:
            return (
                self._engine_params() + ("decomposer", str(cache_key)),
                True,
            )
        return (
            self._engine_params() + ("decomposer-id", id(self.decomposer)),
            False,
        )

    def default_decomposer(self, graph):
        """Return ``(decomposition, stats)`` for the configured engine.

        ``stats`` is a plain dict recording which engine produced the
        witness, the achieved vs heuristic width, and (for the
        branch-and-bound) the search counters.  It travels through the
        plan cache as the ``decomposition_stats`` artifact and surfaces
        in :class:`~repro.api.results.CertificationReport`.
        """
        if self.exact_engine == "dp":
            if graph.n <= self.exact_limit:
                decomposition = exact_path_decomposition(graph, engine="dp")
                return decomposition, {
                    "engine": "dp",
                    "optimal": True,
                    "width": decomposition.width(),
                }
            decomposition = heuristic_path_decomposition(graph)
            return decomposition, {
                "engine": "heuristic",
                "optimal": False,
                "width": decomposition.width(),
                "heuristic_width": decomposition.width(),
            }
        # engine == "bnb": complete search below the size gate, budgeted
        # attempt above it when authorized, heuristic otherwise.
        if graph.n > self.exact_limit and self.exact_budget_ms is None:
            decomposition = heuristic_path_decomposition(graph)
            return decomposition, {
                "engine": "heuristic",
                "optimal": False,
                "width": decomposition.width(),
                "heuristic_width": decomposition.width(),
            }
        seed_ordering = None
        heuristic_width = None
        if graph.n > self.exact_limit:
            seeded = heuristic_path_decomposition(graph)
            heuristic_width = seeded.width()
            seed_ordering = ordering_from_decomposition(seeded)
        decomposition, result = branch_and_bound_decomposition(
            graph,
            budget_ms=self.exact_budget_ms,
            seed_ordering=seed_ordering,
        )
        if heuristic_width is None:
            # Small instances skip the explicit portfolio run; the search
            # seeds itself, and its seed width is the heuristic width.
            heuristic_width = result.stats.seed_width
        stats = {
            "engine": "bnb",
            "optimal": result.optimal,
            "width": decomposition.width(),
            "heuristic_width": heuristic_width,
        }
        stats.update(result.stats.to_dict())
        return decomposition, stats

    def run(self, ctx: PipelineContext) -> None:
        graph = ctx.graph
        if graph.n < 2:
            raise ProverFailure("certification needs at least two vertices")
        if not graph.is_connected():
            raise ProverFailure("the network must be connected")
        if self.decomposer is not None:
            produced = self.decomposer(graph)
            # Custom decomposers may return a bare decomposition or
            # delegate to ``default_decomposer`` and return its
            # ``(decomposition, stats)`` pair.
            if isinstance(produced, tuple):
                decomposition, stats = produced
            else:
                decomposition = produced
                stats = {
                    "engine": "witness",
                    "optimal": None,
                    "width": decomposition.width(),
                }
        else:
            decomposition, stats = self.default_decomposer(graph)
        if decomposition.width() > self.k:
            raise ProverFailure(
                f"no witness decomposition of width <= {self.k} found "
                f"(got {decomposition.width()})"
            )
        ctx.decomposition = decomposition
        ctx.decomposition_stats = stats
        ctx.max_width = f_bound(self.k + 1)


class LaneStage(Stage):
    """Proposition 4.6: lane partition + low-congestion embedding."""

    name = "lanes"
    inputs = ("decomposition",)
    outputs = ("lanes", "embedding")

    def run(self, ctx: PipelineContext) -> None:
        rep = ctx.decomposition.to_interval_representation()
        ctx.lanes = build_lane_partition(ctx.graph, rep)
        ctx.embedding = ctx.lanes.full_embedding()


class CompletionStage(Stage):
    """Definition 4.4 + Proposition 5.2: completion and its build plan."""

    name = "completion"
    inputs = ("lanes",)
    outputs = ("completion", "sequence")

    def run(self, ctx: PipelineContext) -> None:
        ctx.completion = build_completion(ctx.graph, ctx.lanes.partition)
        ctx.sequence = construction_sequence_from_completion(ctx.completion)


class MatchSequenceStage(Stage):
    """Lanewidth mode's front end: check the configuration is the
    construction's graph, then adopt the sequence as the build plan.

    The expected graph is replayed once and kept as a fingerprint on the
    stage instance, so repeated proofs against the same sequence compare
    one hash instead of rebuilding and comparing full edge/vertex sets.
    """

    name = "match"
    inputs = ("graph",)
    outputs = ("sequence", "embedding", "max_width")

    def __init__(self, sequence: ConstructionSequence):
        self.sequence = sequence
        self._expected_fingerprint: Optional[str] = None
        self._sequence_digest: Optional[str] = None

    def plan_params(self):
        # The *sequence content* keys the artifacts (not the replayed
        # graph): a warm plan run can then skip the replay entirely.  A
        # cached hit for (graph fingerprint, sequence digest) means this
        # exact configuration/sequence pair already passed the match
        # check once.
        if self._sequence_digest is None:
            import hashlib

            seq = self.sequence
            digest = hashlib.blake2b(digest_size=16)
            digest.update(repr(seq.width).encode())
            digest.update(repr(seq.initial_vertices).encode())
            digest.update(repr(seq.initial_edge_tags).encode())
            digest.update(repr(tuple(seq.ops)).encode())
            self._sequence_digest = digest.hexdigest()
        return (("sequence", self._sequence_digest), True)

    def expected_fingerprint(self) -> str:
        if self._expected_fingerprint is None:
            expected = apply_construction(self.sequence)
            # Labels excluded: the legacy check compared bare (V, E).
            self._expected_fingerprint = expected.fingerprint(
                include_labels=False
            )
        return self._expected_fingerprint

    def run(self, ctx: PipelineContext) -> None:
        observed = ctx.graph.fingerprint(include_labels=False)
        if observed != self.expected_fingerprint():
            raise ProverFailure("configuration does not match the construction")
        ctx.sequence = self.sequence
        ctx.embedding = Embedding(ctx.graph)
        ctx.max_width = self.sequence.width


class HierarchyStage(Stage):
    """Proposition 5.6: build (and, in pathwidth mode, validate) the
    hierarchical decomposition."""

    name = "hierarchy"
    inputs = ("sequence",)
    outputs = ("root", "hierarchy_depth")

    def run(self, ctx: PipelineContext) -> None:
        root = build_hierarchy(ctx.sequence)
        if ctx.completion is not None:
            validate_hierarchy(root, ctx.completion.graph)
            if hierarchy_depth(root) > 2 * ctx.lanes.partition.width:
                raise AssertionError("Observation 5.5 depth bound violated")
        ctx.root = root
        ctx.hierarchy_depth = hierarchy_depth(root)


class EvaluateStage(Stage):
    """Proposition 6.1: run the property's algebra bottom-up and check
    acceptance at the root (the honest prover refuses false properties)."""

    name = "evaluate"
    inputs = ("root", "algebra")
    outputs = ("evaluation",)

    def __init__(self, algebra=None):
        self.algebra = resolve_algebra(algebra) if algebra is not None else None

    def run(self, ctx: PipelineContext) -> None:
        algebra = self.algebra if self.algebra is not None else ctx.algebra
        if algebra is None:
            raise ValueError("EvaluateStage needs an algebra (stage or context)")
        ctx.algebra = resolve_algebra(algebra)
        ctx.evaluation = evaluate_hierarchy(ctx.root, ctx.algebra)
        if not ctx.evaluation.accepts(ctx.root):
            raise ProverFailure("property does not hold on the real subgraph")


class LabelStage(Stage):
    """Lemmas 6.4/6.5: build the physical edge certificates.

    Label assembly is batch-wise: the builder materializes each
    embedding path's records in one sweep and assembles the full
    ``edge -> Theorem1Label`` mapping in a single pass, so the cold
    path pays per-batch rather than per-edge overheads (PR 10).
    """

    name = "label"
    inputs = ("root", "evaluation", "embedding", "config")
    outputs = ("class_count", "labeling")

    def run(self, ctx: PipelineContext) -> None:
        indexer = ClassIndexer()
        builder = CertificateBuilder(ctx.config, ctx.root, ctx.evaluation, indexer)
        mapping = builder.physical_labels(ctx.embedding)
        size_ctx = SizeContext(ctx.config.n, class_count=indexer.class_count)
        ctx.class_count = indexer.class_count
        ctx.labeling = Labeling("edges", mapping, size_ctx)


class CertificationPipeline:
    """Run a stage list in order, recording timings and run counts.

    ``counters`` (optional) is a mutable ``{stage name: runs}`` mapping —
    sessions pass their cumulative counter so cache behavior is
    observable from reports.
    """

    def __init__(self, stages):
        self.stages = list(stages)

    def stage_names(self) -> list:
        return [stage.name for stage in self.stages]

    def run(self, ctx: PipelineContext, counters: Optional[dict] = None) -> list:
        """Execute every stage against ``ctx``; return this run's timings."""
        timings = []
        for stage in self.stages:
            start = perf_counter()
            try:
                stage.run(ctx)
            finally:
                # Refusals count as runs too: a ProverFailure in
                # EvaluateStage is a completed (negative) evaluation, and
                # the counters must reflect every attempt.
                timing = StageTiming(stage.name, perf_counter() - start)
                timings.append(timing)
                ctx.timings.append(timing)
                if counters is not None:
                    counters[stage.name] = counters.get(stage.name, 0) + 1
        return timings


class PipelineScheme(CertifyingScheme):
    """A :class:`ProofLabelingScheme` wired to an explicit stage list.

    The verifier half is inherited (and identical to the legacy
    schemes'); ``prove`` simply runs the stages.  Sessions hand these
    out inside reports so legacy helpers (``run_verification``,
    adversarial label attacks) keep working against pipeline output.
    """

    def __init__(self, algebra, max_width: int, stages=()):
        super().__init__(algebra, max_width)
        self.stages = tuple(stages)

    def prove(self, config: Configuration) -> Labeling:
        ctx = PipelineContext(config=config, algebra=self.algebra)
        CertificationPipeline(self.stages).run(ctx)
        if ctx.labeling is None:
            raise ProverFailure("stage list produced no labeling")
        return ctx.labeling


def theorem1_stages(
    k: int,
    algebra=None,
    decomposer: Optional[Callable] = None,
    exact_limit: Optional[int] = None,
    exact_engine: Optional[str] = None,
    exact_budget_ms: Optional[float] = None,
) -> list:
    """The full Theorem 1 stage list for pathwidth-bounded certification."""
    return [
        DecomposeStage(
            k,
            decomposer=decomposer,
            exact_limit=exact_limit,
            exact_engine=exact_engine,
            exact_budget_ms=exact_budget_ms,
        ),
        LaneStage(),
        CompletionStage(),
        HierarchyStage(),
        EvaluateStage(algebra),
        LabelStage(),
    ]


def lanewidth_stages(
    sequence: ConstructionSequence,
    algebra=None,
    match_stage: Optional[MatchSequenceStage] = None,
) -> list:
    """The native-lanewidth stage list (no Section 4 front end)."""
    return [
        match_stage or MatchSequenceStage(sequence),
        HierarchyStage(),
        EvaluateStage(algebra),
        LabelStage(),
    ]
