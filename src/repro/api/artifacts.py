"""Persistent, content-addressed cache of prover-stage artifacts.

The plan layer (:mod:`repro.api.plan`) gives every artifact a content
fingerprint: a stage node's key is the hash of its name, its parameters,
and the keys of the artifacts it consumes, rooted in the graph
fingerprint.  An :class:`ArtifactCache` maps those node keys to the
artifacts the node produced, in two layers:

* an **in-memory layer** (always present) — the per-session reuse that
  :class:`~repro.api.session.CertificationSession` used to implement
  with a private memo dict;
* an optional **disk layer** — one envelope file per node under a cache
  directory, so a *fresh process* batch-certifying a previously seen
  graph resolves every structural node from disk and runs zero prover
  stages.  :meth:`CertificateStore.artifact_cache()
  <repro.api.store.CertificateStore.artifact_cache>` places this
  directory next to the certificates (``<store>/artifacts/``), which is
  how sessions with a store get persistence for free.

Envelope format (see ``docs/FORMAT.md`` § "Artifact envelopes"): a magic
prefix, then a pickled manifest ``{artifact_version, key, stage,
outputs, seconds}``.  The payload is arbitrary prover state (graphs,
decompositions, hierarchies, evaluations), so the container uses pickle
exactly like the certificate store envelope; the recorded ``key`` is
re-checked on load and a mismatched, truncated, or unreadable entry is
treated as a **miss** — a corrupt cache must never break certification,
only slow it down.
"""

from __future__ import annotations

import itertools
import os
import pickle
from pathlib import Path
from typing import Optional

_TMP_COUNTER = itertools.count()

#: Envelope magic + version; bumped when the manifest layout changes.
ARTIFACT_MAGIC = b"repro-artifact\x00"
ARTIFACT_VERSION = 1

#: Version folded into every node key by the plan layer; bumping it
#: invalidates all previously persisted artifacts at once (used when a
#: stage's semantics change without its parameters changing).
PLAN_CACHE_VERSION = 1


class ArtifactEntry:
    """One resolved plan node: its outputs and what producing them cost."""

    __slots__ = ("stage", "outputs", "seconds")

    def __init__(self, stage: str, outputs: dict, seconds: float):
        self.stage = stage
        self.outputs = dict(outputs)
        self.seconds = seconds

    def __repr__(self) -> str:
        return (
            f"ArtifactEntry(stage={self.stage!r}, "
            f"outputs={sorted(self.outputs)}, seconds={self.seconds:.6f})"
        )


class ArtifactCache:
    """Two-layer (memory + optional disk) cache of plan-node artifacts.

    Parameters
    ----------
    root:
        Optional directory for the disk layer (created on first write).
        ``None`` keeps the cache purely in-memory — the right default
        for throwaway sessions.

    ``hits`` / ``misses`` / ``stores`` count lookups for observability;
    tests and benchmarks assert on them the way they assert on session
    stage counters.
    """

    suffix = ".art"

    def __init__(self, root=None):
        self.root = Path(root) if root is not None else None
        self._memory: dict = {}  # node key -> ArtifactEntry
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Optional[Path]:
        """Disk path of one node key (None for memory-only caches)."""
        if self.root is None:
            return None
        return self.root / f"{key[:40]}{self.suffix}"

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[ArtifactEntry]:
        """Return the entry for ``key``, or ``None`` on a miss.

        Disk hits are promoted into the memory layer so repeated lookups
        within a session stay dict-cheap.
        """
        entry = self._memory.get(key)
        if entry is not None:
            self.hits += 1
            return entry
        entry = self._read(key)
        if entry is not None:
            self._memory[key] = entry
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def put(
        self,
        key: str,
        stage: str,
        outputs: dict,
        seconds: float,
        persist: bool = True,
    ) -> ArtifactEntry:
        """Store one resolved node; write through to disk when allowed.

        ``persist=False`` pins the entry to the memory layer — used for
        artifacts keyed by process-local parameters (e.g. a witness
        decomposer closure without a ``cache_key``).
        """
        entry = ArtifactEntry(stage, outputs, seconds)
        self._memory[key] = entry
        self.stores += 1
        if persist and self.root is not None:
            self._write(key, entry)
        return entry

    def annotate(self, key: str, name: str, value) -> None:
        """Attach a derived output to an existing entry (both layers).

        The session uses this to ride the wire-encoded form of a
        labeling along with the labeling artifact itself, so warm runs
        skip re-encoding.  Unknown keys are ignored — annotation is an
        optimization, never a correctness requirement.
        """
        entry = self._memory.get(key)
        if entry is None:
            return
        entry.outputs[name] = value
        if self.root is not None and self.path_for(key).exists():
            self._write(key, entry)

    # ------------------------------------------------------------------
    def _write(self, key: str, entry: ArtifactEntry) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        manifest = {
            "artifact_version": ARTIFACT_VERSION,
            "key": key,
            "stage": entry.stage,
            "outputs": entry.outputs,
            "seconds": entry.seconds,
        }
        try:
            payload = ARTIFACT_MAGIC + pickle.dumps(manifest, protocol=4)
        except Exception:
            # Unpicklable prover state (exotic custom algebras): the
            # memory layer still serves this session; disk just misses.
            return
        path = self.path_for(key)
        # Unique temp name (as in the certificate store): two processes
        # resolving the same node concurrently must never interleave
        # bytes in a shared temp file — last publish wins wholesale.
        tmp = path.parent / (
            f"{path.name}.{os.getpid()}.{next(_TMP_COUNTER):x}.tmp"
        )
        try:
            tmp.write_bytes(payload)
            os.replace(tmp, path)  # atomic publish
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise

    def _read(self, key: str) -> Optional[ArtifactEntry]:
        path = self.path_for(key)
        if path is None:
            return None
        try:
            payload = path.read_bytes()
        except OSError:
            return None
        if not payload.startswith(ARTIFACT_MAGIC):
            return None
        try:
            manifest = pickle.loads(payload[len(ARTIFACT_MAGIC):])
        except Exception:
            return None  # truncated / bit-flipped: recompute
        if not isinstance(manifest, dict):
            return None
        if manifest.get("artifact_version") != ARTIFACT_VERSION:
            return None
        if manifest.get("key") != key:
            return None  # hash-prefix collision or swapped file
        outputs = manifest.get("outputs")
        if not isinstance(outputs, dict):
            return None
        return ArtifactEntry(
            manifest.get("stage", "?"), outputs, manifest.get("seconds", 0.0)
        )
