"""The verification runtime: pluggable executors and structured reports.

PR 1 rebuilt the *prover* side around the staged pipeline; this module
does the same for the *verification round* — the half of a proof labeling
scheme the paper actually bounds (every vertex checks its O(log n)-bit
local view).  The design mirrors the distributed reality:

* a :class:`VerificationEngine` owns the round's policy (which executor,
  whether to short-circuit) and produces a structured
  :class:`VerificationReport`;
* executors own the *scheduling* of the per-vertex checks.
  :class:`SerialExecutor` runs them in-process;
  :class:`ParallelExecutor` fans chunks of vertices out to a
  ``concurrent.futures.ProcessPoolExecutor``.  Both produce identical
  verdicts for the same configuration — the checks are independent by
  the locality guarantee, so scheduling cannot change semantics;
* ``fail_fast`` short-circuits on the first rejection (at chunk
  granularity under the pool), which is the right mode for soundness
  audits where only the accept/reject bit matters.  The report's
  ``views_built`` counter makes the saving observable.

Both executors build views through one per-round
:class:`~repro.pls.model.ViewFactory` — identifiers, input labels, and
certificates resolved into CSR-parallel arrays once, then each vertex's
:class:`~repro.pls.model.LocalView` is a pair of array slices.

Exception accounting: a verifier raising on malformed (adversarial)
labels still *rejects* — soundness must hold against arbitrary labelings
— but the report counts these ``exception_rejections`` separately from
ordinary ``verdict_rejections`` so scheme bugs on honest labelings are
not silently folded into soundness wins.

Cross-process dispatch is *pool-resident*: the ``(config, verifier,
labeling)`` payload is pickled exactly once per pool lifetime and handed
to every worker through the ``ProcessPoolExecutor`` initializer, where
it is rebuilt into a resident ``ViewFactory``; chunk submissions then
carry only ``(start, stop)`` vertex ranges.  Prover state frequently is
not picklable (witness decomposer closures, cached match stages), so the
payload ships ``scheme.verifier_only()`` — the pickle-safe verifier half
every :class:`~repro.pls.scheme.ProofLabelingScheme` exposes.
"""

from __future__ import annotations

import json
import os
import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from time import perf_counter
from typing import Optional

from repro.pls.model import Configuration, ViewFactory
from repro.pls.scheme import Labeling, ProofLabelingScheme, VerificationResult


# ----------------------------------------------------------------------
# Structured results.


@dataclass(frozen=True)
class ChunkTiming:
    """Wall-clock cost of one chunk of per-vertex checks."""

    index: int
    size: int  # vertices assigned to the chunk
    views_built: int  # views actually constructed (< size under fail_fast)
    seconds: float

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "size": self.size,
            "views_built": self.views_built,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChunkTiming":
        return cls(
            index=data["index"],
            size=data["size"],
            views_built=data["views_built"],
            seconds=data["seconds"],
        )


def _vertex_to_json(vertex):
    """JSON-safe encoding of a vertex key (tuples become lists)."""
    if isinstance(vertex, tuple):
        return [_vertex_to_json(item) for item in vertex]
    if vertex is None or isinstance(vertex, (bool, int, float, str)):
        return vertex
    return repr(vertex)


def _vertex_from_json(vertex):
    if isinstance(vertex, list):
        return tuple(_vertex_from_json(item) for item in vertex)
    return vertex


@dataclass
class VerificationReport:
    """Everything one verification round learned.

    ``verdicts`` covers every vertex the executor reached; under
    ``fail_fast`` that may be a strict subset of the configuration
    (``views_built < vertices_total``), which is exactly the saving the
    mode exists to deliver.  ``accepted`` is authoritative either way: a
    short-circuited round is always a rejection.
    """

    accepted: bool
    verdicts: dict  # vertex -> bool (partial under fail_fast)
    vertices_total: int
    views_built: int
    #: Vertices whose verifier returned ``False``.
    verdict_rejections: tuple = ()
    #: Vertices whose verifier *raised* (rejects, counted separately).
    exception_rejections: tuple = ()
    executor: str = "serial"
    fail_fast: bool = False
    #: True when ``fail_fast`` actually skipped work.
    short_circuited: bool = False
    chunks: tuple = ()  # ChunkTiming, in chunk order
    elapsed_seconds: float = 0.0
    #: Executor-specific counters (the vectorized executors report
    #: kernel coverage, fallback counts, and compile/kernel timing here;
    #: the reference executors leave it None).
    kernel_stats: Optional[dict] = None

    @property
    def rejecting_vertices(self) -> list:
        """All rejecting vertices (verdict and exception), sorted."""
        return sorted(
            set(self.verdict_rejections) | set(self.exception_rejections),
            key=repr,
        )

    def as_result(self) -> VerificationResult:
        """The legacy :class:`VerificationResult` view of this round."""
        return VerificationResult(
            verdicts=dict(self.verdicts), accepted=self.accepted
        )

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe form of the report.

        Round-trip fidelity (``from_dict(to_dict())`` preserving
        ``verdicts`` keys) holds for JSON-primitive and tuple vertex
        keys — everything the in-repo graphs use.  Exotic vertex
        objects are encoded by ``repr`` and come back as strings: the
        counters and verdict booleans survive, identity-based lookups
        do not.
        """
        return {
            "accepted": self.accepted,
            "verdicts": [
                [_vertex_to_json(v), ok] for v, ok in sorted(
                    self.verdicts.items(), key=lambda item: repr(item[0])
                )
            ],
            "vertices_total": self.vertices_total,
            "views_built": self.views_built,
            "verdict_rejections": [
                _vertex_to_json(v) for v in self.verdict_rejections
            ],
            "exception_rejections": [
                _vertex_to_json(v) for v in self.exception_rejections
            ],
            "executor": self.executor,
            "fail_fast": self.fail_fast,
            "short_circuited": self.short_circuited,
            "chunks": [chunk.to_dict() for chunk in self.chunks],
            "elapsed_seconds": self.elapsed_seconds,
            "kernel_stats": self.kernel_stats,
        }

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, data: dict) -> "VerificationReport":
        return cls(
            accepted=data["accepted"],
            verdicts={
                _vertex_from_json(v): ok for v, ok in data["verdicts"]
            },
            vertices_total=data["vertices_total"],
            views_built=data["views_built"],
            verdict_rejections=tuple(
                _vertex_from_json(v) for v in data["verdict_rejections"]
            ),
            exception_rejections=tuple(
                _vertex_from_json(v) for v in data["exception_rejections"]
            ),
            executor=data.get("executor", "serial"),
            fail_fast=data.get("fail_fast", False),
            short_circuited=data.get("short_circuited", False),
            chunks=tuple(
                ChunkTiming.from_dict(c) for c in data.get("chunks", ())
            ),
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
            kernel_stats=data.get("kernel_stats"),
        )

    def summary(self) -> str:
        verdict = "accepted" if self.accepted else "REJECTED"
        extra = ""
        if not self.accepted:
            extra = (
                f", {len(self.verdict_rejections)} verdict / "
                f"{len(self.exception_rejections)} exception rejections"
            )
        if self.short_circuited:
            extra += ", short-circuited"
        return (
            f"{verdict} ({self.views_built}/{self.vertices_total} views, "
            f"{self.executor}{extra})"
        )


# ----------------------------------------------------------------------
# The unit of scheduled work.


@dataclass(frozen=True)
class _ChunkOutcome:
    """What one chunk of per-vertex checks produced."""

    index: int
    size: int
    verdicts: dict
    exception_vertices: tuple
    views_built: int
    seconds: float
    rejected: bool  # saw at least one rejection (fail_fast trigger)
    kernel_stats: Optional[dict] = None  # vectorized executors only


def _run_range(
    factory: ViewFactory,
    scheme,
    order: list,
    start: int,
    stop: int,
    index: int,
    fail_fast: bool,
) -> _ChunkOutcome:
    """Check canonical-order positions ``start..stop`` of one round."""
    names = factory.vertices
    began = perf_counter()
    verdicts: dict = {}
    exceptions: list = []
    views = 0
    rejected = False
    for position in range(start, stop):
        dense = order[position]
        view = factory.view_at(dense)
        views += 1
        vertex = names[dense]
        try:
            ok = bool(scheme.verify(view))
        except Exception:
            # A verifier choking on malformed (adversarial) labels
            # rejects: soundness must hold against arbitrary labelings.
            ok = False
            exceptions.append(vertex)
        verdicts[vertex] = ok
        if not ok:
            rejected = True
            if fail_fast:
                break
    return _ChunkOutcome(
        index=index,
        size=stop - start,
        verdicts=verdicts,
        exception_vertices=tuple(exceptions),
        views_built=views,
        seconds=perf_counter() - began,
        rejected=rejected,
    )


def _ranges(total: int, chunk_size: int) -> list:
    return [
        (start, min(start + chunk_size, total))
        for start in range(0, total, chunk_size)
    ]


def _ship_payload(config, scheme, mapping, location, order) -> bytes:
    """Pickle the round payload once, for the pool initializer.

    ``order`` is the engine-chosen verification order as dense CSR
    indices; shipping it with the payload (instead of re-deriving it in
    each worker) keeps chunk ranges meaningful for *any* vertex list the
    caller passes and for any vertex type, whatever its ``repr`` does
    across processes.

    Prover-side state (witness decomposer closures, cached stages) is
    routinely unpicklable, so the scheme is reduced to its verifier half
    first; a scheme that still fails to pickle gets a targeted error
    instead of a deep ``PicklingError`` from inside the pool.  The
    returned bytes are the *only* serialization of the payload — there
    is no separate validation pass, and the counter test in tier 1 pins
    ``pickle.dumps`` to one call per pool lifetime.
    """
    verifier = scheme.verifier_only()
    payload = (config, verifier, mapping, location, order)
    try:
        return pickle.dumps(payload)
    except Exception as exc:  # pragma: no cover - exercised via message
        raise TypeError(
            "ParallelExecutor needs a picklable (config, verifier, "
            "labeling) triple; override verifier_only() on "
            f"{type(scheme).__name__} to return a pickle-safe verifier "
            f"half ({exc})"
        ) from exc


# -- worker-process state (set once per pool by the initializer) --------

_WORKER_ROUND = None  # (ViewFactory, verifier scheme, canonical order)


def _init_worker(payload_bytes: bytes) -> None:
    """Pool initializer: rebuild the resident round state in this worker."""
    global _WORKER_ROUND
    config, scheme, mapping, location, order = pickle.loads(payload_bytes)
    factory = ViewFactory(config, mapping, location)
    _WORKER_ROUND = (factory, scheme, order)


def _verify_range(start: int, stop: int, index: int, fail_fast: bool) -> _ChunkOutcome:
    """Worker-side chunk entry point: a plain vertex range, nothing else."""
    factory, scheme, order = _WORKER_ROUND
    return _run_range(factory, scheme, order, start, stop, index, fail_fast)


# ----------------------------------------------------------------------
# Executors.


class VerificationExecutor:
    """Scheduling strategy for the independent per-vertex checks.

    ``execute`` returns the list of :class:`_ChunkOutcome` actually run,
    in chunk order.  Implementations must preserve verdict semantics —
    the same configuration yields the same per-vertex verdicts
    regardless of scheduling — which the tier-1 property tests assert.
    """

    name = "executor"

    def execute(self, config, scheme, mapping, location, vertices, fail_fast):
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialExecutor(VerificationExecutor):
    """In-process execution, one chunk at a time.

    ``chunk_size=None`` means one chunk per round — the legacy loop.
    Smaller chunks only add timing resolution; verdicts are unaffected.
    One :class:`ViewFactory` serves the whole round.
    """

    name = "serial"

    def __init__(self, chunk_size: Optional[int] = None):
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.chunk_size = chunk_size

    def execute(self, config, scheme, mapping, location, vertices, fail_fast):
        if not vertices:
            return []
        factory = ViewFactory(config, mapping, location)
        order = [factory.index_of(v) for v in vertices]
        chunk_size = self.chunk_size or max(1, len(vertices))
        outcomes = []
        for index, (start, stop) in enumerate(_ranges(len(order), chunk_size)):
            outcome = _run_range(
                factory, scheme, order, start, stop, index, fail_fast
            )
            outcomes.append(outcome)
            if fail_fast and outcome.rejected:
                break
        return outcomes


class ParallelExecutor(VerificationExecutor):
    """Range-chunked fan-out to a pool-resident ``ProcessPoolExecutor``.

    Verdict-identical to :class:`SerialExecutor`; only the schedule
    differs.  Under ``fail_fast`` the short-circuit is chunk-granular:
    after the first completed rejecting chunk no further chunk is
    *dispatched* (submission is windowed, so at most
    ``dispatch_window`` chunks are ever in flight), already-submitted
    chunks are cancelled where possible, and the rejecting chunk stops
    mid-range itself.  The covered-vertex set may differ from the serial
    one — ``accepted`` never does.

    The payload ships **once per pool**: creating the pool pickles
    ``(config, verifier, labeling, verification order)`` a single time
    into the worker initializer, which rebuilds it into a resident
    :class:`~repro.pls.model.ViewFactory`; per-chunk submissions carry
    only ``(start, stop)`` ranges into the shipped order.  A pool is
    therefore bound to one payload — repeated rounds over the *same*
    (config, scheme, mapping) objects reuse it (the store's
    re-verify-many workflow, property tests, benchmark repetition); a
    round over a different payload retires the old pool and starts a
    fresh one, which on fork-capable platforms costs less than the
    per-chunk payload pickling it replaces.  ``payload_ships`` counts
    pool payload shipments for observability.  Call :meth:`close` (or
    use the executor as a context manager) to release the workers.

    Reuse is decided by *object identity* plus the graph's CSR snapshot
    and label version (so structural and input-label graph edits
    between rounds force a re-ship) and the requested vertex order (so
    subset rounds are honored).  Do not mutate a shipped ``mapping`` in
    place between rounds — build a new labeling instead, as the
    adversary helpers do; in-place value edits are invisible to
    identity checks and the resident workers would keep verifying the
    old payload.
    """

    name = "parallel"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        dispatch_window: Optional[int] = None,
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if dispatch_window is not None and dispatch_window < 1:
            raise ValueError("dispatch_window must be positive")
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.dispatch_window = dispatch_window
        #: Payload shipments (= pool creations) over this executor's life.
        self.payload_ships = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        #: Strong refs to the shipped (config, scheme, mapping, location):
        #: keeps identity comparisons valid for the pool's lifetime.
        self._pool_payload: Optional[tuple] = None

    def _pool_for(
        self, config, scheme, mapping, location, order, workers: int
    ) -> ProcessPoolExecutor:
        if self._pool is not None:
            held = self._pool_payload
            if (
                held is not None
                and held[0] is config
                and held[1] is scheme
                and held[2] is mapping
                and held[3] == location
                # Structural graph mutation replaces the CSR snapshot,
                # input-label mutation bumps the label version, and a
                # different requested vertex list changes the order;
                # each must retire the resident payload.
                and held[4] is config.graph.csr
                and held[5] == config.graph.labels_version
                and held[6] == order
            ):
                return self._pool
            self.close()  # different payload: retire the resident pool
        blob = _ship_payload(config, scheme, mapping, location, order)
        self.payload_ships += 1
        self._pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(blob,),
        )
        self._pool_payload = (
            config,
            scheme,
            mapping,
            location,
            config.graph.csr,
            config.graph.labels_version,
            order,
        )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self._pool_payload = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _resolve_chunk_size(self, n: int, workers: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        # ~4 chunks per worker balances load against dispatch overhead.
        return max(1, -(-n // (4 * workers)))

    def execute(self, config, scheme, mapping, location, vertices, fail_fast):
        if not vertices:
            return []
        workers = self.max_workers or os.cpu_count() or 1
        ranges = _ranges(
            len(vertices), self._resolve_chunk_size(len(vertices), workers)
        )
        # The requested vertex list, as dense CSR indices: ships with
        # the payload, so worker-side ranges mean exactly these
        # vertices in exactly this order.
        index = config.graph.csr.index
        order = [index[v] for v in vertices]
        pool = self._pool_for(config, scheme, mapping, location, order, workers)
        window = self.dispatch_window or 2 * workers
        outcomes: list = []
        pending: dict = {}  # future -> chunk index
        next_chunk = 0
        halted = False

        def fill_window():
            nonlocal next_chunk
            while (
                not halted
                and next_chunk < len(ranges)
                and len(pending) < window
            ):
                start, stop = ranges[next_chunk]
                future = pool.submit(
                    _verify_range, start, stop, next_chunk, fail_fast
                )
                pending[future] = next_chunk
                next_chunk += 1

        fill_window()
        while pending:
            done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
            rejected = False
            for future in done:
                pending.pop(future)
                if future.cancelled():
                    continue
                outcome = future.result()
                outcomes.append(outcome)
                rejected = rejected or outcome.rejected
            if fail_fast and rejected:
                halted = True  # dispatch nothing further
                for future in list(pending):
                    if future.cancel():
                        pending.pop(future)
            fill_window()
        outcomes.sort(key=lambda o: o.index)
        return outcomes


# ----------------------------------------------------------------------
# Executor registry: name -> factory.  The vectorized executors live in
# ``repro.api.vectorized`` (optional numpy); they are imported lazily on
# first lookup so ``repro.api.runtime`` stays numpy-free.


_EXECUTOR_FACTORIES: dict = {
    "serial": SerialExecutor,
    "parallel": ParallelExecutor,
}

_LAZY_EXECUTORS = {"vectorized", "shared-memory"}


def register_executor(name: str, factory) -> None:
    """Register an executor factory under ``name`` (overwrites)."""
    _EXECUTOR_FACTORIES[name] = factory


def _canonical_executor_name(name: str) -> str:
    return name.strip().lower().replace("_", "-")


def make_executor(name: str, **kwargs) -> VerificationExecutor:
    """Build a registered executor by name.

    Accepts ``serial``, ``parallel``, ``vectorized``, and
    ``shared-memory`` (alias ``shared_memory``); the vectorized pair is
    imported on demand.  Raises ``ValueError`` for unknown names, and
    ``RuntimeError`` if a vectorized executor is requested while numpy
    is unavailable.
    """
    key = _canonical_executor_name(name)
    if key not in _EXECUTOR_FACTORIES and key in _LAZY_EXECUTORS:
        import repro.api.vectorized  # noqa: F401  (registers on import)
    factory = _EXECUTOR_FACTORIES.get(key)
    if factory is None:
        raise ValueError(
            f"unknown executor {name!r}; known: {sorted(executor_names())}"
        )
    return factory(**kwargs)


def executor_names() -> list:
    """All resolvable executor names (without importing lazy ones)."""
    return sorted(set(_EXECUTOR_FACTORIES) | _LAZY_EXECUTORS)


# ----------------------------------------------------------------------
# The engine.


class VerificationEngine:
    """Runs verification rounds under one scheduling/short-circuit policy.

        engine = VerificationEngine(ParallelExecutor(max_workers=4))
        report = engine.verify(config, scheme, labeling)
        report.accepted, report.views_built, report.chunks

    The inputs can come from a live ``certify`` call *or* from a
    :class:`~repro.api.store.CertificateStore` load — the engine only
    sees (configuration, verifier, labeling) and never runs a prover
    stage.

    Parameters
    ----------
    executor:
        A :class:`VerificationExecutor`; defaults to
        :class:`SerialExecutor`.
    fail_fast:
        Stop at the first rejection instead of collecting every verdict.
        The right mode for audits (only the accept bit matters); the
        wrong mode for diagnosing *which* vertices reject.
    """

    def __init__(
        self,
        executor: Optional[VerificationExecutor] = None,
        fail_fast: bool = False,
    ):
        self.executor = executor or SerialExecutor()
        self.fail_fast = fail_fast

    def __repr__(self) -> str:
        return (
            f"VerificationEngine(executor={self.executor!r}, "
            f"fail_fast={self.fail_fast})"
        )

    def verify(
        self,
        config: Configuration,
        scheme: ProofLabelingScheme,
        labeling: Labeling,
    ) -> VerificationReport:
        """Run one verification round and report it."""
        if labeling.location != scheme.label_location:
            raise ValueError(
                f"labeling location {labeling.location!r} does not match "
                f"the scheme's {scheme.label_location!r}"
            )
        # Deterministic order: executors must agree on which vertex a
        # fail_fast round reaches first, up to chunk granularity.
        vertices = sorted(config.graph.vertices(), key=repr)
        # Executors that persist compiled rounds key them on the
        # labeling's wire digest; offer it before the round (duck-typed,
        # mirroring the session's artifact-cache handoff).
        offer = getattr(self.executor, "offer_labeling", None)
        if callable(offer):
            offer(labeling)
        start = perf_counter()
        outcomes = self.executor.execute(
            config,
            scheme,
            labeling.mapping,
            labeling.location,
            vertices,
            self.fail_fast,
        )
        elapsed = perf_counter() - start

        verdicts: dict = {}
        exception_rejections: list = []
        kernel_stats: Optional[dict] = None
        for outcome in outcomes:
            verdicts.update(outcome.verdicts)
            exception_rejections.extend(outcome.exception_vertices)
            if outcome.kernel_stats is not None:
                if kernel_stats is None:
                    kernel_stats = dict(outcome.kernel_stats)
                else:
                    for key, value in outcome.kernel_stats.items():
                        if isinstance(value, (int, float)) and isinstance(
                            kernel_stats.get(key), (int, float)
                        ):
                            kernel_stats[key] += value
                        else:
                            kernel_stats.setdefault(key, value)
        rejecting = [v for v, ok in verdicts.items() if not ok]
        exception_set = set(exception_rejections)
        accepted = not rejecting and len(verdicts) == len(vertices)
        views_built = sum(o.views_built for o in outcomes)
        return VerificationReport(
            accepted=accepted,
            verdicts=verdicts,
            vertices_total=len(vertices),
            views_built=views_built,
            verdict_rejections=tuple(
                sorted(
                    (v for v in rejecting if v not in exception_set),
                    key=repr,
                )
            ),
            exception_rejections=tuple(sorted(exception_set, key=repr)),
            executor=self.executor.name,
            fail_fast=self.fail_fast,
            # Verdict coverage, not views_built: the vectorized
            # executors decide most vertices without building a view.
            short_circuited=self.fail_fast and len(verdicts) < len(vertices),
            chunks=tuple(
                ChunkTiming(o.index, o.size, o.views_built, o.seconds)
                for o in outcomes
            ),
            elapsed_seconds=elapsed,
            kernel_stats=kernel_stats,
        )


def verify_labeling(
    config: Configuration,
    scheme: ProofLabelingScheme,
    labeling: Labeling,
    engine: Optional[VerificationEngine] = None,
) -> VerificationReport:
    """One-call verification round under ``engine`` (default: serial)."""
    return (engine or VerificationEngine()).verify(config, scheme, labeling)
