"""First-class adversarial audits: soundness campaigns as a library call.

A proof labeling scheme must reject *every* labeling of a non-satisfying
configuration.  The experiments probe this with generated attacks —
perturbing honest certificates, editing the graph under a fixed proof,
transplanting a proof onto the wrong graph — which benchmarks E6/E7 used
to hand-roll as inline loops.  This module makes a soundness campaign a
declarative object:

* an :class:`AuditCase` is one honest instance (configuration, scheme,
  honest labeling), typically produced per trial by a case factory;
* an :class:`AuditAttack` turns a case into adversarial instances —
  built-ins wrap the :mod:`repro.pls.adversary` generators (mutation,
  swap, drop, transplant) plus the graph-edit adversaries (edge removal
  and addition), and campaigns define their own by subclassing;
* an :class:`AuditPlan` runs attacks × trials through a
  :class:`~repro.api.runtime.VerificationEngine` (``fail_fast`` by
  default — an audit needs only the accept bit) and returns an
  :class:`AuditReport` with per-attack tallies and per-attempt records.

Every random choice derives from one root seed through named streams
(:func:`derive_rng`), so an entire campaign replays from a single
integer regardless of trial count or attack order.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Optional

from repro.graphs import edge_key
from repro.pls.adversary import (
    corrupt_one_label,
    drop_one_label,
    swap_two_labels,
    transplant_labels,
)
from repro.pls.model import Configuration
from repro.pls.scheme import Labeling

from repro.api.runtime import SerialExecutor, VerificationEngine


# ----------------------------------------------------------------------
# Seeded streams.


def derive_seed(root: int, *path) -> int:
    """Derive a 64-bit seed for the named stream under ``root``.

    Streams are independent for distinct paths and stable across runs
    and platforms (blake2b of the rendered path), so adding an attack or
    reordering trials never perturbs another stream's randomness.
    """
    rendered = "/".join([str(root), *map(str, path)])
    digest = hashlib.blake2b(rendered.encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


def derive_rng(root: int, *path) -> random.Random:
    """A fresh :class:`random.Random` on the named stream under ``root``."""
    return random.Random(derive_seed(root, *path))


# ----------------------------------------------------------------------
# Cases and attacks.


@dataclass(frozen=True)
class AuditCase:
    """One honest instance a campaign attacks."""

    config: Configuration
    scheme: object  # ProofLabelingScheme
    labeling: Labeling
    trial: int = 0


@dataclass(frozen=True)
class AdversarialInstance:
    """One forged (configuration, labeling) pair to run the round on.

    ``note`` is display-only prose; machine-readable facts about the
    forgery (e.g. a spliced cycle's length) belong in ``data``, which is
    carried verbatim onto the resulting :class:`AuditAttempt`.
    """

    config: Configuration
    labeling: Labeling
    note: str = ""
    data: dict = field(default_factory=dict)


class AuditAttack:
    """Generator of adversarial instances from one honest case.

    ``instances`` yields :class:`AdversarialInstance` objects, or
    ``None`` for an attempt that produced nothing to verify (a no-op
    mutation, a transplant with mismatched counts, a benign edit that
    left the predicate true) — skips are tallied, not silently dropped.
    """

    name = "attack"

    def instances(self, case: AuditCase, rng: random.Random):
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class MutationAttack(AuditAttack):
    """Perturb one certificate leaf, ``per_case`` times per trial."""

    name = "mutation"

    def __init__(self, per_case: int = 1):
        if per_case < 1:
            raise ValueError("per_case must be positive")
        self.per_case = per_case

    def instances(self, case, rng):
        for _ in range(self.per_case):
            bad = corrupt_one_label(case.labeling, rng)
            if bad.mapping == case.labeling.mapping:
                yield None  # mutation landed on a fixed point
                continue
            yield AdversarialInstance(case.config, bad, note="mutated label")


class SwapAttack(AuditAttack):
    """Exchange the certificates of two vertices/edges."""

    name = "swap"

    def __init__(self, per_case: int = 1):
        if per_case < 1:
            raise ValueError("per_case must be positive")
        self.per_case = per_case

    def instances(self, case, rng):
        for _ in range(self.per_case):
            bad = swap_two_labels(case.labeling, rng)
            if bad.mapping == case.labeling.mapping:
                yield None  # fewer than two keys, or equal labels drawn
                continue
            yield AdversarialInstance(case.config, bad, note="swapped labels")


class DropAttack(AuditAttack):
    """Replace one certificate by ``None``."""

    name = "drop"

    def __init__(self, per_case: int = 1):
        if per_case < 1:
            raise ValueError("per_case must be positive")
        self.per_case = per_case

    def instances(self, case, rng):
        for _ in range(self.per_case):
            bad = drop_one_label(case.labeling, rng)
            if bad.mapping == case.labeling.mapping:
                yield None
                continue
            yield AdversarialInstance(case.config, bad, note="dropped label")


class TransplantAttack(AuditAttack):
    """The classic "right proof, wrong graph" attack.

    ``targets`` maps ``(trial, rng)`` to the wrong
    :class:`Configuration`; the case's honest labels are applied to it
    position-wise (skipped when the counts differ — there is no sensible
    transplant).
    """

    name = "transplant"

    def __init__(self, targets: Callable[[int, random.Random], Configuration]):
        self.targets = targets

    def instances(self, case, rng):
        target = self.targets(case.trial, rng)
        if case.labeling.location == "vertices":
            keys = list(target.graph.vertices())
        else:
            keys = [edge_key(u, v) for u, v in target.graph.edges()]
        moved = transplant_labels(case.labeling, keys)
        if moved is None:
            yield None
            return
        yield AdversarialInstance(
            target, moved, note=f"transplanted onto n={target.graph.n}"
        )


class EdgeRemovalAttack(AuditAttack):
    """Delete one edge while keeping the proof; every edge is tried.

    ``still_true`` (``graph -> bool``) identifies edits that leave the
    predicate true — those are skips, not soundness cases.  Edge-located
    labelings are restricted to the surviving edges (the deleted edge's
    certificate has no carrier); vertex-located labelings ride along
    unchanged.
    """

    name = "edge-removal"

    def __init__(self, still_true: Optional[Callable] = None):
        self.still_true = still_true

    def instances(self, case, rng):
        labeling = case.labeling
        for u, v in sorted(case.config.graph.edges(), key=repr):
            edited = case.config.graph.copy()
            edited.remove_edge(u, v)
            if self.still_true is not None and self.still_true(edited):
                yield None
                continue
            if labeling.location == "edges":
                mapping = {
                    key: value
                    for key, value in labeling.mapping.items()
                    if edited.has_edge(*key)
                }
            else:
                mapping = dict(labeling.mapping)
            yield AdversarialInstance(
                Configuration(edited, case.config.ids),
                Labeling(labeling.location, mapping, labeling.size_context),
                note=f"removed edge {u}-{v}",
            )


class EdgeAdditionAttack(AuditAttack):
    """Add ``per_case`` random non-edges while keeping the proof.

    The new edge carries no certificate (its port reads ``None``), which
    is exactly what a verifier facing an unprovisioned link sees.
    ``still_true`` skips additions that leave the predicate true.
    """

    name = "edge-addition"

    def __init__(self, per_case: int = 1, still_true: Optional[Callable] = None):
        if per_case < 1:
            raise ValueError("per_case must be positive")
        self.per_case = per_case
        self.still_true = still_true

    def instances(self, case, rng):
        graph = case.config.graph
        vertices = sorted(graph.vertices(), key=repr)
        non_edges = [
            (a, b)
            for i, a in enumerate(vertices)
            for b in vertices[i + 1 :]
            if not graph.has_edge(a, b)
        ]
        for _ in range(self.per_case):
            if not non_edges:
                yield None
                continue
            u, v = non_edges.pop(rng.randrange(len(non_edges)))
            edited = graph.copy()
            edited.add_edge(u, v)
            if self.still_true is not None and self.still_true(edited):
                yield None
                continue
            yield AdversarialInstance(
                Configuration(edited, case.config.ids),
                case.labeling,
                note=f"added edge {u}-{v}",
            )


# ----------------------------------------------------------------------
# Plans and reports.


@dataclass(frozen=True)
class AuditAttempt:
    """One adversarial instance's fate (or a skip).

    ``data`` is the attack's structured payload
    (:attr:`AdversarialInstance.data`) — JSON-safe values only, so
    reports round-trip.
    """

    attack: str
    trial: int
    outcome: str  # "rejected" | "accepted" | "skipped"
    note: str = ""
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "attack": self.attack,
            "trial": self.trial,
            "outcome": self.outcome,
            "note": self.note,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AuditAttempt":
        return cls(
            attack=payload["attack"],
            trial=payload["trial"],
            outcome=payload["outcome"],
            note=payload.get("note", ""),
            data=dict(payload.get("data", {})),
        )


@dataclass(frozen=True)
class AttackTally:
    """Aggregate counts for one attack across a campaign."""

    attack: str
    attempted: int
    rejected: int
    accepted: int
    skipped: int

    @property
    def exercised(self) -> bool:
        """True when at least one adversarial instance was verified."""
        return self.attempted > 0

    @property
    def rejection_rate(self) -> float:
        """Fraction of attempts rejected (0.0 when nothing ran)."""
        return self.rejected / self.attempted if self.attempted else 0.0

    @property
    def all_rejected(self) -> bool:
        """Every attempt rejected — and at least one actually ran.

        An all-skips campaign is vacuous, not sound; check
        ``exercised``/``skipped`` to tell the two apart.
        """
        return self.exercised and self.accepted == 0

    def to_dict(self) -> dict:
        return {
            "attack": self.attack,
            "attempted": self.attempted,
            "rejected": self.rejected,
            "accepted": self.accepted,
            "skipped": self.skipped,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AttackTally":
        return cls(
            attack=data["attack"],
            attempted=data["attempted"],
            rejected=data["rejected"],
            accepted=data["accepted"],
            skipped=data["skipped"],
        )


@dataclass
class AuditReport:
    """The outcome of one audit campaign."""

    name: str
    root_seed: int
    trials: int
    tallies: dict  # attack name -> AttackTally, in attack order
    attempts: tuple  # AuditAttempt, in execution order
    elapsed_seconds: float = 0.0

    def tally(self, attack: str) -> AttackTally:
        return self.tallies[attack]

    def attempts_for(self, attack: str, trial: Optional[int] = None) -> list:
        """Attempt records for one attack (optionally one trial)."""
        return [
            a
            for a in self.attempts
            if a.attack == attack and (trial is None or a.trial == trial)
        ]

    @property
    def survivors(self) -> list:
        """Attempts whose forged instance was (wrongly or benignly) accepted."""
        return [a for a in self.attempts if a.outcome == "accepted"]

    @property
    def all_rejected(self) -> bool:
        """No survivors — and the campaign verified at least one instance."""
        return (
            any(t.exercised for t in self.tallies.values())
            and not self.survivors
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "root_seed": self.root_seed,
            "trials": self.trials,
            "tallies": {k: t.to_dict() for k, t in self.tallies.items()},
            "attempts": [a.to_dict() for a in self.attempts],
            "elapsed_seconds": self.elapsed_seconds,
        }

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, data: dict) -> "AuditReport":
        return cls(
            name=data["name"],
            root_seed=data["root_seed"],
            trials=data["trials"],
            tallies={
                k: AttackTally.from_dict(t)
                for k, t in data["tallies"].items()
            },
            attempts=tuple(
                AuditAttempt.from_dict(a) for a in data["attempts"]
            ),
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
        )

    def summary(self) -> str:
        lines = [f"audit {self.name!r} (root seed {self.root_seed}, "
                 f"{self.trials} trials):"]
        for tally in self.tallies.values():
            if not tally.exercised:
                lines.append(
                    f"  {tally.attack}: vacuous — nothing attempted "
                    f"({tally.skipped} skipped)"
                )
                continue
            lines.append(
                f"  {tally.attack}: {tally.rejected}/{tally.attempted} "
                f"rejected (rate {tally.rejection_rate:.3f}, "
                f"{tally.skipped} skipped)"
            )
        return "\n".join(lines)


@dataclass
class AuditPlan:
    """A declarative soundness campaign.

        plan = AuditPlan(case_factory=make_case,
                         attacks=[MutationAttack(per_case=6)],
                         trials=12, root_seed=6)
        report = plan.run()           # fail-fast serial engine by default
        report.all_rejected           # every attack attempt rejected?
        report.tally("mutation").rejection_rate

    Every random choice derives from ``root_seed`` through named
    streams, so a campaign replays bit-for-bit from one integer.

    Parameters
    ----------
    case_factory:
        ``(trial, rng) -> AuditCase`` building the honest instance for
        one trial; the rng is the trial's own derived stream.
    attacks:
        The :class:`AuditAttack` objects to mount on every case.
    trials:
        Number of honest cases to build and attack.
    root_seed:
        Root of every derived stream — the single knob that replays the
        whole campaign.
    name:
        Campaign label for reports.
    engine:
        Default verification engine for :meth:`run` — either a
        :class:`~repro.api.runtime.VerificationEngine` or a registered
        executor name (``"serial"``, ``"parallel"``, ``"vectorized"``,
        ``"shared-memory"``), which is wrapped in a ``fail_fast``
        engine.  ``None`` keeps the classic fail-fast serial default.
        Whatever the engine, soundness verdicts are identical — the
        vectorized executors re-check every kernel-flagged vertex
        through the reference path — so campaigns can run under the
        fast round without weakening the audit.
    """

    case_factory: Callable[[int, random.Random], AuditCase]
    attacks: list
    trials: int = 10
    root_seed: int = 0
    name: str = "audit"
    engine: object = None

    def __post_init__(self):
        if self.trials < 1:
            raise ValueError("an audit needs at least one trial")
        if not self.attacks:
            raise ValueError("an audit needs at least one attack")
        names = [a.name for a in self.attacks]
        if len(set(names)) != len(names):
            raise ValueError(f"attack names must be distinct (got {names})")
        # "/" is the stream-path separator: a name containing it could
        # alias another stream's derivation and silently correlate the
        # two randomness sources.  The campaign name sits on the same
        # derivation path, so it gets the same check.
        for name in names + [self.name]:
            if "/" in name:
                raise ValueError(
                    f"attack/campaign name {name!r} must not contain '/'"
                )

    def case_rng(self, trial: int) -> random.Random:
        """The derived stream the trial's honest case is built from.

        Namespaced apart from the attack streams so no attack name can
        alias it.
        """
        return derive_rng(self.root_seed, self.name, "case", trial)

    def attack_rng(self, attack: AuditAttack, trial: int) -> random.Random:
        """The derived stream one (attack, trial) pair draws from."""
        return derive_rng(
            self.root_seed, self.name, "attack", attack.name, trial
        )

    def resolve_engine(self, engine=None) -> VerificationEngine:
        """Materialize the engine ``run`` will use.

        Precedence: the ``engine`` argument, then the plan's ``engine``
        field, then the classic fail-fast serial default.  Strings name
        a registered executor and get a fail-fast engine around it.
        """
        chosen = engine if engine is not None else self.engine
        if chosen is None:
            return VerificationEngine(SerialExecutor(), fail_fast=True)
        if isinstance(chosen, str):
            from repro.api.runtime import make_executor

            return VerificationEngine(make_executor(chosen), fail_fast=True)
        return chosen

    def run(self, engine=None) -> AuditReport:
        """Execute the campaign and tally the verdicts.

        The default engine is serial with ``fail_fast`` — an audit needs
        only the accept bit, so short-circuiting on the first rejecting
        vertex is pure win.  Pass an engine (or a registered executor
        name such as ``"vectorized"``) to override the plan's default.
        """
        engine = self.resolve_engine(engine)
        start = perf_counter()
        attempts: list = []
        counts = {
            attack.name: {"rejected": 0, "accepted": 0, "skipped": 0}
            for attack in self.attacks
        }
        for trial in range(self.trials):
            case = self.case_factory(trial, self.case_rng(trial))
            for attack in self.attacks:
                rng = self.attack_rng(attack, trial)
                for instance in attack.instances(case, rng):
                    if instance is None:
                        counts[attack.name]["skipped"] += 1
                        attempts.append(
                            AuditAttempt(attack.name, trial, "skipped")
                        )
                        continue
                    report = engine.verify(
                        instance.config, case.scheme, instance.labeling
                    )
                    outcome = "rejected" if not report.accepted else "accepted"
                    counts[attack.name][outcome] += 1
                    attempts.append(
                        AuditAttempt(
                            attack.name,
                            trial,
                            outcome,
                            instance.note,
                            dict(instance.data),
                        )
                    )
        tallies = {
            attack.name: AttackTally(
                attack=attack.name,
                attempted=counts[attack.name]["rejected"]
                + counts[attack.name]["accepted"],
                rejected=counts[attack.name]["rejected"],
                accepted=counts[attack.name]["accepted"],
                skipped=counts[attack.name]["skipped"],
            )
            for attack in self.attacks
        }
        return AuditReport(
            name=self.name,
            root_seed=self.root_seed,
            trials=self.trials,
            tallies=tallies,
            attempts=tuple(attempts),
            elapsed_seconds=perf_counter() - start,
        )
