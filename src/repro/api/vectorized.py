"""Batched numpy verification kernels and shared-memory parallel rounds.

The reference verifier (:mod:`repro.core.verifier`) checks one
:class:`~repro.pls.model.LocalView` at a time in pure python.  This
module evaluates a *whole round* as flat array kernels instead:

1. **Compile** — every edge certificate is interned by content
   (records, infos, stacks, tags all become dense integer ids), the
   pure per-record re-derivations (leaf classes, ``f_B`` bridge
   recompositions, ``f_P`` member folds) are evaluated once per unique
   record through the reference's own memoized functions, and each
   stack is assigned a *path id* chain mirroring the reference's
   recursive grouping (T-levels split by member node, B-levels by
   side).
2. **Kernel** — the round's (vertex, depth) incidences are expanded
   into rows, one ``np.lexsort`` over ``(vertex, path, next-path)``
   makes every reference "group" a contiguous segment, and all
   group-level checks (record equality, pointer rounds, bridge sides,
   path positions, the T-node member rules) become segment reductions
   and sorted-key joins.
3. **Fallback** — the kernels are *accept-only*: a vertex is
   kernel-accepted only when every reference check provably passes on
   the interned representation.  Anything unrepresentable (non-integer
   identifiers, unhashable adversarial fields, exotic record shapes)
   or failing *flags* the vertex, and flagged vertices are re-checked
   by the reference ``LocalView`` path — so rejections keep full
   per-vertex diagnostics and the round verdict is identical to the
   reference executors' by construction.  The hypothesis differential
   suite in ``tests/test_vectorized.py`` pins this equivalence.

:class:`SharedMemoryExecutor` additionally publishes the CSR snapshot
and identifier/order arrays into ``multiprocessing.shared_memory``
segments; workers attach by name, map the arrays zero-copy, compile
once per payload, and receive plain ``(start, stop)`` ranges.  The
certificate objects themselves ship once per pool as a pickled blob in
a second segment (python object graphs cannot be mmapped), and the
reference fallback for flagged vertices runs in the parent, which
holds the full round.  Segments are unlinked on :meth:`close` — the
no-leak lifecycle tests attach by name to prove it.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from time import perf_counter
from typing import Optional

try:  # pragma: no cover - numpy is present in CI
    import numpy as np
except Exception:  # pragma: no cover
    np = None

from repro.api.runtime import (
    VerificationExecutor,
    _ChunkOutcome,
    _ranges,
    _run_range,
    register_executor,
)
from repro.core.certificates import (
    BasicInfo,
    BLevelRecord,
    EdgeCertificate,
    ELevelRecord,
    PLevelRecord,
    Theorem1Label,
    TLevelRecord,
)
from repro.core.scheme import CertifyingScheme
from repro.core.verifier import (
    recompute_bridge,
    recompute_leaf_state,
    recompute_parent_fold,
)
from repro.codec.wire import WIRE_VERSION
from repro.courcelle.boundary import REAL, VIRTUAL
from repro.pls.arrays import (
    NONE_ID,
    NotVectorizable,
    RoundArrays,
    pack_round_arrays,
    unpack_round_arrays,
)
from repro.pls.model import ViewFactory
from repro.pls.pointer import PointerLabel

HAVE_NUMPY = np is not None

#: Record-type codes (column ``r_type``); -1 marks an unrepresentable
#: record, which flags every stack containing it.
_T, _B, _E, _P = 0, 1, 2, 3

#: Bound on any integer stored in a kernel column.  Far inside int64 so
#: packed keys and ``x - 1`` arithmetic can never wrap or collide with
#: the sentinels below.
_LIM = 1 << 60

#: "no value" sentinel (missing pointer record, ``out_id(...) is None``).
#: Outside the validated ``(-_LIM, _LIM)`` range, so it never equals a
#: real identifier or distance.
_MISS = NONE_ID

_SEG_SHIFT = 1 << 31

#: Version of the persisted compiled-round envelope
#: (:meth:`KernelRound.export_state`).  Bumped whenever the kernel table
#: layout or semantics change: a mismatched envelope is a cache *miss*
#: (the round recompiles), never an error.
COMPILED_ROUND_VERSION = 1

#: ``_Tables`` columns by dtype — the envelope stores exactly these, and
#: :meth:`KernelRound.from_state` re-coerces and bounds-checks each one.
_STATE_BOOL_COLS = (
    "r_root", "r_fold", "r_rmc", "r_ptok", "r_bok", "r_eok",
    "r_ptagok", "r_pok", "st_flag",
)
_STATE_I64_COLS = (
    "r_type", "r_info", "r_rmid", "r_minfo", "r_msub", "r_cs",
    "r_ptgt", "r_pida", "r_pda", "r_pidb", "r_pdb",
    "r_bleft", "r_bright", "r_bbr", "r_btag", "r_side",
    "r_ep1", "r_ep2", "r_etag", "r_ein", "r_eout",
    "r_pvids", "r_ptags", "r_ppos", "r_ptagc", "r_plen",
    "ch_counts", "ch_indptr", "ch_cid",
    "ch_ids_counts", "ch_ids_indptr", "ch_ids_flat",
    "min_counts", "min_indptr", "min_lane", "min_id",
    "tin", "pid_keys", "pid_t",
    "st_len", "st_indptr", "st_rec", "st_path", "st_next",
    "me_code",
)

#: Columns with one entry per interned record.
_STATE_RECORD_COLS = tuple(
    c for c in _STATE_I64_COLS + _STATE_BOOL_COLS if c.startswith("r_")
) + ("ch_counts", "min_counts")


def _dtype_signature():
    """Numpy dtype signature baked into every envelope: a restore on a
    platform whose int64/bool wire forms differ must miss, not load."""
    return (np.dtype(np.int64).str, np.dtype(bool).str)


class Unvectorizable(Exception):
    """The whole round cannot run under the kernels (full fallback)."""

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(reason)


class _BadRecord(Exception):
    """A record field the kernels cannot represent soundly."""


def _ival(x) -> int:
    """Validate a plain bounded int (bools and int subclasses rejected).

    The kernels compare identifiers with ``==`` on int64 columns; any
    value whose python ``==`` semantics differ from int64 equality
    (floats, bools, custom classes) must flag the record instead, so
    the reference path decides.
    """
    if type(x) is not int or not (-_LIM < x < _LIM):
        raise _BadRecord("unrepresentable integer field")
    return x


def _grouped_arange(counts):
    """[0..c0-1, 0..c1-1, ...] for an int64 counts array."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(counts)
    return np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)


def _boundaries(*cols):
    """Start indices of maximal runs where every column is constant."""
    nrows = cols[0].shape[0]
    if nrows == 0:
        return np.zeros(0, dtype=np.int64)
    change = np.zeros(nrows, dtype=bool)
    change[0] = True
    for col in cols:
        change[1:] |= col[1:] != col[:-1]
    return np.flatnonzero(change)


class _Interner:
    """Content-interning with an id() fast path.

    The prover shares record objects across edges but also builds fresh
    equal-content objects per call (``BasicInfo``); interning first by
    object identity and then by content collapses both into one dense
    id.  Interned objects are kept alive so id() keys stay valid.
    """

    __slots__ = ("by_id", "by_key", "objs")

    def __init__(self):
        self.by_id = {}
        self.by_key = {}
        self.objs = []

    def __len__(self) -> int:
        return len(self.objs)

    def intern(self, obj) -> int:
        oid = id(obj)
        hit = self.by_id.get(oid)
        if hit is not None:
            return hit
        cid = self.by_key.get(obj)  # TypeError (unhashable) propagates
        if cid is None:
            cid = len(self.objs)
            self.by_key[obj] = cid
        self.objs.append(obj)  # keep alive: id() keys must stay unique
        self.by_id[oid] = cid
        return cid


class _Tables:
    """Finalized numpy columns (plain attribute bag)."""


class KernelRound:
    """One round compiled for the kernels.

    Parameters
    ----------
    arrays:
        :class:`~repro.pls.arrays.RoundArrays` — CSR + identifiers.
    edge_labels:
        Per-edge label column aligned with the CSR edge index
        (``ViewFactory.edge_certificates``).
    algebra, max_width:
        The Theorem 1 verifier profile of the scheme.

    ``run(order)`` returns ``(accept, stats)``: ``accept[i]`` is True
    iff the kernels *prove* the reference verifier accepts dense vertex
    ``order[i]``; every other vertex must go through the reference
    fallback.  Compilation is incremental — only edges incident to
    requested vertices are ever interned — so subset rounds (the
    incremental recertifier's dirty regions) pay proportional cost.
    """

    def __init__(self, arrays: RoundArrays, edge_labels, algebra, max_width):
        if np is None:  # pragma: no cover
            raise Unvectorizable("numpy unavailable")
        self._n = arrays.n
        self._m = arrays.m
        self._indptr = arrays.indptr
        self._incident = arrays.incident
        self._ids_np = arrays.identifiers
        self._ids_py = [int(x) for x in arrays.identifiers.tolist()]
        self._edge_labels = edge_labels
        self._algebra = algebra
        self._max_width = max_width

        self._infos = _Interner()
        self._tags = _Interner()
        self._misc = _Interner()
        self._real_cid = self._tags.intern(REAL)
        self._virtual_cid = self._tags.intern(VIRTUAL)

        self._rec_by_id = {}
        self._rec_by_key = {}
        self._keep = []
        self._info_meta = {}
        self._idcode = {}
        # Int-keyed memos over interned sub-components: the deep
        # recomputations (folds, bridges) and derived columns repeat
        # across records that share members, and hashing small int
        # tuples is far cheaper than hashing nested dataclasses.
        self._cs_memo = {}
        self._minp_memo = {}
        self._fold_memo = {}
        self._rmc_memo = {}
        self._bok_memo = {}
        self._tin_keys = []
        self._pid_entries = []
        self._paths = {}
        self._path_count = 1  # 0 is the root path

        # Per-record columns (python lists; finalized to numpy).
        self._r_type = []
        self._r_info = []
        self._r_sel = []
        self._r_root = []
        self._r_rmid = []
        self._r_minfo = []
        self._r_msub = []
        self._r_cs = []
        self._r_fold = []
        self._r_rmc = []
        self._r_ptok = []
        self._r_ptgt = []
        self._r_pida = []
        self._r_pda = []
        self._r_pidb = []
        self._r_pdb = []
        self._r_children = []
        self._r_chids = []
        self._r_minpairs = []
        self._r_bleft = []
        self._r_bright = []
        self._r_bbr = []
        self._r_btag = []
        self._r_bok = []
        self._r_side = []
        self._r_bkl = []
        self._r_bkr = []
        self._r_ep1 = []
        self._r_ep2 = []
        self._r_etag = []
        self._r_ein = []
        self._r_eout = []
        self._r_eok = []
        self._r_leaf = []
        self._r_pvids = []
        self._r_ptags = []
        self._r_ppos = []
        self._r_ptagc = []
        self._r_ptagok = []
        self._r_pok = []
        self._r_plen = []

        # Per-stack tables (flattened at finalize).
        self._cert_by_id = {}
        self._stack_by_key = {}
        self._s_recs = []
        self._s_path = []
        self._s_next = []
        self._s_flag = []

        self._edge_sid = np.full(self._m, -3, dtype=np.int64)
        self._edge_emb = {}
        self._t: Optional[_Tables] = None
        self._dirty = True
        self.compile_seconds = 0.0
        # Attached (persisted-envelope) rounds skip the compile path:
        # the tables, edge stacks, and virtual-port results below were
        # restored by :meth:`from_state` instead of being compiled.
        self._attached = False
        self._vp_map: dict = {}
        self._vp_bad: set = set()

    # -- value/paths interning ------------------------------------------

    def _code_of(self, value: int) -> int:
        code = self._idcode.get(value)
        if code is None:
            code = len(self._idcode)
            self._idcode[value] = code
        return code

    def _path_of(self, parent: int, token) -> int:
        key = (parent, token)
        pid = self._paths.get(key)
        if pid is None:
            pid = self._path_count
            self._path_count += 1
            self._paths[key] = pid
        return pid

    # -- record extraction ----------------------------------------------

    def _new_record(self, rec, hashable: bool) -> int:
        cid = len(self._r_type)
        self._r_type.append(-1)
        self._r_info.append(0)
        self._r_sel.append(("bad",))
        self._r_root.append(False)
        self._r_rmid.append(0)
        self._r_minfo.append(0)
        self._r_msub.append(0)
        self._r_cs.append(0)
        self._r_fold.append(False)
        self._r_rmc.append(False)
        self._r_ptok.append(False)
        self._r_ptgt.append(0)
        self._r_pida.append(_MISS)
        self._r_pda.append(0)
        self._r_pidb.append(_MISS)
        self._r_pdb.append(0)
        self._r_children.append(())
        self._r_chids.append(())
        self._r_minpairs.append(())
        self._r_bleft.append(0)
        self._r_bright.append(0)
        self._r_bbr.append(0)
        self._r_btag.append(0)
        self._r_bok.append(False)
        self._r_side.append(0)
        self._r_bkl.append(False)
        self._r_bkr.append(False)
        self._r_ep1.append(_MISS)
        self._r_ep2.append(_MISS)
        self._r_etag.append(0)
        self._r_ein.append(0)
        self._r_eout.append(0)
        self._r_eok.append(False)
        self._r_leaf.append(False)
        self._r_pvids.append(0)
        self._r_ptags.append(0)
        self._r_ppos.append(0)
        self._r_ptagc.append(0)
        self._r_ptagok.append(False)
        self._r_pok.append(False)
        self._r_plen.append(0)
        if hashable:
            self._rec_by_key[rec] = cid
        try:
            self._extract(rec, cid)
        except Exception:
            # Unrepresentable record: every stack holding it is flagged
            # and its vertices take the reference path.
            self._r_type[cid] = -1
        self._dirty = True
        return cid

    def _intern_record(self, rec) -> int:
        oid = id(rec)
        hit = self._rec_by_id.get(oid)
        if hit is not None:
            return hit
        self._keep.append(rec)
        try:
            cid = self._rec_by_key.get(rec)
            hashable = True
        except TypeError:
            cid = None
            hashable = False
        if cid is None:
            cid = self._new_record(rec, hashable)
        self._rec_by_id[oid] = cid
        return cid

    def _info_meta_for(self, info: BasicInfo, icid: int) -> dict:
        meta = self._info_meta.get(icid)
        if meta is not None:
            return meta
        t_ok = True
        try:
            pairs = [(_ival(lane), _ival(x)) for lane, x in info.in_ids]
        except Exception:
            t_ok = False
            pairs = []
        if t_ok:
            for lane, x in pairs:
                if 0 <= lane < 256:
                    code = self._code_of(x)
                    self._tin_keys.append((((icid << 8) | lane) << 31) | code)
        try:
            lanes = info.lanes
            width = len(lanes)
            root_ok = 1 <= width <= self._max_width and lanes == tuple(
                range(width)
            )
            if root_ok:
                root_ok = bool(
                    self._algebra.accepts(info.state, len(info.boundary_ids))
                )
        except Exception:
            root_ok = False
        meta = {"t_ok": t_ok, "root_ok": bool(root_ok)}
        self._info_meta[icid] = meta
        return meta

    def _extract(self, rec, cid: int) -> None:
        info = rec.info
        if not isinstance(info, BasicInfo):
            raise _BadRecord("info is not a BasicInfo")
        icid = self._infos.intern(info)
        self._r_info[cid] = icid
        if isinstance(rec, TLevelRecord):
            self._extract_t(rec, cid, info, icid)
        elif isinstance(rec, BLevelRecord):
            self._extract_b(rec, cid, info)
        elif isinstance(rec, ELevelRecord):
            self._extract_e(rec, cid, info)
        elif isinstance(rec, PLevelRecord):
            self._extract_p(rec, cid, info)
        else:
            raise _BadRecord("unknown record type")

    def _extract_t(self, rec, cid: int, info, icid: int) -> None:
        meta = self._info_meta_for(info, icid)
        if not meta["t_ok"]:
            raise _BadRecord("T info in-terminals unrepresentable")
        minfo = rec.member_info
        msub = rec.member_subtree
        if not isinstance(minfo, BasicInfo) or not isinstance(msub, BasicInfo):
            raise _BadRecord("member infos are not BasicInfo")
        mnode = _ival(minfo.node_id)
        rmid = _ival(rec.root_member_id)
        cs = rec.child_subtrees
        if not isinstance(cs, tuple):
            raise _BadRecord("child_subtrees is not a tuple")
        ptr = rec.pointer
        if not isinstance(ptr, PointerLabel):
            raise _BadRecord("pointer is not a PointerLabel")
        self._r_ptgt[cid] = _ival(ptr.target_id)
        self._r_pida[cid] = _ival(ptr.id_a)
        self._r_pda[cid] = _ival(ptr.dist_a)
        self._r_pidb[cid] = _ival(ptr.id_b)
        self._r_pdb[cid] = _ival(ptr.dist_b)
        self._r_ptok[cid] = True
        minfo_cid = self._infos.intern(minfo)
        msub_cid = self._infos.intern(msub)
        cs_cid = self._misc.intern(cs)
        cs_cols = self._cs_memo.get(cs_cid)
        if cs_cols is None:
            try:
                children = []
                chids = []
                for child in cs:
                    if not isinstance(child, BasicInfo):
                        raise _BadRecord("child subtree is not a BasicInfo")
                    children.append(self._infos.intern(child))
                    chids.append(
                        tuple(_ival(x) for _lane, x in child.in_ids)
                    )
                cs_cols = (tuple(children), tuple(chids))
            except Exception:
                cs_cols = False
            self._cs_memo[cs_cid] = cs_cols
        if cs_cols is False:
            raise _BadRecord("child subtree unrepresentable")
        minp = self._minp_memo.get(msub_cid)
        if minp is None:
            try:
                minp = tuple(
                    (_ival(lane), _ival(x)) for lane, x in msub.in_ids
                )
            except Exception:
                minp = False
            self._minp_memo[msub_cid] = minp
        if minp is False:
            raise _BadRecord("member in-terminals unrepresentable")
        self._r_minpairs[cid] = minp
        self._r_minfo[cid] = minfo_cid
        self._r_msub[cid] = msub_cid
        self._r_cs[cid] = cs_cid
        self._r_children[cid] = cs_cols[0]
        self._r_chids[cid] = cs_cols[1]
        self._r_rmid[cid] = rmid
        self._r_sel[cid] = ("m", mnode)
        self._r_root[cid] = meta["root_ok"]
        fold_key = (minfo_cid, msub_cid, cs_cid)
        fold_ok = self._fold_memo.get(fold_key)
        if fold_ok is None:
            try:
                state, _b, in_ids, out_ids = recompute_parent_fold(
                    self._algebra, minfo, cs
                )
                fold_ok = (
                    state == msub.state
                    and in_ids == msub.in_ids
                    and out_ids == msub.out_ids
                )
            except Exception:
                fold_ok = False
            fold_ok = bool(fold_ok)
            self._fold_memo[fold_key] = fold_ok
        self._r_fold[cid] = fold_ok
        if mnode == rmid:
            rmc_key = (msub_cid, icid)
            rmc = self._rmc_memo.get(rmc_key)
            if rmc is None:
                try:
                    rmc = (
                        msub.state == info.state
                        and msub.in_ids == info.in_ids
                        and msub.out_ids == info.out_ids
                        and msub.lanes == info.lanes
                    )
                except Exception:
                    rmc = False
                rmc = bool(rmc)
                self._rmc_memo[rmc_key] = rmc
            self._r_rmc[cid] = rmc
        else:
            self._r_rmc[cid] = True
        self._r_type[cid] = _T

    def _extract_b(self, rec, cid: int, info) -> None:
        left = rec.left
        right = rec.right
        if not isinstance(left, BasicInfo) or not isinstance(right, BasicInfo):
            raise _BadRecord("bridge children are not BasicInfo")
        bridge = rec.bridge
        if not isinstance(bridge, tuple) or len(bridge) != 2:
            raise _BadRecord("bridge is not a 2-tuple")
        i, j = bridge
        side = rec.side
        if side not in (-1, 0, 1):
            raise _BadRecord("invalid bridge side marker")
        self._r_side[cid] = int(side)
        self._r_sel[cid] = ("s", side)
        left_cid = self._infos.intern(left)
        right_cid = self._infos.intern(right)
        br_cid = self._misc.intern(bridge)
        btag_cid = self._tags.intern(rec.bridge_tag)
        self._r_bleft[cid] = left_cid
        self._r_bright[cid] = right_cid
        self._r_bbr[cid] = br_cid
        self._r_btag[cid] = btag_cid
        icid = self._r_info[cid]
        bok_key = (left_cid, right_cid, br_cid, btag_cid, icid)
        cols = self._bok_memo.get(bok_key)
        if cols is None:
            try:
                ep1 = left.out_id(i)
                ep2 = right.out_id(j)
                ep1 = _MISS if ep1 is None else _ival(ep1)
                ep2 = _MISS if ep2 is None else _ival(ep2)
            except Exception:
                cols = False
                self._bok_memo[bok_key] = cols
            if cols is None:
                try:
                    state, _b, in_ids, out_ids = recompute_bridge(
                        self._algebra, left, right, i, j, rec.bridge_tag
                    )
                    ok = (
                        state == info.state
                        and in_ids == info.in_ids
                        and out_ids == info.out_ids
                    )
                except Exception:
                    ok = False
                for child in (left, right):
                    if child.kind == "V":
                        try:
                            vok = (
                                child.in_ids == child.out_ids
                                and len(child.lanes) == 1
                                and child.state
                                == self._algebra.new_vertices(1)
                            )
                        except Exception:
                            vok = False
                        ok = ok and vok
                cols = (
                    bool(ok),
                    ep1,
                    ep2,
                    left.kind == "T",
                    right.kind == "T",
                )
                self._bok_memo[bok_key] = cols
        if cols is False:
            raise _BadRecord("bridge endpoints unrepresentable")
        self._r_bok[cid] = cols[0]
        self._r_ep1[cid] = cols[1]
        self._r_ep2[cid] = cols[2]
        self._r_bkl[cid] = cols[3]
        self._r_bkr[cid] = cols[4]
        self._r_type[cid] = _B

    def _extract_e(self, rec, cid: int, info) -> None:
        e_in = _ival(rec.in_id)
        e_out = _ival(rec.out_id)
        self._r_etag[cid] = self._tags.intern(rec.tag)
        self._r_ein[cid] = e_in
        self._r_eout[cid] = e_out
        try:
            lanes = info.lanes
            lane = lanes[0]
            shape = (
                len(lanes) == 1
                and info.in_ids == ((lane, rec.in_id),)
                and info.out_ids == ((lane, rec.out_id),)
            )
        except Exception:
            shape = False
        self._r_eok[cid] = bool(shape and e_in != e_out)
        try:
            self._r_leaf[cid] = bool(
                recompute_leaf_state(self._algebra, rec) == info.state
            )
        except Exception:
            self._r_leaf[cid] = False
        self._r_sel[cid] = ("x",)
        self._r_type[cid] = _E

    def _extract_p(self, rec, cid: int, info) -> None:
        ids = rec.vertex_ids
        tags = rec.tags
        if not isinstance(ids, tuple) or not isinstance(tags, tuple):
            raise _BadRecord("P-node ids/tags are not tuples")
        vals = [_ival(x) for x in ids]
        pos = rec.position
        if type(pos) is not int or not (-_LIM < pos < _LIM):
            raise _BadRecord("P-node position unrepresentable")
        self._r_pvids[cid] = self._misc.intern(ids)
        self._r_ptags[cid] = self._misc.intern(tags)
        self._r_ppos[cid] = pos
        try:
            tag_at = tags[pos]
        except Exception:
            self._r_ptagok[cid] = False
        else:
            self._r_ptagc[cid] = self._tags.intern(tag_at)
            self._r_ptagok[cid] = True
        try:
            lanes = info.lanes
            shape = (
                len(lanes) == len(ids)
                and info.in_ids == tuple(zip(lanes, ids))
                and info.out_ids == tuple(zip(lanes, ids))
            )
        except Exception:
            shape = False
        self._r_pok[cid] = bool(
            len(set(vals)) == len(vals)
            and len(tags) == len(ids) - 1
            and shape
        )
        self._r_plen[cid] = len(ids)
        for t_index, x in enumerate(vals):
            self._pid_entries.append(
                (cid * _SEG_SHIFT + self._code_of(x), t_index)
            )
        try:
            self._r_leaf[cid] = bool(
                recompute_leaf_state(self._algebra, rec) == info.state
            )
        except Exception:
            self._r_leaf[cid] = False
        self._r_sel[cid] = ("x",)
        self._r_type[cid] = _P

    # -- stack + edge compilation ---------------------------------------

    def _compile_stack(self, recs: tuple) -> int:
        sid = len(self._s_recs)
        path = 0
        paths = []
        nexts = []
        flagged = False
        last_index = len(recs) - 1
        for depth, rc in enumerate(recs):
            paths.append(path)
            nxt = self._path_of(path, self._r_sel[rc])
            nexts.append(nxt)
            path = nxt
            rtype = self._r_type[rc]
            last = depth == last_index
            if rtype == _T:
                if last or (
                    self._r_info[recs[depth + 1]] != self._r_minfo[rc]
                ):
                    flagged = True
            elif rtype == _B:
                side = self._r_side[rc]
                if side == -1:
                    if not last:
                        flagged = True
                else:
                    child = (
                        self._r_bleft[rc] if side == 0 else self._r_bright[rc]
                    )
                    kind_t = (
                        self._r_bkl[rc] if side == 0 else self._r_bkr[rc]
                    )
                    if (
                        last
                        or not kind_t
                        or self._r_type[recs[depth + 1]] != _T
                        or self._r_info[recs[depth + 1]] != child
                    ):
                        flagged = True
            elif rtype in (_E, _P):
                if not last or not self._r_leaf[rc]:
                    flagged = True
            else:
                flagged = True
        if self._r_type[recs[0]] != _T:
            flagged = True
        self._s_recs.append(recs)
        self._s_path.append(tuple(paths))
        self._s_next.append(tuple(nexts))
        self._s_flag.append(flagged)
        self._dirty = True
        return sid

    def _intern_cert(self, cert) -> int:
        oid = id(cert)
        hit = self._cert_by_id.get(oid)
        if hit is not None:
            return hit
        self._keep.append(cert)
        sid = -1
        if isinstance(cert, EdgeCertificate):
            stack = cert.stack
            if isinstance(stack, (tuple, list)) and len(stack) >= 1:
                recs = tuple(self._intern_record(r) for r in stack)
                sid = self._stack_by_key.get(recs)
                if sid is None:
                    sid = self._compile_stack(recs)
                    self._stack_by_key[recs] = sid
        self._cert_by_id[oid] = sid
        return sid

    def _compile_edge(self, index: int) -> None:
        label = self._edge_labels[index]
        if not isinstance(label, Theorem1Label):
            self._edge_sid[index] = -1
            return
        try:
            embedded = tuple(label.embedded)
        except Exception:
            self._edge_sid[index] = -1
            return
        self._edge_sid[index] = self._intern_cert(label.certificate)
        if embedded:
            self._edge_emb[index] = embedded

    def prepare(self, req) -> None:
        """Compile every edge incident to the requested dense vertices."""
        req = np.asarray(req, dtype=np.int64)
        if req.size == 0:
            return
        deg = self._indptr[req + 1] - self._indptr[req]
        pos = np.repeat(self._indptr[req], deg) + _grouped_arange(deg)
        for k in np.unique(self._incident[pos]).tolist():
            if self._edge_sid[k] == -3:
                self._compile_edge(k)

    # -- the embedded / virtual-port pass (python; rare) ----------------

    def _virtual_ports(self, dense: int):
        """Mirror ``_reconstruct_ports``' embedded grouping for one vertex.

        Returns ``(payload_sids, ok)``; ``ok=False`` flags the vertex.
        """
        me = self._ids_py[dense]
        groups: dict = {}
        start = int(self._indptr[dense])
        stop = int(self._indptr[dense + 1])
        for position in range(start, stop):
            emb = self._edge_emb.get(int(self._incident[position]))
            if emb is None:
                continue
            for record in emb:
                try:
                    key = (record.u_id, record.v_id, record.payload)
                    groups.setdefault(key, []).append(
                        (record.forward, record.backward)
                    )
                except Exception:
                    return [], False
        out = []
        for (u_id, v_id, payload), hits in groups.items():
            try:
                totals = {f + b for f, b in hits}
                if len(totals) != 1:
                    return [], False
                total = totals.pop()
                if not all(1 <= f <= total - 1 for f, _b in hits):
                    return [], False
                if me == u_id:
                    if not (len(hits) == 1 and hits[0][0] == 1):
                        return [], False
                    out.append(payload)
                elif me == v_id:
                    if not (len(hits) == 1 and hits[0][1] == 1):
                        return [], False
                    out.append(payload)
                else:
                    if len(hits) != 2:
                        return [], False
                    (f1, _), (f2, _) = hits
                    if abs(f1 - f2) != 1:
                        return [], False
            except Exception:
                return [], False
        return [self._intern_cert(p) for p in out], True

    # -- finalize -------------------------------------------------------

    def _finalize(self) -> None:
        if (
            len(self._infos) >= (1 << 24)
            or len(self._r_type) >= _SEG_SHIFT
            or self._path_count >= _SEG_SHIFT
            or len(self._idcode) >= _SEG_SHIFT
        ):
            raise Unvectorizable("intern tables exceed packed-key range")
        t = _Tables()
        i64 = np.int64
        t.r_type = np.array(self._r_type, i64)
        t.r_info = np.array(self._r_info, i64)
        t.r_root = np.array(self._r_root, bool)
        t.r_rmid = np.array(self._r_rmid, i64)
        t.r_minfo = np.array(self._r_minfo, i64)
        t.r_msub = np.array(self._r_msub, i64)
        t.r_cs = np.array(self._r_cs, i64)
        t.r_fold = np.array(self._r_fold, bool)
        t.r_rmc = np.array(self._r_rmc, bool)
        t.r_ptok = np.array(self._r_ptok, bool)
        t.r_ptgt = np.array(self._r_ptgt, i64)
        t.r_pida = np.array(self._r_pida, i64)
        t.r_pda = np.array(self._r_pda, i64)
        t.r_pidb = np.array(self._r_pidb, i64)
        t.r_pdb = np.array(self._r_pdb, i64)
        t.r_bleft = np.array(self._r_bleft, i64)
        t.r_bright = np.array(self._r_bright, i64)
        t.r_bbr = np.array(self._r_bbr, i64)
        t.r_btag = np.array(self._r_btag, i64)
        t.r_bok = np.array(self._r_bok, bool)
        t.r_side = np.array(self._r_side, i64)
        t.r_ep1 = np.array(self._r_ep1, i64)
        t.r_ep2 = np.array(self._r_ep2, i64)
        t.r_etag = np.array(self._r_etag, i64)
        t.r_ein = np.array(self._r_ein, i64)
        t.r_eout = np.array(self._r_eout, i64)
        t.r_eok = np.array(self._r_eok, bool)
        t.r_pvids = np.array(self._r_pvids, i64)
        t.r_ptags = np.array(self._r_ptags, i64)
        t.r_ppos = np.array(self._r_ppos, i64)
        t.r_ptagc = np.array(self._r_ptagc, i64)
        t.r_ptagok = np.array(self._r_ptagok, bool)
        t.r_pok = np.array(self._r_pok, bool)
        t.r_plen = np.array(self._r_plen, i64)

        ch_counts = np.array([len(c) for c in self._r_children], i64)
        t.ch_counts = ch_counts
        t.ch_indptr = np.concatenate(
            [np.zeros(1, i64), np.cumsum(ch_counts)]
        )
        t.ch_cid = np.array(
            [c for row in self._r_children for c in row], i64
        )
        ids_counts = np.array(
            [len(ids) for row in self._r_chids for ids in row], i64
        )
        t.ch_ids_counts = ids_counts
        t.ch_ids_indptr = np.concatenate(
            [np.zeros(1, i64), np.cumsum(ids_counts)]
        )
        t.ch_ids_flat = np.array(
            [x for row in self._r_chids for ids in row for x in ids], i64
        )
        min_counts = np.array([len(p) for p in self._r_minpairs], i64)
        t.min_counts = min_counts
        t.min_indptr = np.concatenate(
            [np.zeros(1, i64), np.cumsum(min_counts)]
        )
        t.min_lane = np.array(
            [lane for row in self._r_minpairs for lane, _x in row], i64
        )
        t.min_id = np.array(
            [x for row in self._r_minpairs for _lane, x in row], i64
        )
        t.tin = np.unique(np.array(self._tin_keys, i64))
        if self._pid_entries:
            keys = np.array([k for k, _t in self._pid_entries], i64)
            tpos = np.array([tp for _k, tp in self._pid_entries], i64)
            ordering = np.argsort(keys, kind="stable")
            t.pid_keys = keys[ordering]
            t.pid_t = tpos[ordering]
        else:
            t.pid_keys = np.zeros(0, i64)
            t.pid_t = np.zeros(0, i64)

        lens = np.array([len(r) for r in self._s_recs], i64)
        t.st_len = lens
        t.st_indptr = np.concatenate([np.zeros(1, i64), np.cumsum(lens)])
        t.st_rec = np.array(
            [rc for recs in self._s_recs for rc in recs], i64
        )
        t.st_path = np.array(
            [p for paths in self._s_path for p in paths], i64
        )
        t.st_next = np.array(
            [p for nexts in self._s_next for p in nexts], i64
        )
        t.st_flag = np.array(self._s_flag, bool)
        t.me_code = np.array(
            [self._idcode.get(x, -1) for x in self._ids_py], i64
        )
        self._t = t
        self._dirty = False

    # -- persisted compiled rounds --------------------------------------

    def _emb_vertices(self):
        """Dense vertices incident to an edge with embedded records."""
        edge_has = np.zeros(self._m, dtype=bool)
        edge_has[np.array(list(self._edge_emb), dtype=np.int64)] = True
        counts = np.diff(self._indptr)
        vertex_of_pos = np.repeat(
            np.arange(self._n, dtype=np.int64), counts
        )
        return np.unique(vertex_of_pos[edge_has[self._incident]])

    def export_state(self) -> dict:
        """Serializable snapshot of the *fully* compiled round.

        Every edge is compiled and every virtual-port grouping is
        pre-evaluated, so a process that restores the snapshot through
        :meth:`from_state` runs the kernels with zero compile work.
        The envelope carries the compiled-round and wire format
        versions plus the numpy dtype signature; mismatches at restore
        time raise, which callers treat as a cache miss.
        """
        self.prepare(np.arange(self._n, dtype=np.int64))
        vp_map = {}
        vp_bad = []
        if self._edge_emb:
            for dense in self._emb_vertices().tolist():
                sids, ok = self._virtual_ports(dense)
                if not ok:
                    vp_bad.append(dense)
                elif sids:
                    vp_map[dense] = tuple(sids)
        if self._dirty or self._t is None:
            self._finalize()
        t = self._t
        tables = {
            name: getattr(t, name)
            for name in _STATE_I64_COLS + _STATE_BOOL_COLS
        }
        return {
            "compiled_round_version": COMPILED_ROUND_VERSION,
            "wire_version": WIRE_VERSION,
            "dtypes": _dtype_signature(),
            "n": self._n,
            "m": self._m,
            "edge_sid": self._edge_sid.copy(),
            "tables": tables,
            "vp_map": vp_map,
            "vp_bad": sorted(vp_bad),
        }

    @classmethod
    def from_state(cls, arrays, state, algebra, max_width):
        """Attach to a persisted compiled round.

        Raises on *any* version, dtype, shape, or structural mismatch —
        the caller maps every failure to a recompile, so a stale or
        corrupt envelope can only cost time, never correctness.
        """
        round_ = cls(arrays, None, algebra, max_width)
        round_._attach(state)
        return round_

    def _attach(self, state) -> None:
        def check(ok, what):
            if not ok:
                raise ValueError(what)

        check(isinstance(state, dict), "state is not a dict")
        check(
            state.get("compiled_round_version") == COMPILED_ROUND_VERSION,
            "compiled-round version mismatch",
        )
        check(
            state.get("wire_version") == WIRE_VERSION,
            "wire format version mismatch",
        )
        check(
            tuple(state.get("dtypes", ())) == _dtype_signature(),
            "numpy dtype signature mismatch",
        )
        check(
            state.get("n") == self._n and state.get("m") == self._m,
            "graph shape mismatch",
        )
        tables = state.get("tables")
        check(isinstance(tables, dict), "missing kernel tables")
        t = _Tables()
        for name in _STATE_I64_COLS:
            col = np.asarray(tables[name], dtype=np.int64)
            check(col.ndim == 1, f"column {name} is not flat")
            setattr(t, name, col)
        for name in _STATE_BOOL_COLS:
            col = np.asarray(tables[name], dtype=bool)
            check(col.ndim == 1, f"column {name} is not flat")
            setattr(t, name, col)
        nrecords = int(t.r_type.shape[0])
        for name in _STATE_RECORD_COLS:
            check(
                getattr(t, name).shape[0] == nrecords,
                f"record column {name} length mismatch",
            )
        for counts, indptr, flats in (
            (t.ch_counts, t.ch_indptr, (t.ch_cid,)),
            (t.ch_ids_counts, t.ch_ids_indptr, (t.ch_ids_flat,)),
            (t.min_counts, t.min_indptr, (t.min_lane, t.min_id)),
            (t.st_len, t.st_indptr, (t.st_rec, t.st_path, t.st_next)),
        ):
            check(
                counts.size == 0 or int(counts.min()) >= 0,
                "negative segment count",
            )
            check(
                np.array_equal(
                    indptr,
                    np.concatenate(
                        [np.zeros(1, np.int64), np.cumsum(counts)]
                    ),
                ),
                "segment index pointers are inconsistent",
            )
            total = int(indptr[-1]) if indptr.size else 0
            for flat in flats:
                check(flat.shape[0] == total, "segment payload truncated")
        check(
            t.ch_ids_counts.shape[0] == t.ch_cid.shape[0],
            "child-id counts misaligned",
        )
        nstacks = int(t.st_len.shape[0])
        check(t.st_flag.shape[0] == nstacks, "stack flags misaligned")
        check(
            t.st_rec.size == 0
            or (
                int(t.st_rec.min()) >= 0
                and int(t.st_rec.max()) < nrecords
            ),
            "stack record ids out of range",
        )
        check(
            t.pid_t.shape == t.pid_keys.shape,
            "P-node key table misaligned",
        )
        for sorted_col in (t.tin, t.pid_keys):
            check(
                sorted_col.size < 2
                or bool((np.diff(sorted_col) >= 0).all()),
                "searchsorted table is unsorted",
            )
        check(t.me_code.shape[0] == self._n, "me_code length mismatch")
        edge_sid = np.asarray(state.get("edge_sid"), dtype=np.int64)
        check(
            edge_sid.shape == (self._m,), "edge stack column misaligned"
        )
        check(
            edge_sid.size == 0
            or (
                int(edge_sid.min()) >= -3
                and int(edge_sid.max()) < nstacks
            ),
            "edge stack ids out of range",
        )
        vp_map = state.get("vp_map")
        vp_bad = state.get("vp_bad")
        check(isinstance(vp_map, dict), "vp_map is not a dict")
        clean_map = {}
        for dense, sids in vp_map.items():
            check(
                type(dense) is int and 0 <= dense < self._n,
                "virtual-port vertex out of range",
            )
            sids = tuple(sids)
            for sid in sids:
                check(
                    type(sid) is int and 0 <= sid < nstacks,
                    "virtual-port stack id out of range",
                )
            clean_map[dense] = sids
        clean_bad = set()
        for dense in vp_bad:
            check(
                type(dense) is int and 0 <= dense < self._n,
                "flagged vertex out of range",
            )
            clean_bad.add(dense)
        self._t = t
        self._edge_sid = edge_sid
        self._dirty = False
        self._attached = True
        self._vp_map = clean_map
        self._vp_bad = clean_bad

    # -- the kernels ----------------------------------------------------

    def run(self, order):
        """Kernel-verify dense vertices ``order``; returns (accept, stats)."""
        began = perf_counter()
        req = np.asarray(list(order), dtype=np.int64)
        vports = {}
        flagged_py = set()
        if self._attached:
            # Restored rounds are fully compiled: virtual ports were
            # pre-evaluated at export time, so the whole cold path
            # reduces to dictionary filtering.
            if self._vp_map or self._vp_bad:
                req_set = set(req.tolist())
                for dense, sids in self._vp_map.items():
                    if dense in req_set:
                        vports[dense] = list(sids)
                flagged_py = self._vp_bad & req_set
            compile_seconds = 0.0
        else:
            self.prepare(req)
            if self._edge_emb:
                emb_vertices = self._emb_vertices()
                req_mask = np.zeros(self._n, dtype=bool)
                req_mask[req] = True
                for dense in emb_vertices[req_mask[emb_vertices]].tolist():
                    sids, ok = self._virtual_ports(dense)
                    if not ok:
                        flagged_py.add(dense)
                    elif sids:
                        vports[dense] = sids
            if self._dirty or self._t is None:
                self._finalize()
            compile_seconds = perf_counter() - began
        self.compile_seconds += compile_seconds
        began = perf_counter()
        accept = self._kernels(req, vports, flagged_py)
        kernel_seconds = perf_counter() - began
        kernel_accepted = int(accept.sum())
        stats = {
            "compiled_vertices": int(req.size),
            "kernel_accepted": kernel_accepted,
            "fallback_vertices": int(req.size) - kernel_accepted,
            "compile_seconds": compile_seconds,
            "kernel_seconds": kernel_seconds,
            "records": int(self._t.r_type.shape[0]),
            "stacks": int(self._t.st_flag.shape[0]),
        }
        return accept, stats

    def _seg_all(self, pred, starts):
        return np.minimum.reduceat(pred.astype(np.int8), starts) > 0

    def _seg_any(self, pred, starts):
        return np.maximum.reduceat(pred.astype(np.int8), starts) > 0

    def _seg_eq(self, col, starts):
        return np.minimum.reduceat(col, starts) == np.maximum.reduceat(
            col, starts
        )

    def _kernels(self, req, vports, flagged_py):
        t = self._t
        flag = np.zeros(self._n, dtype=bool)
        for dense in flagged_py:
            flag[dense] = True
        indptr = self._indptr
        deg = indptr[req + 1] - indptr[req]
        flag[req[deg == 0]] = True  # no ports at all: reference rejects
        port_vertex = np.repeat(req, deg)
        pos = np.repeat(indptr[req], deg) + _grouped_arange(deg)
        port_sid = self._edge_sid[self._incident[pos]]
        port_tag = np.full(port_vertex.shape[0], self._real_cid, np.int64)
        if vports:
            vv = []
            vs = []
            for dense, sids in vports.items():
                for sid in sids:
                    vv.append(dense)
                    vs.append(sid)
            port_vertex = np.concatenate(
                [port_vertex, np.array(vv, np.int64)]
            )
            port_sid = np.concatenate([port_sid, np.array(vs, np.int64)])
            port_tag = np.concatenate(
                [port_tag, np.full(len(vs), self._virtual_cid, np.int64)]
            )
        bad_port = port_sid < 0
        flag[port_vertex[bad_port]] = True
        sid_safe = np.where(bad_port, 0, port_sid)
        bad_stack = t.st_flag[sid_safe] & ~bad_port
        flag[port_vertex[bad_stack]] = True
        keep = ~bad_port & ~bad_stack
        port_vertex = port_vertex[keep]
        port_sid = port_sid[keep]
        port_tag = port_tag[keep]

        lens = t.st_len[port_sid]
        if int(lens.sum()) == 0:
            return ~flag[req]
        row_port = np.repeat(
            np.arange(port_sid.shape[0], dtype=np.int64), lens
        )
        row_vertex = port_vertex[row_port]
        row_tag = port_tag[row_port]
        row_depth = _grouped_arange(lens)
        flat = np.repeat(t.st_indptr[port_sid], lens) + row_depth
        row_rec = t.st_rec[flat]
        row_path = t.st_path[flat]
        row_next = t.st_next[flat]
        ordering = np.lexsort((row_next, row_path, row_vertex))
        row_vertex = row_vertex[ordering]
        row_tag = row_tag[ordering]
        row_depth = row_depth[ordering]
        row_rec = row_rec[ordering]
        row_path = row_path[ordering]
        row_next = row_next[ordering]
        row_me = self._ids_np[row_vertex]

        starts = _boundaries(row_vertex, row_path)
        subs = _boundaries(row_vertex, row_path, row_next)
        nrows = row_vertex.shape[0]
        nsegs = starts.shape[0]
        sizes = np.diff(np.append(starts, nrows))
        seg_v = row_vertex[starts]
        seg_me = row_me[starts]
        seg_depth = row_depth[starts]
        first_rec = row_rec[starts]

        rt = t.r_type[row_rec]
        tmin = np.minimum.reduceat(rt, starts)
        tmax = np.maximum.reduceat(rt, starts)
        pure = tmin == tmax
        flag[seg_v[~pure]] = True
        is_t = pure & (tmin == _T)
        is_b = pure & (tmin == _B)
        is_e = pure & (tmin == _E)
        is_p = pure & (tmin == _P)

        # Root checks: the depth-0 segment must be all-T (single root
        # info via the equality check below) with an accepting class.
        d0 = seg_depth == 0
        root_all = self._seg_all(t.r_root[row_rec], starts)
        flag[seg_v[d0 & ~(is_t & root_all)]] = True

        info_eq = self._seg_eq(t.r_info[row_rec], starts)

        if is_t.any():
            self._t_kernels(
                t, flag, row_vertex, row_me, row_rec, starts, subs,
                seg_v, seg_me, first_rec, info_eq, is_t, nsegs,
            )
        if is_b.any():
            rmask = t.r_btag[row_rec]
            side = t.r_side[row_rec]
            ism1 = side == -1
            ok = (
                info_eq
                & self._seg_eq(t.r_bleft[row_rec], starts)
                & self._seg_eq(t.r_bright[row_rec], starts)
                & self._seg_eq(t.r_bbr[row_rec], starts)
                & self._seg_eq(rmask, starts)
                & self._seg_all(t.r_bok[row_rec], starts)
                & ~(
                    self._seg_any(side == 0, starts)
                    & self._seg_any(side == 1, starts)
                )
                & self._seg_all(~ism1 | (row_tag == rmask), starts)
            )
            cnt_m1 = np.add.reduceat(ism1.astype(np.int64), starts)
            has_m1 = cnt_m1 > 0
            at_ep = (seg_me == t.r_ep1[first_rec]) | (
                seg_me == t.r_ep2[first_rec]
            )
            ok &= (~at_ep | has_m1) & (cnt_m1 <= 1) & (~has_m1 | at_ep)
            flag[seg_v[is_b & ~ok]] = True
        if is_e.any():
            ok = (
                (sizes == 1)
                & t.r_eok[first_rec]
                & (row_tag[starts] == t.r_etag[first_rec])
                & (
                    (seg_me == t.r_ein[first_rec])
                    | (seg_me == t.r_eout[first_rec])
                )
            )
            flag[seg_v[is_e & ~ok]] = True
        if is_p.any():
            ok = (
                info_eq
                & self._seg_eq(t.r_pvids[row_rec], starts)
                & self._seg_eq(t.r_ptags[row_rec], starts)
                & self._seg_all(t.r_pok[row_rec], starts)
                & self._seg_all(t.r_ptagok[row_rec], starts)
                & self._seg_all(row_tag == t.r_ptagc[row_rec], starts)
            )
            code = t.me_code[seg_v]
            query = first_rec * _SEG_SHIFT + np.where(code >= 0, code, 0)
            found = np.zeros(nsegs, dtype=bool)
            tpos = np.zeros(nsegs, dtype=np.int64)
            if t.pid_keys.size:
                lookup = np.searchsorted(t.pid_keys, query)
                lookup_c = np.minimum(lookup, t.pid_keys.size - 1)
                found = (code >= 0) & (t.pid_keys[lookup_c] == query)
                tpos = t.pid_t[lookup_c]
            plen = t.r_plen[first_rec]
            e_low = tpos > 0
            e_high = tpos < plen - 1
            e_cnt = e_low.astype(np.int64) + e_high.astype(np.int64)
            pmin = np.minimum.reduceat(t.r_ppos[row_rec], starts)
            pmax = np.maximum.reduceat(t.r_ppos[row_rec], starts)
            single = np.where(e_low, tpos - 1, tpos)
            pos_ok = (sizes == e_cnt) & np.where(
                e_cnt == 2,
                (pmin == tpos - 1) & (pmax == tpos),
                (e_cnt == 1) & (pmin == pmax) & (pmin == single),
            )
            flag[seg_v[is_p & ~(ok & found & pos_ok)]] = True
        return ~flag[req]

    def _t_kernels(
        self, t, flag, row_vertex, row_me, row_rec, starts, subs,
        seg_v, seg_me, first_rec, info_eq, is_t, nsegs,
    ):
        """All T-segment checks: pointers, folds, member rules."""
        ida = t.r_pida[row_rec]
        idb = t.r_pidb[row_rec]
        own = np.where(
            row_me == ida,
            t.r_pda[row_rec],
            np.where(row_me == idb, t.r_pdb[row_rec], _MISS),
        )
        other = np.where(
            row_me == ida,
            t.r_pdb[row_rec],
            np.where(row_me == idb, t.r_pda[row_rec], _MISS),
        )
        tgt = t.r_ptgt[row_rec]
        own_first = own[starts]
        is_target = seg_me == tgt[starts]
        ptr_ok = (
            self._seg_all(t.r_ptok[row_rec], starts)
            & self._seg_eq(tgt, starts)
            & self._seg_all(own != _MISS, starts)
            & self._seg_eq(own, starts)
            & np.where(
                is_target,
                own_first == 0,
                (own_first != 0)
                & self._seg_any(other == own - 1, starts),
            )
        )
        ok = (
            info_eq
            & self._seg_eq(t.r_rmid[row_rec], starts)
            & self._seg_all(t.r_fold[row_rec], starts)
            & self._seg_all(t.r_rmc[row_rec], starts)
            & ptr_ok
        )
        flag[seg_v[is_t & ~ok]] = True

        # Member sub-segments (the reference's member_groups).
        seg_of_sub = np.searchsorted(starts, subs, side="right") - 1
        member_mask = is_t[seg_of_sub]
        m_first = subs[member_mask]
        if m_first.size == 0:
            return
        m_seg = seg_of_sub[member_mask]
        sub_ok = (
            self._seg_eq(t.r_minfo[row_rec], subs)
            & self._seg_eq(t.r_msub[row_rec], subs)
            & self._seg_eq(t.r_cs[row_rec], subs)
        )[member_mask]
        m_v = row_vertex[m_first]
        flag[m_v[~sub_ok]] = True
        m_rec = row_rec[m_first]
        m_me = row_me[m_first]
        m_msub = t.r_msub[m_rec]
        nmembers = m_rec.shape[0]
        member_keys = np.sort(m_seg * _SEG_SHIFT + m_msub)

        ch_counts = t.ch_counts[m_rec]
        total_children = int(ch_counts.sum())
        has_parent = np.zeros(nmembers, dtype=bool)
        if total_children:
            ch_parent = np.repeat(
                np.arange(nmembers, dtype=np.int64), ch_counts
            )
            ch_slot = np.repeat(
                t.ch_indptr[m_rec], ch_counts
            ) + _grouped_arange(ch_counts)
            ch_cid = t.ch_cid[ch_slot]
            ch_seg = m_seg[ch_parent]
            child_keys = np.sort(ch_seg * _SEG_SHIFT + ch_cid)
            query = m_seg * _SEG_SHIFT + m_msub
            total = np.searchsorted(
                child_keys, query, side="right"
            ) - np.searchsorted(child_keys, query, side="left")
            self_cnt = np.bincount(
                ch_parent,
                weights=(ch_cid == m_msub[ch_parent]),
                minlength=nmembers,
            )
            has_parent = (total - self_cnt.astype(np.int64)) > 0

            # Out-terminal materialization: a claimed child glued at
            # this vertex must have another member's edges here.
            id_counts = t.ch_ids_counts[ch_slot]
            anchored_claim = np.zeros(total_children, dtype=bool)
            if int(id_counts.sum()):
                id_claim = np.repeat(
                    np.arange(total_children, dtype=np.int64), id_counts
                )
                id_val = t.ch_ids_flat[
                    np.repeat(t.ch_ids_indptr[ch_slot], id_counts)
                    + _grouped_arange(id_counts)
                ]
                claim_me = m_me[ch_parent]
                anchored_claim = (
                    np.bincount(
                        id_claim,
                        weights=(id_val == claim_me[id_claim]),
                        minlength=total_children,
                    )
                    > 0
                )
            claim_query = ch_seg * _SEG_SHIFT + ch_cid
            claim_total = np.searchsorted(
                member_keys, claim_query, side="right"
            ) - np.searchsorted(member_keys, claim_query, side="left")
            claim_self = (m_msub[ch_parent] == ch_cid).astype(np.int64)
            claim_ok = ~anchored_claim | ((claim_total - claim_self) > 0)
            flag[m_v[ch_parent[~claim_ok]]] = True

        # Anchored-member chain rule.
        a_counts = t.min_counts[m_rec]
        anchored_any = np.zeros(nmembers, dtype=bool)
        if int(a_counts.sum()):
            a_parent = np.repeat(
                np.arange(nmembers, dtype=np.int64), a_counts
            )
            a_slot = np.repeat(
                t.min_indptr[m_rec], a_counts
            ) + _grouped_arange(a_counts)
            a_lane = t.min_lane[a_slot]
            a_id = t.min_id[a_slot]
            anchored = a_id == m_me[a_parent]
            seg_info = t.r_info[first_rec]
            a_info = seg_info[m_seg[a_parent]]
            a_code = t.me_code[m_v[a_parent]]
            lane_ok = (a_lane >= 0) & (a_lane < 256) & (a_code >= 0)
            query = (
                ((a_info << 8) | np.where(lane_ok, a_lane, 0)) << 31
            ) | np.where(a_code >= 0, a_code, 0)
            hit = np.zeros(a_parent.shape[0], dtype=bool)
            if t.tin.size:
                lookup = np.minimum(
                    np.searchsorted(t.tin, query), t.tin.size - 1
                )
                hit = lane_ok & (t.tin[lookup] == query)
            ok_anchor = ~anchored | has_parent[a_parent] | hit
            flag[m_v[a_parent[~ok_anchor]]] = True
            anchored_any = (
                np.bincount(a_parent, weights=anchored, minlength=nmembers)
                > 0
            )
        non_anchored = np.bincount(
            m_seg, weights=~anchored_any, minlength=nsegs
        )
        flag[seg_v[is_t & (non_anchored > 1)]] = True


# ----------------------------------------------------------------------
# Scheme profile detection + round caching
# ----------------------------------------------------------------------


def _theorem1_profile(scheme):
    """Return ``(algebra, max_width)`` when ``scheme.verify`` is exactly
    the Theorem 1 edge-labeled verifier; None for anything else."""
    if not isinstance(scheme, CertifyingScheme):
        return None
    if type(scheme).verify is not CertifyingScheme.verify:
        return None
    if getattr(scheme, "label_location", None) != "edges":
        return None
    return scheme.algebra, scheme.max_width


def _round_key(config, scheme, mapping, location):
    return (
        config,
        scheme,
        mapping,
        location,
        config.graph.csr,
        config.graph.labels_version,
    )


def _same_key(held, key) -> bool:
    return (
        held is not None
        and held[0] is key[0]
        and held[1] is key[1]
        and held[2] is key[2]
        and held[3] == key[3]
        and held[4] is key[4]
        and held[5] == key[5]
    )


def _arrays_cache_key(config) -> str:
    """Content key of a configuration's packed :class:`RoundArrays`.

    The packed columns depend only on the graph's CSR and the identifier
    assignment — exactly what ``config_fingerprint`` hashes — so the
    artifact survives process restarts, unlike the identity-based
    ``_round_key`` that guards the held round.
    """
    from repro.api.plan import config_fingerprint

    return f"round-arrays:{config_fingerprint(config)}"


def _cached_round_arrays(cache, config):
    """Look up a persisted pack for ``config``; return ``(arrays, key)``.

    ``arrays`` is ``None`` on any miss, unpickling failure, or shape
    mismatch — the cache is an optimization, never a correctness
    dependency — while ``key`` is always the content key so the caller
    can store a freshly built pack under it.
    """
    key = _arrays_cache_key(config)
    if cache is None:
        return None, key
    entry = cache.get(key)
    if entry is None:
        return None, key
    try:
        arrays, _order = unpack_round_arrays(
            np.asarray(entry.outputs.get("pack"), dtype=np.int64).ravel()
        )
    except Exception:
        return None, key
    if arrays.n != len(config.graph.csr.vertices):
        return None, key
    return arrays, key


def _store_round_arrays(cache, key, arrays, seconds) -> None:
    """Persist one freshly packed round under its content key."""
    if cache is None:
        return
    try:
        pack = pack_round_arrays(arrays)
    except Exception:
        return
    cache.put(key, "round-arrays", {"pack": pack}, seconds)


def _compiled_round_cache_key(config, scheme, digest):
    """Content key of a persisted compiled round, or ``None``.

    The compiled tables depend on the graph (``config_fingerprint``),
    the exact labeling (its wire digest), the verifier profile, and the
    envelope/wire format versions — any of these changing must produce
    a different key, so stale envelopes are simply never looked up.
    Returns ``None`` when the labeling has no digest or the algebra has
    no stable key: identity-keyed state cannot survive a restart.
    """
    if digest is None:
        return None
    algebra_key = getattr(getattr(scheme, "algebra", None), "key", None)
    if algebra_key is None:
        return None
    from repro.api.plan import config_fingerprint

    raw = repr(
        (
            config_fingerprint(config),
            digest,
            algebra_key,
            scheme.max_width,
            COMPILED_ROUND_VERSION,
            WIRE_VERSION,
        )
    )
    token = hashlib.blake2b(raw.encode(), digest_size=16).hexdigest()
    return f"compiled-round:{token}"


def _cached_compiled_state(cache, key):
    """Raw persisted envelope for ``key`` (``None`` on any miss)."""
    if cache is None or key is None:
        return None
    entry = cache.get(key)
    if entry is None:
        return None
    state = entry.outputs.get("state")
    if not isinstance(state, dict):
        return None
    return state


def _attach_compiled_round(cache, key, arrays, algebra, max_width):
    """Restore a persisted compiled round; ``None`` on any mismatch."""
    state = _cached_compiled_state(cache, key)
    if state is None:
        return None
    try:
        return KernelRound.from_state(arrays, state, algebra, max_width)
    except Exception:
        return None


def _store_compiled_round(cache, key, round_) -> None:
    """Persist one freshly compiled round under its content key."""
    if cache is None or key is None:
        return
    began = perf_counter()
    try:
        state = round_.export_state()
        cache.put(
            key, "compiled-round", {"state": state},
            perf_counter() - began,
        )
    except Exception:
        # Export is best-effort: an unvectorizable tail or unpicklable
        # field only loses the cache entry, never the round.
        return


class _LabelingOffer:
    """Digest handoff mixin: the engine offers the labeling it is about
    to verify, and executors key persisted compiled rounds on its wire
    digest (stamped by the encode path).  Identity of the mapping ties
    the offer to the exact ``execute`` call that follows."""

    _offered = None

    def offer_labeling(self, labeling) -> None:
        digest = getattr(labeling, "wire_digest", None)
        mapping = getattr(labeling, "mapping", None)
        if digest is not None and mapping is not None:
            self._offered = (id(mapping), digest)
        else:
            self._offered = None

    def _digest_for(self, mapping):
        offered = self._offered
        if offered is not None and offered[0] == id(mapping):
            return offered[1]
        return None


def _reference_outcome(factory, scheme, order, fail_fast, stats):
    outcome = _run_range(
        factory, scheme, order, 0, len(order), 0, fail_fast
    )
    return [
        _ChunkOutcome(
            index=outcome.index,
            size=outcome.size,
            verdicts=outcome.verdicts,
            exception_vertices=outcome.exception_vertices,
            views_built=outcome.views_built,
            seconds=outcome.seconds,
            rejected=outcome.rejected,
            kernel_stats=stats,
        )
    ]


class VectorizedExecutor(_LabelingOffer, VerificationExecutor):
    """Whole-round numpy kernels with reference fallback.

    Verdict-identical to :class:`~repro.api.runtime.SerialExecutor` on
    every configuration and labeling: kernel-accepted vertices are
    exactly reference-accepts (the kernels only accept when every
    reference check provably passes), and all flagged vertices are
    re-checked through the reference ``LocalView`` path.  Schemes whose
    verifier is not the Theorem 1 profile run entirely on the
    reference path (``kernel_stats["mode"] == "reference"``).

    ``audit=True`` cross-checks every kernel-accepted vertex against
    the reference verifier and raises on divergence — the differential
    test harness runs under it to localize any kernel bug.
    """

    name = "vectorized"

    def __init__(self, audit: bool = False, artifacts=None):
        self.audit = audit or bool(os.environ.get("REPRO_VECTORIZED_AUDIT"))
        #: Optional :class:`~repro.api.artifacts.ArtifactCache` holding
        #: packed :class:`RoundArrays` across rounds *and processes*.
        self.artifacts = artifacts
        self._held_key = None
        self._held_round: Optional[KernelRound] = None
        self._held_arrays_cached = False
        self._held_compiled_cached = False
        self._pending_store = None

    def adopt_artifacts(self, cache) -> None:
        """Accept a session's artifact cache unless one was configured.

        :class:`~repro.api.session.CertificationSession` offers its own
        cache before every round, so a store-backed session makes the
        packed columns persistent without any executor configuration.
        """
        if self.artifacts is None:
            self.artifacts = cache

    def _round_for(self, config, scheme, mapping, location, factory):
        profile = _theorem1_profile(scheme)
        if profile is None:
            return None, "scheme is not the Theorem 1 edge-labeled profile"
        if np is None:
            return None, "numpy unavailable"
        key = _round_key(config, scheme, mapping, location)
        if _same_key(self._held_key, key):
            return self._held_round, None
        began = perf_counter()
        arrays, cache_key = _cached_round_arrays(self.artifacts, config)
        arrays_cached = arrays is not None
        if arrays is None:
            try:
                arrays = factory.round_arrays()
            except (NotVectorizable, RuntimeError) as exc:
                return None, str(exc)
            _store_round_arrays(
                self.artifacts, cache_key, arrays, perf_counter() - began
            )
        algebra, max_width = profile
        compiled_key = _compiled_round_cache_key(
            config, scheme, self._digest_for(mapping)
        )
        round_ = _attach_compiled_round(
            self.artifacts, compiled_key, arrays, algebra, max_width
        )
        self._pending_store = None
        if round_ is None:
            round_ = KernelRound(
                arrays, factory.edge_certificates, algebra, max_width
            )
            self._pending_store = compiled_key
        self._held_key = key
        self._held_round = round_
        self._held_arrays_cached = arrays_cached
        self._held_compiled_cached = round_._attached
        return round_, None

    def execute(self, config, scheme, mapping, location, vertices, fail_fast):
        if not vertices:
            return []
        began = perf_counter()
        factory = ViewFactory(config, mapping, location)
        order = [factory.index_of(v) for v in vertices]
        round_, reason = self._round_for(
            config, scheme, mapping, location, factory
        )
        base_stats = {"engine": self.name}
        if round_ is None:
            base_stats.update({"mode": "reference", "reason": reason})
            return _reference_outcome(
                factory, scheme, order, fail_fast, base_stats
            )
        try:
            accept, stats = round_.run(order)
        except Unvectorizable as exc:
            self._held_key = None
            self._held_round = None
            base_stats.update({"mode": "reference", "reason": exc.reason})
            return _reference_outcome(
                factory, scheme, order, fail_fast, base_stats
            )
        base_stats.update(stats)
        base_stats["mode"] = "kernel"
        base_stats["arrays_cached"] = self._held_arrays_cached
        base_stats["compiled_round_cached"] = self._held_compiled_cached
        if self._pending_store is not None:
            # The round just verified successfully from a fresh compile:
            # persist its compiled form so the next process attaches.
            _store_compiled_round(
                self.artifacts, self._pending_store, round_
            )
            self._pending_store = None
        names = factory.vertices
        verdicts = {}
        flagged = []
        accept_list = accept.tolist()
        for position, dense in enumerate(order):
            if accept_list[position]:
                verdicts[names[dense]] = True
            else:
                flagged.append(dense)
        if self.audit:
            for position, dense in enumerate(order):
                if not accept_list[position]:
                    continue
                try:
                    ok = bool(scheme.verify(factory.view_at(dense)))
                except Exception:
                    ok = False
                if not ok:
                    raise AssertionError(
                        "vectorized kernel accepted vertex "
                        f"{names[dense]!r} that the reference rejects"
                    )
        fallback = _run_range(
            factory, scheme, flagged, 0, len(flagged), 0, fail_fast
        )
        verdicts.update(fallback.verdicts)
        return [
            _ChunkOutcome(
                index=0,
                size=len(order),
                verdicts=verdicts,
                exception_vertices=fallback.exception_vertices,
                views_built=fallback.views_built,
                seconds=perf_counter() - began,
                rejected=fallback.rejected,
                kernel_stats=base_stats,
            )
        ]


register_executor("vectorized", VectorizedExecutor)


# ----------------------------------------------------------------------
# Shared-memory parallel rounds
# ----------------------------------------------------------------------


def _shm_attach(name: str):
    """Attach to a named segment without registering it for cleanup.

    The parent owns the segments' lifecycle (it unlinks on close);
    workers must not let the resource tracker unlink behind its back.
    ``track=`` exists from Python 3.13; older interpreters need the
    unregister dance.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Pre-3.13: attaching registers the segment with the resource
        # tracker, which would unlink it when *any* worker exits and
        # double-unregister across workers.  Suppress registration for
        # the duration of the attach instead.
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip(name_, rtype):
            if rtype != "shared_memory":  # pragma: no cover
                original(name_, rtype)

        resource_tracker.register = _skip
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


#: Worker-resident round: (KernelRound|None, order view, shm handles).
_SHM_ROUND = None


def _shm_init_worker(arrays_name: str, blob_name: str) -> None:
    """Pool initializer: map the arrays segment, load the object blob."""
    global _SHM_ROUND
    arr_shm = _shm_attach(arrays_name)
    blob_shm = _shm_attach(blob_name)
    buf = np.frombuffer(arr_shm.buf, dtype=np.int64)
    arrays, order = unpack_round_arrays(buf)
    size = int.from_bytes(bytes(blob_shm.buf[:8]), "little")
    scheme, edge_labels, state = pickle.loads(
        bytes(blob_shm.buf[8:8 + size])
    )
    profile = _theorem1_profile(scheme)
    round_ = None
    if profile is not None:
        if state is not None:
            # Pre-compiled round shipped by the parent: attach instead
            # of compiling.  Any mismatch degrades to the fallbacks
            # below, never an error.
            try:
                round_ = KernelRound.from_state(
                    arrays, state, profile[0], profile[1]
                )
            except Exception:
                round_ = None
        if round_ is None and edge_labels is not None:
            round_ = KernelRound(arrays, edge_labels, profile[0], profile[1])
    # Keep the shm handles alive: the numpy columns are views into them.
    _SHM_ROUND = (round_, order, arr_shm, blob_shm)


def _shm_verify_range(start: int, stop: int):
    """Worker-side entry point: kernel-verify one shipped-order range."""
    if os.environ.get("REPRO_SHM_CRASH"):
        os._exit(17)  # injected crash for the lifecycle tests
    round_, order, _arr, _blob = _SHM_ROUND
    req = order[start:stop]
    if round_ is None:
        return start, stop, None, {"mode": "reference"}
    try:
        accept, stats = round_.run(req)
    except Unvectorizable as exc:
        return start, stop, None, {"mode": "reference", "reason": exc.reason}
    return start, stop, accept.tobytes(), stats


class SharedMemoryExecutor(_LabelingOffer, VerificationExecutor):
    """Kernel rounds fanned out over ``multiprocessing.shared_memory``.

    The parent packs the round's CSR + identifier + order arrays into
    one named segment and the pickled (verifier, edge-certificate
    column) blob into a second; workers attach by name, rebuild
    zero-copy array views, compile the kernel round once per pool, and
    then receive plain ``(start, stop)`` ranges.  Kernel-flagged
    vertices fall back to the reference ``LocalView`` check *in the
    parent* (which holds the full python round), so verdicts are
    reference-identical exactly as for :class:`VectorizedExecutor`.

    Lifecycle: segments are unlinked by :meth:`close` (also a context
    manager), including after a worker crash — ``BrokenProcessPool``
    tears the pool down, unlinks, and re-runs the round serially in the
    parent.  :meth:`segment_names` exposes the live segment names so
    tests can assert the no-leak property by attach-by-name failure.
    """

    name = "shared-memory"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        artifacts=None,
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        #: Optional :class:`~repro.api.artifacts.ArtifactCache` holding
        #: packed :class:`RoundArrays` across rounds *and processes*.
        self.artifacts = artifacts
        #: Segment publications (= pool creations) over this executor.
        self.payload_ships = 0
        self._pool = None
        self._segments = []
        self._held_key = None
        self._held_order = None

    def adopt_artifacts(self, cache) -> None:
        """Accept a session's artifact cache unless one was configured."""
        if self.artifacts is None:
            self.artifacts = cache

    def segment_names(self) -> list:
        """Names of the currently-published shm segments (tests)."""
        return [shm.name for shm in self._segments]

    def close(self) -> None:
        """Shut the pool down and unlink every published segment."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        for shm in self._segments:
            try:
                shm.close()
            except Exception:
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            except Exception:
                pass
        self._segments = []
        self._held_key = None
        self._held_order = None

    def __enter__(self) -> "SharedMemoryExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _pool_for(
        self, key, order, arrays, scheme, edge_labels, workers, state=None
    ):
        if (
            self._pool is not None
            and _same_key(self._held_key, key)
            and self._held_order == order
        ):
            return self._pool
        self.close()
        from multiprocessing import shared_memory

        packed = pack_round_arrays(arrays, order)
        arr_shm = shared_memory.SharedMemory(
            create=True, size=int(packed.nbytes)
        )
        self._segments.append(arr_shm)
        np.frombuffer(arr_shm.buf, dtype=np.int64)[: packed.shape[0]] = packed
        # With a pre-compiled state the certificate column stays home:
        # workers attach to the shipped tables, and the reference
        # fallback for flagged vertices runs in the parent anyway.
        blob = pickle.dumps(
            (
                scheme.verifier_only(),
                None if state is not None else edge_labels,
                state,
            )
        )
        blob_shm = shared_memory.SharedMemory(
            create=True, size=len(blob) + 8
        )
        self._segments.append(blob_shm)
        blob_shm.buf[:8] = len(blob).to_bytes(8, "little")
        blob_shm.buf[8:8 + len(blob)] = blob
        self.payload_ships += 1
        self._pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_shm_init_worker,
            initargs=(arr_shm.name, blob_shm.name),
        )
        self._held_key = key
        self._held_order = list(order)
        return self._pool

    def execute(self, config, scheme, mapping, location, vertices, fail_fast):
        if not vertices:
            return []
        began = perf_counter()
        factory = ViewFactory(config, mapping, location)
        order = [factory.index_of(v) for v in vertices]
        base_stats = {"engine": self.name}
        profile = _theorem1_profile(scheme)
        if profile is None or np is None:
            base_stats.update(
                {
                    "mode": "reference",
                    "reason": "scheme is not the Theorem 1 edge-labeled "
                    "profile" if np is not None else "numpy unavailable",
                }
            )
            return _reference_outcome(
                factory, scheme, order, fail_fast, base_stats
            )
        began_pack = perf_counter()
        arrays, cache_key = _cached_round_arrays(self.artifacts, config)
        base_stats["arrays_cached"] = arrays is not None
        if arrays is None:
            try:
                arrays = factory.round_arrays()
            except (NotVectorizable, RuntimeError) as exc:
                base_stats.update({"mode": "reference", "reason": str(exc)})
                return _reference_outcome(
                    factory, scheme, order, fail_fast, base_stats
                )
            _store_round_arrays(
                self.artifacts, cache_key, arrays, perf_counter() - began_pack
            )
        workers = self.max_workers or os.cpu_count() or 1
        key = _round_key(config, scheme, mapping, location)
        compiled_key = _compiled_round_cache_key(
            config, scheme, self._digest_for(mapping)
        )
        state = _cached_compiled_state(self.artifacts, compiled_key)
        if state is not None:
            # Validate in the parent before shipping: a corrupt or
            # stale envelope becomes a recompile, never a worker error.
            try:
                KernelRound.from_state(arrays, state, *profile)
            except Exception:
                state = None
        compiled_cached = state is not None
        parent_compile = 0.0
        if (
            state is None
            and compiled_key is not None
            and self.artifacts is not None
        ):
            # Compile once in the parent and ship the tables, so the
            # workers (and every later process) attach instead of each
            # compiling the same round.
            began_compile = perf_counter()
            fresh = KernelRound(
                arrays, factory.edge_certificates, *profile
            )
            _store_compiled_round(self.artifacts, compiled_key, fresh)
            state = _cached_compiled_state(self.artifacts, compiled_key)
            parent_compile = perf_counter() - began_compile
        try:
            pool = self._pool_for(
                key, order, arrays, scheme, factory.edge_certificates,
                workers, state,
            )
        except Exception as exc:
            self.close()
            base_stats.update({"mode": "reference", "reason": str(exc)})
            return _reference_outcome(
                factory, scheme, order, fail_fast, base_stats
            )
        # One range per worker by default: each worker compiles (and
        # finalizes) its kernel tables exactly once, and the per-run
        # fixed numpy overhead is not multiplied across small ranges.
        chunk = self.chunk_size or max(1, -(-len(order) // workers))
        accept = np.zeros(len(order), dtype=bool)
        reference_ranges = []
        merged: dict = {}
        try:
            futures = [
                pool.submit(_shm_verify_range, start, stop)
                for start, stop in _ranges(len(order), chunk)
            ]
            for future in futures:
                start, stop, accept_bytes, stats = future.result()
                if accept_bytes is None:
                    reference_ranges.append((start, stop))
                else:
                    accept[start:stop] = np.frombuffer(
                        accept_bytes, dtype=bool
                    )
                for stat_key, value in stats.items():
                    if isinstance(value, (int, float)) and isinstance(
                        merged.get(stat_key), (int, float)
                    ):
                        merged[stat_key] += value
                    else:
                        merged.setdefault(stat_key, value)
        except BrokenProcessPool:
            # A worker died mid-round (crash injection or OOM): unlink
            # the segments immediately — no leak survives the failure —
            # and recover serially in the parent.
            self.close()
            base_stats.update(
                {"mode": "reference", "reason": "worker pool crashed"}
            )
            return _reference_outcome(
                factory, scheme, order, fail_fast, base_stats
            )
        base_stats.update(merged)
        base_stats["mode"] = "kernel"
        base_stats["ranges"] = len(futures)
        # After the merge: worker booleans would sum as integers.
        base_stats["compiled_round_cached"] = compiled_cached
        if parent_compile:
            base_stats["compile_seconds"] = (
                base_stats.get("compile_seconds", 0.0) + parent_compile
            )
        names = factory.vertices
        verdicts = {}
        flagged = []
        in_reference = np.zeros(len(order), dtype=bool)
        for start, stop in reference_ranges:
            in_reference[start:stop] = True
        accept_list = accept.tolist()
        ref_list = in_reference.tolist()
        for position, dense in enumerate(order):
            if accept_list[position] and not ref_list[position]:
                verdicts[names[dense]] = True
            else:
                flagged.append(dense)
        fallback = _run_range(
            factory, scheme, flagged, 0, len(flagged), 0, fail_fast
        )
        verdicts.update(fallback.verdicts)
        base_stats["fallback_vertices"] = len(flagged)
        return [
            _ChunkOutcome(
                index=0,
                size=len(order),
                verdicts=verdicts,
                exception_vertices=fallback.exception_vertices,
                views_built=fallback.views_built,
                seconds=perf_counter() - began,
                rejected=fallback.rejected,
                kernel_stats=base_stats,
            )
        ]


register_executor("shared-memory", SharedMemoryExecutor)
