"""Plan-based proving: the pipeline as a content-addressed artifact DAG.

The staged pipeline (:mod:`repro.api.pipeline`) runs its stages as a
rigid linear list; this module makes the *dataflow* explicit.  A
:class:`CertificationPlan` is a DAG of :class:`PlanNode` objects — each
wraps one stage and declares which context fields it consumes and
produces — and every produced artifact gets a **content fingerprint**:

    node key = H(plan version, stage name, stage params,
                 keys of the input artifacts)

rooted in the *source* keys (the graph fingerprint, the configuration
fingerprint, the algebra key).  Equal keys mean equal artifacts, so the
:class:`PlanRunner` executes nodes in topological order and simply
*skips* any node whose key is already resolved in an
:class:`~repro.api.artifacts.ArtifactCache` — the paper's structure made
operational: one path decomposition / lane partition / completion /
hierarchy per graph feeds arbitrarily many per-property evaluations
(Bousquet–Feuilloley–Pierron's "certify a property family over one
decomposition"), across properties, sessions, *and processes* when the
cache has a disk layer.

Skipped nodes do not touch the stage counters (counters stay truthful:
they count stages that actually ran) and contribute their originally
recorded wall-clock as ``cached`` :class:`StageTiming` entries, exactly
like the session's old in-memory memoization did.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional

from repro.pls.scheme import ProverFailure

from repro.api.artifacts import PLAN_CACHE_VERSION, ArtifactCache
from repro.api.pipeline import (
    PROPERTY_STAGES,
    DecomposeStage,
    CompletionStage,
    EvaluateStage,
    HierarchyStage,
    LabelStage,
    LaneStage,
    MatchSequenceStage,
    PipelineContext,
)
from repro.api.results import StageTiming

#: Artifact names provided by the caller rather than produced by a node.
PLAN_SOURCES = ("graph", "config", "algebra")


class PlanError(ValueError):
    """Raised on malformed plans (missing producers, duplicate outputs)."""


class PlanNode:
    """One DAG node: a stage plus its declared inputs and outputs.

    The declarations default to the stage's own (:attr:`Stage.inputs` /
    :attr:`Stage.outputs`) and can be overridden per node when a plan
    wires a stage differently from its class-level contract.
    """

    def __init__(self, stage, inputs: Optional[tuple] = None,
                 outputs: Optional[tuple] = None):
        self.stage = stage
        self.name = stage.name
        self.inputs = tuple(inputs if inputs is not None else stage.inputs)
        self.outputs = tuple(outputs if outputs is not None else stage.outputs)
        if not self.outputs:
            raise PlanError(f"plan node {self.name!r} declares no outputs")

    def __repr__(self) -> str:
        return (
            f"PlanNode({self.name!r}, {list(self.inputs)} -> "
            f"{list(self.outputs)})"
        )


@dataclass(frozen=True)
class NodeKey:
    """The resolved content fingerprint of one plan node."""

    key: str
    #: False when the key involves process-local parameters (object
    #: identities); such artifacts stay in the memory cache layer.
    persistable: bool


class CertificationPlan:
    """A validated DAG of plan nodes in topological order.

    The constructor checks the dataflow: every input must be a source
    (:data:`PLAN_SOURCES`) or the output of an earlier node, and no two
    nodes may produce the same artifact.  Nodes are kept in the given
    order, which the check guarantees is topological.
    """

    def __init__(self, nodes):
        self.nodes = [
            node if isinstance(node, PlanNode) else PlanNode(node)
            for node in nodes
        ]
        produced = set(PLAN_SOURCES)
        names = set()
        for node in self.nodes:
            if node.name in names:
                raise PlanError(f"duplicate plan node name {node.name!r}")
            names.add(node.name)
            for name in node.inputs:
                if name not in produced:
                    raise PlanError(
                        f"node {node.name!r} consumes {name!r}, which no "
                        "earlier node produces and is not a plan source"
                    )
            for name in node.outputs:
                if name in produced and name not in PLAN_SOURCES:
                    raise PlanError(
                        f"artifact {name!r} has two producers "
                        f"(second: {node.name!r})"
                    )
                produced.add(name)

    # ------------------------------------------------------------------
    def node_names(self) -> list:
        return [node.name for node in self.nodes]

    def structural_nodes(self) -> list:
        """Nodes whose artifacts depend only on the graph."""
        return [n for n in self.nodes if n.name not in PROPERTY_STAGES]

    def property_nodes(self) -> list:
        """Nodes that must resolve per property (evaluate/label)."""
        return [n for n in self.nodes if n.name in PROPERTY_STAGES]

    # ------------------------------------------------------------------
    def chain_keys(self, source_keys: dict, nodes: Optional[list] = None) -> dict:
        """Chain content fingerprints through (a prefix of) the DAG.

        ``source_keys`` maps artifact names to their keys — plain
        strings (the graph fingerprint for ``"graph"``, ...) or
        :class:`NodeKey` values carried over from an earlier chaining
        pass, which is how the per-property phase continues from the
        structural phase without re-deriving it.  Returns the full
        ``{artifact name: NodeKey}`` map after walking ``nodes``
        (default: every node).  An unpersistable input poisons its
        descendants, so an identity-keyed witness decomposer keeps
        everything it feeds out of the disk layer.
        """
        artifact_keys = {
            name: key if isinstance(key, NodeKey) else NodeKey(str(key), True)
            for name, key in source_keys.items()
        }
        for node in nodes if nodes is not None else self.nodes:
            params, persistable = node.stage.plan_params()
            input_keys = []
            for name in node.inputs:
                upstream = artifact_keys.get(name)
                if upstream is None:
                    raise PlanError(
                        f"no key for input {name!r} of node {node.name!r} "
                        "(missing source key?)"
                    )
                persistable = persistable and upstream.persistable
                input_keys.append(upstream.key)
            blob = repr(
                (PLAN_CACHE_VERSION, node.name, params, tuple(input_keys))
            )
            digest = hashlib.blake2b(blob.encode(), digest_size=20)
            node_key = NodeKey(digest.hexdigest(), persistable)
            for name in node.outputs:
                artifact_keys[name] = node_key
        return artifact_keys

    def resolve_keys(self, source_keys: dict) -> dict:
        """Return ``{node name: NodeKey}`` for the whole plan."""
        artifact_keys = self.chain_keys(source_keys)
        return {
            node.name: artifact_keys[node.outputs[0]] for node in self.nodes
        }


@dataclass
class PlanRun:
    """What one runner pass did: per-node timings, runs, and cache hits."""

    timings: list = field(default_factory=list)  # StageTiming, in order
    executed: list = field(default_factory=list)  # node names actually run
    cache_hits: list = field(default_factory=list)  # node names skipped
    #: node name -> NodeKey for every node this pass considered.
    keys: dict = field(default_factory=dict)

    @property
    def all_cached(self) -> bool:
        return not self.executed and bool(self.cache_hits)


class PlanRunner:
    """Executes plan nodes topologically, skipping resolved ones.

    Parameters
    ----------
    cache:
        The :class:`ArtifactCache` consulted before and written after
        every node (``None``: a throwaway in-memory cache).
    counters:
        Mutable ``{stage name: runs}`` mapping — only *executed* nodes
        increment it, so a warm cache provably runs zero stages.
    """

    def __init__(self, cache: Optional[ArtifactCache] = None,
                 counters: Optional[dict] = None):
        self.cache = cache if cache is not None else ArtifactCache()
        self.counters = counters

    def run(
        self,
        plan: CertificationPlan,
        ctx: PipelineContext,
        source_keys: dict,
        nodes: Optional[list] = None,
        keys: Optional[dict] = None,
    ) -> PlanRun:
        """Resolve ``nodes`` (default: all of ``plan``) against ``ctx``.

        Keys are chained over the *full* plan (pass ``keys`` to reuse a
        previous resolution); execution covers only ``nodes``, which
        callers use to split the structural phase from the per-property
        phase.  A :class:`ProverFailure` raised by a stage propagates
        with the run's timings attached as ``failure.stage_timings``.
        """
        node_list = nodes if nodes is not None else plan.nodes
        if keys is None:
            artifact_keys = plan.chain_keys(source_keys, node_list)
            keys = {
                node.name: artifact_keys[node.outputs[0]]
                for node in node_list
            }
        run = PlanRun(keys=keys)
        for node in node_list:
            node_key = keys[node.name]
            entry = self.cache.get(node_key.key)
            if entry is not None and all(
                name in entry.outputs for name in node.outputs
            ):
                for name in node.outputs:
                    setattr(ctx, name, entry.outputs[name])
                run.cache_hits.append(node.name)
                run.timings.append(
                    StageTiming(node.name, entry.seconds, cached=True)
                )
                continue
            start = perf_counter()
            try:
                node.stage.run(ctx)
            except ProverFailure as failure:
                # Refusals count as runs (same contract as the linear
                # pipeline): the attempt happened and must be observable.
                timing = StageTiming(node.name, perf_counter() - start)
                run.timings.append(timing)
                ctx.timings.append(timing)
                run.executed.append(node.name)
                self._bump(node.name)
                failure.stage_timings = tuple(run.timings)
                raise
            seconds = perf_counter() - start
            timing = StageTiming(node.name, seconds)
            run.timings.append(timing)
            ctx.timings.append(timing)
            run.executed.append(node.name)
            self._bump(node.name)
            self.cache.put(
                node_key.key,
                node.name,
                {name: getattr(ctx, name) for name in node.outputs},
                seconds,
                persist=node_key.persistable,
            )
        return run

    def _bump(self, name: str) -> None:
        if self.counters is not None:
            self.counters[name] = self.counters.get(name, 0) + 1


# ----------------------------------------------------------------------
# The two proving modes as plans.
# ----------------------------------------------------------------------
def theorem1_plan(
    k: int,
    algebra=None,
    decomposer=None,
    exact_limit: Optional[int] = None,
    exact_engine: Optional[str] = None,
    exact_budget_ms: Optional[float] = None,
) -> CertificationPlan:
    """The full Theorem 1 stage DAG for pathwidth-bounded certification."""
    return CertificationPlan(
        [
            DecomposeStage(
                k,
                decomposer=decomposer,
                exact_limit=exact_limit,
                exact_engine=exact_engine,
                exact_budget_ms=exact_budget_ms,
            ),
            LaneStage(),
            CompletionStage(),
            HierarchyStage(),
            EvaluateStage(algebra),
            LabelStage(),
        ]
    )


def lanewidth_plan(
    sequence,
    algebra=None,
    match_stage: Optional[MatchSequenceStage] = None,
) -> CertificationPlan:
    """The native-lanewidth stage DAG (no Section 4 front end)."""
    return CertificationPlan(
        [
            match_stage or MatchSequenceStage(sequence),
            HierarchyStage(),
            EvaluateStage(algebra),
            LabelStage(),
        ]
    )


def config_fingerprint(config) -> str:
    """Content key of a configuration: graph fingerprint + identifiers.

    Labelings embed vertex identifiers, so per-property label artifacts
    must key on the ids as well as the graph; two configurations over
    the same graph with different identifier draws get distinct keys.
    """
    digest = hashlib.blake2b(digest_size=16)
    # Certification identity ("edges"): vertex labels never reach any
    # stage, so label artifacts stay valid across vertex relabelings.
    digest.update(config.graph.fingerprint("edges").encode())
    digest.update(b"\x00")
    for vertex, identifier in sorted(config.ids.items(), key=repr):
        digest.update(repr((vertex, identifier)).encode())
        digest.update(b"\x00")
    return digest.hexdigest()


def algebra_source_key(algebra):
    """Return ``(key, persistable)`` naming an algebra for the plan.

    Registry algebras carry a stable ``key`` (e.g. ``"colorable-3"``)
    that names their semantics; custom instances without one are keyed
    by identity and keep their artifacts memory-only.
    """
    key = getattr(algebra, "key", None)
    if key and key != "abstract":
        return key, True
    return f"algebra-object-{id(algebra)}", False
