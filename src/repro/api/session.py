"""Certification sessions: a thin view over the artifact cache.

A :class:`CertificationSession` certifies property batches through the
plan layer (:mod:`repro.api.plan`): every prover stage is a DAG node
whose artifacts carry content fingerprints, and the session simply runs
the plan against an :class:`~repro.api.artifacts.ArtifactCache`.  The
cache *is* the memoization — the session no longer keeps a private memo
dict:

* within a session, the cache's memory layer replays the old behavior
  (structural stages run once per graph, observable through the
  cumulative ``stage_counters``);
* with a disk layer (automatic when the session carries a
  :class:`~repro.api.store.CertificateStore`, whose
  ``artifact_cache()`` lives next to the certificates), a **fresh
  process** certifying a previously seen graph resolves every
  structural node from disk and runs zero structural stages — and
  per-property evaluations resolve too, leaving only work keyed to the
  new configuration's identifiers.

Batches can additionally fan the independent per-property evaluate/label
nodes out to a pool-resident :class:`~repro.api.prover.ParallelProver`
(``CertificationSession(prover=...)``), the prover-side sibling of the
verification round's ``ParallelExecutor``.

Every successful labeling is wire-encoded (:mod:`repro.codec`), so the
report's ``max/mean/total_label_bits`` are measured byte-string sizes;
the encoded form rides along with the labeling artifact, and — when the
session carries a store — is persisted for later re-verification with
zero prover stages.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Optional

from repro.codec import encode_labeling_columnar, stamp_wire_digest
from repro.core.lanewidth import ConstructionSequence, apply_construction
from repro.courcelle.algebra import BoundedAlgebra
from repro.courcelle.registry import resolve_algebra
from repro.pls.bits import SizeContext
from repro.pls.model import Configuration
from repro.pls.scheme import Labeling, ProverFailure

from repro.api.artifacts import ArtifactCache
from repro.api.pipeline import (
    MatchSequenceStage,
    PipelineContext,
    PipelineScheme,
    lanewidth_stages,
    theorem1_stages,
)
from repro.api.plan import (
    CertificationPlan,
    NodeKey,
    PlanRunner,
    algebra_source_key,
    config_fingerprint,
    lanewidth_plan,
    theorem1_plan,
)
from repro.api.results import CertificationReport, StageTiming
from repro.api.runtime import VerificationEngine, VerificationReport


@dataclass
class _Structure:
    """One resolved structural phase: the context plus its plan wiring."""

    ctx: PipelineContext  # after the structural nodes only
    plan: CertificationPlan
    #: artifact name -> NodeKey after the structural resolution; the
    #: per-property key chains continue from here.
    artifact_keys: dict
    timings: tuple  # structural StageTiming (per-node cached flags)
    all_cached: bool  # every structural node came from the cache
    sequence: Optional[ConstructionSequence]  # lanewidth mode marker
    match_stage: Optional[MatchSequenceStage] = None


class CertificationSession:
    """Batch/caching front end over the plan-based prover.

        session = CertificationSession(k=2)
        reports = session.certify(graph, ["connected", "acyclic"])
        session.stage_counters      # {'decompose': 1, ..., 'evaluate': 2}
        session.verify(reports["connected"])   # replay the round

    Parameters
    ----------
    k:
        Pathwidth bound used when certifying :class:`Graph` /
        :class:`Configuration` targets (Theorem 1 mode).  Sequence
        targets carry their own width and ignore ``k``.
    decomposer, exact_limit, exact_engine, exact_budget_ms:
        Forwarded to :class:`repro.api.pipeline.DecomposeStage` —
        ``exact_engine`` picks ``"bnb"`` (branch-and-bound, default) or
        ``"dp"`` (legacy subset DP), ``exact_budget_ms`` authorizes a
        budgeted exact attempt above ``exact_limit``.
    rng:
        Source of vertex identifiers for bare-graph targets.
    engine:
        The :class:`~repro.api.runtime.VerificationEngine` used for the
        verification round (``None``: a serial engine).
    store:
        Optional :class:`~repro.api.store.CertificateStore`; every
        successful (non-refused) report is persisted to it in wire form
        as part of :meth:`certify`, and — unless ``artifacts`` is given
        explicitly — the store's ``artifact_cache()`` becomes the
        session's cache, making structural artifacts persistent too.
    artifacts:
        Optional :class:`~repro.api.artifacts.ArtifactCache` override
        (``None``: derived from the store, else a fresh in-memory cache).
    prover:
        Optional :class:`~repro.api.prover.ParallelProver`; property
        batches with more than one uncached property dispatch their
        evaluate/label nodes through it.
    """

    def __init__(
        self,
        k: Optional[int] = None,
        decomposer: Optional[Callable] = None,
        exact_limit: Optional[int] = None,
        rng: Optional[random.Random] = None,
        engine: Optional[VerificationEngine] = None,
        store=None,
        artifacts: Optional[ArtifactCache] = None,
        prover=None,
        exact_engine: Optional[str] = None,
        exact_budget_ms: Optional[float] = None,
    ):
        self.k = k
        self.decomposer = decomposer
        self.exact_limit = exact_limit
        self.exact_engine = exact_engine
        self.exact_budget_ms = exact_budget_ms
        self.rng = rng or random.Random()
        self.engine = engine
        self.store = store
        self.prover = prover
        # Lazy fallback kept apart from ``engine``: the facade adopts
        # explicit arguments onto unset session fields, and a cached
        # default must not masquerade as user configuration there.
        self._default_engine: Optional[VerificationEngine] = None
        # Likewise lazy: a store adopted by the facade after
        # construction must still contribute its artifact directory.
        # ``_artifacts_lazy`` records that the cache was derived (not
        # user-supplied), so adoption can re-derive it.
        self._artifacts = artifacts
        self._artifacts_lazy = False
        #: Cumulative {stage name: times run} over the session's lifetime.
        self.stage_counters: dict = {}
        #: Mode keys whose structural phase completed (cache-hit or run).
        self._structure_keys: set = set()
        #: Mode key -> the memoized lanewidth matcher (shared by report
        #: schemes so replays compare fingerprints, not rebuilt graphs).
        self._match_stages: dict = {}
        # Sequence targets are identity-cached (dataclasses are unhashable);
        # holding the sequence keeps id() stable.
        self._sequence_keys: dict = {}  # id(seq) -> (seq, fingerprint, graph)

    # ------------------------------------------------------------------
    @property
    def artifacts(self) -> ArtifactCache:
        """The session's artifact cache (derived from the store lazily)."""
        if self._artifacts is None:
            factory = getattr(self.store, "artifact_cache", None)
            self._artifacts = (
                factory() if callable(factory) else ArtifactCache()
            )
            self._artifacts_lazy = True
        return self._artifacts

    def adopt_store(self, store) -> None:
        """Attach ``store`` (facade adoption path).

        A lazily derived, store-less artifact cache is re-derived so the
        adopted store's persistent artifact directory takes effect — an
        explicitly supplied cache is never replaced.
        """
        self.store = store
        if (
            self._artifacts_lazy
            and self._artifacts is not None
            and self._artifacts.root is None
        ):
            self._artifacts = None
            self._artifacts_lazy = False

    @property
    def cached_graphs(self) -> int:
        """Number of distinct (graph, mode) structures resolved so far."""
        return len(self._structure_keys)

    def certify(
        self,
        target,
        properties,
        rng: Optional[random.Random] = None,
        verify: bool = True,
    ):
        """Prove one or many properties against one target.

        ``target`` is a :class:`ConstructionSequence` (native lanewidth
        mode), a :class:`Configuration`, or a bare :class:`Graph` (random
        identifiers are attached).  ``properties`` is a registry key, an
        algebra instance, or a list of either.

        ``verify=False`` skips the verification round (completeness
        guarantees honest acceptance, so provers that only need labels —
        e.g. audit case factories — save the dominant cost); run it
        later with :meth:`verify`.

        Returns one :class:`CertificationReport` for a single property,
        or ``{key: report}`` for a list.  Prover refusals are reported
        (``report.refused``), not raised — a false property must not
        abort the rest of the batch.

        Successful labelings are wire-encoded (:mod:`repro.codec`): the
        report's size figures are measured encoding lengths, the
        encoded form is attached as ``report.encoded``, and — when the
        session carries a store — persisted for later re-verification.
        """
        single = isinstance(properties, (str, BoundedAlgebra))
        try:
            keys = [properties] if single else list(properties)
        except TypeError:
            raise TypeError(
                "properties must be a registry key, an algebra, or a list "
                f"of them (got {type(properties).__name__})"
            ) from None
        if not keys:
            raise ValueError("need at least one property to certify")
        # Resolve every algebra up front: a typo'd key must fail fast,
        # not midway through a batch with half the properties proven.
        # Report keys are deduplicated (#2, #3, ...) so two algebra
        # instances of the same class never collapse into one report.
        resolved = []
        seen_keys: dict = {}
        for prop in keys:
            key = self._key_of(prop)
            seen_keys[key] = seen_keys.get(key, 0) + 1
            if seen_keys[key] > 1:
                key = f"{key}#{seen_keys[key]}"
            resolved.append((key, prop, resolve_algebra(prop)))

        config, sequence, fingerprint = self._normalize(target, rng)
        try:
            structure = self._structure_for(config, sequence, fingerprint)
        except ProverFailure as failure:
            timings = getattr(failure, "stage_timings", ())
            reports = {
                key: self._refused_report(key, config, failure, timings)
                for key, _prop, _algebra in resolved
            }
        else:
            reports = self._certify_batch(structure, config, resolved, verify)
        return next(iter(reports.values())) if single else reports

    def verify(
        self,
        report: CertificationReport,
        engine: Optional[VerificationEngine] = None,
    ) -> VerificationReport:
        """(Re)run the verification round for a certified report.

        Uses ``engine`` (default: the session's) against the report's
        own artifacts, attaches the structured outcome to the report
        (``verification``/``result``/``accepted``), and returns it.
        """
        if report.refused:
            raise ValueError("cannot verify a refused report (no labeling)")
        if report.scheme is None or report.labeling is None:
            raise ValueError(
                "report carries no artifacts to verify (was it rebuilt "
                "from JSON?)"
            )
        engine = engine or self._engine()
        self._offer_artifacts(engine)
        verification = engine.verify(
            report.config, report.scheme, report.labeling
        )
        report.verification = verification
        report.result = verification.as_result()
        report.accepted = verification.accepted
        return verification

    def _engine(self) -> VerificationEngine:
        if self.engine is not None:
            return self.engine
        if self._default_engine is None:
            self._default_engine = VerificationEngine()
        return self._default_engine

    def _offer_artifacts(self, engine) -> None:
        """Lend the session's artifact cache to cache-aware executors.

        Executors that persist packed round state (``vectorized``,
        ``shared-memory``) expose ``adopt_artifacts``; everything else
        is left alone.  Duck-typed so custom engines/executors need no
        base-class change.
        """
        adopt = getattr(
            getattr(engine, "executor", None), "adopt_artifacts", None
        )
        if adopt is not None:
            adopt(self.artifacts)

    # ------------------------------------------------------------------
    def _key_of(self, prop) -> str:
        if isinstance(prop, str):
            return prop
        # Every algebra carries its registry-style key (e.g.
        # 'max-degree-2'), which distinguishes parametric instances of
        # the same class; the class name is only a last resort.
        return getattr(prop, "key", None) or type(prop).__name__

    def _normalize(self, target, rng):
        """Return ``(config, sequence_or_None, fingerprint)``."""
        rng = rng or self.rng
        if isinstance(target, ConstructionSequence):
            cached = self._sequence_keys.get(id(target))
            if cached is None:
                graph = apply_construction(target)
                cached = (target, graph.fingerprint("edges"), graph)
                self._sequence_keys[id(target)] = cached
            _seq, fingerprint, graph = cached
            return (
                Configuration.with_random_ids(graph, rng),
                target,
                fingerprint,
            )
        # Plan artifacts key on the certification identity — vertices,
        # edges, and edge labels (tags reach the certificates through
        # the construction sequence), but *not* vertex labels, which no
        # pipeline stage reads.  Vertex-relabeling therefore reuses the
        # whole chain; the store keeps its own label-inclusive identity.
        if isinstance(target, Configuration):
            return target, None, target.graph.fingerprint("edges")
        # Bare graph.
        return (
            Configuration.with_random_ids(target, rng),
            None,
            target.fingerprint("edges"),
        )

    def _plan_for(self, sequence, mode_key):
        if sequence is not None:
            match_stage = self._match_stages.get(mode_key)
            if match_stage is None:
                match_stage = MatchSequenceStage(sequence)
                self._match_stages[mode_key] = match_stage
            return lanewidth_plan(sequence, match_stage=match_stage)
        if self.k is None:
            raise ValueError(
                "CertificationSession needs a pathwidth bound k to certify "
                "graph targets (sequence targets carry their own width)"
            )
        return theorem1_plan(
            self.k,
            decomposer=self.decomposer,
            exact_limit=self.exact_limit,
            exact_engine=self.exact_engine,
            exact_budget_ms=self.exact_budget_ms,
        )

    def _structure_for(self, config, sequence, fingerprint) -> _Structure:
        """Resolve the structural phase, running only unresolved nodes.

        The mode is part of the key chain by construction: the same
        graph reached as a sequence target (lanewidth mode, matcher
        node) and as a bare-graph target (Theorem 1 mode, decompose node
        checking the width bound) resolves through different node names
        and parameters, so neither can satisfy the other.
        """
        if sequence is not None:
            mode_key = ("lanewidth", fingerprint)
        else:
            mode_key = (
                "theorem1",
                self.k,
                self.decomposer,
                self.exact_limit,
                self.exact_engine,
                self.exact_budget_ms,
                fingerprint,
            )
        plan = self._plan_for(sequence, mode_key)
        ctx = PipelineContext(config=config)
        source_keys = {
            "graph": fingerprint,
            "config": config_fingerprint(config),
        }
        structural = plan.structural_nodes()
        artifact_keys = plan.chain_keys(source_keys, structural)
        keys = {node.name: artifact_keys[node.outputs[0]] for node in structural}
        runner = PlanRunner(self.artifacts, self.stage_counters)
        run = runner.run(plan, ctx, source_keys, nodes=structural, keys=keys)
        self._structure_keys.add(mode_key)
        return _Structure(
            ctx=ctx,
            plan=plan,
            artifact_keys=artifact_keys,
            timings=tuple(run.timings),
            all_cached=run.all_cached,
            sequence=sequence,
            match_stage=self._match_stages.get(mode_key),
        )

    def _scheme_for(self, structure, algebra):
        """A verifier-half scheme whose ``prove`` replays the full pipeline."""
        if structure.sequence is not None:
            stages = lanewidth_stages(
                structure.sequence,
                algebra=algebra,
                match_stage=structure.match_stage,
            )
        else:
            stages = theorem1_stages(
                self.k,
                algebra=algebra,
                decomposer=self.decomposer,
                exact_limit=self.exact_limit,
                exact_engine=self.exact_engine,
                exact_budget_ms=self.exact_budget_ms,
            )
        return PipelineScheme(algebra, structure.ctx.max_width, stages)

    # ------------------------------------------------------------------
    def _property_keys(self, structure, algebra) -> dict:
        """Resolve the per-property node keys for one algebra."""
        source_key, persistable = algebra_source_key(algebra)
        artifact_keys = dict(structure.artifact_keys)
        artifact_keys["algebra"] = NodeKey(source_key, persistable)
        nodes = structure.plan.property_nodes()
        chained = structure.plan.chain_keys(artifact_keys, nodes)
        return {node.name: chained[node.outputs[0]] for node in nodes}

    def _certify_batch(self, structure, config, resolved, verify) -> dict:
        reports: dict = {}
        pending = []  # (key, algebra, prop_keys) to dispatch in parallel
        if self.prover is not None:
            for key, _prop, algebra in resolved:
                prop_keys = self._property_keys(structure, algebra)
                if prop_keys["evaluate"].key in self.artifacts:
                    # The expensive half is already resolved; the plan
                    # runner serves the hit (and reruns only the cheap
                    # id-keyed label node when that one missed).
                    reports[key] = self._certify_one(
                        structure, config, key, algebra, verify, prop_keys
                    )
                else:
                    pending.append((key, algebra, prop_keys))
            if len(pending) == 1:
                key, algebra, prop_keys = pending[0]
                reports[key] = self._certify_one(
                    structure, config, key, algebra, verify, prop_keys
                )
            elif pending:
                reports.update(
                    self._certify_parallel(structure, config, pending, verify)
                )
            # Preserve input order for callers iterating the dict.
            return {key: reports[key] for key, _p, _a in resolved}
        for key, _prop, algebra in resolved:
            reports[key] = self._certify_one(
                structure, config, key, algebra, verify
            )
        return reports

    def _structure_timings(self, structure) -> tuple:
        return structure.timings

    def _certify_one(
        self, structure, config, key, algebra, verify=True, prop_keys=None
    ):
        if prop_keys is None:
            prop_keys = self._property_keys(structure, algebra)
        ctx = structure.ctx.structural_copy(config=config, algebra=algebra)
        runner = PlanRunner(self.artifacts, self.stage_counters)
        try:
            run = runner.run(
                structure.plan,
                ctx,
                None,
                nodes=structure.plan.property_nodes(),
                keys=prop_keys,
            )
        except ProverFailure as failure:
            report = self._refused_report(key, config, failure)
            report.max_width = ctx.max_width
            report.lane_count = len(ctx.root.lanes)
            report.hierarchy_depth = ctx.hierarchy_depth
            report.stage_timings = self._structure_timings(structure) + tuple(
                getattr(failure, "stage_timings", ())
            )
            report.structure_cached = structure.all_cached
            report.stage_counters = dict(self.stage_counters)
            return report

        # The wire encoding is the ground truth for every size figure;
        # it rides along with the labeling artifact so warm-cache runs
        # skip re-encoding too.
        encoded = None
        encode_seconds = 0.0
        label_key = prop_keys["label"].key
        if "label" in run.cache_hits:
            entry = self.artifacts.get(label_key)
            if entry is not None:
                encoded = entry.outputs.get("encoded")
        if encoded is None:
            began = perf_counter()
            encoded = encode_labeling_columnar(ctx.labeling)
            encode_seconds = perf_counter() - began
            self.artifacts.annotate(label_key, "encoded", encoded)
        return self._finish_report(
            structure,
            config,
            key,
            algebra,
            ctx.labeling,
            ctx.class_count,
            encoded,
            self._structure_timings(structure) + tuple(run.timings),
            verify,
            ctx=ctx,
            encode_seconds=encode_seconds,
        )

    def _certify_parallel(self, structure, config, pending, verify) -> dict:
        """Dispatch uncached properties through the pool-resident prover."""
        ctx = structure.ctx
        outcomes = self.prover.prove_batch(
            config,
            ctx.root,
            ctx.embedding,
            [algebra for _key, algebra, _pk in pending],
        )
        reports = {}
        for (key, algebra, prop_keys), outcome in zip(pending, outcomes):
            evaluate_timing = StageTiming("evaluate", outcome.evaluate_seconds)
            self.stage_counters["evaluate"] = (
                self.stage_counters.get("evaluate", 0) + 1
            )
            if outcome.refused:
                failure = ProverFailure(outcome.refusal)
                report = self._refused_report(
                    key, config, failure, (evaluate_timing,)
                )
                report.max_width = ctx.max_width
                report.lane_count = len(ctx.root.lanes)
                report.hierarchy_depth = ctx.hierarchy_depth
                report.stage_timings = (
                    self._structure_timings(structure) + (evaluate_timing,)
                )
                report.structure_cached = structure.all_cached
                report.stage_counters = dict(self.stage_counters)
                reports[key] = report
                continue
            label_timing = StageTiming("label", outcome.label_seconds)
            self.stage_counters["label"] = (
                self.stage_counters.get("label", 0) + 1
            )
            # Feed the cache exactly as the plan runner would have.
            evaluate_key = prop_keys["evaluate"]
            self.artifacts.put(
                evaluate_key.key,
                "evaluate",
                {"evaluation": outcome.evaluation},
                outcome.evaluate_seconds,
                persist=evaluate_key.persistable,
            )
            labeling = Labeling(
                "edges",
                outcome.mapping,
                SizeContext(config.n, class_count=outcome.class_count),
            )
            label_key = prop_keys["label"]
            self.artifacts.put(
                label_key.key,
                "label",
                {"class_count": outcome.class_count, "labeling": labeling},
                outcome.label_seconds,
                persist=label_key.persistable,
            )
            began = perf_counter()
            encoded = encode_labeling_columnar(labeling)
            encode_seconds = perf_counter() - began
            self.artifacts.annotate(label_key.key, "encoded", encoded)
            reports[key] = self._finish_report(
                structure,
                config,
                key,
                algebra,
                labeling,
                outcome.class_count,
                encoded,
                self._structure_timings(structure)
                + (evaluate_timing, label_timing),
                verify,
                encode_seconds=encode_seconds,
            )
        return reports

    def _finish_report(
        self,
        structure,
        config,
        key,
        algebra,
        labeling,
        class_count,
        encoded,
        stage_timings,
        verify,
        ctx=None,
        encode_seconds: float = 0.0,
    ) -> CertificationReport:
        root = structure.ctx.root
        scheme = self._scheme_for(structure, algebra)
        # Tie the wire identity to the labeling object *before* the
        # verification round: executors that persist compiled rounds
        # key their envelopes on this digest.
        stamp_wire_digest(labeling, encoded)
        if verify:
            engine = self._engine()
            self._offer_artifacts(engine)
            verification = engine.verify(config, scheme, labeling)
            result = verification.as_result()
            accepted = verification.accepted
        else:
            # Completeness (Theorem 1): the honest prover's labeling is
            # accepted by construction; the round can be replayed later
            # with session.verify(report).
            verification = None
            result = None
            accepted = True
        report = CertificationReport(
            property_key=key,
            accepted=accepted,
            n=config.graph.n,
            m=config.graph.m,
            max_width=structure.ctx.max_width,
            lane_count=len(root.lanes),
            hierarchy_depth=structure.ctx.hierarchy_depth,
            class_count=class_count,
            max_label_bits=encoded.max_bits,
            mean_label_bits=encoded.mean_bits,
            total_label_bits=encoded.total_bits,
            accounted_max_label_bits=labeling.max_label_bits(scheme),
            accounted_mean_label_bits=labeling.mean_label_bits(scheme),
            accounted_total_label_bits=labeling.total_label_bits(scheme),
            stage_timings=tuple(stage_timings),
            stage_counters=dict(self.stage_counters),
            structure_cached=structure.all_cached,
            decomposition_stats=structure.ctx.decomposition_stats,
            encode_seconds=encode_seconds,
            compile_seconds=(
                (verification.kernel_stats or {}).get("compile_seconds", 0.0)
                if verification is not None
                else 0.0
            ),
            compiled_round_cached=bool(
                (verification.kernel_stats or {}).get(
                    "compiled_round_cached", False
                )
                if verification is not None
                else False
            ),
            verification=verification,
            config=config,
            scheme=scheme,
            labeling=labeling,
            result=result,
            encoded=encoded,
        )
        if self.store is not None:
            self.store.save(report)
        return report

    def _refused_report(
        self, key: str, config, failure, stage_timings: tuple = ()
    ) -> CertificationReport:
        return CertificationReport(
            property_key=key,
            accepted=False,
            refused=True,
            refusal=str(failure),
            n=config.graph.n,
            m=config.graph.m,
            stage_timings=tuple(stage_timings),
            stage_counters=dict(self.stage_counters),
            config=config,
        )
