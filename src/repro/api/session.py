"""Certification sessions: structural-artifact caching + batch proving.

A :class:`CertificationSession` memoizes the graph-level structural
artifacts (path decomposition, lane partition, completion, hierarchy)
keyed by graph fingerprint, so certifying several MSO₂ properties on the
same graph — or re-certifying a graph seen earlier in the session — only
reruns the per-property stages (:class:`EvaluateStage` /
:class:`LabelStage`).  The session's cumulative ``stage_counters`` make
the reuse observable: tests assert that ``decompose``/``lanes``/
``hierarchy`` ran exactly once across a multi-property batch.

Every successful labeling is additionally *encoded* through the wire
codec (:mod:`repro.codec`), so the report's ``max/mean/total_label_bits``
are measured byte-string sizes; when the session carries a
:class:`~repro.api.store.CertificateStore`, the encoded form is
persisted automatically and can be re-verified later — in this process
or another — without any prover stage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.codec import encode_labeling
from repro.core.lanewidth import ConstructionSequence, apply_construction
from repro.courcelle.algebra import BoundedAlgebra
from repro.courcelle.registry import resolve_algebra
from repro.pls.model import Configuration
from repro.pls.scheme import ProverFailure

from repro.api.pipeline import (
    CertificationPipeline,
    EvaluateStage,
    HierarchyStage,
    LabelStage,
    MatchSequenceStage,
    PipelineContext,
    PipelineScheme,
    lanewidth_stages,
    theorem1_stages,
)
from repro.api.results import CertificationReport, StageTiming
from repro.api.runtime import VerificationEngine, VerificationReport


@dataclass
class _Structure:
    """Memoized structural artifacts for one graph fingerprint."""

    ctx: PipelineContext  # after the structural stages only
    timings: tuple  # what the structural stages originally cost
    sequence: Optional[ConstructionSequence]  # lanewidth mode marker
    #: The matcher that already computed the expected-graph fingerprint;
    #: reused by report schemes so replays don't rebuild the graph.
    match_stage: Optional[MatchSequenceStage] = None


class CertificationSession:
    """Batch/caching front end over the staged pipeline.

        session = CertificationSession(k=2)
        reports = session.certify(graph, ["connected", "acyclic"])
        session.stage_counters      # {'decompose': 1, ..., 'evaluate': 2}
        session.verify(reports["connected"])   # replay the round

    Parameters
    ----------
    k:
        Pathwidth bound used when certifying :class:`Graph` /
        :class:`Configuration` targets (Theorem 1 mode).  Sequence
        targets carry their own width and ignore ``k``.
    decomposer, exact_limit:
        Forwarded to :class:`repro.api.pipeline.DecomposeStage`.
    rng:
        Source of vertex identifiers for bare-graph targets.
    engine:
        The :class:`~repro.api.runtime.VerificationEngine` used for the
        verification round (``None``: a serial engine).
    store:
        Optional :class:`~repro.api.store.CertificateStore`; every
        successful (non-refused) report is persisted to it in wire form
        as part of :meth:`certify`.
    """

    def __init__(
        self,
        k: Optional[int] = None,
        decomposer: Optional[Callable] = None,
        exact_limit: Optional[int] = None,
        rng: Optional[random.Random] = None,
        engine: Optional[VerificationEngine] = None,
        store=None,
    ):
        self.k = k
        self.decomposer = decomposer
        self.exact_limit = exact_limit
        self.rng = rng or random.Random()
        self.engine = engine
        self.store = store
        # Lazy fallback kept apart from ``engine``: the facade adopts
        # explicit arguments onto unset session fields, and a cached
        # default must not masquerade as user configuration there.
        self._default_engine: Optional[VerificationEngine] = None
        #: Cumulative {stage name: times run} over the session's lifetime.
        self.stage_counters: dict = {}
        self._structures: dict = {}  # fingerprint -> _Structure
        # Sequence targets are identity-cached (dataclasses are unhashable);
        # holding the sequence keeps id() stable.
        self._sequence_keys: dict = {}  # id(seq) -> (seq, fingerprint, graph)

    # ------------------------------------------------------------------
    @property
    def cached_graphs(self) -> int:
        """Number of distinct graphs with memoized structure."""
        return len(self._structures)

    def certify(
        self,
        target,
        properties,
        rng: Optional[random.Random] = None,
        verify: bool = True,
    ):
        """Prove one or many properties against one target.

        ``target`` is a :class:`ConstructionSequence` (native lanewidth
        mode), a :class:`Configuration`, or a bare :class:`Graph` (random
        identifiers are attached).  ``properties`` is a registry key, an
        algebra instance, or a list of either.

        ``verify=False`` skips the verification round (completeness
        guarantees honest acceptance, so provers that only need labels —
        e.g. audit case factories — save the dominant cost); run it
        later with :meth:`verify`.

        Returns one :class:`CertificationReport` for a single property,
        or ``{key: report}`` for a list.  Prover refusals are reported
        (``report.refused``), not raised — a false property must not
        abort the rest of the batch.

        Successful labelings are wire-encoded (:mod:`repro.codec`): the
        report's size figures are measured encoding lengths, the
        encoded form is attached as ``report.encoded``, and — when the
        session carries a store — persisted for later re-verification.
        """
        single = isinstance(properties, (str, BoundedAlgebra))
        try:
            keys = [properties] if single else list(properties)
        except TypeError:
            raise TypeError(
                "properties must be a registry key, an algebra, or a list "
                f"of them (got {type(properties).__name__})"
            ) from None
        if not keys:
            raise ValueError("need at least one property to certify")
        # Resolve every algebra up front: a typo'd key must fail fast,
        # not midway through a batch with half the properties proven.
        # Report keys are deduplicated (#2, #3, ...) so two algebra
        # instances of the same class never collapse into one report.
        resolved = []
        seen_keys: dict = {}
        for prop in keys:
            key = self._key_of(prop)
            seen_keys[key] = seen_keys.get(key, 0) + 1
            if seen_keys[key] > 1:
                key = f"{key}#{seen_keys[key]}"
            resolved.append((key, prop, resolve_algebra(prop)))

        config, sequence, fingerprint = self._normalize(target, rng)
        try:
            structure, cache_hit = self._structure_for(
                config, sequence, fingerprint
            )
        except ProverFailure as failure:
            timings = getattr(failure, "stage_timings", ())
            reports = {
                key: self._refused_report(key, config, failure, timings)
                for key, _prop, _algebra in resolved
            }
        else:
            reports = {}
            for key, _prop, algebra in resolved:
                reports[key] = self._certify_one(
                    structure, config, key, algebra, cache_hit, verify
                )
        return next(iter(reports.values())) if single else reports

    def verify(
        self,
        report: CertificationReport,
        engine: Optional[VerificationEngine] = None,
    ) -> VerificationReport:
        """(Re)run the verification round for a certified report.

        Uses ``engine`` (default: the session's) against the report's
        own artifacts, attaches the structured outcome to the report
        (``verification``/``result``/``accepted``), and returns it.
        """
        if report.refused:
            raise ValueError("cannot verify a refused report (no labeling)")
        if report.scheme is None or report.labeling is None:
            raise ValueError(
                "report carries no artifacts to verify (was it rebuilt "
                "from JSON?)"
            )
        engine = engine or self._engine()
        verification = engine.verify(
            report.config, report.scheme, report.labeling
        )
        report.verification = verification
        report.result = verification.as_result()
        report.accepted = verification.accepted
        return verification

    def _engine(self) -> VerificationEngine:
        if self.engine is not None:
            return self.engine
        if self._default_engine is None:
            self._default_engine = VerificationEngine()
        return self._default_engine

    # ------------------------------------------------------------------
    def _key_of(self, prop) -> str:
        if isinstance(prop, str):
            return prop
        # Every algebra carries its registry-style key (e.g.
        # 'max-degree-2'), which distinguishes parametric instances of
        # the same class; the class name is only a last resort.
        return getattr(prop, "key", None) or type(prop).__name__

    def _normalize(self, target, rng):
        """Return ``(config, sequence_or_None, fingerprint)``."""
        rng = rng or self.rng
        if isinstance(target, ConstructionSequence):
            cached = self._sequence_keys.get(id(target))
            if cached is None:
                graph = apply_construction(target)
                cached = (target, graph.fingerprint(), graph)
                self._sequence_keys[id(target)] = cached
            _seq, fingerprint, graph = cached
            return (
                Configuration.with_random_ids(graph, rng),
                target,
                fingerprint,
            )
        if isinstance(target, Configuration):
            return target, None, target.graph.fingerprint()
        # Bare graph.
        return (
            Configuration.with_random_ids(target, rng),
            None,
            target.fingerprint(),
        )

    def _structural_stages(self, sequence):
        if sequence is not None:
            return [MatchSequenceStage(sequence), HierarchyStage()]
        if self.k is None:
            raise ValueError(
                "CertificationSession needs a pathwidth bound k to certify "
                "graph targets (sequence targets carry their own width)"
            )
        # theorem1_stages minus the per-property tail.
        return theorem1_stages(
            self.k, decomposer=self.decomposer, exact_limit=self.exact_limit
        )[:-2]

    def _structure_for(self, config, sequence, fingerprint):
        """Return ``(structure, cache_hit)``, running stages on a miss.

        The cache key includes the proving mode: the same graph reached
        as a sequence target (lanewidth mode, no decomposition check)
        and as a bare-graph target (Theorem 1 mode, width ``k`` checked)
        yields different structures — sharing them would skip the other
        mode's validation.
        """
        if sequence is not None:
            key = ("lanewidth", fingerprint)
        else:
            # Decomposer and cutoff are part of the key: structures built
            # by the default decomposer must not satisfy a later call that
            # supplies an explicit witness decomposer (facade adoption).
            key = (
                "theorem1",
                self.k,
                self.decomposer,
                self.exact_limit,
                fingerprint,
            )
        structure = self._structures.get(key)
        if structure is not None:
            return structure, True
        ctx = PipelineContext(config=config)
        stages = self._structural_stages(sequence)
        try:
            timings = CertificationPipeline(stages).run(
                ctx, counters=self.stage_counters
            )
        except ProverFailure as failure:
            # Carry the partial timings out so refused reports keep the
            # same observability as evaluate-stage refusals.
            failure.stage_timings = tuple(ctx.timings)
            raise
        match_stage = next(
            (s for s in stages if isinstance(s, MatchSequenceStage)), None
        )
        structure = _Structure(
            ctx=ctx,
            timings=tuple(timings),
            sequence=sequence,
            match_stage=match_stage,
        )
        self._structures[key] = structure
        return structure, False

    def _scheme_for(self, structure, algebra):
        """A verifier-half scheme whose ``prove`` replays the full pipeline."""
        if structure.sequence is not None:
            stages = lanewidth_stages(
                structure.sequence,
                algebra=algebra,
                match_stage=structure.match_stage,
            )
        else:
            stages = theorem1_stages(
                self.k,
                algebra=algebra,
                decomposer=self.decomposer,
                exact_limit=self.exact_limit,
            )
        return PipelineScheme(algebra, structure.ctx.max_width, stages)

    def _structure_timings(self, structure, cache_hit) -> tuple:
        return tuple(
            StageTiming(t.name, t.seconds, cached=cache_hit)
            for t in structure.timings
        )

    def _certify_one(self, structure, config, key, algebra, cache_hit, verify=True):
        ctx = structure.ctx.structural_copy(config=config, algebra=algebra)
        pipeline = CertificationPipeline([EvaluateStage(), LabelStage()])
        try:
            property_timings = pipeline.run(ctx, counters=self.stage_counters)
        except ProverFailure as failure:
            report = self._refused_report(key, config, failure)
            report.max_width = ctx.max_width
            report.lane_count = len(ctx.root.lanes)
            report.hierarchy_depth = ctx.hierarchy_depth
            report.stage_timings = self._structure_timings(
                structure, cache_hit
            ) + tuple(ctx.timings)
            report.structure_cached = cache_hit
            report.stage_counters = dict(self.stage_counters)
            return report

        scheme = self._scheme_for(structure, algebra)
        # The wire encoding is the ground truth for every size figure:
        # measured bit lengths go in the headline fields, the arithmetic
        # label_bits estimate rides along as accounted_*.
        encoded = encode_labeling(ctx.labeling)
        if verify:
            verification = self._engine().verify(config, scheme, ctx.labeling)
            result = verification.as_result()
            accepted = verification.accepted
        else:
            # Completeness (Theorem 1): the honest prover's labeling is
            # accepted by construction; the round can be replayed later
            # with session.verify(report).
            verification = None
            result = None
            accepted = True
        report = CertificationReport(
            property_key=key,
            accepted=accepted,
            n=config.graph.n,
            m=config.graph.m,
            max_width=ctx.max_width,
            lane_count=len(ctx.root.lanes),
            hierarchy_depth=ctx.hierarchy_depth,
            class_count=ctx.class_count,
            max_label_bits=encoded.max_bits,
            mean_label_bits=encoded.mean_bits,
            total_label_bits=encoded.total_bits,
            accounted_max_label_bits=ctx.labeling.max_label_bits(scheme),
            accounted_mean_label_bits=ctx.labeling.mean_label_bits(scheme),
            accounted_total_label_bits=ctx.labeling.total_label_bits(scheme),
            stage_timings=self._structure_timings(structure, cache_hit)
            + tuple(property_timings),
            stage_counters=dict(self.stage_counters),
            structure_cached=cache_hit,
            verification=verification,
            config=config,
            scheme=scheme,
            labeling=ctx.labeling,
            result=result,
            encoded=encoded,
        )
        if self.store is not None:
            self.store.save(report)
        return report

    def _refused_report(
        self, key: str, config, failure, stage_timings: tuple = ()
    ) -> CertificationReport:
        return CertificationReport(
            property_key=key,
            accepted=False,
            refused=True,
            refusal=str(failure),
            n=config.graph.n,
            m=config.graph.m,
            stage_timings=tuple(stage_timings),
            stage_counters=dict(self.stage_counters),
            config=config,
        )
