"""Public certification API: staged pipeline, sessions, and the facade.

The Theorem 1 machinery factors into graph-level *structural* stages and
property-level *evaluation* stages; this package exposes that split:

* :func:`certify` — one-line entry point returning structured
  :class:`CertificationReport` objects;
* :class:`CertificationSession` — memoizes structural artifacts per
  graph fingerprint and proves property batches against one hierarchy;
* :class:`CertificationPipeline` + the stage classes — explicit,
  swappable steps with per-stage timings for experiments;
* :class:`CertificationPlan` / :class:`PlanRunner` (:mod:`repro.api.plan`)
  — the stages as a content-addressed artifact DAG: nodes declare typed
  inputs/outputs, artifacts carry chained fingerprints, and resolved
  nodes are skipped against an :class:`ArtifactCache`
  (:mod:`repro.api.artifacts`) whose disk layer persists structural
  artifacts next to the certificates;
* :class:`ParallelProver` (:mod:`repro.api.prover`) — pool-resident
  dispatch of the independent per-property evaluate/label nodes;
* :class:`VerificationEngine` + executors (:mod:`repro.api.runtime`,
  :mod:`repro.api.vectorized`) — the verification round with pluggable
  scheduling (serial / process pool / batched numpy kernels /
  shared-memory workers, see :func:`make_executor`), fail-fast
  short-circuiting, and structured :class:`VerificationReport` output;
* :class:`AuditPlan` / :class:`AuditReport` (:mod:`repro.api.audit`) —
  declarative soundness campaigns over the adversary generators, driven
  by named seed streams;
* :class:`CertificateStore` (:mod:`repro.api.store`) — persistence of
  wire-encoded certificates (:mod:`repro.codec`, ``docs/FORMAT.md``)
  keyed by graph fingerprint, enabling certify-once / re-verify-many
  workflows with zero prover stages on the stored path.

The legacy entry points (``Theorem1Scheme``, ``LanewidthScheme``,
``certify_lanewidth_graph``) live in :mod:`repro.core` and delegate to
these stages; they are re-exported here for convenience.
"""

from repro.api.artifacts import ArtifactCache, ArtifactEntry
from repro.api.facade import (
    LanewidthScheme,
    Theorem1Scheme,
    certify,
    certify_lanewidth_graph,
)
from repro.api.plan import (
    CertificationPlan,
    NodeKey,
    PlanError,
    PlanNode,
    PlanRun,
    PlanRunner,
    lanewidth_plan,
    theorem1_plan,
)
from repro.api.prover import ParallelProver, PropertyOutcome
from repro.api.pipeline import (
    DEFAULT_EXACT_DECOMPOSITION_LIMIT,
    PROPERTY_STAGES,
    STRUCTURAL_STAGES,
    CertificationPipeline,
    CompletionStage,
    DecomposeStage,
    EvaluateStage,
    HierarchyStage,
    LabelStage,
    LaneStage,
    MatchSequenceStage,
    PipelineContext,
    PipelineScheme,
    Stage,
    lanewidth_stages,
    theorem1_stages,
)
from repro.api.audit import (
    AdversarialInstance,
    AttackTally,
    AuditAttack,
    AuditAttempt,
    AuditCase,
    AuditPlan,
    AuditReport,
    DropAttack,
    EdgeAdditionAttack,
    EdgeRemovalAttack,
    MutationAttack,
    SwapAttack,
    TransplantAttack,
    derive_rng,
    derive_seed,
)
from repro.api.results import CertificationReport, StageTiming
from repro.api.runtime import (
    ChunkTiming,
    ParallelExecutor,
    SerialExecutor,
    VerificationEngine,
    VerificationExecutor,
    VerificationReport,
    executor_names,
    make_executor,
    register_executor,
    verify_labeling,
)
from repro.api.vectorized import SharedMemoryExecutor, VectorizedExecutor
from repro.api.session import CertificationSession
from repro.api.store import CertificateStore, StoreError, StoreMetrics

__all__ = [
    "certify",
    "CertificationSession",
    "CertificationReport",
    "StageTiming",
    # Certificate persistence.
    "CertificateStore",
    "StoreError",
    "StoreMetrics",
    # Plan-based proving + artifact cache.
    "CertificationPlan",
    "PlanNode",
    "PlanRunner",
    "PlanRun",
    "PlanError",
    "NodeKey",
    "theorem1_plan",
    "lanewidth_plan",
    "ArtifactCache",
    "ArtifactEntry",
    "ParallelProver",
    "PropertyOutcome",
    # Verification runtime.
    "VerificationEngine",
    "VerificationExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "VectorizedExecutor",
    "SharedMemoryExecutor",
    "make_executor",
    "register_executor",
    "executor_names",
    "VerificationReport",
    "ChunkTiming",
    "verify_labeling",
    # Adversarial audits.
    "AuditPlan",
    "AuditReport",
    "AuditCase",
    "AuditAttack",
    "AuditAttempt",
    "AttackTally",
    "AdversarialInstance",
    "MutationAttack",
    "SwapAttack",
    "DropAttack",
    "TransplantAttack",
    "EdgeRemovalAttack",
    "EdgeAdditionAttack",
    "derive_seed",
    "derive_rng",
    "CertificationPipeline",
    "PipelineContext",
    "PipelineScheme",
    "Stage",
    "DecomposeStage",
    "LaneStage",
    "CompletionStage",
    "MatchSequenceStage",
    "HierarchyStage",
    "EvaluateStage",
    "LabelStage",
    "theorem1_stages",
    "lanewidth_stages",
    "DEFAULT_EXACT_DECOMPOSITION_LIMIT",
    "STRUCTURAL_STAGES",
    "PROPERTY_STAGES",
    "Theorem1Scheme",
    "LanewidthScheme",
    "certify_lanewidth_graph",
]
