"""Public certification API: staged pipeline, sessions, and the facade.

The Theorem 1 machinery factors into graph-level *structural* stages and
property-level *evaluation* stages; this package exposes that split:

* :func:`certify` — one-line entry point returning structured
  :class:`CertificationReport` objects;
* :class:`CertificationSession` — memoizes structural artifacts per
  graph fingerprint and proves property batches against one hierarchy;
* :class:`CertificationPipeline` + the stage classes — explicit,
  swappable steps with per-stage timings for experiments.

The legacy entry points (``Theorem1Scheme``, ``LanewidthScheme``,
``certify_lanewidth_graph``) live in :mod:`repro.core` and delegate to
these stages; they are re-exported here for convenience.
"""

from repro.api.facade import (
    LanewidthScheme,
    Theorem1Scheme,
    certify,
    certify_lanewidth_graph,
)
from repro.api.pipeline import (
    DEFAULT_EXACT_DECOMPOSITION_LIMIT,
    PROPERTY_STAGES,
    STRUCTURAL_STAGES,
    CertificationPipeline,
    CompletionStage,
    DecomposeStage,
    EvaluateStage,
    HierarchyStage,
    LabelStage,
    LaneStage,
    MatchSequenceStage,
    PipelineContext,
    PipelineScheme,
    Stage,
    lanewidth_stages,
    theorem1_stages,
)
from repro.api.results import CertificationReport, StageTiming
from repro.api.session import CertificationSession

__all__ = [
    "certify",
    "CertificationSession",
    "CertificationReport",
    "StageTiming",
    "CertificationPipeline",
    "PipelineContext",
    "PipelineScheme",
    "Stage",
    "DecomposeStage",
    "LaneStage",
    "CompletionStage",
    "MatchSequenceStage",
    "HierarchyStage",
    "EvaluateStage",
    "LabelStage",
    "theorem1_stages",
    "lanewidth_stages",
    "DEFAULT_EXACT_DECOMPOSITION_LIMIT",
    "STRUCTURAL_STAGES",
    "PROPERTY_STAGES",
    "Theorem1Scheme",
    "LanewidthScheme",
    "certify_lanewidth_graph",
]
