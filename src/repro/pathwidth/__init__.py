"""Decomposition substrate: path/tree decompositions and interval forms.

Definition 1.1 of the paper defines path decompositions; the observation
after it recasts them as *interval representations* (Definition 4.1), the
form the lane-partition machinery of Section 4 consumes.  This package
provides both forms, conversions between them, exact pathwidth (a
branch-and-bound vertex-separation engine by default, the subset DP as
reference ground truth), heuristics for larger graphs, and the tree
decomposition + balancing substrate the FMRT'24 baseline requires.
"""

from repro.pathwidth.interval import IntervalRepresentation
from repro.pathwidth.path_decomposition import PathDecomposition
from repro.pathwidth.exact import exact_pathwidth, optimal_vertex_ordering
from repro.pathwidth.branch_and_bound import (
    BnBResult,
    BnBStats,
    branch_and_bound_decomposition,
    branch_and_bound_ordering,
)
from repro.pathwidth.heuristics import heuristic_path_decomposition
from repro.pathwidth.tree_decomposition import TreeDecomposition
from repro.pathwidth.balanced import balanced_binary_decomposition

__all__ = [
    "IntervalRepresentation",
    "PathDecomposition",
    "exact_pathwidth",
    "optimal_vertex_ordering",
    "BnBResult",
    "BnBStats",
    "branch_and_bound_decomposition",
    "branch_and_bound_ordering",
    "heuristic_path_decomposition",
    "TreeDecomposition",
    "balanced_binary_decomposition",
]
