"""Pathwidth heuristics for graphs beyond the exact solver's reach.

The prover of Theorem 1 is a centralized algorithm with unbounded
computational power; in practice the evaluation mostly uses generators that
return witness decompositions.  These heuristics cover the remaining cases:
arbitrary graphs where a reasonable (not necessarily optimal) path
decomposition suffices, since the certification machinery only needs *some*
bounded-width interval representation.

Two strategies are implemented and the best result is kept:

* **BFS sweep** — order vertices by breadth-first layers (good on
  path-shaped graphs);
* **greedy boundary minimization with beam search** — extend a partial
  ordering by the vertex minimizing the resulting boundary, keeping the
  ``beam_width`` best partial orderings per step.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.graphs import Graph
from repro.pathwidth.bitsets import boundary_size, neighbor_masks
from repro.pathwidth.interval import IntervalRepresentation
from repro.pathwidth.path_decomposition import PathDecomposition


def bfs_ordering(graph: Graph, source=None) -> list:
    """Return a BFS vertex ordering from ``source`` (default: min vertex)."""
    if graph.n == 0:
        return []
    order: list = []
    seen: set = set()
    for start in graph.vertices() if source is None else [source]:
        if start in seen:
            continue
        component = graph.bfs_order(start)
        order.extend(v for v in component if v not in seen)
        seen.update(component)
    return order


def greedy_boundary_ordering(
    graph: Graph, beam_width: int = 4, rng: Optional[random.Random] = None
) -> list:
    """Return an ordering via beam-searched greedy boundary minimization."""
    if graph.n == 0:
        return []
    rng = rng or random.Random(0)
    vertices, masks = neighbor_masks(graph)
    index_of = {v: i for i, v in enumerate(vertices)}
    full = (1 << graph.n) - 1
    # Each beam entry: (worst boundary so far, ordering tuple, placed mask).
    start = min(vertices, key=graph.degree)
    beams = [(0, (start,), 1 << index_of[start])]
    for _ in range(graph.n - 1):
        candidates = []
        for worst, ordering, placed in beams:
            frontier = 0
            scan = placed
            while scan:
                low = scan & -scan
                scan ^= low
                frontier |= masks[low.bit_length() - 1]
            frontier &= ~placed
            if not frontier:  # disconnected remainder: pick globally
                frontier = full & ~placed
            scan = frontier
            while scan:
                low = scan & -scan
                scan ^= low
                boundary = boundary_size(placed | low, masks)
                candidates.append(
                    (
                        max(worst, boundary),
                        ordering + (vertices[low.bit_length() - 1],),
                        placed | low,
                    )
                )
        candidates.sort(key=lambda item: (item[0], item[1]))
        seen_sets = set()
        beams = []
        for entry in candidates:
            if entry[2] in seen_sets:
                continue
            seen_sets.add(entry[2])
            beams.append(entry)
            if len(beams) >= beam_width:
                break
    return list(beams[0][1])


def heuristic_path_decomposition(
    graph: Graph, beam_width: int = 4, rng: Optional[random.Random] = None
) -> PathDecomposition:
    """Return the best decomposition found by the heuristic portfolio."""
    if graph.n == 0:
        return PathDecomposition(graph, [], validate=False)
    orderings = [bfs_ordering(graph), greedy_boundary_ordering(graph, beam_width, rng)]
    best: Optional[PathDecomposition] = None
    for ordering in orderings:
        rep = IntervalRepresentation.from_ordering(graph, ordering)
        decomposition = PathDecomposition.from_interval_representation(rep)
        if best is None or decomposition.width() < best.width():
            best = decomposition
    assert best is not None
    return best


def path_decomposition_from_bags(graph: Graph, bags) -> PathDecomposition:
    """Wrap generator-provided witness bags into a validated decomposition."""
    return PathDecomposition(graph, bags)
