"""Path decompositions (Definition 1.1) and conversions.

A path decomposition of ``G`` is a bag sequence ``(X_1, ..., X_s)`` such
that (P1) every edge lies inside some bag and (P2) for ``i <= j <= k``,
``X_i ∩ X_k ⊆ X_j``.  Its width is ``max |X_i| - 1``; the pathwidth of
``G`` is the minimum width over decompositions.

(P2) is equivalent to: every vertex's bag indices form a contiguous
interval — which is exactly how a path decomposition becomes an
:class:`repro.pathwidth.IntervalRepresentation` of width ``pw + 1``.
"""

from __future__ import annotations

from repro.graphs import Graph
from repro.pathwidth.interval import IntervalRepresentation


class PathDecomposition:
    """A validated path decomposition.

    Parameters
    ----------
    graph:
        The decomposed graph.
    bags:
        A sequence of vertex collections.
    validate:
        When true (default), verify (P1) and (P2).
    """

    def __init__(self, graph: Graph, bags, validate: bool = True) -> None:
        self.graph = graph
        self.bags = [sorted(set(bag)) for bag in bags]
        if validate:
            self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` unless (P1) and (P2) hold and all vertices appear."""
        seen: dict = {}
        for index, bag in enumerate(self.bags):
            for v in bag:
                if v not in self.graph:
                    raise ValueError(f"bag vertex {v!r} not in graph")
                seen.setdefault(v, []).append(index)
        missing = set(self.graph.vertices()) - set(seen)
        if missing:
            raise ValueError(f"vertices missing from all bags: {sorted(missing)!r}")
        # (P2): occurrences of each vertex are contiguous.
        for v, indices in seen.items():
            if indices[-1] - indices[0] + 1 != len(indices):
                raise ValueError(f"vertex {v!r} occurs in non-contiguous bags {indices}")
        # (P1): every edge inside some bag.
        bag_sets = [set(bag) for bag in self.bags]
        for u, v in self.graph.edges():
            if not any(u in bag and v in bag for bag in bag_sets):
                raise ValueError(f"edge {u!r}-{v!r} not covered by any bag")

    # ------------------------------------------------------------------
    def width(self) -> int:
        """Return ``max |X_i| - 1`` (the width of the decomposition)."""
        if not self.bags:
            return -1
        return max(len(bag) for bag in self.bags) - 1

    def __len__(self) -> int:
        return len(self.bags)

    def __repr__(self) -> str:
        return f"PathDecomposition(bags={len(self.bags)}, width={self.width()})"

    # ------------------------------------------------------------------
    def to_interval_representation(self) -> IntervalRepresentation:
        """Return the equivalent interval representation.

        Vertex ``v`` receives the interval ``[first bag index, last bag
        index]`` of its occurrences; the width of the representation equals
        ``self.width() + 1``.
        """
        first: dict = {}
        last: dict = {}
        for index, bag in enumerate(self.bags):
            for v in bag:
                first.setdefault(v, index)
                last[v] = index
        intervals = {v: (first[v], last[v]) for v in first}
        return IntervalRepresentation(self.graph, intervals)

    @classmethod
    def from_interval_representation(
        cls, rep: IntervalRepresentation
    ) -> "PathDecomposition":
        """Return the bag form of an interval representation.

        Bag ``X_p`` (for each integer point ``p`` in the span) holds the
        vertices whose interval covers ``p``; empty bags are dropped.
        """
        if not rep.intervals:
            return cls(rep.graph, [], validate=False)
        lo, hi = rep.span()
        bags = []
        for p in range(lo, hi + 1):
            bag = [v for v, (l, r) in rep.intervals.items() if l <= p <= r]
            if bag:
                bags.append(bag)
        return cls(rep.graph, bags)

    @classmethod
    def trivial(cls, graph: Graph) -> "PathDecomposition":
        """Return the one-bag decomposition (width ``n - 1``)."""
        return cls(graph, [graph.vertices()])
