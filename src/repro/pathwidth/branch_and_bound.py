"""Branch-and-bound exact vertex separation (= pathwidth).

The subset DP in :mod:`repro.pathwidth.exact` visits all ``2^n`` prefix
sets and therefore hits a wall around 20 vertices.  This module implements
the Coudert–Mazauric–Nisse branch-and-bound for the same vertex-separation
layout problem, which routinely proves optimality at n ≈ 50–100 on
bounded-pathwidth inputs:

* **bitset frontiers** — prefixes and neighborhoods are python ints over
  the CSR dense indices (:mod:`repro.pathwidth.bitsets`), so boundary
  updates are word-parallel;
* **greedy-exact extension** — two commitment rules that provably cannot
  increase the separation are applied before branching: (i) a vertex with
  every neighbor already placed is placed for free, and (ii) when a
  boundary vertex has exactly one unplaced neighbor, that neighbor is
  placed (the boundary vertex retires, the newcomer at worst replaces it);
* **prefix memo table** — the suffix cost from a prefix depends only on
  the prefix *set*, so a set revisited with an equal-or-worse internal
  separation is pruned.  An entry is marked *prunable forever* unless its
  exploration improved the incumbent to exactly its own internal
  separation (the one case where a cheaper internal ordering could still
  win), mirroring the ``vP[P]`` flag of the reference implementation;
* **vsep-ordered branching with lower-bound pruning** — candidates are
  tried by ascending boundary-after, branches whose separation reaches
  the incumbent are cut, and the search stops as soon as the incumbent
  meets the contraction-degeneracy lower bound (a minor's min degree ≤
  treewidth ≤ pathwidth);
* **component splitting** — each connected component is solved on its
  own local masks and the orderings are concatenated (a prefix boundary
  never spans components, so the separation is the max over parts).

The search is anytime: it starts from a caller-supplied (or heuristic)
incumbent ordering and only improves it, so a ``budget_ms`` timeout
returns a valid ordering that is never worse than the seed, with
``optimal=False`` recorded in the stats.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.graphs import Graph
from repro.pathwidth.bitsets import (
    iter_bits,
    neighbor_masks,
    subgraph_masks,
    vertex_separation_of_order,
)
from repro.pathwidth.interval import IntervalRepresentation
from repro.pathwidth.path_decomposition import PathDecomposition

#: Stop recording new memo entries beyond this many (lookups continue);
#: keeps worst-case memory bounded on adversarial inputs.
DEFAULT_MEMO_LIMIT = 1 << 20

#: Consult the wall clock once per this many expanded nodes.
_TICK_MASK = 0x3FF


@dataclass
class BnBStats:
    """Counters from one :func:`branch_and_bound_ordering` run."""

    nodes_expanded: int = 0
    memo_hits: int = 0
    memo_entries: int = 0
    greedy_commits: int = 0
    components: int = 0
    lower_bound: int = 0
    seed_width: Optional[int] = None
    elapsed_ms: float = 0.0
    budget_ms: Optional[float] = None
    timed_out: bool = False

    def to_dict(self) -> dict:
        return {
            "nodes_expanded": self.nodes_expanded,
            "memo_hits": self.memo_hits,
            "memo_entries": self.memo_entries,
            "greedy_commits": self.greedy_commits,
            "components": self.components,
            "lower_bound": self.lower_bound,
            "seed_width": self.seed_width,
            "elapsed_ms": self.elapsed_ms,
            "budget_ms": self.budget_ms,
            "timed_out": self.timed_out,
        }


@dataclass
class BnBResult:
    """Ordering + width from a branch-and-bound run.

    ``optimal`` is True only when every component's search ran to
    completion (no budget timeout), i.e. ``width`` is the exact vertex
    separation number = pathwidth of the input.
    """

    ordering: list
    width: int
    optimal: bool
    stats: BnBStats = field(default_factory=BnBStats)


class _Timeout(Exception):
    """Internal unwind signal when the budget deadline passes."""


class _ComponentSearch:
    """Exact vertex-separation search over one component's local masks."""

    def __init__(self, masks, incumbent_order, incumbent_width, lower_bound,
                 deadline, stats, memo_limit):
        self.masks = masks
        self.n = len(masks)
        self.full = (1 << self.n) - 1
        self.best_order = list(incumbent_order)
        self.best_width = incumbent_width
        self.lower_bound = lower_bound
        self.deadline = deadline
        self.stats = stats
        # prefix set -> (internal vsep at last visit, prunable-forever flag)
        self.memo = {}
        self.memo_limit = memo_limit

    def run(self) -> None:
        if self.n == 0 or self.best_width <= self.lower_bound:
            return
        self._search(0, [], 0, 0)

    # -- search internals -------------------------------------------------

    def _tick(self) -> None:
        self.stats.nodes_expanded += 1
        if (self.stats.nodes_expanded & _TICK_MASK) == 0 and (
            self.deadline is not None and time.perf_counter() > self.deadline
        ):
            raise _Timeout

    def _place(self, prefix_mask: int, boundary: int, v: int):
        """Return ``(prefix', boundary')`` after appending vertex ``v``."""
        masks = self.masks
        bit = 1 << v
        prefix_mask |= bit
        retire = 0
        candidates = boundary & masks[v]
        while candidates:
            low = candidates & -candidates
            if not masks[low.bit_length() - 1] & ~prefix_mask:
                retire |= low
            candidates ^= low
        boundary &= ~retire
        if masks[v] & ~prefix_mask:
            boundary |= bit
        return prefix_mask, boundary

    def _greedy_extend(self, prefix_mask: int, order: list, boundary: int):
        """Apply the two zero-cost commitment rules to a fixed point.

        Rule (i): an unplaced vertex whose neighbors are all placed can be
        appended — it never joins the boundary and may retire neighbors.
        Rule (ii): if a boundary vertex ``u`` has exactly one unplaced
        neighbor ``w``, appending ``w`` retires ``u``; even if ``w`` joins
        the boundary the count cannot grow.  Neither rule can increase the
        running separation, so these placements need no branching.
        """
        masks = self.masks
        changed = True
        while changed and prefix_mask != self.full:
            changed = False
            # Rule (i) candidates with a neighbor are always adjacent to the
            # boundary (their placed neighbors still see them outside), so
            # scanning N(boundary) suffices; isolated vertices only occur in
            # singleton components, which the incumbent already covers.
            reach = 0
            scan = boundary
            while scan:
                low = scan & -scan
                scan ^= low
                reach |= masks[low.bit_length() - 1]
            scan = reach & ~prefix_mask
            while scan:
                low = scan & -scan
                scan ^= low
                v = low.bit_length() - 1
                if not masks[v] & ~prefix_mask:  # rule (i)
                    prefix_mask, boundary = self._place(prefix_mask, boundary, v)
                    order.append(v)
                    self.stats.greedy_commits += 1
                    changed = True
            scan = boundary
            while scan:
                low = scan & -scan
                scan ^= low
                u = low.bit_length() - 1
                outside = masks[u] & ~prefix_mask
                if outside and not (outside & (outside - 1)):  # rule (ii)
                    w = outside.bit_length() - 1
                    prefix_mask, boundary = self._place(prefix_mask, boundary, w)
                    order.append(w)
                    self.stats.greedy_commits += 1
                    changed = True
        return prefix_mask, boundary

    def _search(self, prefix_mask: int, order: list, boundary: int, vsep: int):
        if vsep >= self.best_width or self.best_width <= self.lower_bound:
            return
        entry = self.memo.get(prefix_mask)
        if entry is not None:
            stored_vsep, prunable = entry
            if prunable or vsep >= stored_vsep:
                self.stats.memo_hits += 1
                return
        self._tick()
        entry_key = prefix_mask  # memoize the set as *reached*, pre-greedy
        entry_best = self.best_width
        order = list(order)
        prefix_mask, boundary = self._greedy_extend(prefix_mask, order, boundary)
        if prefix_mask == self.full:
            # Greedy placements never increase the separation, so vsep
            # still bounds the whole ordering; vsep < best_width here.
            self.best_width = vsep
            self.best_order = list(order)
            return
        # Only vertices adjacent to the boundary can retire anyone or reuse
        # a slot; every other unplaced vertex has all-unplaced neighborhoods
        # and lands at exactly |boundary| + 1.
        masks = self.masks
        unplaced = self.full & ~prefix_mask
        reach = 0
        scan = boundary
        while scan:
            low = scan & -scan
            scan ^= low
            reach |= masks[low.bit_length() - 1]
        near = reach & unplaced
        candidates = []
        scan = near
        while scan:
            low = scan & -scan
            scan ^= low
            v = low.bit_length() - 1
            _, after = self._place(prefix_mask, boundary, v)
            b_after = bin(after).count("1")
            if max(vsep, b_after) < self.best_width:
                candidates.append((b_after, v))
        far_b = bin(boundary).count("1") + 1
        if max(vsep, far_b) < self.best_width:
            scan = unplaced & ~near
            while scan:
                low = scan & -scan
                scan ^= low
                candidates.append((far_b, low.bit_length() - 1))
        candidates.sort()
        for b_after, v in candidates:
            next_vsep = vsep if b_after <= vsep else b_after
            if next_vsep >= self.best_width:
                continue  # incumbent improved since candidate generation
            child_mask, child_boundary = self._place(prefix_mask, boundary, v)
            order.append(v)
            self._search(child_mask, order, child_boundary, next_vsep)
            order.pop()
            if self.best_width <= self.lower_bound:
                break
        # A completion through this set costs >= vsep, so an improvement
        # found here pins best_width >= vsep; only best_width == vsep
        # leaves room for a revisit with a cheaper internal ordering.
        # (Greedy extension is set-deterministic, so memoizing the
        # pre-greedy entry key covers the extended prefix too.)
        if len(self.memo) < self.memo_limit or entry_key in self.memo:
            improved = self.best_width < entry_best
            self.memo[entry_key] = (
                vsep,
                not (improved and self.best_width == vsep),
            )


def _contraction_degeneracy(masks: Sequence[int]) -> int:
    """Contraction degeneracy of the graph given by local masks.

    Repeatedly contracts a minimum-degree vertex into its least-degree
    neighbor and reports the largest minimum degree seen.  Every
    contraction step yields a minor, and min-degree ≤ degeneracy ≤
    treewidth ≤ pathwidth, so the maximum is a valid pathwidth lower
    bound — strictly stronger in practice than plain degeneracy, and
    often tight enough to stop the search the moment the incumbent
    matches it.
    """
    n = len(masks)
    if n <= 1:
        return 0
    adjacency = [set(iter_bits(m)) for m in masks]
    alive = set(range(n))
    worst = 0
    while len(alive) > 1:
        v = min(alive, key=lambda x: len(adjacency[x]))
        degree = len(adjacency[v])
        if degree > worst:
            worst = degree
        alive.discard(v)
        if degree == 0:
            continue
        u = min(adjacency[v], key=lambda x: len(adjacency[x]))
        for w in adjacency[v]:
            if w == u:
                adjacency[w].discard(v)
            else:
                adjacency[w].discard(v)
                adjacency[w].add(u)
                adjacency[u].add(w)
        adjacency[v].clear()
    return worst


def ordering_from_decomposition(decomposition: PathDecomposition) -> list:
    """Vertex order by first bag appearance (vsep ≤ decomposition width)."""
    seen = set()
    order = []
    for bag in decomposition.bags:
        for v in sorted(bag):
            if v not in seen:
                seen.add(v)
                order.append(v)
    return order


def _seed_orderings(graph: Graph, seed_ordering: Optional[Sequence]) -> list:
    from repro.pathwidth.heuristics import bfs_ordering, greedy_boundary_ordering

    seeds = []
    if seed_ordering is not None:
        seeds.append(list(seed_ordering))
    seeds.append(bfs_ordering(graph))
    seeds.append(greedy_boundary_ordering(graph))
    return seeds


def branch_and_bound_ordering(
    graph: Graph,
    budget_ms: Optional[float] = None,
    seed_ordering: Optional[Sequence] = None,
    memo_limit: int = DEFAULT_MEMO_LIMIT,
) -> BnBResult:
    """Return a minimum vertex-separation ordering of ``graph``.

    Runs the branch-and-bound per connected component, seeded by the best
    of ``seed_ordering`` (if given) and the heuristic portfolio.  With a
    ``budget_ms`` deadline the result is anytime — never worse than the
    seed — and ``result.optimal`` reports whether the search completed.
    """
    stats = BnBStats(budget_ms=budget_ms)
    started = time.perf_counter()
    deadline = started + budget_ms / 1000.0 if budget_ms is not None else None
    if graph.n == 0:
        return BnBResult(ordering=[], width=-1, optimal=True, stats=stats)

    vertices, masks = neighbor_masks(graph)
    index_of = {v: i for i, v in enumerate(vertices)}

    # Measure each seed once on the full graph; keep the best as incumbent.
    best_seed = None
    best_seed_width = None
    for seed in _seed_orderings(graph, seed_ordering):
        if len(seed) != graph.n or set(seed) != set(vertices):
            continue
        width = vertex_separation_of_order([index_of[v] for v in seed], masks)
        if best_seed_width is None or width < best_seed_width:
            best_seed_width = width
            best_seed = seed
    assert best_seed is not None and best_seed_width is not None
    stats.seed_width = best_seed_width

    components = graph.connected_components()
    stats.components = len(components)
    ordering: list = []
    width = 0
    optimal = True
    for component in components:
        members = sorted(index_of[v] for v in component)
        local_masks = subgraph_masks(masks, members)
        local_of = {dense: local for local, dense in enumerate(members)}
        # Project the incumbent ordering onto this component.
        local_seed = [local_of[index_of[v]] for v in best_seed
                      if index_of[v] in local_of]
        local_width = vertex_separation_of_order(local_seed, local_masks)
        lower = _contraction_degeneracy(local_masks)
        stats.lower_bound = max(stats.lower_bound, lower)
        search = _ComponentSearch(
            local_masks, local_seed, local_width, lower, deadline, stats,
            memo_limit,
        )
        if deadline is not None and time.perf_counter() > deadline:
            stats.timed_out = True
            optimal = False
        else:
            try:
                search.run()
            except _Timeout:
                stats.timed_out = True
                optimal = False
        stats.memo_entries += len(search.memo)
        ordering.extend(vertices[members[local]] for local in search.best_order)
        if search.best_width > width:
            width = search.best_width
    stats.elapsed_ms = (time.perf_counter() - started) * 1000.0
    return BnBResult(ordering=ordering, width=width, optimal=optimal,
                     stats=stats)


def branch_and_bound_decomposition(
    graph: Graph,
    budget_ms: Optional[float] = None,
    seed_ordering: Optional[Sequence] = None,
) -> "tuple[PathDecomposition, BnBResult]":
    """Return ``(decomposition, result)`` from a branch-and-bound run."""
    if graph.n == 0:
        return (
            PathDecomposition(graph, [], validate=False),
            BnBResult(ordering=[], width=-1, optimal=True),
        )
    result = branch_and_bound_ordering(graph, budget_ms=budget_ms,
                                       seed_ordering=seed_ordering)
    rep = IntervalRepresentation.from_ordering(graph, result.ordering)
    return PathDecomposition.from_interval_representation(rep), result
