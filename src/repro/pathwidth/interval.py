"""Interval representations (Definition 4.1).

An interval representation assigns every vertex ``v`` a non-empty integer
interval ``I_v = [L_v, R_v]`` such that the intervals of adjacent vertices
intersect.  Its *width* is the maximum number of intervals sharing a point
(note: this is pathwidth **plus one**, matching the paper's convention — a
graph has pathwidth ``k`` iff it has an interval representation of width
``k + 1``).

The class also provides the ``≺`` order on disjoint intervals that lane
partitions are built from (``[a, b] ≺ [c, d]`` iff ``b < c``).
"""

from __future__ import annotations

from typing import Optional

from repro.graphs import Graph


class IntervalRepresentation:
    """An interval assignment ``vertex -> [L, R]`` for a graph.

    Parameters
    ----------
    graph:
        The represented graph.
    intervals:
        Mapping ``vertex -> (L, R)`` with integer ``L <= R``.
    validate:
        When true (default), checks Definition 4.1: every vertex has a
        non-empty interval and adjacent intervals intersect.
    """

    def __init__(self, graph: Graph, intervals: dict, validate: bool = True) -> None:
        self.graph = graph
        self.intervals = {v: (int(l), int(r)) for v, (l, r) in intervals.items()}
        if validate:
            self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` unless this satisfies Definition 4.1."""
        missing = set(self.graph.vertices()) - set(self.intervals)
        if missing:
            raise ValueError(f"vertices without intervals: {sorted(missing)!r}")
        for v, (left, right) in self.intervals.items():
            if left > right:
                raise ValueError(f"empty interval for {v!r}: [{left}, {right}]")
        for u, v in self.graph.edges():
            if not self.overlaps(u, v):
                raise ValueError(
                    f"edge {u!r}-{v!r} with disjoint intervals "
                    f"{self.intervals[u]} and {self.intervals[v]}"
                )

    # ------------------------------------------------------------------
    def left(self, v) -> int:
        """Return ``L_v``."""
        return self.intervals[v][0]

    def right(self, v) -> int:
        """Return ``R_v``."""
        return self.intervals[v][1]

    def overlaps(self, u, v) -> bool:
        """Return whether ``I_u`` and ``I_v`` intersect."""
        lu, ru = self.intervals[u]
        lv, rv = self.intervals[v]
        return max(lu, lv) <= min(ru, rv)

    def strictly_before(self, u, v) -> bool:
        """Return whether ``I_u ≺ I_v`` (Section 4.1)."""
        return self.intervals[u][1] < self.intervals[v][0]

    def width(self) -> int:
        """Return the width: the max number of intervals sharing a point.

        Computed by a sweep over interval events; O(n log n).
        """
        if not self.intervals:
            return 0
        events = []
        for left, right in self.intervals.values():
            events.append((left, 0))  # open before close at the same point
            events.append((right, 1))
        events.sort()
        depth = best = 0
        for _, kind in events:
            if kind == 0:
                depth += 1
                best = max(best, depth)
            else:
                depth -= 1
        return best

    def span(self) -> tuple:
        """Return ``(min L, max R)`` over all intervals."""
        lefts = [l for l, _ in self.intervals.values()]
        rights = [r for _, r in self.intervals.values()]
        return min(lefts), max(rights)

    def restricted_to(self, vertex_subset) -> "IntervalRepresentation":
        """Return the representation restricted to an induced subgraph.

        This is the ``I_C`` of Section 4.2: the same intervals, kept only
        for the vertices of the (connected) subset ``C``.
        """
        sub = self.graph.induced_subgraph(vertex_subset)
        kept = {v: self.intervals[v] for v in sub.vertices()}
        return IntervalRepresentation(sub, kept, validate=False)

    def union_interval(self, vertex_subset) -> tuple:
        """Return ``I_U = [L_U, R_U]`` for a connected subset ``U``.

        For connected ``U`` the union of intervals is itself an interval
        (Section 4.2); this returns its endpoints.
        """
        vs = list(vertex_subset)
        if not vs:
            raise ValueError("empty subset has no union interval")
        return (
            min(self.intervals[v][0] for v in vs),
            max(self.intervals[v][1] for v in vs),
        )

    # ------------------------------------------------------------------
    def argmin_left(self):
        """Return the vertex minimizing ``L_v`` (ties: smallest vertex)."""
        return min(self.intervals, key=lambda v: (self.intervals[v][0], v))

    def argmax_right(self):
        """Return the vertex maximizing ``R_v`` (ties: smallest vertex)."""
        return min(self.intervals, key=lambda v: (-self.intervals[v][1], v))

    def __repr__(self) -> str:
        return (
            f"IntervalRepresentation(n={len(self.intervals)}, "
            f"width={self.width()})"
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_ordering(cls, graph: Graph, ordering: list) -> "IntervalRepresentation":
        """Build a representation from a linear vertex ordering.

        Vertex ``v`` at position ``i`` receives ``L_v = i`` and
        ``R_v = max(i, last position of a neighbor of v)``; the width of the
        result equals the *vertex separation* of the ordering plus one,
        which is how the exact solver converts orderings into certified
        representations.
        """
        position = {v: i for i, v in enumerate(ordering)}
        if set(position) != set(graph.vertices()) or len(position) != graph.n:
            raise ValueError("ordering must enumerate each vertex exactly once")
        intervals = {}
        for v in ordering:
            i = position[v]
            reach = i
            for u in graph.neighbors_sorted(v):
                if position[u] > reach:
                    reach = position[u]
            intervals[v] = (i, reach)
        # R_v must extend to cover neighbors that come earlier too; with
        # L = own position and R = furthest later neighbor, an edge (u, v)
        # with u earlier satisfies R_u >= pos(v) >= L_v and L_u <= R_u, so
        # the intervals intersect.  Validation double-checks.
        return cls(graph, intervals, validate=True)
