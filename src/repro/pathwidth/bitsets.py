"""Shared CSR-backed bitset substrate for the pathwidth engines.

Both exact engines (the subset DP in :mod:`repro.pathwidth.exact` and
the branch-and-bound in :mod:`repro.pathwidth.branch_and_bound`) and the
heuristic portfolio reason about *prefix boundaries*: given a set ``S``
of placed vertices, how many of them still have a neighbor outside
``S``?  Representing ``S`` and every neighborhood as python ints makes
that a handful of word-parallel bit operations, and building the
neighborhood masks once per graph (off the immutable
:class:`~repro.graphs.csr.CSRAdjacency` snapshot) removes the per-call
mask reconstruction the old ``exact._boundary_size`` /
``heuristics._boundary_after`` helpers paid.

Dense index convention: masks use the CSR dense indices (bit ``i`` is
``graph.csr.vertices[i]``), so an index ordering converts to names by a
single tuple lookup.
"""

from __future__ import annotations

from typing import Sequence, Tuple


def neighbor_masks(graph) -> Tuple[tuple, list]:
    """Return ``(vertices, masks)`` for ``graph`` off its CSR snapshot.

    ``vertices`` is the dense-index-ordered vertex tuple and ``masks[i]``
    the bitset of dense neighbor indices of vertex ``i``.  The CSR
    snapshot is built once per graph and shared, so repeated calls cost
    one pass over the adjacency arrays each (no dict lookups).
    """
    csr = graph.csr
    indptr = csr.indptr
    neighbors = csr.neighbors
    masks = []
    for i in range(len(csr.vertices)):
        mask = 0
        for p in range(indptr[i], indptr[i + 1]):
            mask |= 1 << neighbors[p]
        masks.append(mask)
    return csr.vertices, masks


def subgraph_masks(masks: Sequence[int], members: Sequence[int]) -> list:
    """Re-index ``masks`` onto the induced subgraph of ``members``.

    ``members`` are dense indices of the parent graph (any order); the
    result uses local indices ``0..len(members)-1`` in that order, with
    edges to non-members dropped.
    """
    member_mask = 0
    for index in members:
        member_mask |= 1 << index
    local_of = {index: local for local, index in enumerate(members)}
    local_masks = []
    for index in members:
        inside = masks[index] & member_mask
        local = 0
        while inside:
            low = inside & -inside
            local |= 1 << local_of[low.bit_length() - 1]
            inside ^= low
        local_masks.append(local)
    return local_masks


def boundary_size(subset_mask: int, masks: Sequence[int]) -> int:
    """Return ``|{u in S : u has a neighbor outside S}|`` for the mask."""
    count = 0
    remaining = subset_mask
    while remaining:
        low = remaining & -remaining
        if masks[low.bit_length() - 1] & ~subset_mask:
            count += 1
        remaining ^= low
    return count


def boundary_mask(subset_mask: int, masks: Sequence[int]) -> int:
    """Return the bitset of subset vertices with a neighbor outside it."""
    result = 0
    remaining = subset_mask
    while remaining:
        low = remaining & -remaining
        if masks[low.bit_length() - 1] & ~subset_mask:
            result |= low
        remaining ^= low
    return result


def vertex_separation_of_order(order: Sequence[int], masks: Sequence[int]) -> int:
    """Return the vertex separation of a dense-index ordering.

    Maintains the boundary incrementally: placing ``v`` removes every
    placed vertex whose last outside neighbor was ``v`` and adds ``v``
    itself when it still has unplaced neighbors.
    """
    placed = 0
    boundary = 0
    worst = 0
    for index in order:
        bit = 1 << index
        placed |= bit
        # Neighbors of v already on the boundary may retire.
        retire = 0
        candidates = boundary & masks[index]
        while candidates:
            low = candidates & -candidates
            if not masks[low.bit_length() - 1] & ~placed:
                retire |= low
            candidates ^= low
        boundary &= ~retire
        if masks[index] & ~placed:
            boundary |= bit
        count = bin(boundary).count("1")
        if count > worst:
            worst = count
    return worst


def iter_bits(mask: int):
    """Yield the set bit indices of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low
