"""Exact pathwidth: branch-and-bound default, subset-DP reference.

Pathwidth equals the *vertex separation number* (Kinnersley 1992): the
minimum over linear orderings ``v_1, ..., v_n`` of the maximum, over
prefixes, of the number of prefix vertices with a neighbor outside the
prefix.  Two exact engines share the bitset substrate in
:mod:`repro.pathwidth.bitsets`:

* ``engine="bnb"`` (default) — the Coudert–Mazauric–Nisse
  branch-and-bound in :mod:`repro.pathwidth.branch_and_bound`.  No size
  cap; bounded-pathwidth inputs at n ≈ 50–100 typically prove optimal in
  well under a second.  An optional ``budget_ms`` deadline turns it into
  a strict attempt: on timeout a ``ValueError`` is raised (callers who
  want the anytime incumbent instead should use
  :func:`~repro.pathwidth.branch_and_bound.branch_and_bound_ordering`
  directly, as ``DecomposeStage`` does).
* ``engine="dp"`` — the Held–Karp-style subset DP below:
  ``f(S) = min_{v in S} max(f(S - v), boundary(S))``, O(2^n * n) time
  and O(2^n) memory, capped at ``_EXACT_LIMIT`` vertices.  Kept as the
  independent ground truth the equivalence suite checks the
  branch-and-bound against.
"""

from __future__ import annotations

from typing import Optional

from repro.graphs import Graph
from repro.pathwidth.bitsets import boundary_size, neighbor_masks, vertex_separation_of_order
from repro.pathwidth.interval import IntervalRepresentation
from repro.pathwidth.path_decomposition import PathDecomposition

_EXACT_LIMIT = 24

#: Engine names accepted by every function in this module.
ENGINES = ("bnb", "dp")
DEFAULT_ENGINE = "bnb"


def _check_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ValueError(f"unknown exact engine {engine!r}; expected one of {ENGINES}")
    return engine


def exact_pathwidth(
    graph: Graph, engine: str = DEFAULT_ENGINE, budget_ms: Optional[float] = None
) -> int:
    """Return the exact pathwidth of ``graph``.

    Raises ``ValueError`` when the chosen engine cannot certify
    optimality: the ``"dp"`` engine above its hard size limit, or the
    ``"bnb"`` engine when a ``budget_ms`` deadline expires first.
    """
    if graph.n == 0:
        return -1
    ordering = optimal_vertex_ordering(graph, engine=engine, budget_ms=budget_ms)
    return _vertex_separation_of(graph, ordering)


def optimal_vertex_ordering(
    graph: Graph, engine: str = DEFAULT_ENGINE, budget_ms: Optional[float] = None
) -> list:
    """Return a vertex ordering achieving the minimum vertex separation."""
    _check_engine(engine)
    if graph.n == 0:
        return []
    if engine == "bnb":
        from repro.pathwidth.branch_and_bound import branch_and_bound_ordering

        result = branch_and_bound_ordering(graph, budget_ms=budget_ms)
        if not result.optimal:
            raise ValueError(
                "branch-and-bound budget of %r ms expired before optimality "
                "was proven (incumbent width %d)" % (budget_ms, result.width)
            )
        return result.ordering
    return _dp_vertex_ordering(graph)


def _dp_vertex_ordering(graph: Graph) -> list:
    """The O(2^n * n) subset-DP reference engine."""
    n = graph.n
    if n > _EXACT_LIMIT:
        raise ValueError(
            f"exact pathwidth limited to {_EXACT_LIMIT} vertices (got {n})"
        )
    vertices, nbr_masks = neighbor_masks(graph)

    full = (1 << n) - 1
    # f[S] = best achievable max-boundary when S is the prefix set.
    f = [0] * (1 << n)
    choice = [0] * (1 << n)
    for subset in range(1, full + 1):
        best = None
        best_v = -1
        b = boundary_size(subset, nbr_masks)
        mask = subset
        while mask:
            low = mask & -mask
            prev = subset ^ low
            candidate = max(f[prev], b)
            if best is None or candidate < best:
                best = candidate
                best_v = low.bit_length() - 1
            mask ^= low
        f[subset] = best if best is not None else 0
        choice[subset] = best_v

    # Reconstruct the ordering from the choices.
    order_indices = []
    subset = full
    while subset:
        v_index = choice[subset]
        order_indices.append(v_index)
        subset ^= 1 << v_index
    order_indices.reverse()
    return [vertices[i] for i in order_indices]


def _vertex_separation_of(graph: Graph, ordering: list) -> int:
    """Return the vertex separation of a specific ordering (bitset sweep)."""
    vertices, nbr_masks = neighbor_masks(graph)
    index_of = {v: i for i, v in enumerate(vertices)}
    return vertex_separation_of_order([index_of[v] for v in ordering], nbr_masks)


def exact_path_decomposition(
    graph: Graph, engine: str = DEFAULT_ENGINE, budget_ms: Optional[float] = None
) -> PathDecomposition:
    """Return an optimal-width path decomposition.

    The optimal ordering is converted into an interval representation via
    :meth:`IntervalRepresentation.from_ordering` and then into bags; the
    resulting width equals the pathwidth.
    """
    if graph.n == 0:
        return PathDecomposition(graph, [], validate=False)
    ordering = optimal_vertex_ordering(graph, engine=engine, budget_ms=budget_ms)
    rep = IntervalRepresentation.from_ordering(graph, ordering)
    return PathDecomposition.from_interval_representation(rep)


def pathwidth_at_most(
    graph: Graph, k: int, engine: str = DEFAULT_ENGINE,
    budget_ms: Optional[float] = None,
) -> bool:
    """Return whether ``pw(graph) <= k`` (exact)."""
    if graph.n == 0:
        return True
    return exact_pathwidth(graph, engine=engine, budget_ms=budget_ms) <= k


def exact_pathwidth_of_components(
    graph: Graph, engine: str = DEFAULT_ENGINE, budget_ms: Optional[float] = None
) -> int:
    """Return pathwidth of a possibly disconnected graph (max over parts).

    The ``"bnb"`` engine splits components internally; this wrapper keeps
    the per-component contract for the ``"dp"`` engine (and callers that
    iterate components themselves).
    """
    if graph.n == 0:
        return -1
    best = 0
    for component in graph.connected_components():
        sub = graph.induced_subgraph(component)
        best = max(best, exact_pathwidth(sub, engine=engine, budget_ms=budget_ms))
    return best
