"""Exact pathwidth via the vertex-separation dynamic program.

Pathwidth equals the *vertex separation number* (Kinnersley 1992): the
minimum over linear orderings ``v_1, ..., v_n`` of the maximum, over
prefixes, of the number of prefix vertices with a neighbor outside the
prefix.  The Held–Karp-style DP below computes

    f(S) = min over orderings of S placed first of the max boundary size,

with ``f(S) = min_{v in S} max(f(S - v), boundary(S))`` where
``boundary(S) = |{u in S : N(u) ⊄ S}|``.  O(2^n * n) time and O(2^n)
memory — exact ground truth for the test suite (n <= ~18).
"""

from __future__ import annotations

from typing import Optional

from repro.graphs import Graph
from repro.pathwidth.interval import IntervalRepresentation
from repro.pathwidth.path_decomposition import PathDecomposition

_EXACT_LIMIT = 24


def _boundary_size(graph: Graph, subset_mask: int, vertices: list, nbr_masks: list) -> int:
    """Return |{u in S : u has a neighbor outside S}| for the mask."""
    count = 0
    mask = subset_mask
    while mask:
        low = mask & -mask
        index = low.bit_length() - 1
        if nbr_masks[index] & ~subset_mask:
            count += 1
        mask ^= low
    return count


def exact_pathwidth(graph: Graph) -> int:
    """Return the exact pathwidth of ``graph``.

    Raises ``ValueError`` for graphs above the hard-coded size limit — use
    :func:`repro.pathwidth.heuristic_path_decomposition` or a generator
    with a built-in witness decomposition instead.
    """
    ordering = optimal_vertex_ordering(graph)
    if graph.n == 0:
        return -1
    return _vertex_separation_of(graph, ordering)


def optimal_vertex_ordering(graph: Graph) -> list:
    """Return a vertex ordering achieving the minimum vertex separation."""
    n = graph.n
    if n > _EXACT_LIMIT:
        raise ValueError(
            f"exact pathwidth limited to {_EXACT_LIMIT} vertices (got {n})"
        )
    if n == 0:
        return []
    vertices = graph.vertices()
    index_of = {v: i for i, v in enumerate(vertices)}
    nbr_masks = [0] * n
    for v in vertices:
        for u in graph.neighbors_sorted(v):
            nbr_masks[index_of[v]] |= 1 << index_of[u]

    full = (1 << n) - 1
    # f[S] = best achievable max-boundary when S is the prefix set.
    f = [0] * (1 << n)
    choice = [0] * (1 << n)
    boundary_cache = [0] * (1 << n)
    for subset in range(1, full + 1):
        boundary_cache[subset] = _boundary_size(graph, subset, vertices, nbr_masks)
        best = None
        best_v = -1
        b = boundary_cache[subset]
        mask = subset
        while mask:
            low = mask & -mask
            prev = subset ^ low
            candidate = max(f[prev], b)
            if best is None or candidate < best:
                best = candidate
                best_v = low.bit_length() - 1
            mask ^= low
        f[subset] = best if best is not None else 0
        choice[subset] = best_v

    # Reconstruct the ordering from the choices.
    order_indices = []
    subset = full
    while subset:
        v_index = choice[subset]
        order_indices.append(v_index)
        subset ^= 1 << v_index
    order_indices.reverse()
    return [vertices[i] for i in order_indices]


def _vertex_separation_of(graph: Graph, ordering: list) -> int:
    """Return the vertex separation of a specific ordering.

    O(n * m) direct evaluation: at each prefix, count prefix vertices with
    a neighbor strictly after the prefix.
    """
    position = {v: i for i, v in enumerate(ordering)}
    worst = 0
    for i in range(len(ordering)):
        boundary = sum(
            1
            for v in ordering[: i + 1]
            if any(position[u] > i for u in graph.neighbors_sorted(v))
        )
        worst = max(worst, boundary)
    return worst


def exact_path_decomposition(graph: Graph) -> PathDecomposition:
    """Return an optimal-width path decomposition (exact, small graphs).

    The optimal ordering is converted into an interval representation via
    :meth:`IntervalRepresentation.from_ordering` and then into bags; the
    resulting width equals the pathwidth.
    """
    if graph.n == 0:
        return PathDecomposition(graph, [], validate=False)
    ordering = optimal_vertex_ordering(graph)
    rep = IntervalRepresentation.from_ordering(graph, ordering)
    return PathDecomposition.from_interval_representation(rep)


def pathwidth_at_most(graph: Graph, k: int) -> bool:
    """Return whether ``pw(graph) <= k`` (exact; small graphs only)."""
    if graph.n == 0:
        return True
    return exact_pathwidth(graph) <= k


def exact_pathwidth_of_components(graph: Graph) -> int:
    """Return pathwidth of a possibly disconnected graph (max over parts)."""
    if graph.n == 0:
        return -1
    best = 0
    for component in graph.connected_components():
        sub = graph.induced_subgraph(component)
        best = max(best, exact_pathwidth(sub))
    return best
