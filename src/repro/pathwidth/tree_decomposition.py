"""Tree decompositions — the substrate of the FMRT'24 baseline.

Fraigniaud, Montealegre, Rapaport, and Todinca certify MSO2 properties on
bounded-treewidth graphs with O(log^2 n)-bit labels by running Courcelle's
dynamic program over a *balanced* tree decomposition.  This module provides
the decomposition structure and validation; balancing lives in
:mod:`repro.pathwidth.balanced`.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.graphs import Graph


class TreeDecomposition:
    """A rooted tree decomposition.

    Parameters
    ----------
    graph:
        The decomposed graph.
    bags:
        Mapping ``node_id -> collection of vertices``.
    tree_edges:
        Collection of ``(parent, child)`` pairs over ``node_id``s.
    root:
        The root node id.
    """

    def __init__(self, graph: Graph, bags: dict, tree_edges, root, validate=True) -> None:
        self.graph = graph
        self.bags = {node: sorted(set(bag)) for node, bag in bags.items()}
        self.root = root
        self.children: dict = {node: [] for node in self.bags}
        self.parent: dict = {node: None for node in self.bags}
        for parent, child in tree_edges:
            self.children[parent].append(child)
            self.parent[child] = parent
        for node in self.children:
            self.children[node].sort()
        if validate:
            self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` unless this is a valid rooted tree decomposition."""
        if self.root not in self.bags:
            raise ValueError("root is not a decomposition node")
        # The node graph must be a tree rooted at root.
        order = self.topological_order()
        if len(order) != len(self.bags):
            raise ValueError("decomposition nodes do not form a tree under root")
        # Vertex coverage.
        covered: set = set()
        for bag in self.bags.values():
            covered.update(bag)
        missing = set(self.graph.vertices()) - covered
        if missing:
            raise ValueError(f"vertices missing from all bags: {sorted(missing)!r}")
        # Edge coverage.
        bag_sets = {node: set(bag) for node, bag in self.bags.items()}
        for u, v in self.graph.edges():
            if not any(u in bag and v in bag for bag in bag_sets.values()):
                raise ValueError(f"edge {u!r}-{v!r} not covered by any bag")
        # Connectivity of each vertex's occurrence set.
        for vertex in covered:
            nodes = [node for node, bag in bag_sets.items() if vertex in bag]
            node_set = set(nodes)
            seen = {nodes[0]}
            queue = deque([nodes[0]])
            while queue:
                node = queue.popleft()
                neighbors = list(self.children[node])
                if self.parent[node] is not None:
                    neighbors.append(self.parent[node])
                for other in neighbors:
                    if other in node_set and other not in seen:
                        seen.add(other)
                        queue.append(other)
            if seen != node_set:
                raise ValueError(f"occurrences of {vertex!r} are not connected")

    # ------------------------------------------------------------------
    def width(self) -> int:
        """Return ``max |bag| - 1``."""
        if not self.bags:
            return -1
        return max(len(bag) for bag in self.bags.values()) - 1

    def depth(self) -> int:
        """Return the number of nodes on the longest root-to-leaf path."""
        depths = {self.root: 1}
        best = 1
        for node in self.topological_order():
            for child in self.children[node]:
                depths[child] = depths[node] + 1
                best = max(best, depths[child])
        return best

    def topological_order(self) -> list:
        """Return nodes in root-first (BFS) order."""
        order = []
        queue = deque([self.root])
        seen = {self.root}
        while queue:
            node = queue.popleft()
            order.append(node)
            for child in self.children[node]:
                if child not in seen:
                    seen.add(child)
                    queue.append(child)
        return order

    def root_path(self, node) -> list:
        """Return the node's ancestors from the root down to the node."""
        path = [node]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])
        path.reverse()
        return path

    def __repr__(self) -> str:
        return (
            f"TreeDecomposition(nodes={len(self.bags)}, width={self.width()}, "
            f"depth={self.depth()})"
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_path_decomposition(cls, decomposition) -> "TreeDecomposition":
        """View a path decomposition as a caterpillar-shaped tree decomposition."""
        bags = {i: bag for i, bag in enumerate(decomposition.bags)}
        edges = [(i, i + 1) for i in range(len(decomposition.bags) - 1)]
        root = 0 if bags else None
        if root is None:
            raise ValueError("cannot root an empty decomposition")
        return cls(decomposition.graph, bags, edges, root)
