"""Logarithmic-depth rebalancing of path decompositions (Bodlaender 1989).

The FMRT'24 scheme needs decompositions of depth O(log n): it stores one
DP record per ancestor bag in each label, so depth is the label-size
driver.  The classic rebalancing takes a path decomposition with bags
``X_1..X_s`` of width ``k`` and produces a *binary* tree decomposition of
depth O(log s) and width at most ``3k + 2``: the node for a bag-index
interval ``[i, j]`` gets the bag ``X_i ∪ X_m ∪ X_j`` (``m`` the midpoint)
and recurses on the two halves.

The paper's Section 3 recalls precisely this transformation as the source
of the baseline's O(log^2 n) label size — depth Omega(log n) is
unavoidable for balanced decompositions, which is why the paper develops
the bounded-depth k-lane hierarchy instead.
"""

from __future__ import annotations

from repro.pathwidth.path_decomposition import PathDecomposition
from repro.pathwidth.tree_decomposition import TreeDecomposition


def balanced_binary_decomposition(decomposition: PathDecomposition) -> TreeDecomposition:
    """Return a width ``<= 3k + 2``, depth ``O(log s)`` tree decomposition."""
    bags = decomposition.bags
    if not bags:
        raise ValueError("cannot balance an empty decomposition")

    node_bags: dict = {}
    tree_edges: list = []
    counter = [0]

    def build(lo: int, hi: int) -> int:
        node = counter[0]
        counter[0] += 1
        if hi - lo <= 1:
            node_bags[node] = set(bags[lo]) | set(bags[hi])
            return node
        mid = (lo + hi) // 2
        node_bags[node] = set(bags[lo]) | set(bags[mid]) | set(bags[hi])
        left = build(lo, mid)
        tree_edges.append((node, left))
        right = build(mid, hi)
        tree_edges.append((node, right))
        return node

    root = build(0, len(bags) - 1)
    return TreeDecomposition(decomposition.graph, node_bags, tree_edges, root)
