"""A small text syntax for MSO2 formulas.

Grammar (precedence low to high; ``->`` is right-associative)::

    formula  := iff
    iff      := implies ('<->' implies)*
    implies  := or ('->' implies)?
    or       := and ('|' and)*
    and      := unary ('&' unary)*
    unary    := '~' unary | quantifier | atom
    quantifier := ('exists' | 'forall') decls '.' unary
    decls    := NAME ':' sort (',' NAME ':' sort)*
    sort     := 'V' | 'E' | 'SV' | 'SE'
    atom     := 'adj(' NAME ',' NAME ')'
              | 'inc(' NAME ',' NAME ')'
              | NAME 'in' NAME
              | NAME '=' NAME | NAME '!=' NAME
              | 'label(' NAME ')' '=' token
              | '(' formula ')'

Examples::

    parse_formula("forall u:V, v:V. adj(u, v) -> ~(u = v)")
    parse_formula("exists S:SV. forall v:V. v in S | exists u:V. u in S & adj(u,v)")

Sorts: ``V`` vertex, ``E`` edge, ``SV`` vertex set, ``SE`` edge set.
Free variables may be pre-declared via the ``free`` argument.
"""

from __future__ import annotations

import re

from repro.mso.syntax import (
    Adj,
    And,
    EdgeSetVar,
    EdgeVar,
    Eq,
    Exists,
    ForAll,
    Formula,
    HasLabel,
    Iff,
    Implies,
    In,
    Inc,
    Not,
    Or,
    VertexSetVar,
    VertexVar,
)

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<arrow><->|->)|(?P<op>[~&|().,:=])|(?P<neq>!=)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)|(?P<literal>'[^']*'|\"[^\"]*\"|\d+))"
)

_SORTS = {
    "V": VertexVar,
    "E": EdgeVar,
    "SV": VertexSetVar,
    "SE": EdgeSetVar,
}

_KEYWORDS = {"exists", "forall", "in", "adj", "inc", "label", "true", "false"}


class ParseError(ValueError):
    """Raised on malformed formula text."""


def _tokenize(text: str) -> list:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError(f"cannot tokenize at: {remainder[:20]!r}")
        pos = match.end()
        for kind in ("arrow", "op", "neq", "name", "literal"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


class _Parser:
    def __init__(self, tokens: list, scope: dict):
        self.tokens = tokens
        self.index = 0
        self.scope = dict(scope)

    # ------------------------------------------------------------------
    def peek(self):
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return (None, None)

    def advance(self):
        token = self.peek()
        self.index += 1
        return token

    def expect(self, value: str):
        kind, tok = self.advance()
        if tok != value:
            raise ParseError(f"expected {value!r}, got {tok!r}")
        return tok

    # ------------------------------------------------------------------
    def parse_formula(self) -> Formula:
        left = self.parse_implies()
        while self.peek()[1] == "<->":
            self.advance()
            left = Iff(left, self.parse_implies())
        return left

    def parse_implies(self) -> Formula:
        left = self.parse_or()
        if self.peek()[1] == "->":
            self.advance()
            return Implies(left, self.parse_implies())
        return left

    def parse_or(self) -> Formula:
        left = self.parse_and()
        while self.peek()[1] == "|":
            self.advance()
            left = Or(left, self.parse_and())
        return left

    def parse_and(self) -> Formula:
        left = self.parse_unary()
        while self.peek()[1] == "&":
            self.advance()
            left = And(left, self.parse_unary())
        return left

    def parse_unary(self) -> Formula:
        kind, tok = self.peek()
        if tok == "~":
            self.advance()
            return Not(self.parse_unary())
        if tok in ("exists", "forall"):
            return self.parse_quantifier()
        return self.parse_atom()

    def parse_quantifier(self) -> Formula:
        _, keyword = self.advance()
        constructor = Exists if keyword == "exists" else ForAll
        declarations = [self.parse_declaration()]
        while self.peek()[1] == ",":
            self.advance()
            declarations.append(self.parse_declaration())
        self.expect(".")
        saved = {}
        for var in declarations:
            saved[var.name] = self.scope.get(var.name)
            self.scope[var.name] = var
        # Quantifiers take the widest possible scope, as is conventional:
        # "exists v:V. A & B" binds v in both A and B.
        body = self.parse_formula()
        for var in declarations:
            if saved[var.name] is None:
                del self.scope[var.name]
            else:
                self.scope[var.name] = saved[var.name]
        for var in reversed(declarations):
            body = constructor(var, body)
        return body

    def parse_declaration(self):
        kind, name = self.advance()
        if kind != "name" or name in _KEYWORDS:
            raise ParseError(f"expected variable name, got {name!r}")
        self.expect(":")
        kind, sort = self.advance()
        if sort not in _SORTS:
            raise ParseError(f"unknown sort {sort!r} (use V, E, SV, SE)")
        return _SORTS[sort](name)

    def lookup(self, name: str):
        if name not in self.scope:
            raise ParseError(f"unbound variable {name!r}")
        return self.scope[name]

    def parse_atom(self) -> Formula:
        kind, tok = self.advance()
        if tok == "(":
            inner = self.parse_formula()
            self.expect(")")
            return inner
        if tok == "adj":
            self.expect("(")
            left = self.lookup(self.advance()[1])
            self.expect(",")
            right = self.lookup(self.advance()[1])
            self.expect(")")
            return Adj(left, right)
        if tok == "inc":
            self.expect("(")
            edge = self.lookup(self.advance()[1])
            self.expect(",")
            vertex = self.lookup(self.advance()[1])
            self.expect(")")
            return Inc(edge, vertex)
        if tok == "label":
            self.expect("(")
            variable = self.lookup(self.advance()[1])
            self.expect(")")
            self.expect("=")
            kind, literal = self.advance()
            if kind != "literal":
                raise ParseError(f"expected literal after label(...)=, got {literal!r}")
            if literal.isdigit():
                value: object = int(literal)
            else:
                value = literal[1:-1]
            return HasLabel(variable, value)
        if kind == "name" and tok not in _KEYWORDS:
            variable = self.lookup(tok)
            nxt_kind, nxt = self.peek()
            if nxt == "in":
                self.advance()
                set_var = self.lookup(self.advance()[1])
                return In(variable, set_var)
            if nxt == "=":
                self.advance()
                other = self.lookup(self.advance()[1])
                return Eq(variable, other)
            if nxt == "!=":
                self.advance()
                other = self.lookup(self.advance()[1])
                return Not(Eq(variable, other))
            raise ParseError(f"expected 'in', '=' or '!=' after {tok!r}, got {nxt!r}")
        raise ParseError(f"unexpected token {tok!r}")


def parse_formula(text: str, free: dict = None) -> Formula:
    """Parse ``text`` into a :class:`Formula`.

    ``free`` optionally declares free variables, mapping name to sort
    letter (``"V"``, ``"E"``, ``"SV"``, ``"SE"``).
    """
    scope = {}
    for name, sort in (free or {}).items():
        if sort not in _SORTS:
            raise ParseError(f"unknown sort {sort!r} for free variable {name!r}")
        scope[name] = _SORTS[sort](name)
    parser = _Parser(_tokenize(text), scope)
    formula = parser.parse_formula()
    if parser.index != len(parser.tokens):
        raise ParseError(
            f"trailing tokens: {parser.tokens[parser.index:][:5]!r}"
        )
    return formula
