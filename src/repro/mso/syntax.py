"""Abstract syntax for the paper's MSO2 fragment (Section 1.2).

Variables come in four sorts — vertex, edge, vertex set, edge set — and
formulas are built from five atomic predicates, the usual connectives, and
quantifiers over any sort.  The AST is immutable (frozen dataclasses) so
formulas can be hashed, deduplicated, and used as dictionary keys by the
Courcelle machinery and the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# ----------------------------------------------------------------------
# Variables
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Variable:
    """Base class for sorted variables; ``name`` identifies the binder."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class VertexVar(Variable):
    """A first-order vertex variable."""


@dataclass(frozen=True)
class EdgeVar(Variable):
    """A first-order edge variable."""


@dataclass(frozen=True)
class VertexSetVar(Variable):
    """A monadic second-order vertex-set variable."""


@dataclass(frozen=True)
class EdgeSetVar(Variable):
    """A monadic second-order edge-set variable."""


FIRST_ORDER_SORTS = (VertexVar, EdgeVar)
SET_SORTS = (VertexSetVar, EdgeSetVar)


# ----------------------------------------------------------------------
# Formulas
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Formula:
    """Base class for formulas."""

    def free_variables(self) -> frozenset:
        raise NotImplementedError

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class In(Formula):
    """``element in set_var`` — sorts must match (vertex/vertex-set etc.)."""

    element: Variable
    set_var: Variable

    def __post_init__(self):
        ok = (
            isinstance(self.element, VertexVar)
            and isinstance(self.set_var, VertexSetVar)
        ) or (
            isinstance(self.element, EdgeVar) and isinstance(self.set_var, EdgeSetVar)
        )
        if not ok:
            raise TypeError(
                f"sort mismatch in {self.element} in {self.set_var}"
            )

    def free_variables(self) -> frozenset:
        return frozenset({self.element, self.set_var})

    def __str__(self) -> str:
        return f"{self.element} in {self.set_var}"


@dataclass(frozen=True)
class Inc(Formula):
    """``inc(e, v)`` — edge ``e`` is incident to vertex ``v``."""

    edge: EdgeVar
    vertex: VertexVar

    def __post_init__(self):
        if not isinstance(self.edge, EdgeVar) or not isinstance(self.vertex, VertexVar):
            raise TypeError("inc(e, v) needs an edge and a vertex variable")

    def free_variables(self) -> frozenset:
        return frozenset({self.edge, self.vertex})

    def __str__(self) -> str:
        return f"inc({self.edge}, {self.vertex})"


@dataclass(frozen=True)
class Adj(Formula):
    """``adj(u, v)`` — vertices ``u`` and ``v`` are adjacent."""

    left: VertexVar
    right: VertexVar

    def __post_init__(self):
        if not isinstance(self.left, VertexVar) or not isinstance(self.right, VertexVar):
            raise TypeError("adj(u, v) needs two vertex variables")

    def free_variables(self) -> frozenset:
        return frozenset({self.left, self.right})

    def __str__(self) -> str:
        return f"adj({self.left}, {self.right})"


@dataclass(frozen=True)
class Eq(Formula):
    """Equality between two variables of the same sort."""

    left: Variable
    right: Variable

    def __post_init__(self):
        if type(self.left) is not type(self.right):
            raise TypeError(
                f"equality across sorts: {type(self.left).__name__} "
                f"vs {type(self.right).__name__}"
            )

    def free_variables(self) -> frozenset:
        return frozenset({self.left, self.right})

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class HasLabel(Formula):
    """Input-label predicate: the vertex/edge carries the given input label.

    This is the standard extension of Courcelle's theorem to labeled graphs
    (Section 2.2): vertices and edges may carry labels from a fixed finite
    set, and formulas may test them.
    """

    variable: Variable
    label: object

    def __post_init__(self):
        if not isinstance(self.variable, (VertexVar, EdgeVar)):
            raise TypeError("HasLabel applies to first-order variables only")

    def free_variables(self) -> frozenset:
        return frozenset({self.variable})

    def __str__(self) -> str:
        return f"label({self.variable}) = {self.label!r}"


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    operand: Formula

    def free_variables(self) -> frozenset:
        return self.operand.free_variables()

    def __str__(self) -> str:
        return f"~({self.operand})"


@dataclass(frozen=True)
class And(Formula):
    """Conjunction."""

    left: Formula
    right: Formula

    def free_variables(self) -> frozenset:
        return self.left.free_variables() | self.right.free_variables()

    def __str__(self) -> str:
        return f"({self.left} & {self.right})"


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction."""

    left: Formula
    right: Formula

    def free_variables(self) -> frozenset:
        return self.left.free_variables() | self.right.free_variables()

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True)
class Implies(Formula):
    """Implication."""

    left: Formula
    right: Formula

    def free_variables(self) -> frozenset:
        return self.left.free_variables() | self.right.free_variables()

    def __str__(self) -> str:
        return f"({self.left} -> {self.right})"


@dataclass(frozen=True)
class Iff(Formula):
    """Biconditional."""

    left: Formula
    right: Formula

    def free_variables(self) -> frozenset:
        return self.left.free_variables() | self.right.free_variables()

    def __str__(self) -> str:
        return f"({self.left} <-> {self.right})"


@dataclass(frozen=True)
class Exists(Formula):
    """Existential quantification over any sort."""

    variable: Variable
    body: Formula

    def free_variables(self) -> frozenset:
        return self.body.free_variables() - {self.variable}

    def __str__(self) -> str:
        sort = type(self.variable).__name__
        return f"exists {self.variable}:{sort}. ({self.body})"


@dataclass(frozen=True)
class ForAll(Formula):
    """Universal quantification over any sort."""

    variable: Variable
    body: Formula

    def free_variables(self) -> frozenset:
        return self.body.free_variables() - {self.variable}

    def __str__(self) -> str:
        sort = type(self.variable).__name__
        return f"forall {self.variable}:{sort}. ({self.body})"


def exists_many(variables, body: Formula) -> Formula:
    """Nest ``Exists`` binders for each variable, innermost last."""
    result = body
    for var in reversed(list(variables)):
        result = Exists(var, result)
    return result


def forall_many(variables, body: Formula) -> Formula:
    """Nest ``ForAll`` binders for each variable, innermost last."""
    result = body
    for var in reversed(list(variables)):
        result = ForAll(var, result)
    return result


def quantifier_depth(formula: Formula) -> int:
    """Return the maximum nesting depth of quantifiers."""
    if isinstance(formula, (Exists, ForAll)):
        return 1 + quantifier_depth(formula.body)
    if isinstance(formula, Not):
        return quantifier_depth(formula.operand)
    if isinstance(formula, (And, Or, Implies, Iff)):
        return max(quantifier_depth(formula.left), quantifier_depth(formula.right))
    return 0
