"""The property zoo: MSO2 formulas paired with direct checkers.

The paper's headline examples (Section 1.2) — planarity, Hamiltonicity,
k-colorability, H-minor-freeness, perfect matching, bounded vertex cover —
are all MSO2-expressible.  Each :class:`GraphProperty` here bundles

* a human-readable name,
* the defining MSO2 formula (when practical to state; ``None`` for
  counting properties that live in the standard CMSO extension),
* a **direct checker**: an independent decision procedure used as ground
  truth in cross-validation tests and experiments, and
* the key of the matching homomorphism-class algebra in
  :mod:`repro.courcelle` (when one is implemented).

The formulas are deliberately written in the primitive vocabulary of
Section 1.2 so the naive model checker exercises the same fragment the
paper quantifies over.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.graphs import Graph
from repro.mso.syntax import (
    Adj,
    And,
    EdgeSetVar,
    EdgeVar,
    Eq,
    Exists,
    ForAll,
    Formula,
    Iff,
    Implies,
    In,
    Inc,
    Not,
    Or,
    VertexSetVar,
    VertexVar,
    exists_many,
    forall_many,
)


@dataclass(frozen=True)
class GraphProperty:
    """A named graph property with formula and reference checker."""

    name: str
    description: str
    check: Callable[[Graph], bool]
    formula: Optional[Formula] = None
    algebra_key: Optional[str] = None
    cmso: bool = False  # counting-MSO extension rather than plain MSO2

    def __call__(self, graph: Graph) -> bool:
        return self.check(graph)

    def __repr__(self) -> str:
        return f"GraphProperty({self.name!r})"


# ----------------------------------------------------------------------
# Formula builders
# ----------------------------------------------------------------------
def _vertex_set_nonempty(S: VertexSetVar) -> Formula:
    x = VertexVar("_x_ne")
    return Exists(x, In(x, S))


def _crossing_edge(S: VertexSetVar) -> Formula:
    """Some edge leaves S (one endpoint in, one out)."""
    u, v = VertexVar("_u_cr"), VertexVar("_v_cr")
    return Exists(u, Exists(v, And(And(In(u, S), Not(In(v, S))), Adj(u, v))))


def connectivity_formula() -> Formula:
    """Connected: every non-trivial vertex cut is crossed by an edge."""
    S = VertexSetVar("S")
    x, y = VertexVar("_x"), VertexVar("_y")
    nontrivial = And(Exists(x, In(x, S)), Exists(y, Not(In(y, S))))
    return ForAll(S, Implies(nontrivial, _crossing_edge(S)))


def acyclicity_formula() -> Formula:
    """Forest: no non-empty edge set in which every touched vertex has
    two incident set-edges (such a set contains a cycle and vice versa)."""
    F = EdgeSetVar("F")
    e, e1, e2 = EdgeVar("_e"), EdgeVar("_e1"), EdgeVar("_e2")
    v = VertexVar("_v")
    touched = Exists(e, And(In(e, F), Inc(e, v)))
    two_incident = Exists(
        e1,
        Exists(
            e2,
            And(
                And(In(e1, F), In(e2, F)),
                And(Not(Eq(e1, e2)), And(Inc(e1, v), Inc(e2, v))),
            ),
        ),
    )
    cycle_exists = Exists(
        F, And(Exists(e, In(e, F)), ForAll(v, Implies(touched, two_incident)))
    )
    return Not(cycle_exists)


def colorability_formula(q: int) -> Formula:
    """q-colorable: a partition into q independent sets exists."""
    classes = [VertexSetVar(f"C{i}") for i in range(q)]
    v = VertexVar("_v")
    u, w = VertexVar("_u"), VertexVar("_w")
    covered = ForAll(v, _or_many([In(v, c) for c in classes]))
    independent = forall_many(
        [u, w],
        Implies(
            Adj(u, w),
            _and_many([Not(And(In(u, c), In(w, c))) for c in classes]),
        ),
    )
    return exists_many(classes, And(covered, independent))


def perfect_matching_formula() -> Formula:
    """A spanning edge set in which every vertex has exactly one incident edge."""
    F = EdgeSetVar("F")
    v = VertexVar("_v")
    e, e1, e2 = EdgeVar("_e"), EdgeVar("_e1"), EdgeVar("_e2")
    has_one = Exists(e, And(In(e, F), Inc(e, v)))
    at_most_one = forall_many(
        [e1, e2],
        Implies(
            And(And(In(e1, F), In(e2, F)), And(Inc(e1, v), Inc(e2, v))),
            Eq(e1, e2),
        ),
    )
    return Exists(F, ForAll(v, And(has_one, at_most_one)))


def hamiltonian_cycle_formula() -> Formula:
    """A connected spanning 2-regular edge subset exists.

    Expressed as: there is an edge set F such that (a) every vertex has
    exactly two incident F-edges and (b) the spanning subgraph (V, F) is
    connected (every proper non-empty vertex cut is crossed by an F-edge).
    """
    F = EdgeSetVar("F")
    v = VertexVar("_v")
    S = VertexSetVar("_S")
    e1, e2, e3 = EdgeVar("_e1"), EdgeVar("_e2"), EdgeVar("_e3")
    x, y = VertexVar("_x"), VertexVar("_y")
    u1, u2 = VertexVar("_u1"), VertexVar("_u2")

    two_distinct = exists_many(
        [e1, e2],
        And(
            And(And(In(e1, F), In(e2, F)), Not(Eq(e1, e2))),
            And(Inc(e1, v), Inc(e2, v)),
        ),
    )
    at_most_two = forall_many(
        [e1, e2, e3],
        Implies(
            _and_many(
                [
                    In(e1, F),
                    In(e2, F),
                    In(e3, F),
                    Inc(e1, v),
                    Inc(e2, v),
                    Inc(e3, v),
                ]
            ),
            _or_many([Eq(e1, e2), Eq(e1, e3), Eq(e2, e3)]),
        ),
    )
    degree_two = ForAll(v, And(two_distinct, at_most_two))

    nontrivial = And(Exists(x, In(x, S)), Exists(y, Not(In(y, S))))
    f_crossing = exists_many(
        [e1, u1, u2],
        _and_many(
            [
                In(e1, F),
                Inc(e1, u1),
                Inc(e1, u2),
                In(u1, S),
                Not(In(u2, S)),
            ]
        ),
    )
    connected = ForAll(S, Implies(nontrivial, f_crossing))
    return Exists(F, And(degree_two, connected))


def vertex_cover_formula(c: int) -> Formula:
    """``c`` vertices covering every edge (vertex cover of size <= c)."""
    covers = [VertexVar(f"x{i}") for i in range(c)]
    e = EdgeVar("_e")
    if c == 0:
        return ForAll(e, Not(Eq(e, e)))  # no edges at all
    covered = ForAll(e, _or_many([Inc(e, x) for x in covers]))
    return exists_many(covers, covered)


def independent_set_formula(c: int) -> Formula:
    """``c`` pairwise distinct, pairwise non-adjacent vertices exist."""
    chosen = [VertexVar(f"x{i}") for i in range(c)]
    if c == 0:
        v = VertexVar("_v")
        return ForAll(v, Eq(v, v))  # trivially true
    constraints = []
    for a, b in itertools.combinations(chosen, 2):
        constraints.append(Not(Eq(a, b)))
        constraints.append(Not(Adj(a, b)))
    return exists_many(chosen, _and_many(constraints) if constraints else Eq(chosen[0], chosen[0]))


def dominating_set_formula(c: int) -> Formula:
    """``c`` vertices dominating every vertex (closed neighborhoods)."""
    chosen = [VertexVar(f"x{i}") for i in range(c)]
    v = VertexVar("_v")
    if c == 0:
        return ForAll(v, Not(Eq(v, v)))  # only the empty graph
    dominated = ForAll(
        v, _or_many([Or(Eq(v, x), Adj(v, x)) for x in chosen])
    )
    return exists_many(chosen, dominated)


def max_degree_formula(delta: int) -> Formula:
    """Maximum degree <= delta (no delta+1 distinct neighbors)."""
    v = VertexVar("_v")
    nbrs = [VertexVar(f"w{i}") for i in range(delta + 1)]
    all_adjacent = _and_many([Adj(v, w) for w in nbrs])
    all_distinct = _and_many(
        [Not(Eq(a, b)) for a, b in itertools.combinations(nbrs, 2)]
    )
    too_many = exists_many(nbrs, And(all_adjacent, all_distinct))
    return ForAll(v, Not(too_many))


def triangle_free_formula() -> Formula:
    """No three pairwise adjacent vertices."""
    u, v, w = VertexVar("_u"), VertexVar("_v"), VertexVar("_w")
    triangle = exists_many(
        [u, v, w], _and_many([Adj(u, v), Adj(v, w), Adj(u, w)])
    )
    return Not(triangle)


def _and_many(formulas: list) -> Formula:
    result = formulas[0]
    for f in formulas[1:]:
        result = And(result, f)
    return result


def _or_many(formulas: list) -> Formula:
    result = formulas[0]
    for f in formulas[1:]:
        result = Or(result, f)
    return result


# ----------------------------------------------------------------------
# Direct checkers (independent ground truth)
# ----------------------------------------------------------------------
def is_bipartite(graph: Graph) -> bool:
    """2-colorability by BFS."""
    color: dict = {}
    for start in graph.vertices():
        if start in color:
            continue
        color[start] = 0
        queue = [start]
        while queue:
            u = queue.pop()
            for w in graph.neighbors(u):
                if w not in color:
                    color[w] = 1 - color[u]
                    queue.append(w)
                elif color[w] == color[u]:
                    return False
    return True


def is_q_colorable(graph: Graph, q: int) -> bool:
    """Backtracking q-coloring (exponential; ground truth for small graphs)."""
    if q >= graph.n:
        return True
    order = sorted(graph.vertices(), key=graph.degree, reverse=True)
    color: dict = {}

    def assign(index: int) -> bool:
        if index == len(order):
            return True
        v = order[index]
        used = {color[u] for u in graph.neighbors(v) if u in color}
        for c in range(q):
            if c in used:
                continue
            color[v] = c
            if assign(index + 1):
                return True
            del color[v]
            if c not in used and all(c2 in used for c2 in range(c)):
                # First fresh color failed: any other fresh color is
                # symmetric, so prune.
                break
        return False

    return assign(0)


def has_hamiltonian_path(graph: Graph) -> bool:
    """Backtracking Hamiltonian path search."""
    n = graph.n
    if n == 0:
        return False
    if n == 1:
        return True

    def extend(v, visited: set) -> bool:
        if len(visited) == n:
            return True
        return any(
            extend(w, visited | {w})
            for w in sorted(graph.neighbors(v))
            if w not in visited
        )

    return any(extend(v, {v}) for v in graph.vertices())


def has_hamiltonian_cycle(graph: Graph) -> bool:
    """Backtracking Hamiltonian cycle search."""
    n = graph.n
    if n < 3:
        return False
    start = graph.vertices()[0]

    def extend(v, visited: set) -> bool:
        if len(visited) == n:
            return graph.has_edge(v, start)
        return any(
            extend(w, visited | {w})
            for w in sorted(graph.neighbors(v))
            if w not in visited
        )

    return extend(start, {start})


def has_perfect_matching(graph: Graph) -> bool:
    """Backtracking perfect matching search (exact, small graphs)."""
    if graph.n % 2 != 0:
        return False
    unmatched = set(graph.vertices())

    def match() -> bool:
        if not unmatched:
            return True
        v = min(unmatched)
        unmatched.discard(v)
        for w in sorted(graph.neighbors(v)):
            if w in unmatched:
                unmatched.discard(w)
                if match():
                    unmatched.add(w)
                    unmatched.add(v)
                    return True
                unmatched.add(w)
        unmatched.add(v)
        return False

    return match()


def has_vertex_cover_at_most(graph: Graph, c: int) -> bool:
    """Classic FPT branching on an uncovered edge."""

    def solve(edges: list, budget: int) -> bool:
        edges = [e for e in edges]
        if not edges:
            return True
        if budget == 0:
            return False
        u, v = edges[0]
        rest_u = [e for e in edges if u not in e]
        if solve(rest_u, budget - 1):
            return True
        rest_v = [e for e in edges if v not in e]
        return solve(rest_v, budget - 1)

    return solve(graph.edges(), c)


def has_independent_set_at_least(graph: Graph, c: int) -> bool:
    """IS >= c iff VC <= n - c (complement duality)."""
    if c <= 0:
        return True
    if c > graph.n:
        return False
    return has_vertex_cover_at_most(graph, graph.n - c)


def has_dominating_set_at_most(graph: Graph, c: int) -> bool:
    """Exact search over candidate dominating sets (small graphs)."""
    vertices = graph.vertices()
    if c >= len(vertices):
        return True
    closed: dict = {
        v: frozenset(graph.neighbors(v)) | {v} for v in vertices
    }
    for size in range(min(c, len(vertices)) + 1):
        for combo in itertools.combinations(vertices, size):
            covered: set = set()
            for v in combo:
                covered |= closed[v]
            if len(covered) == len(vertices):
                return True
    return False


def is_triangle_free(graph: Graph) -> bool:
    """No K3 subgraph."""
    for u, v in graph.edges():
        if graph.neighbors(u) & graph.neighbors(v):
            return False
    return True


def is_caterpillar_forest(graph: Graph) -> bool:
    """Every component is a caterpillar — exactly pathwidth <= 1.

    A connected graph is a caterpillar iff it is a tree whose non-leaf
    vertices induce a path.
    """
    if not graph.is_forest():
        return False
    for component in graph.connected_components():
        sub = graph.induced_subgraph(component)
        spine = [v for v in sub.vertices() if sub.degree(v) >= 2]
        if not spine:
            continue
        spine_graph = sub.induced_subgraph(spine)
        if not (spine_graph.is_path_graph() or spine_graph.n == 0):
            return False
    return True


# ----------------------------------------------------------------------
# The zoo
# ----------------------------------------------------------------------
def _property_list() -> list:
    props = [
        GraphProperty(
            name="connected",
            description="the graph is connected",
            check=Graph.is_connected,
            formula=connectivity_formula(),
            algebra_key="connected",
        ),
        GraphProperty(
            name="acyclic",
            description="the graph is a forest",
            check=Graph.is_forest,
            formula=acyclicity_formula(),
            algebra_key="acyclic",
        ),
        GraphProperty(
            name="tree",
            description="connected and acyclic",
            check=lambda g: g.is_tree(),
            formula=And(connectivity_formula(), acyclicity_formula()),
            algebra_key="tree",
        ),
        GraphProperty(
            name="bipartite",
            description="2-colorable",
            check=is_bipartite,
            formula=colorability_formula(2),
            algebra_key="bipartite",
        ),
        GraphProperty(
            name="3-colorable",
            description="3-colorable",
            check=lambda g: is_q_colorable(g, 3),
            formula=colorability_formula(3),
            algebra_key="colorable-3",
        ),
        GraphProperty(
            name="hamiltonian-path",
            description="a Hamiltonian path exists",
            check=has_hamiltonian_path,
            formula=None,  # statable but gigantic; cycle version provided
            algebra_key="hamiltonian-path",
        ),
        GraphProperty(
            name="hamiltonian-cycle",
            description="a Hamiltonian cycle exists",
            check=has_hamiltonian_cycle,
            formula=hamiltonian_cycle_formula(),
            algebra_key="hamiltonian-cycle",
        ),
        GraphProperty(
            name="perfect-matching",
            description="a perfect matching exists",
            check=has_perfect_matching,
            formula=perfect_matching_formula(),
            algebra_key="perfect-matching",
        ),
        GraphProperty(
            name="triangle-free",
            description="no K3 subgraph",
            check=is_triangle_free,
            formula=triangle_free_formula(),
            algebra_key="triangle-free",
        ),
        GraphProperty(
            name="even-order",
            description="|V| is even (counting-MSO extension)",
            check=lambda g: g.n % 2 == 0,
            formula=None,
            algebra_key="even-order",
            cmso=True,
        ),
        GraphProperty(
            name="caterpillar-forest",
            description="pathwidth <= 1 (minor obstructions K3 and S(2,2,2))",
            check=is_caterpillar_forest,
            formula=None,  # obstruction formula omitted; checker is exact
            algebra_key="caterpillar",
        ),
    ]
    for c in (1, 2, 3):
        props.append(
            GraphProperty(
                name=f"vertex-cover<={c}",
                description=f"a vertex cover of size at most {c} exists",
                check=lambda g, c=c: has_vertex_cover_at_most(g, c),
                formula=vertex_cover_formula(c),
                algebra_key=f"vertex-cover-{c}",
            )
        )
        props.append(
            GraphProperty(
                name=f"independent-set>={c}",
                description=f"an independent set of size at least {c} exists",
                check=lambda g, c=c: has_independent_set_at_least(g, c),
                formula=independent_set_formula(c),
                algebra_key=f"independent-set-{c}",
            )
        )
        props.append(
            GraphProperty(
                name=f"dominating-set<={c}",
                description=f"a dominating set of size at most {c} exists",
                check=lambda g, c=c: has_dominating_set_at_most(g, c),
                formula=dominating_set_formula(c),
                algebra_key=f"dominating-set-{c}",
            )
        )
    for delta in (2, 3):
        props.append(
            GraphProperty(
                name=f"max-degree<={delta}",
                description=f"maximum degree at most {delta}",
                check=lambda g, d=delta: g.max_degree() <= d,
                formula=max_degree_formula(delta),
                algebra_key=f"max-degree-{delta}",
            )
        )
    return props


PROPERTY_ZOO: dict = {prop.name: prop for prop in _property_list()}
