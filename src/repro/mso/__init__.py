"""Monadic second-order logic (MSO2) on graphs.

Section 1.2 of the paper fixes the MSO2 fragment: four variable sorts
(vertices, edges, vertex sets, edge sets), quantifiers over all of them,
boolean connectives, and the atomic predicates ``v in U``, ``e in F``,
``inc(e, v)``, ``adj(u, v)``, and sort-respecting equality.

This package provides

* an AST (:mod:`repro.mso.syntax`) with smart constructors,
* a text parser (:mod:`repro.mso.parser`),
* a naive exponential model checker (:mod:`repro.mso.semantics`) used as
  ground truth on small graphs, and
* the property zoo (:mod:`repro.mso.properties`): each headline property of
  the paper as an MSO2 formula paired with a direct polynomial checker.
"""

from repro.mso.syntax import (
    Adj,
    And,
    EdgeSetVar,
    EdgeVar,
    Eq,
    Exists,
    ForAll,
    Formula,
    Iff,
    Implies,
    In,
    Inc,
    Not,
    Or,
    VertexSetVar,
    VertexVar,
)
from repro.mso.parser import parse_formula
from repro.mso.semantics import check_formula
from repro.mso.properties import PROPERTY_ZOO, GraphProperty

__all__ = [
    "Adj",
    "And",
    "EdgeSetVar",
    "EdgeVar",
    "Eq",
    "Exists",
    "ForAll",
    "Formula",
    "Iff",
    "Implies",
    "In",
    "Inc",
    "Not",
    "Or",
    "VertexSetVar",
    "VertexVar",
    "parse_formula",
    "check_formula",
    "PROPERTY_ZOO",
    "GraphProperty",
]
