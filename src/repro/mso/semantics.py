"""Naive MSO2 model checking — exponential, exact, ground truth.

The checker evaluates a formula over a graph by direct enumeration:
first-order quantifiers range over vertices/edges, set quantifiers over all
``2^n`` (or ``2^m``) subsets.  Intended strictly for small graphs, where it
serves as the reference semantics against which the homomorphism-class
algebras of :mod:`repro.courcelle` are validated — the same role the
"semantic" side of Proposition 2.4 plays in the paper's correctness
argument.
"""

from __future__ import annotations

import itertools

from repro.graphs import Graph
from repro.mso.syntax import (
    Adj,
    And,
    EdgeSetVar,
    EdgeVar,
    Eq,
    Exists,
    ForAll,
    Formula,
    HasLabel,
    Iff,
    Implies,
    In,
    Inc,
    Not,
    Or,
    VertexSetVar,
    VertexVar,
)

_SET_QUANTIFIER_LIMIT = 16


def check_formula(graph: Graph, formula: Formula, assignment: dict = None) -> bool:
    """Return whether ``graph`` (with ``assignment`` for free variables)
    satisfies ``formula``.

    ``assignment`` maps variables to values: vertices for ``VertexVar``,
    canonical edge keys for ``EdgeVar``, frozensets thereof for set
    variables.  Raises ``ValueError`` when a set quantifier would enumerate
    more than ``2**16`` subsets.
    """
    assignment = dict(assignment or {})
    free = formula.free_variables() - set(assignment)
    if free:
        raise ValueError(f"unassigned free variables: {sorted(map(str, free))}")
    return _eval(graph, formula, assignment)


def _domain(graph: Graph, variable):
    """Yield the values a quantified variable ranges over."""
    if isinstance(variable, VertexVar):
        yield from graph.vertices()
    elif isinstance(variable, EdgeVar):
        yield from graph.edges()
    elif isinstance(variable, VertexSetVar):
        items = graph.vertices()
        if len(items) > _SET_QUANTIFIER_LIMIT:
            raise ValueError(
                f"set quantifier over {len(items)} vertices exceeds the naive "
                f"checker's limit ({_SET_QUANTIFIER_LIMIT})"
            )
        for r in range(len(items) + 1):
            for combo in itertools.combinations(items, r):
                yield frozenset(combo)
    elif isinstance(variable, EdgeSetVar):
        items = graph.edges()
        if len(items) > _SET_QUANTIFIER_LIMIT:
            raise ValueError(
                f"set quantifier over {len(items)} edges exceeds the naive "
                f"checker's limit ({_SET_QUANTIFIER_LIMIT})"
            )
        for r in range(len(items) + 1):
            for combo in itertools.combinations(items, r):
                yield frozenset(combo)
    else:
        raise TypeError(f"unknown variable sort: {variable!r}")


def _eval(graph: Graph, formula: Formula, assignment: dict) -> bool:
    if isinstance(formula, In):
        return assignment[formula.element] in assignment[formula.set_var]
    if isinstance(formula, Inc):
        edge = assignment[formula.edge]
        return assignment[formula.vertex] in edge
    if isinstance(formula, Adj):
        return graph.has_edge(assignment[formula.left], assignment[formula.right])
    if isinstance(formula, Eq):
        return assignment[formula.left] == assignment[formula.right]
    if isinstance(formula, HasLabel):
        value = assignment[formula.variable]
        if isinstance(formula.variable, VertexVar):
            return graph.vertex_label(value) == formula.label
        return graph.edge_label(*value) == formula.label
    if isinstance(formula, Not):
        return not _eval(graph, formula.operand, assignment)
    if isinstance(formula, And):
        return _eval(graph, formula.left, assignment) and _eval(
            graph, formula.right, assignment
        )
    if isinstance(formula, Or):
        return _eval(graph, formula.left, assignment) or _eval(
            graph, formula.right, assignment
        )
    if isinstance(formula, Implies):
        return (not _eval(graph, formula.left, assignment)) or _eval(
            graph, formula.right, assignment
        )
    if isinstance(formula, Iff):
        return _eval(graph, formula.left, assignment) == _eval(
            graph, formula.right, assignment
        )
    if isinstance(formula, (Exists, ForAll)):
        # Save and restore any shadowed outer binding of the same variable.
        sentinel = object()
        saved = assignment.get(formula.variable, sentinel)
        looking_for = isinstance(formula, Exists)
        result = not looking_for
        for value in _domain(graph, formula.variable):
            assignment[formula.variable] = value
            if _eval(graph, formula.body, assignment) == looking_for:
                result = looking_for
                break
        if saved is sentinel:
            assignment.pop(formula.variable, None)
        else:
            assignment[formula.variable] = saved
        return result
    raise TypeError(f"unknown formula node: {formula!r}")
