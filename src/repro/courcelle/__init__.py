"""Homomorphism-class algebras for boundaried graphs (Propositions 2.4/6.1).

Proposition 2.4 asserts that for every MSO2 property there is a *finite*
set of homomorphism classes, closed under the composition operators of
k-terminal recursive graphs, that determines the property.  This package
realizes that statement constructively through the Borie-Parker-Tovey
style: a :class:`BoundedAlgebra` interface whose states are the
homomorphism classes and whose operations are the composition functions
``f_B``/``f_P`` needed by Proposition 6.1, plus one concrete algebra per
headline property of the paper.

The ground-truth :class:`WholeGraphAlgebra` (whose "class" is the entire
boundaried graph) lets the test suite validate every finite-state algebra
against the naive MSO semantics on randomized composition sequences.
"""

from repro.courcelle.boundary import BoundariedGraph, OpSequence, random_op_sequence
from repro.courcelle.algebra import BoundedAlgebra, ProductAlgebra, WholeGraphAlgebra
from repro.courcelle.registry import (
    algebra_for,
    available_algebra_keys,
    resolve_algebra,
)

__all__ = [
    "BoundariedGraph",
    "OpSequence",
    "random_op_sequence",
    "BoundedAlgebra",
    "ProductAlgebra",
    "WholeGraphAlgebra",
    "algebra_for",
    "available_algebra_keys",
    "resolve_algebra",
]
