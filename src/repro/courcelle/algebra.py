"""The homomorphism-class algebra interface (Proposition 2.4, constructive).

A :class:`BoundedAlgebra` is a finite-state abstraction of boundaried
graphs: its states are the homomorphism classes ``C`` of Proposition 2.4,
and its four operations are the composition functions.  The contract —
checked extensively by differential tests against
:class:`WholeGraphAlgebra` — is:

    for every op sequence ``S``:
        algebra.accepts(S.run_algebra(algebra))
        ==  property(S.run_reference().real_subgraph())

Slot conventions follow :class:`repro.courcelle.boundary.BoundariedGraph`:
``join`` keeps the left operand's slots and appends the right operand's
non-glued slots in increasing order; ``forget(keep)`` maps result slot
``r`` to old slot ``keep[r]``.

Virtual edges (tag ``"virtual"``) are completion scaffolding from the
Theorem 1 pipeline and are invisible to property algebras: the base-class
``add_edge`` filters them before calling ``_add_real_edge``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.courcelle.boundary import VIRTUAL, BoundariedGraph


class BoundedAlgebra(ABC):
    """Finite-state algebra over boundaried graphs for one property."""

    #: short identifier used in registries and labels
    key: str = "abstract"

    # ------------------------------------------------------------------
    @abstractmethod
    def new_vertices(self, count: int):
        """Return the state of ``count`` fresh isolated boundary vertices."""

    def add_edge(self, state, a: int, b: int, tag: Optional[str] = None):
        """Return the state after adding an edge between slots ``a``, ``b``.

        Virtual edges do not exist for the property being decided, so they
        are dropped here once for all algebras.
        """
        if tag == VIRTUAL:
            return state
        return self._add_real_edge(state, a, b)

    @abstractmethod
    def _add_real_edge(self, state, a: int, b: int):
        """Return the state after adding a *real* edge between two slots."""

    @abstractmethod
    def join(self, state1, arity1: int, state2, arity2: int, identify: tuple):
        """Return the state of the gluing (see module docstring for slots)."""

    @abstractmethod
    def forget(self, state, arity: int, keep: tuple):
        """Return the state with boundary restricted/reordered to ``keep``."""

    @abstractmethod
    def accepts(self, state, arity: int) -> bool:
        """Return the property verdict for the completed graph."""

    # ------------------------------------------------------------------
    def state_fingerprint(self, state) -> str:
        """Return a short stable string naming the state (for certificates).

        Homomorphism classes are finite for fixed arity, so a stable
        fingerprint is an honest stand-in for the ``O(log |C|)``-bit class
        index the paper's labels carry.  The fingerprint is computed over
        :func:`canonical_state_repr`, so equal states hash identically in
        every process — including states that were pickled across a
        worker-pool boundary, where raw ``repr`` of set-like containers
        is not guaranteed to enumerate in the same order.
        """
        import hashlib

        return hashlib.sha256(
            canonical_state_repr(state).encode()
        ).hexdigest()[:16]


def canonical_state_repr(state) -> str:
    """Return a deterministic textual form of an algebra state.

    Equal states must yield equal strings in every process: the class
    indexer, the wire header's state dictionary, and the artifact cache
    all key on this form.  Plain ``repr`` fails that contract for
    ``set``/``frozenset`` (iteration order follows the hash table, which
    can differ after a pickle round-trip or under hash randomization),
    and for ``dict`` (insertion order).  Containers are therefore
    rewritten recursively with sorted, canonical elements; atoms fall
    back to ``repr``.
    """
    # Each container form carries a distinct prefix so the rewriting
    # stays injective across types (set() and {} must not collide).
    # Containers recurse only for container elements: atoms take the
    # ``repr`` shortcut inline, which keeps the common case (tuples of
    # ints/strings) one call deep.
    if type(state) is tuple:
        return (
            "("
            + ",".join(
                [
                    canonical_state_repr(item)
                    if isinstance(item, _CONTAINER_TYPES)
                    else repr(item)
                    for item in state
                ]
            )
            + ",)"
        )
    if isinstance(state, (set, frozenset)):
        inner = sorted([canonical_state_repr(item) for item in state])
        return "s{" + ",".join(inner) + "}"
    if isinstance(state, dict):
        items = sorted(
            (canonical_state_repr(k), canonical_state_repr(v))
            for k, v in state.items()
        )
        return "d{" + ",".join([f"{k}:{v}" for k, v in items]) + "}"
    if isinstance(state, tuple):
        return (
            "("
            + ",".join([canonical_state_repr(item) for item in state])
            + ",)"
        )
    if isinstance(state, list):
        return (
            "["
            + ",".join([canonical_state_repr(item) for item in state])
            + "]"
        )
    return repr(state)


_CONTAINER_TYPES = (set, frozenset, dict, tuple, list)


def join_slot_map(arity1: int, arity2: int, identify: tuple) -> dict:
    """Return the map from right-operand slots to result slots.

    Left-operand slots keep their indices; glued right slots map onto their
    partners; non-glued right slots are appended in increasing order.
    """
    glue_map = {j: i for i, j in identify}
    glued_right = set(glue_map)
    result = {}
    next_slot = arity1
    for j in range(arity2):
        if j in glued_right:
            result[j] = glue_map[j]
        else:
            result[j] = next_slot
            next_slot += 1
    return result


# ----------------------------------------------------------------------
# Ground truth
# ----------------------------------------------------------------------
class WholeGraphAlgebra(BoundedAlgebra):
    """The trivial (infinite-state) algebra: the state is the graph itself.

    Exists purely as differential-testing ground truth: every finite-state
    algebra must agree with ``WholeGraphAlgebra(same property checker)`` on
    every op sequence.  ``accepts`` evaluates the checker on the real-edge
    spanning subgraph, matching the Theorem 1 semantics.
    """

    key = "whole-graph"

    def __init__(self, checker):
        self.checker = checker

    def new_vertices(self, count: int):
        return BoundariedGraph.new(count)

    def add_edge(self, state, a: int, b: int, tag: Optional[str] = None):
        # Keep virtual edges in the reference graph (real_subgraph drops
        # them at acceptance time); property algebras never see them.
        return state.add_edge(a, b, tag)

    def _add_real_edge(self, state, a: int, b: int):  # pragma: no cover
        return state.add_edge(a, b)

    def join(self, state1, arity1, state2, arity2, identify):
        return state1.join(state2, identify)

    def forget(self, state, arity, keep):
        return state.forget(keep)

    def accepts(self, state, arity) -> bool:
        return bool(self.checker(state.real_subgraph()))


# ----------------------------------------------------------------------
# Combinators
# ----------------------------------------------------------------------
class ProductAlgebra(BoundedAlgebra):
    """Run several algebras in lockstep; accept by conjunction (default).

    The product of homomorphism-class functions is again one (classes
    multiply), which is how the paper certifies conjunctions such as
    ``φ ∧ (pathwidth ≤ k)`` in one pass.
    """

    def __init__(self, algebras: list, mode: str = "and"):
        if mode not in ("and", "or"):
            raise ValueError("mode must be 'and' or 'or'")
        self.algebras = list(algebras)
        self.mode = mode
        self.key = f"product-{mode}(" + ",".join(a.key for a in self.algebras) + ")"

    def new_vertices(self, count: int):
        return tuple(a.new_vertices(count) for a in self.algebras)

    def _add_real_edge(self, state, a: int, b: int):
        return tuple(
            alg._add_real_edge(s, a, b) for alg, s in zip(self.algebras, state)
        )

    def join(self, state1, arity1, state2, arity2, identify):
        return tuple(
            alg.join(s1, arity1, s2, arity2, identify)
            for alg, s1, s2 in zip(self.algebras, state1, state2)
        )

    def forget(self, state, arity, keep):
        return tuple(
            alg.forget(s, arity, keep) for alg, s in zip(self.algebras, state)
        )

    def accepts(self, state, arity) -> bool:
        verdicts = (
            alg.accepts(s, arity) for alg, s in zip(self.algebras, state)
        )
        if self.mode == "and":
            return all(verdicts)
        return any(verdicts)


# ----------------------------------------------------------------------
# Partition utilities shared by the connectivity-flavored algebras
# ----------------------------------------------------------------------
def canonical_partition(blocks) -> tuple:
    """Return the canonical form of a partition of slot indices."""
    return tuple(sorted(tuple(sorted(block)) for block in blocks))


def singleton_partition(count: int) -> tuple:
    """Return the partition of ``0..count-1`` into singletons."""
    return tuple((i,) for i in range(count))


def merge_partition_blocks(partition: tuple, a: int, b: int) -> tuple:
    """Return the partition with the blocks of ``a`` and ``b`` united."""
    block_a = next(block for block in partition if a in block)
    if b in block_a:
        return partition
    block_b = next(block for block in partition if b in block)
    rest = [block for block in partition if block not in (block_a, block_b)]
    rest.append(tuple(sorted(set(block_a) | set(block_b))))
    return canonical_partition(rest)


def same_block(partition: tuple, a: int, b: int) -> bool:
    """Return whether slots ``a`` and ``b`` share a block."""
    return any(a in block and b in block for block in partition)


def relabel_partition(partition: tuple, mapping: dict) -> tuple:
    """Apply ``mapping`` to every slot; slots absent from it are dropped.

    Returns ``(new_partition, dropped_blocks)`` where ``dropped_blocks``
    counts the blocks that lost *all* their slots.
    """
    new_blocks = []
    dropped = 0
    for block in partition:
        mapped = tuple(sorted(mapping[s] for s in block if s in mapping))
        if mapped:
            new_blocks.append(mapped)
        else:
            dropped += 1
    return canonical_partition(new_blocks), dropped
