"""Algebra registry: property keys -> finite-state algebra instances.

Keys line up with ``GraphProperty.algebra_key`` in the MSO property zoo so
experiments can pick a property by name and obtain both the ground-truth
checker and the homomorphism-class algebra.
"""

from __future__ import annotations

import re

from repro.courcelle.algebra import BoundedAlgebra, ProductAlgebra
from repro.courcelle.algebras import (
    AcyclicityAlgebra,
    BipartiteAlgebra,
    ColoringAlgebra,
    ConnectivityAlgebra,
    DegreeAlgebra,
    DominatingSetAlgebra,
    HamiltonianCycleAlgebra,
    HamiltonianPathAlgebra,
    IndependentSetAlgebra,
    ParityAlgebra,
    PathLengthAlgebra,
    PerfectMatchingAlgebra,
    SizeThresholdAlgebra,
    VertexCoverAlgebra,
)

_PARAMETRIC = {
    "colorable": lambda arg: ColoringAlgebra(int(arg)),
    "vertex-cover": lambda arg: VertexCoverAlgebra(int(arg)),
    "independent-set": lambda arg: IndependentSetAlgebra(int(arg)),
    "dominating-set": lambda arg: DominatingSetAlgebra(int(arg)),
    "max-degree": lambda arg: DegreeAlgebra(int(arg)),
    "path-length": lambda arg: PathLengthAlgebra(int(arg)),
    "no-path-length": lambda arg: PathLengthAlgebra(int(arg), negate=True),
    "order-at-least": lambda arg: SizeThresholdAlgebra(int(arg)),
}

_FIXED = {
    "connected": ConnectivityAlgebra,
    "acyclic": AcyclicityAlgebra,
    "bipartite": BipartiteAlgebra,
    "perfect-matching": PerfectMatchingAlgebra,
    "hamiltonian-path": HamiltonianPathAlgebra,
    "hamiltonian-cycle": HamiltonianCycleAlgebra,
    "even-order": lambda: ParityAlgebra(2, 0),
    "odd-order": lambda: ParityAlgebra(2, 1),
    "tree": lambda: ProductAlgebra(
        [ConnectivityAlgebra(), AcyclicityAlgebra()]
    ),
    # Minor-freeness algebras for Corollary 1.2's forest patterns:
    # K_{1,3}-minor-free <=> max degree <= 2; K_3-minor-free <=> acyclic;
    # P_t-minor-free <=> no path with t-1 edges.
    "star3-minor-free": lambda: DegreeAlgebra(2),
    "k3-minor-free": AcyclicityAlgebra,
    "p4-minor-free": lambda: PathLengthAlgebra(3, negate=True),
    "p5-minor-free": lambda: PathLengthAlgebra(4, negate=True),
    "triangle-free": lambda: _triangle_free(),
}


def _triangle_free():
    """Triangle-freeness is not directly one of the implemented algebras;
    it is the complement of containing K3 as a *subgraph*, which for the
    composition model coincides with no 3-cycle — decided by tracking
    cycles of length exactly 3 via the bipartite + acyclic machinery is
    wrong in general, so triangle-freeness is intentionally absent here.
    """
    raise KeyError(
        "triangle-free has no finite-state algebra in this reproduction; "
        "use the MSO formula with the naive checker instead"
    )


def available_algebra_keys() -> list:
    """Return the registry's known keys (parametric families as patterns)."""
    fixed = [k for k in sorted(_FIXED) if k != "triangle-free"]
    parametric = [f"{base}-<int>" for base in sorted(_PARAMETRIC)]
    return fixed + parametric


def resolve_algebra(algebra) -> BoundedAlgebra:
    """Return ``algebra`` itself, instantiating registry keys on the way.

    Accepts either a ready :class:`BoundedAlgebra` instance or a registry
    key string (the shared coercion used by every certification entry
    point: schemes, pipeline stages, sessions, and the facade).
    """
    if isinstance(algebra, str):
        return algebra_for(algebra)
    if not isinstance(algebra, BoundedAlgebra):
        raise TypeError("algebra must be a BoundedAlgebra or a registry key")
    return algebra


def algebra_for(key: str) -> BoundedAlgebra:
    """Return a fresh algebra instance for ``key``.

    Fixed keys: ``connected``, ``acyclic``, ``bipartite``, ``tree``,
    ``perfect-matching``, ``hamiltonian-path``, ``hamiltonian-cycle``,
    ``even-order``, ``odd-order``, ``star3-minor-free``, ``k3-minor-free``,
    ``p4-minor-free``, ``p5-minor-free``.
    Parametric keys: ``colorable-3``, ``vertex-cover-2``,
    ``independent-set-4``, ``dominating-set-1``, ``max-degree-2``,
    ``path-length-4``, ``no-path-length-4``, ``order-at-least-5``.
    """
    if key in _FIXED:
        return _FIXED[key]()
    match = re.fullmatch(r"(.+)-(\d+)", key)
    if match and match.group(1) in _PARAMETRIC:
        return _PARAMETRIC[match.group(1)](match.group(2))
    raise KeyError(f"no algebra registered for {key!r}")
