"""Concrete finite-state algebras, one per headline property of the paper."""

from repro.courcelle.algebras.partition_based import (
    AcyclicityAlgebra,
    BipartiteAlgebra,
    ConnectivityAlgebra,
)
from repro.courcelle.algebras.counters import (
    DegreeAlgebra,
    ParityAlgebra,
    SizeThresholdAlgebra,
)
from repro.courcelle.algebras.tables import (
    ColoringAlgebra,
    DominatingSetAlgebra,
    IndependentSetAlgebra,
    PerfectMatchingAlgebra,
    VertexCoverAlgebra,
)
from repro.courcelle.algebras.path_systems import (
    HamiltonianCycleAlgebra,
    HamiltonianPathAlgebra,
    PathLengthAlgebra,
)

__all__ = [
    "AcyclicityAlgebra",
    "BipartiteAlgebra",
    "ConnectivityAlgebra",
    "DegreeAlgebra",
    "ParityAlgebra",
    "SizeThresholdAlgebra",
    "ColoringAlgebra",
    "DominatingSetAlgebra",
    "IndependentSetAlgebra",
    "PerfectMatchingAlgebra",
    "VertexCoverAlgebra",
    "HamiltonianCycleAlgebra",
    "HamiltonianPathAlgebra",
    "PathLengthAlgebra",
]
