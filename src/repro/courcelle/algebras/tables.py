"""Table-flavored algebras: coloring, vertex cover, independent set,
dominating set, perfect matching.

These homomorphism classes are *tables indexed by boundary traces* — the
textbook Borie–Parker–Tovey dynamic programs.  Their state size is
exponential in the boundary arity (2^b or 3^b entries), which is the
concrete face of the constant blow-up discussed in DESIGN.md: the paper's
f(k) lane counts are constants in n but astronomical in k, so these
algebras are exercised at small lanewidth while the partition-based ones
cover the full pipeline.  Each class guards its arity and fails loudly.

Bitmask conventions: subsets of boundary slots are ints; bit ``i`` is
slot ``i``.
"""

from __future__ import annotations

from repro.courcelle.algebra import BoundedAlgebra, join_slot_map

_DENSE_ARITY_LIMIT = 14
_PROFILE_ARITY_LIMIT = 8


def _check_arity(arity: int, limit: int, key: str) -> None:
    if arity > limit:
        raise ValueError(
            f"algebra {key!r} supports boundary arity <= {limit} (got {arity}); "
            "this is the constant blow-up inherent to table-based Courcelle "
            "DPs — use a smaller lanewidth or a partition-based property"
        )


class ColoringAlgebra(BoundedAlgebra):
    """q-colorability.  State: frozenset of proper boundary colorings."""

    def __init__(self, q: int):
        if q < 1:
            raise ValueError("need at least one color")
        self.q = q
        self.key = f"colorable-{q}"

    def new_vertices(self, count: int):
        _check_arity(count, _PROFILE_ARITY_LIMIT, self.key)
        colorings = [()]
        for _ in range(count):
            colorings = [c + (x,) for c in colorings for x in range(self.q)]
        return frozenset(colorings)

    def _add_real_edge(self, state, a: int, b: int):
        return frozenset(c for c in state if c[a] != c[b])

    def join(self, state1, arity1, state2, arity2, identify):
        new_arity = arity1 + arity2 - len(identify)
        _check_arity(new_arity, _PROFILE_ARITY_LIMIT, self.key)
        slot_map = join_slot_map(arity1, arity2, identify)
        appended = [j for j in range(arity2) if slot_map[j] >= arity1]
        glued = [(i, j) for i, j in identify]
        result = set()
        for c1 in state1:
            for c2 in state2:
                if all(c1[i] == c2[j] for i, j in glued):
                    result.add(c1 + tuple(c2[j] for j in appended))
        return frozenset(result)

    def forget(self, state, arity, keep):
        return frozenset(tuple(c[k] for k in keep) for c in state)

    def accepts(self, state, arity) -> bool:
        return bool(state)


class VertexCoverAlgebra(BoundedAlgebra):
    """Vertex cover of size <= c.

    State: dense tuple ``f`` of length ``2^arity``; ``f[A]`` is the minimum
    number of **interior** cover vertices over covers whose boundary trace
    is exactly the slot set ``A``, truncated at ``c + 1`` (the "infeasible"
    sentinel).  Counting only interior vertices means joins never subtract
    (the two interiors are disjoint), which keeps truncation sound; the
    boundary contribution ``|A|`` is added at forget/accept time, when the
    vertices' membership is finalized.
    """

    def __init__(self, c: int):
        if c < 0:
            raise ValueError("cover budget must be non-negative")
        self.c = c
        self.key = f"vertex-cover-{c}"

    def _cap(self, v: int) -> int:
        return min(v, self.c + 1)

    def new_vertices(self, count: int):
        _check_arity(count, _DENSE_ARITY_LIMIT, self.key)
        return tuple(0 for _mask in range(1 << count))

    def _add_real_edge(self, state, a: int, b: int):
        need = (1 << a) | (1 << b)
        return tuple(
            v if (mask & need) else self.c + 1 for mask, v in enumerate(state)
        )

    def join(self, state1, arity1, state2, arity2, identify):
        new_arity = arity1 + arity2 - len(identify)
        _check_arity(new_arity, _DENSE_ARITY_LIMIT, self.key)
        slot_map = join_slot_map(arity1, arity2, identify)
        mask1_of = (1 << arity1) - 1
        result = []
        for mask in range(1 << new_arity):
            a1 = mask & mask1_of
            a2 = 0
            for j in range(arity2):
                if mask >> slot_map[j] & 1:
                    a2 |= 1 << j
            result.append(self._cap(state1[a1] + state2[a2]))
        return tuple(result)

    def forget(self, state, arity, keep):
        new_arity = len(keep)
        best = [self.c + 1] * (1 << new_arity)
        for mask, v in enumerate(state):
            new_mask = 0
            forgotten_in_cover = 0
            for old_slot in range(arity):
                if not (mask >> old_slot & 1):
                    continue
                if old_slot in keep:
                    new_mask |= 1 << keep.index(old_slot)
                else:
                    forgotten_in_cover += 1
            value = self._cap(v + forgotten_in_cover)
            if value < best[new_mask]:
                best[new_mask] = value
        return tuple(best)

    def accepts(self, state, arity) -> bool:
        return any(
            v + mask.bit_count() <= self.c for mask, v in enumerate(state)
        )


class IndependentSetAlgebra(BoundedAlgebra):
    """Independent set of size >= c.

    State: dense tuple ``g``; ``g[A]`` is the maximum number of **interior**
    vertices of an independent set with boundary trace exactly ``A``
    (capped at ``c``), or ``-1`` when ``A`` is itself not independent.
    Interior-only counting avoids overlap subtraction at joins, which keeps
    the cap sound (see :class:`VertexCoverAlgebra`).
    """

    def __init__(self, c: int):
        if c < 0:
            raise ValueError("set size must be non-negative")
        self.c = c
        self.key = f"independent-set-{c}"

    def _cap(self, v: int) -> int:
        return min(v, self.c)

    def new_vertices(self, count: int):
        _check_arity(count, _DENSE_ARITY_LIMIT, self.key)
        return tuple(0 for _mask in range(1 << count))

    def _add_real_edge(self, state, a: int, b: int):
        both = (1 << a) | (1 << b)
        return tuple(
            -1 if (mask & both) == both else v for mask, v in enumerate(state)
        )

    def join(self, state1, arity1, state2, arity2, identify):
        new_arity = arity1 + arity2 - len(identify)
        _check_arity(new_arity, _DENSE_ARITY_LIMIT, self.key)
        slot_map = join_slot_map(arity1, arity2, identify)
        mask1_of = (1 << arity1) - 1
        result = []
        for mask in range(1 << new_arity):
            a1 = mask & mask1_of
            a2 = 0
            for j in range(arity2):
                if mask >> slot_map[j] & 1:
                    a2 |= 1 << j
            if state1[a1] < 0 or state2[a2] < 0:
                result.append(-1)
                continue
            result.append(self._cap(state1[a1] + state2[a2]))
        return tuple(result)

    def forget(self, state, arity, keep):
        new_arity = len(keep)
        best = [-1] * (1 << new_arity)
        for mask, v in enumerate(state):
            if v < 0:
                continue
            new_mask = 0
            forgotten_chosen = 0
            for old_slot in range(arity):
                if not (mask >> old_slot & 1):
                    continue
                if old_slot in keep:
                    new_mask |= 1 << keep.index(old_slot)
                else:
                    forgotten_chosen += 1
            value = self._cap(v + forgotten_chosen)
            if value > best[new_mask]:
                best[new_mask] = value
        return tuple(best)

    def accepts(self, state, arity) -> bool:
        return any(
            v >= 0 and v + mask.bit_count() >= self.c
            for mask, v in enumerate(state)
        )


class PerfectMatchingAlgebra(BoundedAlgebra):
    """A perfect matching exists.

    State: frozenset of masks — the achievable sets of *matched* boundary
    slots, under the invariant that every interior vertex is matched
    (enforced at ``forget``).
    """

    key = "perfect-matching"

    def new_vertices(self, count: int):
        _check_arity(count, _DENSE_ARITY_LIMIT, self.key)
        return frozenset({0})

    def _add_real_edge(self, state, a: int, b: int):
        edge_mask = (1 << a) | (1 << b)
        extended = {m | edge_mask for m in state if not (m & edge_mask)}
        return frozenset(state) | extended

    def join(self, state1, arity1, state2, arity2, identify):
        new_arity = arity1 + arity2 - len(identify)
        _check_arity(new_arity, _DENSE_ARITY_LIMIT, self.key)
        slot_map = join_slot_map(arity1, arity2, identify)
        result = set()
        for m1 in state1:
            for m2 in state2:
                # A glued vertex may be matched on at most one side.
                if any((m1 >> i & 1) and (m2 >> j & 1) for i, j in identify):
                    continue
                mapped = m1
                for j in range(arity2):
                    if m2 >> j & 1:
                        mapped |= 1 << slot_map[j]
                result.add(mapped)
        return frozenset(result)

    def forget(self, state, arity, keep):
        kept = set(keep)
        forgotten_mask = 0
        for s in range(arity):
            if s not in kept:
                forgotten_mask |= 1 << s
        result = set()
        for m in state:
            if (m & forgotten_mask) != forgotten_mask:
                continue  # an unmatched vertex is leaving the boundary
            new_mask = 0
            for new_slot, old_slot in enumerate(keep):
                if m >> old_slot & 1:
                    new_mask |= 1 << new_slot
            result.add(new_mask)
        return frozenset(result)

    def accepts(self, state, arity) -> bool:
        return ((1 << arity) - 1) in state


class DominatingSetAlgebra(BoundedAlgebra):
    """Dominating set of size <= c.

    State: canonical tuple of ``(profile, min_interior_size)`` pairs, where
    a profile assigns each slot a status — 0 undominated, 1 dominated,
    2 in the set — and the value counts **interior** set vertices only,
    truncated at ``c + 1`` (boundary members are added at forget/accept
    time; see :class:`VertexCoverAlgebra` for why).
    """

    UNDOM, DOM, IN = 0, 1, 2

    def __init__(self, c: int):
        if c < 0:
            raise ValueError("budget must be non-negative")
        self.c = c
        self.key = f"dominating-set-{c}"

    def _cap(self, v: int) -> int:
        return min(v, self.c + 1)

    @staticmethod
    def _canonical(table: dict) -> tuple:
        return tuple(sorted(table.items()))

    def new_vertices(self, count: int):
        _check_arity(count, _PROFILE_ARITY_LIMIT, self.key)
        table: dict = {}
        for mask in range(1 << count):
            profile = tuple(
                self.IN if mask >> i & 1 else self.UNDOM for i in range(count)
            )
            table[profile] = 0  # interior members only; none exist yet
        return self._canonical(table)

    def _add_real_edge(self, state, a: int, b: int):
        table: dict = {}
        for profile, v in state:
            p = list(profile)
            if p[a] == self.IN and p[b] == self.UNDOM:
                p[b] = self.DOM
            if p[b] == self.IN and p[a] == self.UNDOM:
                p[a] = self.DOM
            key = tuple(p)
            if v < table.get(key, self.c + 2):
                table[key] = v
        return self._canonical(table)

    def join(self, state1, arity1, state2, arity2, identify):
        new_arity = arity1 + arity2 - len(identify)
        _check_arity(new_arity, _PROFILE_ARITY_LIMIT, self.key)
        slot_map = join_slot_map(arity1, arity2, identify)
        appended = [j for j in range(arity2) if slot_map[j] >= arity1]
        table: dict = {}
        for profile1, v1 in state1:
            for profile2, v2 in state2:
                compatible = True
                merged = list(profile1)
                for i, j in identify:
                    in1 = profile1[i] == self.IN
                    in2 = profile2[j] == self.IN
                    if in1 != in2:
                        compatible = False
                        break
                    if not in1:
                        merged[i] = max(profile1[i], profile2[j])
                if not compatible:
                    continue
                merged.extend(profile2[j] for j in appended)
                key = tuple(merged)
                value = self._cap(v1 + v2)
                if value < table.get(key, self.c + 2):
                    table[key] = value
        return self._canonical(table)

    def forget(self, state, arity, keep):
        kept = set(keep)
        table: dict = {}
        for profile, v in state:
            # A vertex leaving the boundary can never become dominated.
            if any(
                profile[s] == self.UNDOM for s in range(arity) if s not in kept
            ):
                continue
            forgotten_members = sum(
                1
                for s in range(arity)
                if s not in kept and profile[s] == self.IN
            )
            key = tuple(profile[k] for k in keep)
            value = self._cap(v + forgotten_members)
            if value < table.get(key, self.c + 2):
                table[key] = value
        return self._canonical(table)

    def accepts(self, state, arity) -> bool:
        return any(
            all(s != self.UNDOM for s in profile)
            and v + sum(1 for s in profile if s == self.IN) <= self.c
            for profile, v in state
        )
