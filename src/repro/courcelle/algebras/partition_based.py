"""Partition-flavored algebras: connectivity, acyclicity, bipartiteness.

These are the "cheap" homomorphism classes: a state is essentially a
partition of the boundary slots into connected blocks, decorated with a
few bits.  Their state count is a Bell-number function of the arity, but
each *individual* state is tiny, which is what makes the full Theorem 1
pipeline feasible even at the large lane counts f(k) produces (Section 4's
f(3) = 18 means up to 36 boundary slots — still fine here, in sharp
contrast to the table-based algebras).
"""

from __future__ import annotations

from repro.courcelle.algebra import (
    BoundedAlgebra,
    canonical_partition,
    join_slot_map,
    singleton_partition,
)


class _UnionFind:
    """Union-find over result slots, with merge-redundancy reporting."""

    def __init__(self, size: int):
        self.parent = list(range(size))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        """Union the classes of ``a``/``b``; return True if already joined."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return True
        self.parent[ra] = rb
        return False

    def blocks(self, size: int) -> tuple:
        groups: dict = {}
        for x in range(size):
            groups.setdefault(self.find(x), []).append(x)
        return canonical_partition(groups.values())


class ConnectivityAlgebra(BoundedAlgebra):
    """Homomorphism classes for "the graph is connected".

    State: ``(partition, interior)`` where ``partition`` is the canonical
    partition of boundary slots into connected components and ``interior``
    counts components with no boundary vertex, truncated at 2 (two lost
    components can never reunite, so the exact count beyond 2 is
    irrelevant — this truncation is what makes the class set finite).
    """

    key = "connected"

    def new_vertices(self, count: int):
        return (singleton_partition(count), 0)

    def _add_real_edge(self, state, a: int, b: int):
        partition, interior = state
        uf = self._uf_from(partition)
        uf.union(a, b)
        return (uf.blocks(self._arity_of(partition)), interior)

    def join(self, state1, arity1, state2, arity2, identify):
        partition1, interior1 = state1
        partition2, interior2 = state2
        slot_map = join_slot_map(arity1, arity2, identify)
        new_arity = arity1 + arity2 - len(identify)
        uf = _UnionFind(new_arity)
        for block in partition1:
            for s in block[1:]:
                uf.union(block[0], s)
        for block in partition2:
            mapped = [slot_map[s] for s in block]
            for s in mapped[1:]:
                uf.union(mapped[0], s)
        interior = min(2, interior1 + interior2)
        return (uf.blocks(new_arity), interior)

    def forget(self, state, arity, keep):
        partition, interior = state
        mapping = {old: new for new, old in enumerate(keep)}
        new_blocks = []
        dropped = 0
        for block in partition:
            mapped = tuple(sorted(mapping[s] for s in block if s in mapping))
            if mapped:
                new_blocks.append(mapped)
            else:
                dropped += 1
        return (canonical_partition(new_blocks), min(2, interior + dropped))

    def accepts(self, state, arity) -> bool:
        partition, interior = state
        return len(partition) + interior <= 1

    # ------------------------------------------------------------------
    @staticmethod
    def _arity_of(partition) -> int:
        return sum(len(block) for block in partition)

    @staticmethod
    def _uf_from(partition) -> _UnionFind:
        size = sum(len(block) for block in partition)
        uf = _UnionFind(size)
        for block in partition:
            for s in block[1:]:
                uf.union(block[0], s)
        return uf


class AcyclicityAlgebra(BoundedAlgebra):
    """Homomorphism classes for "the graph is a forest".

    State: ``(partition, has_cycle)``.  Fully interior components are
    irrelevant — once acyclic and interior, they stay acyclic.  A cycle
    appears exactly when a union-find merge is redundant: an added edge
    inside one component, or a gluing that connects two already-connected
    slots (two Parent-merge identifications between the same pair of
    components, Section 5.2's figure-8 case).
    """

    key = "acyclic"

    def new_vertices(self, count: int):
        return (singleton_partition(count), False)

    def _add_real_edge(self, state, a: int, b: int):
        partition, has_cycle = state
        uf = ConnectivityAlgebra._uf_from(partition)
        redundant = uf.union(a, b)
        size = sum(len(block) for block in partition)
        return (uf.blocks(size), has_cycle or redundant)

    def join(self, state1, arity1, state2, arity2, identify):
        partition1, cycle1 = state1
        partition2, cycle2 = state2
        slot_map = join_slot_map(arity1, arity2, identify)
        new_arity = arity1 + arity2 - len(identify)
        uf = _UnionFind(new_arity)
        has_cycle = cycle1 or cycle2
        # Each block stands for a tree connecting its slots; replaying each
        # block as a star of unions detects exactly the redundancies that
        # gluing introduces.
        for block in partition1:
            for s in block[1:]:
                if uf.union(block[0], s):
                    has_cycle = True
        for block in partition2:
            mapped = [slot_map[s] for s in block]
            for s in mapped[1:]:
                if uf.union(mapped[0], s):
                    has_cycle = True
        return (uf.blocks(new_arity), has_cycle)

    def forget(self, state, arity, keep):
        partition, has_cycle = state
        mapping = {old: new for new, old in enumerate(keep)}
        new_blocks = []
        for block in partition:
            mapped = tuple(sorted(mapping[s] for s in block if s in mapping))
            if mapped:
                new_blocks.append(mapped)
        return (canonical_partition(new_blocks), has_cycle)

    def accepts(self, state, arity) -> bool:
        return not state[1]


class BipartiteAlgebra(BoundedAlgebra):
    """Homomorphism classes for 2-colorability.

    State: ``(blocks, odd_cycle)`` where each block is a tuple of
    ``(slot, parity)`` pairs — the parity of the slot's 2-coloring
    relative to the block's minimum slot (normalized to parity 0).  A
    bipartite component has exactly two proper 2-colorings, so relative
    parities are a complete invariant; an edge or gluing contradicting
    them records the odd cycle.
    """

    key = "bipartite"

    def new_vertices(self, count: int):
        blocks = tuple(((i, 0),) for i in range(count))
        return (blocks, False)

    # -- weighted union-find helpers ------------------------------------
    class _ParityUF:
        def __init__(self, size: int):
            self.parent = list(range(size))
            self.parity = [0] * size  # parity relative to parent

        def find(self, x: int):
            if self.parent[x] == x:
                return x, 0
            root, par = self.find(self.parent[x])
            self.parent[x] = root
            self.parity[x] = (self.parity[x] + par) % 2
            return root, self.parity[x]

        def union(self, a: int, b: int, relation: int) -> bool:
            """Assert parity(a) xor parity(b) == relation.

            Returns True on contradiction (odd cycle).
            """
            ra, pa = self.find(a)
            rb, pb = self.find(b)
            if ra == rb:
                return (pa ^ pb) != relation
            self.parent[ra] = rb
            self.parity[ra] = (pa ^ pb ^ relation) % 2
            return False

    def _replay(self, uf: "_ParityUF", blocks, slot_map=None) -> bool:
        contradiction = False
        for block in blocks:
            (s0, p0) = block[0]
            m0 = slot_map[s0] if slot_map else s0
            for s, p in block[1:]:
                ms = slot_map[s] if slot_map else s
                if uf.union(m0, ms, (p0 ^ p) % 2):
                    contradiction = True
        return contradiction

    def _extract(self, uf: "_ParityUF", size: int) -> tuple:
        groups: dict = {}
        for x in range(size):
            root, parity = uf.find(x)
            groups.setdefault(root, []).append((x, parity))
        blocks = []
        for members in groups.values():
            members.sort()
            base = members[0][1]
            blocks.append(tuple((s, p ^ base) for s, p in members))
        return tuple(sorted(blocks))

    def _add_real_edge(self, state, a: int, b: int):
        blocks, odd = state
        size = sum(len(block) for block in blocks)
        uf = self._ParityUF(size)
        odd |= self._replay(uf, blocks)
        odd |= uf.union(a, b, 1)
        return (self._extract(uf, size), odd)

    def join(self, state1, arity1, state2, arity2, identify):
        blocks1, odd1 = state1
        blocks2, odd2 = state2
        slot_map = join_slot_map(arity1, arity2, identify)
        new_arity = arity1 + arity2 - len(identify)
        uf = self._ParityUF(new_arity)
        odd = odd1 or odd2
        odd |= self._replay(uf, blocks1)
        odd |= self._replay(uf, blocks2, slot_map)
        return (self._extract(uf, new_arity), odd)

    def forget(self, state, arity, keep):
        blocks, odd = state
        mapping = {old: new for new, old in enumerate(keep)}
        new_blocks = []
        for block in blocks:
            kept = sorted(
                (mapping[s], p) for s, p in block if s in mapping
            )
            if kept:
                base = kept[0][1]
                new_blocks.append(tuple((s, p ^ base) for s, p in kept))
        return (tuple(sorted(new_blocks)), odd)

    def accepts(self, state, arity) -> bool:
        return not state[1]
