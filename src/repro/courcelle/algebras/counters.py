"""Counter-flavored algebras: parity, size thresholds, degree bounds.

Parity and size thresholds are *counting-MSO* properties — the standard
extension of Courcelle's framework mentioned with Proposition 2.4 — and
their homomorphism classes are simply truncated counters.  Degree bounds
are plain MSO (Section 1.2's formula with ``Δ+1`` nested quantifiers) and
their classes are per-slot truncated degree vectors.
"""

from __future__ import annotations

from repro.courcelle.algebra import BoundedAlgebra, join_slot_map


class ParityAlgebra(BoundedAlgebra):
    """|V| mod m == r (counting MSO).  State: vertex count mod m."""

    def __init__(self, modulus: int = 2, residue: int = 0):
        if modulus < 1:
            raise ValueError("modulus must be positive")
        self.modulus = modulus
        self.residue = residue % modulus
        self.key = f"order-mod-{modulus}-is-{self.residue}"

    def new_vertices(self, count: int):
        return count % self.modulus

    def _add_real_edge(self, state, a: int, b: int):
        return state

    def join(self, state1, arity1, state2, arity2, identify):
        return (state1 + state2 - len(identify)) % self.modulus

    def forget(self, state, arity, keep):
        return state

    def accepts(self, state, arity) -> bool:
        return state == self.residue


class SizeThresholdAlgebra(BoundedAlgebra):
    """|V| >= threshold.  State: vertex count truncated at the threshold."""

    def __init__(self, threshold: int):
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold
        self.key = f"order-at-least-{threshold}"

    def new_vertices(self, count: int):
        return min(count, self.threshold)

    def _add_real_edge(self, state, a: int, b: int):
        return state

    def join(self, state1, arity1, state2, arity2, identify):
        return min(state1 + state2 - len(identify), self.threshold)

    def forget(self, state, arity, keep):
        return state

    def accepts(self, state, arity) -> bool:
        return state >= self.threshold


class DegreeAlgebra(BoundedAlgebra):
    """Maximum degree <= delta.

    State: ``(degrees, violated)`` with per-slot degrees truncated at
    ``delta + 1``.  Forgotten vertices never gain edges, so their final
    degree is already known when they leave the boundary.
    """

    def __init__(self, delta: int):
        if delta < 0:
            raise ValueError("delta must be non-negative")
        self.delta = delta
        self.key = f"max-degree-{delta}"

    def _cap(self, d: int) -> int:
        return min(d, self.delta + 1)

    def new_vertices(self, count: int):
        return (tuple([0] * count), False)

    def _add_real_edge(self, state, a: int, b: int):
        degrees, violated = state
        new = list(degrees)
        new[a] = self._cap(new[a] + 1)
        new[b] = self._cap(new[b] + 1)
        violated = violated or new[a] > self.delta or new[b] > self.delta
        return (tuple(new), violated)

    def join(self, state1, arity1, state2, arity2, identify):
        degrees1, violated1 = state1
        degrees2, violated2 = state2
        slot_map = join_slot_map(arity1, arity2, identify)
        new_arity = arity1 + arity2 - len(identify)
        new = list(degrees1) + [0] * (new_arity - arity1)
        for j, d in enumerate(degrees2):
            target = slot_map[j]
            new[target] = self._cap(new[target] + d)
        violated = violated1 or violated2 or any(d > self.delta for d in new)
        return (tuple(new), violated)

    def forget(self, state, arity, keep):
        degrees, violated = state
        return (tuple(degrees[k] for k in keep), violated)

    def accepts(self, state, arity) -> bool:
        return not state[1]
