"""Path-system algebras: Hamiltonicity and bounded longest path.

These are the heavyweight homomorphism classes.  A state is a set of
*profiles*; each profile summarizes one way the chosen path system can
interface the boundary.

Spanning profiles (Hamiltonian path/cycle)
------------------------------------------
Every vertex lies on exactly one path of the system.  A component is a
triple ``(end1, end2, singleton)`` with ends either boundary slots or
``STUCK = -1`` (an interior endpoint, frozen forever):

* ``(s, s, True)`` — a single vertex at slot ``s`` (degree 0);
* ``(a, b, False)`` — a path whose two endpoints are ``a`` and ``b``;
* slots not mentioned in any component are path-interior (degree 2).

The sentinel profile ``CLOSED`` means the whole graph built so far is one
spanning cycle; it survives later compositions only while no new vertex
arrives (tracked via the state's ``grown`` flag).

Non-spanning profiles (longest path)
------------------------------------
Components additionally carry a length (edge count, capped at the target)
and the *explicit* set of boundary slots lying mid-path, because unused
and mid-path slots must be distinguished when only part of the graph is
covered.

Correctness of both engines is established differentially in the test
suite against brute-force search over randomized composition sequences.
"""

from __future__ import annotations

from repro.courcelle.algebra import BoundedAlgebra, join_slot_map

STUCK = -1
CLOSED = ("CLOSED",)

# Transient join boundaries reach roughly twice the lane count before the
# canonical forget; 12 accommodates lanewidth-3 pipelines while still
# bounding the profile-set blow-up.
_ARITY_LIMIT = 12


def _guard(arity: int, key: str) -> None:
    if arity > _ARITY_LIMIT:
        raise ValueError(
            f"algebra {key!r} supports boundary arity <= {_ARITY_LIMIT} "
            f"(got {arity}); use a smaller lanewidth for this property"
        )


def _comp(end1: int, end2: int, singleton: bool) -> tuple:
    return (min(end1, end2), max(end1, end2), singleton)


def _path_degree(profile: frozenset, slot: int) -> int:
    """Return the path-system degree (0/1/2) of ``slot`` in a profile."""
    for e1, e2, singleton in profile:
        if singleton:
            if e1 == slot:
                return 0
        else:
            hits = (1 if e1 == slot else 0) + (1 if e2 == slot else 0)
            if hits:
                return 2 - hits  # one end-occurrence -> degree 1; two -> 0?
    return 2


# A slot appearing twice as ends of one open component would mean a path
# from a vertex back to itself, which the stitching logic never stores
# (it closes the cycle immediately); _path_degree therefore treats
# (s, x, False) with one hit as degree 1 and never sees two hits.


def _prune_profile(comps: list) -> frozenset:
    """Return the canonical profile or ``None`` when it is dead.

    A both-stuck component (a path no composition can ever reach again)
    is only viable when it is the entire profile.
    """
    stuck_count = sum(
        1 for e1, e2, _s in comps if e1 == STUCK and e2 == STUCK
    )
    if stuck_count and len(comps) > 1:
        return None
    if stuck_count > 1:
        return None
    return frozenset(comps)


class _SpanningPathAlgebra(BoundedAlgebra):
    """Shared engine for Hamiltonian path/cycle homomorphism classes.

    State: ``(profiles, grown)`` where ``profiles`` is a frozenset of open
    profiles and/or ``CLOSED``, and ``grown`` records whether any vertex
    has ever left the boundary (needed to decide whether a later join adds
    genuinely new vertices next to a CLOSED cycle).
    """

    allow_cycle = False

    def new_vertices(self, count: int):
        _guard(count, self.key)
        profile = frozenset(_comp(i, i, True) for i in range(count))
        return (frozenset({profile}), False)

    # ------------------------------------------------------------------
    def _add_real_edge(self, state, a: int, b: int):
        profiles, grown = state
        result = set()
        for profile in profiles:
            result.add(profile)  # the system may simply not use this edge
            if profile == CLOSED:
                continue
            merged = self._use_edge(profile, a, b)
            if merged is not None:
                result.add(merged)
        return (frozenset(result), grown)

    def _use_edge(self, profile: frozenset, a: int, b: int):
        comp_a = self._component_at(profile, a)
        comp_b = self._component_at(profile, b)
        if comp_a is None or comp_b is None:
            return None  # an endpoint is already path-interior
        if comp_a == comp_b:
            e1, e2, singleton = comp_a
            if singleton:
                return None  # no self-loops exist
            if self.allow_cycle and {e1, e2} == {a, b} and len(profile) == 1:
                return CLOSED
            return None  # closing a non-spanning cycle is never useful
        rest = [c for c in profile if c not in (comp_a, comp_b)]
        r1 = self._remaining_end(comp_a, a)
        r2 = self._remaining_end(comp_b, b)
        if r1 == r2 and r1 != STUCK:
            # Both remaining ends are the same vertex: a cycle just closed.
            if self.allow_cycle and not rest:
                return CLOSED
            return None
        rest.append(_comp(r1, r2, False))
        return _prune_profile(rest)

    @staticmethod
    def _component_at(profile: frozenset, slot: int):
        """Return the component with a free end at ``slot`` (or None)."""
        for comp in profile:
            if comp == CLOSED:
                continue
            e1, e2, singleton = comp
            if slot in (e1, e2):
                return comp
        return None

    @staticmethod
    def _remaining_end(comp: tuple, used_slot: int) -> int:
        e1, e2, singleton = comp
        if singleton:
            return used_slot  # a singleton keeps its other end at itself
        return e2 if e1 == used_slot else e1

    # ------------------------------------------------------------------
    def join(self, state1, arity1, state2, arity2, identify):
        profiles1, grown1 = state1
        profiles2, grown2 = state2
        new_arity = arity1 + arity2 - len(identify)
        _guard(new_arity, self.key)
        slot_map = join_slot_map(arity1, arity2, identify)
        adds1 = grown1 or (arity1 - len(identify) > 0)
        adds2 = grown2 or (arity2 - len(identify) > 0)
        result = set()
        for p1 in profiles1:
            for p2 in profiles2:
                combined = self._join_pair(
                    p1, p2, arity2, identify, slot_map, adds1, adds2
                )
                if combined is not None:
                    result.add(combined)
        return (frozenset(result), grown1 or grown2)

    def _join_pair(self, p1, p2, arity2, identify, slot_map, adds1, adds2):
        if p1 == CLOSED and p2 == CLOSED:
            return None
        if p1 == CLOSED:
            # The cycle must already span everything: the other side may
            # contribute neither vertices nor path edges.
            if adds2:
                return None
            if all(singleton for _e1, _e2, singleton in p2):
                return CLOSED
            return None
        if p2 == CLOSED:
            if adds1:
                return None
            if all(singleton for _e1, _e2, singleton in p1):
                return CLOSED
            return None
        mapped2 = [
            _comp(
                slot_map[e1] if e1 != STUCK else STUCK,
                slot_map[e2] if e2 != STUCK else STUCK,
                singleton,
            )
            for e1, e2, singleton in p2
        ]
        # Degree feasibility at every glued slot.
        glued_slots = []
        for i, j in identify:
            d1 = _path_degree(p1, i)
            d2 = _path_degree(p2, j)
            if d1 + d2 > 2:
                return None
            glued_slots.append((i, d1, d2))
        pool = list(p1) + mapped2
        cycle_closed = False
        for s, d1, d2 in glued_slots:
            free_total = (2 - d1) + (2 - d2)
            if free_total <= 2 and (d1 == 2 or d2 == 2):
                # One side passes through s mid-path; the other side must
                # hold s as a bare singleton, which simply disappears.
                pool = self._drop_one_singleton(pool, s)
                if pool is None:
                    return None
                continue
            if d1 == 0 and d2 == 0:
                # Two singletons for the same vertex: keep one.
                pool = self._drop_one_singleton(pool, s)
                if pool is None:
                    return None
                continue
            if (d1, d2) in ((0, 1), (1, 0)):
                # Singleton one side, path end the other: the singleton is
                # absorbed by the path.
                pool = self._drop_one_singleton(pool, s)
                if pool is None:
                    return None
                continue
            if d1 == 1 and d2 == 1:
                merged = self._stitch_at(pool, s)
                if merged is None:
                    return None
                pool, closed_now = merged
                if closed_now:
                    if not self.allow_cycle or cycle_closed:
                        return None
                    cycle_closed = True
                continue
            return None
        if cycle_closed:
            if pool:
                return None  # the closed cycle does not span everything
            return CLOSED
        return _prune_profile(pool)

    @staticmethod
    def _drop_one_singleton(pool: list, slot: int):
        for index, (e1, e2, singleton) in enumerate(pool):
            if singleton and e1 == slot:
                return pool[:index] + pool[index + 1 :]
        return None

    @staticmethod
    def _stitch_at(pool: list, slot: int):
        """Concatenate the two components with a free end at ``slot``.

        Returns ``(new_pool, cycle_closed)`` or ``None`` when impossible.
        """
        holders = [
            index
            for index, (e1, e2, singleton) in enumerate(pool)
            if not singleton and slot in (e1, e2)
        ]
        if len(holders) == 1:
            # Both end-occurrences are in the same component: the two ends
            # are the same vertex, so stitching closes a cycle.
            e1, e2, _singleton = pool[holders[0]]
            if e1 == slot and e2 == slot:
                new_pool = [c for i, c in enumerate(pool) if i != holders[0]]
                return new_pool, True
            return None
        if len(holders) != 2:
            return None
        ia, ib = holders
        ca, cb = pool[ia], pool[ib]
        ra = ca[1] if ca[0] == slot else ca[0]
        rb = cb[1] if cb[0] == slot else cb[0]
        new_pool = [c for i, c in enumerate(pool) if i not in (ia, ib)]
        if ra == rb and ra != STUCK:
            # The remaining ends are the same vertex: cycle closed.
            return new_pool, True
        new_pool.append(_comp(ra, rb, False))
        return new_pool, False

    # ------------------------------------------------------------------
    def forget(self, state, arity, keep):
        profiles, grown = state
        kept = {old: new for new, old in enumerate(keep)}
        grown = grown or len(keep) < arity
        result = set()
        for profile in profiles:
            if profile == CLOSED:
                result.add(CLOSED)
                continue
            comps = []
            for e1, e2, singleton in profile:
                if singleton:
                    if e1 in kept:
                        comps.append(_comp(kept[e1], kept[e1], True))
                    else:
                        # An isolated interior vertex: a one-vertex path
                        # with both ends stuck.
                        comps.append(_comp(STUCK, STUCK, False))
                    continue
                n1 = kept.get(e1, STUCK) if e1 != STUCK else STUCK
                n2 = kept.get(e2, STUCK) if e2 != STUCK else STUCK
                comps.append(_comp(n1, n2, False))
            pruned = _prune_profile(comps)
            if pruned is not None:
                result.add(pruned)
        return (frozenset(result), grown)


class HamiltonianPathAlgebra(_SpanningPathAlgebra):
    """A Hamiltonian path exists."""

    key = "hamiltonian-path"
    allow_cycle = False

    def accepts(self, state, arity) -> bool:
        profiles, _grown = state
        for profile in profiles:
            if profile == CLOSED:
                continue
            if len(profile) == 1:
                return True
        return False


class HamiltonianCycleAlgebra(_SpanningPathAlgebra):
    """A Hamiltonian cycle exists."""

    key = "hamiltonian-cycle"
    allow_cycle = True

    def accepts(self, state, arity) -> bool:
        profiles, _grown = state
        return CLOSED in profiles


class PathLengthAlgebra(BoundedAlgebra):
    """Existence of a simple path with at least ``target`` edges.

    With ``negate=True`` this decides P_t-minor-freeness for the path on
    ``target + 1`` vertices (path minors coincide with path subgraphs).

    State: ``(profiles, found)``; a profile is a frozenset of components
    ``(end1, end2, length, mids)`` — a partial path between two ends
    (boundary slots or STUCK) of ``length`` edges (capped at ``target``)
    whose mid-path *boundary* vertices are ``mids``.  Unlike the spanning
    engine, untracked slots are simply unused.
    """

    def __init__(self, target: int, negate: bool = False):
        if target < 1:
            raise ValueError("target length must be positive")
        self.target = target
        self.negate = negate
        self.key = f"{'no-' if negate else ''}path-length-{target}"

    # ------------------------------------------------------------------
    def _cap(self, length: int) -> int:
        return min(length, self.target)

    @staticmethod
    def _used_slots(profile: frozenset) -> set:
        used = set()
        for e1, e2, _length, mids in profile:
            used.update(m for m in mids)
            for e in (e1, e2):
                if e != STUCK:
                    used.add(e)
        return used

    def new_vertices(self, count: int):
        _guard(count, self.key)
        return (frozenset({frozenset()}), False)

    # ------------------------------------------------------------------
    def _add_real_edge(self, state, a: int, b: int):
        profiles, found = state
        if found:
            return state
        result = set()
        for profile in profiles:
            result.add(profile)
            used = self._used_slots(profile)
            comp_a = self._end_component(profile, a)
            comp_b = self._end_component(profile, b)
            # Start a fresh component.
            if a not in used and b not in used:
                new = set(profile)
                new.add((min(a, b), max(a, b), 1, frozenset()))
                result.add(frozenset(new))
            # Extend an existing component at a (towards unused b).
            if comp_a is not None and b not in used:
                result.add(self._extended(profile, comp_a, a, b))
            if comp_b is not None and a not in used:
                result.add(self._extended(profile, comp_b, b, a))
            # Concatenate two components.
            if comp_a is not None and comp_b is not None and comp_a != comp_b:
                result.add(self._concatenated(profile, comp_a, a, comp_b, b))
        found = any(
            any(length >= self.target for _e1, _e2, length, _m in p)
            for p in result
        )
        if found:
            return (frozenset({frozenset()}), True)
        return (frozenset(result), False)

    @staticmethod
    def _end_component(profile: frozenset, slot: int):
        for comp in profile:
            e1, e2, _length, _mids = comp
            if slot in (e1, e2) and e1 != e2:
                return comp
            if e1 == slot and e2 == slot:
                return comp
        return None

    def _extended(self, profile, comp, used_slot, new_end):
        e1, e2, length, mids = comp
        other = e2 if e1 == used_slot else e1
        new_mids = frozenset(set(mids) | {used_slot})
        new = set(profile)
        new.discard(comp)
        new.add(
            (min(other, new_end), max(other, new_end), self._cap(length + 1), new_mids)
        )
        return frozenset(new)

    def _concatenated(self, profile, comp_a, a, comp_b, b):
        e1a, e2a, la, ma = comp_a
        e1b, e2b, lb, mb = comp_b
        ra = e2a if e1a == a else e1a
        rb = e2b if e1b == b else e1b
        mids = frozenset(set(ma) | set(mb) | {a, b})
        new = set(profile)
        new.discard(comp_a)
        new.discard(comp_b)
        new.add((min(ra, rb), max(ra, rb), self._cap(la + lb + 1), mids))
        return frozenset(new)

    # ------------------------------------------------------------------
    def join(self, state1, arity1, state2, arity2, identify):
        profiles1, found1 = state1
        profiles2, found2 = state2
        new_arity = arity1 + arity2 - len(identify)
        _guard(new_arity, self.key)
        if found1 or found2:
            return (frozenset({frozenset()}), True)
        slot_map = join_slot_map(arity1, arity2, identify)
        result = set()
        found = False
        for p1 in profiles1:
            for p2 in profiles2:
                combined = self._join_pair(p1, p2, identify, slot_map)
                if combined is None:
                    continue
                if any(l >= self.target for _a, _b, l, _m in combined):
                    found = True
                result.add(combined)
        if found:
            return (frozenset({frozenset()}), True)
        return (frozenset(result), False)

    def _join_pair(self, p1, p2, identify, slot_map):
        mapped2 = []
        for e1, e2, length, mids in p2:
            m1 = slot_map[e1] if e1 != STUCK else STUCK
            m2 = slot_map[e2] if e2 != STUCK else STUCK
            mapped2.append(
                (
                    min(m1, m2),
                    max(m1, m2),
                    length,
                    frozenset(slot_map[m] for m in mids),
                )
            )
        used1 = self._used_slots(p1)
        used2 = self._used_slots(frozenset(mapped2))
        pool = list(p1) + mapped2

        for i, _j in identify:
            in1 = i in used1
            in2 = i in used2
            if not (in1 and in2):
                continue
            # Vertex used by both sides: only end+end stitching is valid.
            holders = [
                idx
                for idx, (e1, e2, _l, mids) in enumerate(pool)
                if i in (e1, e2)
            ]
            mid_holders = [
                idx for idx, (_e1, _e2, _l, mids) in enumerate(pool) if i in mids
            ]
            if mid_holders or len(holders) != 2:
                return None
            ia, ib = holders
            ca, cb = pool[ia], pool[ib]
            ra = ca[1] if ca[0] == i else ca[0]
            rb = cb[1] if cb[0] == i else cb[0]
            if ra == rb and ra != STUCK:
                return None  # would close a cycle; never lengthens a path
            merged = (
                min(ra, rb),
                max(ra, rb),
                self._cap(ca[2] + cb[2]),
                frozenset(set(ca[3]) | set(cb[3]) | {i}),
            )
            pool = [c for idx, c in enumerate(pool) if idx not in (ia, ib)]
            pool.append(merged)
        return frozenset(pool)

    # ------------------------------------------------------------------
    def forget(self, state, arity, keep):
        profiles, found = state
        if found:
            return state
        kept = {old: new for new, old in enumerate(keep)}
        result = set()
        for profile in profiles:
            comps = []
            for e1, e2, length, mids in profile:
                n1 = kept.get(e1, STUCK) if e1 != STUCK else STUCK
                n2 = kept.get(e2, STUCK) if e2 != STUCK else STUCK
                new_mids = frozenset(kept[m] for m in mids if m in kept)
                if n1 == STUCK and n2 == STUCK:
                    if length >= self.target:
                        return (frozenset({frozenset()}), True)
                    continue  # frozen and short: drop the component
                comps.append((min(n1, n2), max(n1, n2), length, new_mids))
            result.add(frozenset(comps))
        return (frozenset(result), False)

    def accepts(self, state, arity) -> bool:
        _profiles, found = state
        return (not found) if self.negate else found
