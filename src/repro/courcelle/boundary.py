"""Boundaried graphs: the concrete side of the homomorphism-class algebra.

A *boundaried graph* is a graph with an ordered tuple of distinct boundary
vertices (the paper's terminals after the canonical ``ξ`` mapping of
Proposition 6.1).  Four operations generate every k-terminal / k-lane
recursive graph:

``new(count)``
    ``count`` fresh isolated vertices, all of them boundary.
``add_edge(a, b, tag)``
    a new edge between boundary slots ``a`` and ``b``; ``tag`` carries the
    edge input label (``"real"``/``"virtual"`` in the Theorem 1 pipeline).
``join(other, identify)``
    disjoint union, then identification of slot pairs ``(i, j)`` —
    slot ``i`` of ``self`` is glued to slot ``j`` of ``other``.  The result
    boundary is: all slots of ``self`` (indices unchanged), followed by the
    non-glued slots of ``other`` in increasing order.
``forget(keep)``
    restrict the boundary to the slots in ``keep`` (result slot ``r`` is
    old slot ``keep[r]``); forgotten vertices become interior and can never
    receive new edges — exactly the paper's terminal-to-non-terminal
    reclassification.

This mirrors Definition 2.3's composition operator ``⊙`` split into
reusable primitives; Bridge-merge and Parent-merge of Section 5 are
expressed through them by :mod:`repro.core.hierarchy`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.graphs import Graph

REAL = "real"
VIRTUAL = "virtual"


@dataclass(frozen=True)
class BoundariedGraph:
    """An explicit graph with an ordered boundary (reference semantics)."""

    graph: Graph
    boundary: tuple

    def __post_init__(self):
        if len(set(self.boundary)) != len(self.boundary):
            raise ValueError("boundary vertices must be distinct")
        for v in self.boundary:
            if v not in self.graph:
                raise ValueError(f"boundary vertex {v!r} not in graph")

    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        return len(self.boundary)

    @classmethod
    def new(cls, count: int) -> "BoundariedGraph":
        """Return ``count`` isolated boundary vertices named ``0..count-1``."""
        g = Graph(vertices=range(count))
        return cls(g, tuple(range(count)))

    def add_edge(self, a: int, b: int, tag: Optional[str] = None) -> "BoundariedGraph":
        """Return a copy with an edge between boundary slots ``a`` and ``b``."""
        u, v = self.boundary[a], self.boundary[b]
        if self.graph.has_edge(u, v):
            raise ValueError(
                f"edge between slots {a} and {b} already exists; compositions "
                "in this model never merge or duplicate edges"
            )
        g = self.graph.copy()
        g.add_edge(u, v)
        if tag is not None:
            g.set_edge_label(u, v, tag)
        return BoundariedGraph(g, self.boundary)

    def join(self, other: "BoundariedGraph", identify) -> "BoundariedGraph":
        """Return the gluing of ``self`` and ``other`` along ``identify``.

        ``identify`` is a sequence of ``(i, j)`` slot pairs.  Glued pairs
        must be injective on both sides.  Gluing must not identify two
        edges (enforced by construction: only vertices are identified, and
        the simple-graph invariant is checked).
        """
        identify = tuple(identify)
        left_slots = [i for i, _ in identify]
        right_slots = [j for _, j in identify]
        if len(set(left_slots)) != len(left_slots) or len(set(right_slots)) != len(
            right_slots
        ):
            raise ValueError("identification must be injective on both sides")
        # Rename other's vertices away from ours, then map glued ones onto
        # our boundary vertices.
        offset = 0
        ours = set(self.graph.vertices())
        numeric = [v for v in ours if isinstance(v, int)]
        offset = (max(numeric) + 1) if numeric else 0
        rename = {v: offset + idx for idx, v in enumerate(other.graph.vertices())}
        for i, j in identify:
            rename[other.boundary[j]] = self.boundary[i]
        glued_targets = {self.boundary[i] for i, _ in identify}
        renamed_vertices = list(rename.values())
        if len(set(renamed_vertices)) != len(renamed_vertices):
            raise ValueError("gluing map collapsed two vertices of `other`")
        overlap = (set(renamed_vertices) - glued_targets) & ours
        if overlap:
            raise ValueError(f"renaming collision on {sorted(overlap)!r}")

        g = self.graph.copy()
        for v in other.graph.vertices():
            g.add_vertex(rename[v])
        for u, v in other.graph.edges():
            ru, rv = rename[u], rename[v]
            if g.has_edge(ru, rv):
                raise ValueError(
                    "gluing identified two edges; Parent-merge requires "
                    "disjoint edge sets (Section 5.2)"
                )
            g.add_edge(ru, rv)
            label = other.graph.edge_label(u, v)
            if label is not None:
                g.set_edge_label(ru, rv, label)
        glued_right = set(right_slots)
        new_boundary = list(self.boundary) + [
            rename[other.boundary[j]]
            for j in range(other.arity)
            if j not in glued_right
        ]
        return BoundariedGraph(g, tuple(new_boundary))

    def forget(self, keep) -> "BoundariedGraph":
        """Return a copy whose boundary is ``[old slot k for k in keep]``."""
        keep = tuple(keep)
        if len(set(keep)) != len(keep):
            raise ValueError("keep must be injective")
        new_boundary = tuple(self.boundary[k] for k in keep)
        return BoundariedGraph(self.graph, new_boundary)

    # ------------------------------------------------------------------
    def real_subgraph(self) -> Graph:
        """Return the spanning subgraph of real (non-virtual) edges.

        Edges tagged :data:`VIRTUAL` are completion scaffolding; the MSO
        property of Theorem 1 is evaluated on the real edges only.
        """
        real_edges = [
            (u, v)
            for u, v in self.graph.edges()
            if self.graph.edge_label(u, v) != VIRTUAL
        ]
        return self.graph.edge_subgraph(real_edges)

    def __repr__(self) -> str:
        return f"BoundariedGraph(n={self.graph.n}, m={self.graph.m}, arity={self.arity})"


# ----------------------------------------------------------------------
# Operation sequences (for property-based algebra validation)
# ----------------------------------------------------------------------
class OpSequence:
    """A replayable sequence of boundaried-graph operations.

    Ops are tuples:

    * ``("new", count)`` — push a fresh boundaried graph;
    * ``("edge", a, b, tag)`` — add an edge on the top of stack;
    * ``("join", identify)`` — pop two, push their join;
    * ``("forget", keep)`` — reboundary the top of stack.

    The sequence is evaluated on a stack, which lets the test suite replay
    the same ops through the reference :class:`BoundariedGraph` semantics
    and through any finite-state algebra, then compare acceptance.
    """

    def __init__(self, ops: list) -> None:
        self.ops = list(ops)

    def run_reference(self) -> BoundariedGraph:
        """Replay on explicit boundaried graphs; return the final one."""
        stack: list = []
        for op in self.ops:
            if op[0] == "new":
                stack.append(BoundariedGraph.new(op[1]))
            elif op[0] == "edge":
                stack.append(stack.pop().add_edge(op[1], op[2], op[3]))
            elif op[0] == "join":
                right = stack.pop()
                left = stack.pop()
                stack.append(left.join(right, op[1]))
            elif op[0] == "forget":
                stack.append(stack.pop().forget(op[1]))
            else:
                raise ValueError(f"unknown op {op!r}")
        if len(stack) != 1:
            raise ValueError(f"sequence left {len(stack)} graphs on the stack")
        return stack[0]

    def run_algebra(self, algebra) -> tuple:
        """Replay through ``algebra``; return ``(state, arity)``."""
        stack: list = []
        for op in self.ops:
            if op[0] == "new":
                stack.append((algebra.new_vertices(op[1]), op[1]))
            elif op[0] == "edge":
                state, arity = stack.pop()
                stack.append((algebra.add_edge(state, op[1], op[2], op[3]), arity))
            elif op[0] == "join":
                state2, arity2 = stack.pop()
                state1, arity1 = stack.pop()
                identify = tuple(op[1])
                new_arity = arity1 + arity2 - len(identify)
                stack.append(
                    (algebra.join(state1, arity1, state2, arity2, identify), new_arity)
                )
            elif op[0] == "forget":
                state, arity = stack.pop()
                keep = tuple(op[1])
                stack.append((algebra.forget(state, arity, keep), len(keep)))
            else:
                raise ValueError(f"unknown op {op!r}")
        if len(stack) != 1:
            raise ValueError(f"sequence left {len(stack)} states on the stack")
        return stack[0]


def random_op_sequence(
    rng: random.Random,
    max_new: int = 4,
    steps: int = 12,
    virtual_probability: float = 0.0,
) -> OpSequence:
    """Generate a random valid op sequence (for differential testing).

    The generator tracks arities so every emitted op is well-formed.  The
    final graph may be disconnected and of any shape — exactly what the
    algebra contract must withstand.
    """
    ops: list = []
    stack: list = []  # arities; edge bookkeeping to avoid duplicate edges
    edges: list = []  # per stack entry: set of (slot_a, slot_b) existing edges

    def push_new():
        count = rng.randint(1, max_new)
        ops.append(("new", count))
        stack.append(count)
        edges.append(set())

    push_new()
    for _ in range(steps):
        moves = ["new", "edge", "forget"]
        if len(stack) >= 2:
            moves.append("join")
            moves.append("join")
        move = rng.choice(moves)
        if move == "new":
            push_new()
        elif move == "edge":
            arity = stack[-1]
            if arity < 2:
                continue
            a, b = rng.sample(range(arity), 2)
            key = (min(a, b), max(a, b))
            if key in edges[-1]:
                continue
            tag = VIRTUAL if rng.random() < virtual_probability else REAL
            ops.append(("edge", a, b, tag))
            edges[-1].add(key)
        elif move == "forget":
            arity = stack[-1]
            if arity <= 1:
                continue
            new_size = rng.randint(1, arity)
            keep = tuple(sorted(rng.sample(range(arity), new_size)))
            ops.append(("forget", keep))
            # Edge bookkeeping: remap slot-indexed edges; edges touching
            # forgotten slots stay in the graph but can no longer collide
            # with future slot pairs, so drop them from bookkeeping.
            remap = {old: new for new, old in enumerate(keep)}
            edges[-1] = {
                (min(remap[a], remap[b]), max(remap[a], remap[b]))
                for a, b in edges[-1]
                if a in remap and b in remap
            }
            stack[-1] = new_size
        elif move == "join":
            arity2 = stack.pop()
            edges2 = edges.pop()
            arity1 = stack.pop()
            edges1 = edges.pop()
            max_glue = min(arity1, arity2)
            glue_count = rng.randint(0, max_glue)
            left = rng.sample(range(arity1), glue_count)
            right = rng.sample(range(arity2), glue_count)
            identify = tuple(zip(left, right))
            # Result slots: G1 slots unchanged, then unglued G2 slots.
            glued_right = {j for _, j in identify}
            right_map = {}
            next_slot = arity1
            glue_map = dict((j, i) for i, j in identify)
            for j in range(arity2):
                if j in glued_right:
                    right_map[j] = glue_map[j]
                else:
                    right_map[j] = next_slot
                    next_slot += 1
            mapped_edges2 = {
                (min(right_map[a], right_map[b]), max(right_map[a], right_map[b]))
                for a, b in edges2
            }
            if mapped_edges2 & edges1:
                # Gluing would identify two edges — invalid join; restore
                # the stack and pick another move next iteration.
                stack.extend([arity1, arity2])
                edges.extend([edges1, edges2])
                continue
            ops.append(("join", identify))
            stack.append(arity1 + arity2 - glue_count)
            edges.append(edges1 | mapped_edges2)
    # Collapse the stack to a single graph with edge-free joins.
    while len(stack) > 1:
        arity2 = stack.pop()
        edges2 = edges.pop()
        arity1 = stack.pop()
        edges1 = edges.pop()
        ops.append(("join", ()))
        remapped = {(a + arity1, b + arity1) for a, b in edges2}
        stack.append(arity1 + arity2)
        edges.append(set(edges1) | remapped)
    return OpSequence(ops)
