"""Immutable CSR (compressed sparse row) adjacency snapshots.

:class:`repro.graphs.Graph` keeps a mutable dict-of-sets adjacency for
construction, but every read-heavy consumer — the verification round's
view building, degeneracy orderings, decomposition heuristics, minor
searches — wants the same three things over and over: neighbors in
sorted order, stable edge indices, and cached degrees.  A
:class:`CSRAdjacency` is a one-shot, immutable snapshot providing
exactly that:

* ``vertices``: the vertex names in sorted order; the *dense index* of a
  vertex is its position here, so index order equals name order and a
  sorted index row is a sorted name row for free;
* ``indptr``/``neighbors``: the classic CSR pair — the neighbors of the
  vertex with dense index ``i`` are ``neighbors[indptr[i]:indptr[i+1]]``
  (dense indices, ascending);
* ``incident``: parallel to ``neighbors``; ``incident[p]`` is the *edge
  index* of the edge to ``neighbors[p]``.  Edge index ``e`` names
  ``edges[e]``, the canonical edge keys in sorted order — stable for the
  lifetime of the snapshot, which is what lets a verification round
  resolve edge input labels and edge certificates by integer index
  instead of ``edge_key`` dictionary lookups;
* ``degrees``: ``degrees[i] == indptr[i+1] - indptr[i]``, precomputed.

Snapshots are built by :meth:`Graph.csr` on first use and invalidated by
structural mutation; label changes do not touch them (labels live on the
graph).  Everything here is plain CPython lists/tuples — per-element
indexed access is the workload, and the package stays dependency-free.
"""

from __future__ import annotations


class CSRAdjacency:
    """One immutable CSR snapshot of a graph's structure.

    Do not mutate the arrays; :class:`~repro.graphs.Graph` hands the same
    snapshot to every reader (and shares it with copies) precisely
    because it cannot change.
    """

    __slots__ = (
        "vertices",
        "index",
        "indptr",
        "neighbors",
        "incident",
        "edges",
        "degrees",
        "_edge_index",
        "_name_rows",
        "_fingerprint_base",
    )

    def __init__(self, adjacency: dict):
        verts = sorted(adjacency)
        index = {v: i for i, v in enumerate(verts)}
        n = len(verts)
        indptr = [0] * (n + 1)
        neighbors: list = []
        degrees = [0] * n
        for i, v in enumerate(verts):
            row = sorted(index[u] for u in adjacency[v])
            neighbors.extend(row)
            degrees[i] = len(row)
            indptr[i + 1] = len(neighbors)
        # Edge indexing: scanning rows in index order and keeping only
        # j > i yields the canonical keys already sorted (index order is
        # name order), so edge e here is edges()[e] of the legacy API.
        edges = []
        edge_index: dict = {}
        for i in range(n):
            for p in range(indptr[i], indptr[i + 1]):
                j = neighbors[p]
                if i < j:
                    edge_index[(i, j)] = len(edges)
                    edges.append((verts[i], verts[j]))
        incident = [0] * len(neighbors)
        for i in range(n):
            for p in range(indptr[i], indptr[i + 1]):
                j = neighbors[p]
                incident[p] = edge_index[(i, j) if i < j else (j, i)]
        self.vertices = tuple(verts)
        self.index = index
        self.indptr = indptr
        self.neighbors = neighbors
        self.incident = incident
        self.edges = tuple(edges)
        self.degrees = degrees
        self._edge_index = edge_index
        self._name_rows: dict = {}
        self._fingerprint_base = None

    # ------------------------------------------------------------------
    def __getstate__(self):
        # Hash objects cannot be pickled; the base digest is a pure
        # cache, rebuilt on demand after transport.  Name-row tuples are
        # likewise derived — dropping them keeps payloads lean.
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot not in ("_fingerprint_base", "_name_rows")
        }

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)
        self._name_rows = {}
        self._fingerprint_base = None

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.vertices)

    @property
    def m(self) -> int:
        return len(self.edges)

    def row(self, i: int) -> list:
        """Return the dense-index neighbor row of vertex index ``i``."""
        return self.neighbors[self.indptr[i] : self.indptr[i + 1]]

    def incident_row(self, i: int) -> list:
        """Return the edge indices incident to vertex index ``i``."""
        return self.incident[self.indptr[i] : self.indptr[i + 1]]

    def name_row(self, vertex) -> tuple:
        """Return the neighbors of ``vertex`` as names, sorted (cached)."""
        i = self.index[vertex]
        cached = self._name_rows.get(i)
        if cached is None:
            verts = self.vertices
            cached = tuple(verts[j] for j in self.row(i))
            self._name_rows[i] = cached
        return cached

    def edge_index_of(self, u, v) -> int:
        """Return the stable edge index of ``{u, v}`` (KeyError if absent)."""
        i, j = self.index[u], self.index[v]
        return self._edge_index[(i, j) if i < j else (j, i)]

    def fingerprint_base(self):
        """Return the structural half of the content hash, unfinalized.

        The digest covers the sorted vertex names and canonical edge keys
        — exactly the snapshot's own content, so it is computed once per
        snapshot and shared by every graph holding it (``Graph.copy()``
        included).  Callers ``copy()`` the returned hash object before
        finalizing or mixing in label bytes; the byte stream matches the
        historical ``Graph.fingerprint`` prefix, keeping fingerprints
        stable across this optimization.
        """
        if self._fingerprint_base is None:
            import hashlib

            digest = hashlib.blake2b(digest_size=16)
            for v in self.vertices:
                digest.update(repr(v).encode())
                digest.update(b"\x00")
            digest.update(b"\x01")
            for key in self.edges:
                digest.update(repr(key).encode())
                digest.update(b"\x00")
            self._fingerprint_base = digest
        return self._fingerprint_base

    def __repr__(self) -> str:
        return f"CSRAdjacency(n={self.n}, m={self.m})"
