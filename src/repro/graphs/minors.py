"""Brute-force minor containment testing.

Corollary 1.2 certifies ``F``-minor-freeness for forests ``F``.  The
experiments need ground truth: given a candidate graph and a small pattern,
does the pattern occur as a minor?  A *minor model* of ``H`` in ``G`` maps
every vertex of ``H`` to a non-empty connected *branch set* in ``G``, with
pairwise-disjoint branch sets, such that every edge of ``H`` has some
``G``-edge between the two corresponding branch sets.

The search below enumerates branch sets by canonical backtracking (every
branch set is generated exactly once, rooted at its minimum vertex) with
budget and adjacency pruning.  Deciding minor containment is NP-hard for
pattern-as-input, so negative instances are exponential by nature; the
evaluation keeps ground-truth hosts small (<= ~16 vertices) and relies on
generator guarantees for larger graphs.  Structural shortcuts handle the
common patterns (K_3 = cycle test, paths = longest-path test, stars =
connected-set neighborhood test) exactly and quickly.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.graphs.graph import Graph


def _branch_sets_touch(graph: Graph, a: frozenset, b: frozenset) -> bool:
    """Return whether any G-edge joins branch sets ``a`` and ``b``."""
    smaller, larger = (a, b) if len(a) <= len(b) else (b, a)
    return any(
        not larger.isdisjoint(graph.neighbors_sorted(v)) for v in smaller
    )


def _connected_subsets_rooted(
    graph: Graph, seed, available: frozenset, max_size: int
) -> Iterator[frozenset]:
    """Yield connected subsets of ``available`` whose minimum vertex is ``seed``.

    Each subset is produced exactly once.  Enumeration uses the standard
    "forbidden frontier" technique: children of a search node extend the
    subset with one allowed frontier vertex and forbid the frontier
    vertices skipped before it, which partitions the search space.
    """
    extendable = frozenset(v for v in available if v > seed)

    def expand(subset: frozenset, extension: frozenset, forbidden: frozenset):
        yield subset
        if len(subset) >= max_size:
            return
        banned = set(forbidden)
        for v in sorted(extension):
            if v in banned:
                continue
            new_neighbors = {
                w
                for w in graph.neighbors_sorted(v)
                if w in extendable and w not in subset and w not in banned
            }
            new_extension = (extension - frozenset(banned) - {v}) | new_neighbors
            yield from expand(subset | {v}, frozenset(new_extension), frozenset(banned))
            banned.add(v)

    initial = frozenset(
        w for w in graph.neighbors_sorted(seed) if w in extendable
    )
    yield from expand(frozenset([seed]), initial, frozenset())


def find_minor_model(graph: Graph, pattern: Graph) -> Optional[dict]:
    """Return a minor model of ``pattern`` in ``graph`` or ``None``.

    The model is a dict ``pattern_vertex -> frozenset(graph vertices)``.
    """
    if pattern.n == 0:
        return {}
    if pattern.n > graph.n or pattern.m > graph.m:
        return None

    # Assign pattern vertices in BFS order per component (starting from a
    # max-degree vertex): every non-first vertex then has an already-placed
    # pattern neighbor, so its branch set is adjacency-constrained, which is
    # the main source of pruning.
    pattern_order = []
    for component in pattern.connected_components():
        start = max(component, key=pattern.degree)
        sub = pattern.induced_subgraph(component)
        pattern_order.extend(sub.bfs_order(start))
    all_vertices = frozenset(graph.vertices())

    def backtrack(index: int, used: frozenset, model: dict) -> Optional[dict]:
        if index == len(pattern_order):
            return dict(model)
        h = pattern_order[index]
        needed = [p for p in pattern_order[:index] if pattern.has_edge(h, p)]
        remaining_after = len(pattern_order) - index - 1
        available = all_vertices - used
        budget = len(available) - remaining_after
        if budget < 1:
            return None
        for seed in sorted(available):
            for branch in _connected_subsets_rooted(graph, seed, available, budget):
                if not all(
                    _branch_sets_touch(graph, branch, model[p]) for p in needed
                ):
                    continue
                model[h] = branch
                result = backtrack(index + 1, used | branch, model)
                if result is not None:
                    return result
                del model[h]
        return None

    return backtrack(0, frozenset(), {})


def _has_star_minor(graph: Graph, leaves: int) -> bool:
    """Return whether ``K_{1,leaves}`` is a minor.

    ``K_{1,t}`` is a minor iff some connected set ``S`` has ``|N(S)| >= t``:
    the center contracts from ``S`` and each neighbor is a leaf branch set.
    The search grows connected sets greedily and exactly (small hosts).
    """
    if leaves == 0:
        return graph.n >= 1
    if any(graph.degree(v) >= leaves for v in graph.vertices()):
        return True
    for component in graph.connected_components():
        sub = graph.induced_subgraph(component)
        available = frozenset(sub.vertices())
        for seed in sorted(available):
            for subset in _connected_subsets_rooted(sub, seed, available, sub.n):
                neighborhood = set()
                for v in subset:
                    neighborhood.update(sub.neighbors_sorted(v))
                neighborhood -= subset
                if len(neighborhood) >= leaves:
                    return True
    return False


def _spider_leg_lengths(pattern: Graph) -> Optional[list]:
    """Return the leg lengths if ``pattern`` is a 3-leg spider, else ``None``.

    A 3-leg spider is a tree with exactly one degree-3 vertex and all other
    degrees at most 2 (three paths glued at a center).  Its maximum degree
    is 3, so minor containment coincides with topological-minor containment,
    enabling the fast disjoint-paths test.
    """
    if not pattern.is_tree():
        return None
    degrees = [pattern.degree(v) for v in pattern.vertices()]
    if sorted(degrees, reverse=True)[0] != 3 or sum(1 for d in degrees if d == 3) != 1:
        return None
    if any(d > 3 for d in degrees):
        return None
    center = next(v for v in pattern.vertices() if pattern.degree(v) == 3)
    lengths = []
    for first in pattern.neighbors_sorted(center):
        length = 1
        prev, cur = center, first
        while pattern.degree(cur) == 2:
            nxt = next(u for u in pattern.neighbors_sorted(cur) if u != prev)
            prev, cur = cur, nxt
            length += 1
        lengths.append(length)
    return lengths


def _has_spider_minor(graph: Graph, lengths: list) -> bool:
    """Return whether the 3-leg spider with the given leg lengths is a minor.

    Minor = topological minor here (pattern max degree 3): search for a
    center vertex with three internally vertex-disjoint paths of at least
    the required lengths.  Full backtracking over the three legs, so the
    test is exact.
    """
    lengths = sorted(lengths, reverse=True)

    def paths_from(center, remaining: list, used: set) -> bool:
        if not remaining:
            return True
        need = remaining[0]

        def grow(v, togo: int, visited: set) -> bool:
            if togo <= 0:
                return paths_from(center, remaining[1:], used | visited)
            for w in graph.neighbors_sorted(v):
                if w == center or w in used or w in visited:
                    continue
                if grow(w, togo - 1, visited | {w}):
                    return True
            return False

        return grow(center, need, set())

    return any(
        graph.degree(c) >= 3 and paths_from(c, lengths, {c})
        for c in graph.vertices()
    )


def contains_minor(graph: Graph, pattern: Graph) -> bool:
    """Return whether ``pattern`` is a minor of ``graph``.

    Exact fast paths cover the evaluation's pattern shapes: path minors
    reduce to path subgraphs, ``K_3`` to a cycle test, stars to the
    connected-set neighborhood test, 3-leg spiders to a disjoint-paths
    search.  Everything else falls back to the general branch-set search,
    which is exponential — keep those hosts small (<= ~14 vertices).
    """
    if pattern.n == 0:
        return True
    if pattern.is_path_graph():
        return _has_path_of_order(graph, pattern.n)
    if pattern.n == 3 and pattern.m == 3:
        return graph.has_cycle()
    if pattern.is_tree() and pattern.m >= 1:
        degrees = sorted((pattern.degree(v) for v in pattern.vertices()), reverse=True)
        if degrees[1] <= 1:  # a star: one center, all leaves
            return _has_star_minor(graph, degrees[0])
        legs = _spider_leg_lengths(pattern)
        if legs is not None:
            return _has_spider_minor(graph, legs)
    return find_minor_model(graph, pattern) is not None


def is_minor_free(graph: Graph, pattern: Graph) -> bool:
    """Return whether ``graph`` excludes ``pattern`` as a minor."""
    return not contains_minor(graph, pattern)


def _has_path_of_order(graph: Graph, t: int) -> bool:
    """Return whether the graph contains a simple path on ``t`` vertices.

    DFS with backtracking; exponential in the worst case but the
    evaluation only asks for small ``t``.
    """
    if t <= 0:
        return True
    if t == 1:
        return graph.n >= 1

    def extend(path: list, visited: set) -> bool:
        if len(path) == t:
            return True
        for w in graph.neighbors_sorted(path[-1]):
            if w not in visited:
                visited.add(w)
                path.append(w)
                if extend(path, visited):
                    return True
                path.pop()
                visited.discard(w)
        return False

    return any(extend([v], {v}) for v in graph.vertices())


def excluded_forest_pathwidth_bound(forest: Graph) -> int:
    """Return the pathwidth bound from the Excluding Forest Theorem.

    Robertson and Seymour (Graph Minors I) proved that ``F``-minor-free
    graphs have bounded pathwidth for every forest ``F``; Bienstock,
    Robertson, Seymour, and Thomas ("Quickly excluding a forest", JCTB 1991)
    sharpened the bound to ``|V(F)| - 2``, which is tight.  Corollary 1.2
    only needs *some* finite bound, and this is the standard citable one.
    """
    if not forest.is_forest():
        raise ValueError("pattern must be a forest for the excluding forest theorem")
    return max(forest.n - 2, 0)
