"""Core undirected graph data structure.

The paper models a communication network as a connected undirected graph
``G = (V, E)`` whose vertices carry O(log n)-bit identifiers and whose
vertices and edges may carry *input labels* drawn from a fixed finite set
(Section 1.1 and the remark after Proposition 2.4).  :class:`Graph` captures
exactly that: hashable, sortable vertex names, an adjacency-set
representation, and optional finite input labels on vertices and edges.

Edges are identified by :func:`edge_key`, the sorted vertex pair, so that
``{u, v}`` and ``{v, u}`` name the same edge.

Reads are served by an immutable CSR snapshot
(:class:`repro.graphs.csr.CSRAdjacency`) built lazily on first use and
invalidated by structural mutation: sorted vertex/edge lists, sorted
neighbor rows, degrees, and stable edge indices all come from the same
contiguous arrays instead of being re-derived per call.  The dict-of-sets
adjacency remains the construction-time representation.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Iterator
from typing import Optional

from repro.graphs.csr import CSRAdjacency

Vertex = Hashable
Edge = tuple


def edge_key(u: Vertex, v: Vertex) -> Edge:
    """Return the canonical name of the undirected edge ``{u, v}``.

    The canonical name is the pair sorted by ``repr``-stable ordering, so
    ``edge_key(u, v) == edge_key(v, u)``.  Vertices must be mutually
    orderable (ints everywhere in this code base).

    >>> edge_key(3, 1)
    (1, 3)
    """
    if u == v:
        raise ValueError(f"self-loop {u!r} is not a valid edge")
    return (u, v) if u <= v else (v, u)  # type: ignore[operator]


class Graph:
    """A finite, simple, undirected graph with optional input labels.

    Parameters
    ----------
    vertices:
        Optional iterable of initial vertices.
    edges:
        Optional iterable of ``(u, v)`` pairs; endpoints are added
        automatically.

    The class deliberately exposes a small, explicit API (adjacency sets,
    BFS utilities, component extraction) rather than wrapping a third-party
    library: the certification algorithms in :mod:`repro.core` need precise
    control over vertex identity and edge labels, and the verifier must be
    auditable down to the data structure.
    """

    __slots__ = (
        "_adj",
        "_vertex_labels",
        "_edge_labels",
        "_m",
        "_csr",
        "_labels_version",
        "_fp_cache",
    )

    def __init__(
        self,
        vertices: Optional[Iterable[Vertex]] = None,
        edges: Optional[Iterable[tuple]] = None,
    ) -> None:
        self._adj: dict = {}
        self._vertex_labels: dict = {}
        self._edge_labels: dict = {}
        self._m: int = 0
        self._csr: Optional[CSRAdjacency] = None
        self._labels_version: int = 0
        self._fp_cache: dict = {}
        if vertices is not None:
            for v in vertices:
                self.add_vertex(v)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # The CSR read core
    # ------------------------------------------------------------------
    @property
    def csr(self) -> CSRAdjacency:
        """The immutable CSR snapshot of the current structure.

        Built on first access after any structural mutation, then shared
        by every reader (and by :meth:`copy`, which starts from the same
        snapshot).  Input labels are not part of the snapshot.
        """
        if self._csr is None:
            self._csr = CSRAdjacency(self._adj)
        return self._csr

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> None:
        """Add vertex ``v``; adding an existing vertex is a no-op."""
        if v not in self._adj:
            self._adj[v] = set()
            self._csr = None

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add edge ``{u, v}``, creating endpoints as needed.

        Re-adding an existing edge is a no-op (the graph is simple).
        """
        edge_key(u, v)  # validates against self-loops
        self.add_vertex(u)
        self.add_vertex(v)
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._m += 1
            self._csr = None
        # No entry is created in _edge_labels until a label is assigned.

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove edge ``{u, v}``; raises ``KeyError`` if absent."""
        if not self.has_edge(u, v):
            raise KeyError(f"edge {u!r}-{v!r} not in graph")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._m -= 1
        self._csr = None
        if self._edge_labels.pop(edge_key(u, v), None) is not None:
            self._labels_version += 1

    def remove_vertex(self, v: Vertex) -> None:
        """Remove ``v`` and all incident edges; raises ``KeyError`` if absent."""
        for u in list(self._adj[v]):
            self.remove_edge(u, v)
        del self._adj[v]
        self._csr = None
        if self._vertex_labels.pop(v, None) is not None:
            self._labels_version += 1

    # ------------------------------------------------------------------
    # Input labels (finite-alphabet state, Section 1.1)
    # ------------------------------------------------------------------
    def set_vertex_label(self, v: Vertex, label: Hashable) -> None:
        """Attach the input label ``label`` to vertex ``v``."""
        if v not in self._adj:
            raise KeyError(f"vertex {v!r} not in graph")
        self._vertex_labels[v] = label
        self._labels_version += 1

    def vertex_label(self, v: Vertex, default: Hashable = None) -> Hashable:
        """Return the input label of ``v`` (``default`` if unset)."""
        return self._vertex_labels.get(v, default)

    def set_edge_label(self, u: Vertex, v: Vertex, label: Hashable) -> None:
        """Attach the input label ``label`` to edge ``{u, v}``."""
        if not self.has_edge(u, v):
            raise KeyError(f"edge {u!r}-{v!r} not in graph")
        self._edge_labels[edge_key(u, v)] = label
        self._labels_version += 1

    @property
    def labels_version(self) -> int:
        """Monotone counter bumped by every input-label mutation.

        Structural mutation is observable through the :meth:`csr`
        snapshot identity; label mutation deliberately is not (labels
        are not part of the snapshot), so consumers that capture label
        state — the pool-resident parallel executor ships it to workers
        once per pool — key their caches on this counter instead.
        """
        return self._labels_version

    def edge_label(self, u: Vertex, v: Vertex, default: Hashable = None) -> Hashable:
        """Return the input label of edge ``{u, v}`` (``default`` if unset)."""
        return self._edge_labels.get(edge_key(u, v), default)

    def vertex_labels(self) -> dict:
        """Return a copy of the vertex-label assignment."""
        return dict(self._vertex_labels)

    def edge_labels(self) -> dict:
        """Return a copy of the edge-label assignment."""
        return dict(self._edge_labels)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self._adj)

    @property
    def m(self) -> int:
        """Number of edges (maintained incrementally, O(1))."""
        return self._m

    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def vertices(self) -> list:
        """Return the vertices in sorted order (CSR-cached)."""
        return list(self.csr.vertices)

    def edges(self) -> list:
        """Return the canonical edge keys in sorted order (CSR-cached).

        ``edges()[e]`` is the edge with stable index ``e`` — see
        :meth:`edge_index`.
        """
        return list(self.csr.edges)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return whether ``{u, v}`` is an edge."""
        return u in self._adj and v in self._adj[u]

    def neighbors(self, v: Vertex) -> set:
        """Return the (copied) neighbor set of ``v``."""
        return set(self._adj[v])

    def neighbors_sorted(self, v: Vertex) -> tuple:
        """Return the neighbors of ``v`` in sorted order, without copying.

        The tuple is a cached row of the CSR snapshot — the right accessor
        for read-heavy algorithms (decompositions, minor searches, view
        building) that used to pay a set copy plus a sort per visit.
        """
        return self.csr.name_row(v)

    def degree(self, v: Vertex) -> int:
        """Return the degree of ``v``."""
        return len(self._adj[v])

    def max_degree(self) -> int:
        """Return the maximum degree (0 for an empty graph)."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def incident_edges(self, v: Vertex) -> list:
        """Return the canonical keys of the edges incident to ``v``.

        CSR row order yields the keys already sorted: for neighbors
        ``u < v`` the key is ``(u, v)`` with ``u`` ascending, then for
        ``u > v`` it is ``(v, u)`` with ``u`` ascending.
        """
        csr = self.csr
        edges = csr.edges
        return [edges[e] for e in csr.incident_row(csr.index[v])]

    def edge_index(self, u: Vertex, v: Vertex) -> int:
        """Return the stable index of edge ``{u, v}`` into :meth:`edges`.

        Stable until the next structural mutation; raises ``KeyError``
        for absent edges.
        """
        return self.csr.edge_index_of(u, v)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def bfs_order(self, source: Vertex) -> list:
        """Return the vertices reachable from ``source`` in BFS order."""
        if source not in self._adj:
            raise KeyError(f"vertex {source!r} not in graph")
        seen = {source}
        order = [source]
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for w in self.neighbors_sorted(u):
                if w not in seen:
                    seen.add(w)
                    order.append(w)
                    queue.append(w)
        return order

    def shortest_path(self, source: Vertex, target: Vertex) -> Optional[list]:
        """Return a shortest ``source``–``target`` path, or ``None``.

        Paths are returned as vertex lists including both endpoints.  BFS
        with deterministic (sorted) neighbor exploration, so results are
        reproducible — the prover relies on this when both prover and tests
        re-derive the same embedding paths.
        """
        if source not in self._adj or target not in self._adj:
            raise KeyError("endpoint not in graph")
        if source == target:
            return [source]
        parent: dict = {source: None}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for w in self.neighbors_sorted(u):
                if w not in parent:
                    parent[w] = u
                    if w == target:
                        path = [w]
                        while parent[path[-1]] is not None:
                            path.append(parent[path[-1]])
                        path.reverse()
                        return path
                    queue.append(w)
        return None

    def distances_from(self, source: Vertex) -> dict:
        """Return BFS distances from ``source`` to every reachable vertex."""
        dist = {source: 0}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for w in self._adj[u]:
                if w not in dist:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return dist

    def connected_components(self) -> list:
        """Return the components as a list of sorted vertex lists."""
        seen: set = set()
        components = []
        for v in sorted(self._adj):
            if v not in seen:
                comp = self.bfs_order(v)
                seen.update(comp)
                components.append(sorted(comp))
        return components

    def is_connected(self) -> bool:
        """Return whether the graph is connected (empty graph counts as yes)."""
        if not self._adj:
            return True
        return len(self.bfs_order(next(iter(self._adj)))) == len(self._adj)

    def spanning_tree(self, root: Vertex) -> "Graph":
        """Return a BFS spanning tree of the component of ``root``."""
        tree = Graph(vertices=[root])
        seen = {root}
        queue = deque([root])
        while queue:
            u = queue.popleft()
            for w in self.neighbors_sorted(u):
                if w not in seen:
                    seen.add(w)
                    tree.add_edge(u, w)
                    queue.append(w)
        return tree

    # ------------------------------------------------------------------
    # Structure tests
    # ------------------------------------------------------------------
    def has_cycle(self) -> bool:
        """Return whether the graph contains a cycle."""
        seen: set = set()
        for start in self._adj:
            if start in seen:
                continue
            stack = [(start, None)]
            seen.add(start)
            while stack:
                u, par = stack.pop()
                for w in self._adj[u]:
                    if w == par:
                        par = None  # skip the tree edge exactly once
                        continue
                    if w in seen:
                        return True
                    seen.add(w)
                    stack.append((w, u))
        return False

    def is_forest(self) -> bool:
        """Return whether the graph is acyclic."""
        # A graph is a forest iff every component has n_c - 1 edges; the
        # parent-skip trick in has_cycle mishandles multi-edges, which simple
        # graphs cannot have, but the count check is unconditionally safe.
        return self.m == self.n - len(self.connected_components())

    def is_tree(self) -> bool:
        """Return whether the graph is a connected forest."""
        return self.is_connected() and self.m == self.n - 1

    def is_path_graph(self) -> bool:
        """Return whether the graph is a simple path on >= 1 vertices."""
        if self.n == 0:
            return False
        if not self.is_tree():
            return False
        degrees = sorted(self.degree(v) for v in self._adj)
        if self.n == 1:
            return True
        return degrees[0] == 1 and degrees[1] == 1 and degrees[-1] <= 2

    def is_cycle_graph(self) -> bool:
        """Return whether the graph is a single simple cycle."""
        return (
            self.n >= 3
            and self.is_connected()
            and all(self.degree(v) == 2 for v in self._adj)
        )

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Return a deep copy (labels included).

        The adjacency sets are copied; the immutable CSR snapshot (if
        built) is shared — a later mutation of either graph only drops
        that graph's reference.
        """
        g = Graph()
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        g._m = self._m
        g._csr = self._csr
        g._vertex_labels = dict(self._vertex_labels)
        g._edge_labels = dict(self._edge_labels)
        g._labels_version = self._labels_version
        return g

    def induced_subgraph(self, vertex_subset: Iterable[Vertex]) -> "Graph":
        """Return the subgraph induced on ``vertex_subset`` (labels kept)."""
        keep = set(vertex_subset)
        missing = keep - set(self._adj)
        if missing:
            raise KeyError(f"vertices {sorted(missing)!r} not in graph")
        g = Graph(vertices=keep)
        for u, v in self.edges():
            if u in keep and v in keep:
                g.add_edge(u, v)
                if (u, v) in self._edge_labels:
                    g.set_edge_label(u, v, self._edge_labels[(u, v)])
        for v in keep:
            if v in self._vertex_labels:
                g.set_vertex_label(v, self._vertex_labels[v])
        return g

    def edge_subgraph(self, edge_subset: Iterable[tuple]) -> "Graph":
        """Return the spanning subgraph with only the given edges.

        All vertices of ``self`` are kept; this is the ``(V, E)`` inside
        ``(V, E')`` view used in the proof of Theorem 1, where the real
        edge set is a subset of the completion's edge set.
        """
        g = Graph(vertices=self._adj)
        for u, v in edge_subset:
            if not self.has_edge(u, v):
                raise KeyError(f"edge {u!r}-{v!r} not in graph")
            g.add_edge(u, v)
        g._vertex_labels = dict(self._vertex_labels)
        for key, label in self._edge_labels.items():
            if g.has_edge(*key):
                g._edge_labels[key] = label
        return g

    def relabeled(self, mapping: dict) -> "Graph":
        """Return an isomorphic copy with vertices renamed via ``mapping``.

        ``mapping`` must be injective on the vertex set; unmapped vertices
        keep their names.
        """
        image = [mapping.get(v, v) for v in self._adj]
        if len(set(image)) != len(image):
            raise ValueError("relabeling is not injective")
        g = Graph(vertices=image)
        for u, v in self.edges():
            g.add_edge(mapping.get(u, u), mapping.get(v, v))
        for v, label in self._vertex_labels.items():
            g.set_vertex_label(mapping.get(v, v), label)
        for (u, v), label in self._edge_labels.items():
            g.set_edge_label(mapping.get(u, u), mapping.get(v, v), label)
        return g

    def disjoint_union(self, other: "Graph") -> "Graph":
        """Return the disjoint union; vertex sets must already be disjoint."""
        overlap = set(self._adj) & set(other._adj)
        if overlap:
            raise ValueError(f"vertex sets overlap: {sorted(overlap)!r}")
        g = self.copy()
        for v in other._adj:
            g.add_vertex(v)
        for u, v in other.edges():
            g.add_edge(u, v)
        for v, label in other._vertex_labels.items():
            g.set_vertex_label(v, label)
        for (u, v), label in other._edge_labels.items():
            g.set_edge_label(u, v, label)
        return g

    # ------------------------------------------------------------------
    # Equality and presentation
    # ------------------------------------------------------------------
    def fingerprint(self, include_labels: bool = True) -> str:
        """Return a stable content hash of the graph.

        The fingerprint covers the vertex set, the canonical edge keys,
        and (by default) the input labels; two graphs with equal
        fingerprints have identical vertices/edges/labels up to hash
        collision (blake2b-128, negligible).  ``include_labels=False``
        matches the bare ``(V, E)`` identity used by the lanewidth
        prover's configuration check.

        ``include_labels="edges"`` hashes the edge labels but not the
        vertex labels: it is the *certification identity* used to key
        plan-DAG artifacts.  The Theorem 1 pipeline threads edge labels
        into the construction sequence as tags (they end up inside the
        certificates), while vertex labels never enter any stage — two
        graphs that differ only in vertex labels certify to bit-identical
        labelings, and the incremental layer leans on exactly that to
        reuse every artifact across vertex-relabeling edit batches.

        The structural half of the hash lives on the CSR snapshot
        (:meth:`CSRAdjacency.fingerprint_base`) and the final string is
        memoized per ``(snapshot, labels_version)``, so repeated calls —
        session normalization, artifact-cache keys, store lookups — cost
        a dict probe instead of an O(n + m) rehash.  Structural mutation
        replaces the snapshot and label mutation bumps the version, so a
        stale value can never be returned.
        """
        csr = self.csr
        cached = self._fp_cache.get(include_labels)
        if (
            cached is not None
            and cached[0] is csr
            and cached[1] == self._labels_version
        ):
            return cached[2]
        digest = csr.fingerprint_base().copy()
        if include_labels:
            if include_labels != "edges":
                digest.update(b"\x02")
                for v, label in sorted(self._vertex_labels.items(), key=repr):
                    digest.update(repr((v, label)).encode())
                    digest.update(b"\x00")
            digest.update(b"\x03")
            for key, label in sorted(self._edge_labels.items(), key=repr):
                digest.update(repr((key, label)).encode())
                digest.update(b"\x00")
        value = digest.hexdigest()
        self._fp_cache[include_labels] = (csr, self._labels_version, value)
        return value

    def same_graph(self, other: "Graph") -> bool:
        """Return whether self and other have identical vertices and edges.

        This is labeled-identity equality (names matter), not isomorphism.
        """
        return (
            set(self._adj) == set(other._adj)
            and self.edges() == other.edges()
            and self._vertex_labels == other._vertex_labels
            and self._edge_labels == other._edge_labels
        )

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self.m})"

    def to_networkx(self):
        """Export to a ``networkx.Graph`` (for test cross-checks only)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self._adj)
        g.add_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, nx_graph) -> "Graph":
        """Import from a ``networkx.Graph`` (tests and examples only)."""
        g = cls(vertices=nx_graph.nodes)
        for u, v in nx_graph.edges:
            if u != v:
                g.add_edge(u, v)
        return g
