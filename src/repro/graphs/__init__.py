"""Graph substrate: core data structures, generators, and minor testing.

This package is the bottom layer of the reproduction.  Everything above it
(path decompositions, lane partitions, proof labeling schemes) manipulates
:class:`repro.graphs.Graph` objects.  The implementation is self-contained:
no third-party graph library is used by the algorithms themselves.
"""

from repro.graphs.graph import Graph, edge_key
from repro.graphs.csr import CSRAdjacency
from repro.graphs.degeneracy import degeneracy_ordering, orient_by_degeneracy
from repro.graphs.edits import (
    Edit,
    EditBatch,
    EditError,
    apply_edits,
)
from repro.graphs.minors import (
    contains_minor,
    is_minor_free,
    find_minor_model,
)

__all__ = [
    "Graph",
    "edge_key",
    "CSRAdjacency",
    "degeneracy_ordering",
    "orient_by_degeneracy",
    "Edit",
    "EditBatch",
    "EditError",
    "apply_edits",
    "contains_minor",
    "is_minor_free",
    "find_minor_model",
]
