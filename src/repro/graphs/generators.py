"""Graph generators for every workload family in the evaluation.

Two kinds of generators live here:

* **classic families** (paths, cycles, stars, caterpillars, spiders,
  ladders, trees) used throughout the paper's narrative — paths vs. cycles
  drive the Omega(log n) lower bound, caterpillars are exactly the
  pathwidth-1 graphs, ladders have pathwidth 2;
* **random families with a known path decomposition**: the sliding-window
  construction returns the witness decomposition alongside the graph so
  large instances never require solving the NP-hard pathwidth problem.

Lanewidth-based families (random ``V-insert``/``E-insert`` constructions,
Definition 5.1) live in :mod:`repro.core.lanewidth` next to the construction
semantics they exercise.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator, Optional

from repro.graphs.graph import Graph


def path_graph(n: int) -> Graph:
    """Return the path on vertices ``0..n-1`` (pathwidth 1 for n >= 2)."""
    if n < 1:
        raise ValueError("path needs at least one vertex")
    return Graph(vertices=range(n), edges=((i, i + 1) for i in range(n - 1)))


def cycle_graph(n: int) -> Graph:
    """Return the cycle on vertices ``0..n-1`` (pathwidth 2)."""
    if n < 3:
        raise ValueError("cycle needs at least three vertices")
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    return g


def star_graph(leaves: int) -> Graph:
    """Return the star ``K_{1,leaves}`` with center ``0``."""
    if leaves < 0:
        raise ValueError("leaves must be non-negative")
    return Graph(vertices=range(leaves + 1), edges=((0, i) for i in range(1, leaves + 1)))


def complete_graph(n: int) -> Graph:
    """Return ``K_n`` (pathwidth n-1)."""
    if n < 1:
        raise ValueError("complete graph needs at least one vertex")
    return Graph(vertices=range(n), edges=itertools.combinations(range(n), 2))


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """Return ``K_{a,b}`` with sides ``0..a-1`` and ``a..a+b-1``."""
    if a < 1 or b < 1:
        raise ValueError("both sides must be non-empty")
    return Graph(
        vertices=range(a + b),
        edges=((i, a + j) for i in range(a) for j in range(b)),
    )


def ladder_graph(rungs: int) -> Graph:
    """Return the 2 x rungs ladder (pathwidth 2 for rungs >= 2).

    Rails are ``0..rungs-1`` and ``rungs..2*rungs-1``; rung ``i`` joins
    ``i`` to ``rungs + i``.
    """
    if rungs < 1:
        raise ValueError("ladder needs at least one rung")
    g = Graph(vertices=range(2 * rungs))
    for i in range(rungs - 1):
        g.add_edge(i, i + 1)
        g.add_edge(rungs + i, rungs + i + 1)
    for i in range(rungs):
        g.add_edge(i, rungs + i)
    return g


def grid_graph(rows: int, cols: int) -> Graph:
    """Return the rows x cols grid (pathwidth min(rows, cols))."""
    if rows < 1 or cols < 1:
        raise ValueError("grid needs positive dimensions")
    g = Graph(vertices=range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                g.add_edge(v, v + 1)
            if r + 1 < rows:
                g.add_edge(v, v + cols)
    return g


def caterpillar_graph(spine: int, legs_per_vertex: int) -> Graph:
    """Return a caterpillar: a spine path with pendant legs (pathwidth 1).

    Spine vertices are ``0..spine-1``; legs are numbered from ``spine`` on.
    """
    if spine < 1:
        raise ValueError("caterpillar needs a spine vertex")
    if legs_per_vertex < 0:
        raise ValueError("legs_per_vertex must be non-negative")
    g = path_graph(spine)
    next_vertex = spine
    for s in range(spine):
        for _ in range(legs_per_vertex):
            g.add_edge(s, next_vertex)
            next_vertex += 1
    return g


def spider_graph(legs: int, leg_length: int) -> Graph:
    """Return a spider: ``legs`` paths of ``leg_length`` edges from center 0.

    The spider S(2,2,2) (3 legs of length 2) is, with K_3, one of the two
    minor obstructions for pathwidth 1; it appears in the Corollary 1.2
    experiments.
    """
    if legs < 1 or leg_length < 1:
        raise ValueError("spider needs legs of positive length")
    g = Graph(vertices=[0])
    next_vertex = 1
    for _ in range(legs):
        prev = 0
        for _ in range(leg_length):
            g.add_edge(prev, next_vertex)
            prev = next_vertex
            next_vertex += 1
    return g


def binary_tree_graph(depth: int) -> Graph:
    """Return the complete binary tree of the given depth (heap indexing)."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    n = 2 ** (depth + 1) - 1
    g = Graph(vertices=range(n))
    for v in range(1, n):
        g.add_edge(v, (v - 1) // 2)
    return g


def random_tree(n: int, rng: Optional[random.Random] = None) -> Graph:
    """Return a uniformly random labeled tree on ``0..n-1`` (Prufer)."""
    if n < 1:
        raise ValueError("tree needs at least one vertex")
    rng = rng or random.Random()
    if n == 1:
        return Graph(vertices=[0])
    if n == 2:
        return Graph(vertices=[0, 1], edges=[(0, 1)])
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for v in prufer:
        degree[v] += 1
    g = Graph(vertices=range(n))
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for v in prufer:
        leaf = heapq.heappop(leaves)
        g.add_edge(leaf, v)
        degree[v] -= 1
        if degree[v] == 1:
            heapq.heappush(leaves, v)
    u = heapq.heappop(leaves)
    w = heapq.heappop(leaves)
    g.add_edge(u, w)
    return g


def random_caterpillar(
    n: int, rng: Optional[random.Random] = None, leg_probability: float = 0.5
) -> Graph:
    """Return a random caterpillar on ``n`` vertices (pathwidth <= 1)."""
    if n < 1:
        raise ValueError("caterpillar needs at least one vertex")
    rng = rng or random.Random()
    g = Graph(vertices=[0])
    spine = [0]
    for v in range(1, n):
        if rng.random() < leg_probability:
            g.add_edge(v, rng.choice(spine))  # pendant leg
        else:
            g.add_edge(v, spine[-1])  # extend the spine
            spine.append(v)
    return g


def random_connected_gnp(
    n: int, p: float, rng: Optional[random.Random] = None, max_tries: int = 200
) -> Graph:
    """Return a connected G(n, p) sample (rejection + tree patching).

    If ``max_tries`` rejections all fail, a random spanning tree is added to
    the last sample so the function always terminates with a connected graph.
    """
    if n < 1:
        raise ValueError("graph needs at least one vertex")
    rng = rng or random.Random()
    g = Graph(vertices=range(n))
    for _ in range(max_tries):
        g = Graph(vertices=range(n))
        for u, v in itertools.combinations(range(n), 2):
            if rng.random() < p:
                g.add_edge(u, v)
        if g.is_connected():
            return g
    tree = random_tree(n, rng)
    for u, v in tree.edges():
        g.add_edge(u, v)
    return g


def random_pathwidth_graph(
    n: int,
    k: int,
    rng: Optional[random.Random] = None,
    extra_edge_probability: float = 0.5,
    churn: float = 0.5,
) -> tuple:
    """Return ``(graph, bags)`` — a connected graph with pathwidth <= k.

    The construction maintains a sliding *active window* of at most ``k + 1``
    vertices.  Each new vertex evicts random window members (rate ``churn``),
    joins the window, connects to at least one current member (so the result
    is connected), and picks extra window edges with probability
    ``extra_edge_probability``.  The recorded window snapshots form a valid
    path decomposition of width <= k: every vertex's window membership is a
    contiguous interval (evicted vertices never return), and every edge is
    created inside some window.

    Returns
    -------
    (Graph, list[list[vertex]]):
        the graph and the witness bags, ready for
        :class:`repro.pathwidth.PathDecomposition`.
    """
    if n < 1:
        raise ValueError("graph needs at least one vertex")
    if k < 1:
        raise ValueError("pathwidth bound must be >= 1")
    rng = rng or random.Random()
    g = Graph(vertices=[0])
    window = [0]
    bags = [list(window)]
    for v in range(1, n):
        while len(window) > 1 and (len(window) > k or rng.random() < churn):
            window.pop(rng.randrange(len(window)))
        anchor = rng.choice(window)
        g.add_edge(v, anchor)
        for u in window:
            if u != anchor and rng.random() < extra_edge_probability:
                g.add_edge(v, u)
        window.append(v)
        bags.append(list(window))
    return g, bags


def enumerate_graphs(n: int, connected_only: bool = True) -> Iterator[Graph]:
    """Yield every labeled graph on ``0..n-1`` (use only for small ``n``).

    There are ``2^(n(n-1)/2)`` labeled graphs, so this is intended for
    exhaustive cross-validation with ``n <= 5`` and sampled use at ``n = 6``.
    """
    if n < 1:
        raise ValueError("need at least one vertex")
    pairs = list(itertools.combinations(range(n), 2))
    for mask in range(2 ** len(pairs)):
        g = Graph(vertices=range(n))
        for bit, (u, v) in enumerate(pairs):
            if mask >> bit & 1:
                g.add_edge(u, v)
        if connected_only and not g.is_connected():
            continue
        yield g


def assign_random_ids(
    graph: Graph, rng: Optional[random.Random] = None, universe_bits: int = 32
) -> dict:
    """Return a random injective ID assignment ``vertex -> int``.

    The PLS model gives every vertex a distinct O(log n)-bit identifier that
    the prover cannot choose; sampling from a ``universe_bits``-bit space
    models that adversarial freedom in soundness experiments.
    """
    rng = rng or random.Random()
    universe = 2**universe_bits
    ids: set = set()
    assignment = {}
    for v in graph.vertices():
        x = rng.randrange(universe)
        while x in ids:
            x = rng.randrange(universe)
        ids.add(x)
        assignment[v] = x
    return assignment
