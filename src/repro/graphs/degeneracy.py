"""Degeneracy orderings and bounded-outdegree orientations.

Proposition 2.1 of the paper converts edge-labeled proof labeling schemes
into vertex-labeled ones at a factor-``d`` cost on ``d``-degenerate graphs:
orient every edge acyclically with outdegree at most ``d`` and move each
edge label to the tail.  Bounded-pathwidth graphs are ``O(k)``-degenerate,
so the overhead is O(1) for fixed ``k``.
"""

from __future__ import annotations

from repro.graphs.graph import Graph, edge_key


def degeneracy_ordering(graph: Graph) -> tuple:
    """Return ``(ordering, degeneracy)`` via repeated minimum-degree removal.

    ``ordering`` lists the vertices in removal order; the degeneracy is the
    maximum, over removals, of the removed vertex's remaining degree.  Runs
    in O(n + m) with a bucket queue over the CSR core — dense indices in,
    names out, no per-vertex set copies.  (CSR index order is sorted name
    order, so the min-index tie-break below matches the historical
    min-name one.)
    """
    csr = graph.csr
    n = csr.n
    remaining_degree = list(csr.degrees)
    max_deg = max(remaining_degree, default=0)
    buckets: list = [set() for _ in range(max_deg + 1)]
    for i, d in enumerate(remaining_degree):
        buckets[d].add(i)
    removed = [False] * n
    ordering = []
    degeneracy = 0
    cursor = 0
    indptr, neighbors = csr.indptr, csr.neighbors
    for _ in range(n):
        while cursor <= max_deg and not buckets[cursor]:
            cursor += 1
        i = min(buckets[cursor])  # deterministic tie-break
        buckets[cursor].discard(i)
        degeneracy = max(degeneracy, remaining_degree[i])
        ordering.append(csr.vertices[i])
        removed[i] = True
        for p in range(indptr[i], indptr[i + 1]):
            j = neighbors[p]
            if removed[j]:
                continue
            d = remaining_degree[j]
            buckets[d].discard(j)
            remaining_degree[j] = d - 1
            buckets[d - 1].add(j)
            if d - 1 < cursor:
                cursor = d - 1
    return ordering, degeneracy


def orient_by_degeneracy(graph: Graph) -> tuple:
    """Return ``(orientation, outdegree_bound)`` per Proposition 2.1.

    ``orientation`` maps each canonical edge key to its oriented pair
    ``(tail, head)``; every vertex has outdegree at most the graph's
    degeneracy, and the orientation is acyclic.  The edge is oriented away
    from the endpoint removed *earlier* in the degeneracy ordering, whose
    not-yet-removed degree at removal time bounds its outdegree.
    """
    ordering, degeneracy = degeneracy_ordering(graph)
    position = {v: i for i, v in enumerate(ordering)}
    orientation = {}
    for u, v in graph.edges():
        if position[u] < position[v]:
            orientation[edge_key(u, v)] = (u, v)
        else:
            orientation[edge_key(u, v)] = (v, u)
    return orientation, degeneracy


def out_neighbors(orientation: dict, vertex) -> list:
    """Return the heads of the edges oriented out of ``vertex``."""
    return sorted(head for tail, head in orientation.values() if tail == vertex)
