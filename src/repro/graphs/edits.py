"""Edit batches: the unit of change for evolving graphs.

Local certification was born in self-stabilization, where deployments
see *streams of edits* — an edge flips, a mark changes — rather than
fresh graphs.  An :class:`EditBatch` is the declarative record of one
such change set: a sequence of :class:`Edit` operations (edge add or
remove, vertex- or edge-label assignment) that :func:`apply_edits`
replays onto a copy of a base graph.

Batches are strict by design.  Re-adding a present edge, removing an
absent one, or touching an unknown vertex raises :class:`EditError`
instead of silently degenerating — an adversarially replayed or
misordered edit stream must surface as an error, not as a certified
report over a graph nobody asked for.  (`Graph.add_edge` itself treats
re-adds as no-ops; the strictness lives here, at the batch layer, where
intent is explicit.)

The classification helpers are what the incremental layer keys on:

* :meth:`EditBatch.structural` — edits that change ``(V, E)`` and hence
  the CSR snapshot, the decomposition, and every downstream artifact;
* :meth:`EditBatch.relabels_edges` — edge-label edits, which reach the
  certificates through the construction sequence's tags;
* vertex-label edits, which never enter any pipeline stage and leave
  the certification bit-for-bit intact (see
  ``Graph.fingerprint("edges")``).

Batches have a canonical wire form (:meth:`EditBatch.to_wire` /
:meth:`EditBatch.from_wire`) so the service's ``update`` op can ship an
edit stream instead of a whole graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Tuple

from repro.graphs.graph import Graph, edge_key

#: The edit vocabulary, in wire order.
EDIT_KINDS = (
    "add_edge",
    "remove_edge",
    "set_vertex_label",
    "set_edge_label",
)

_STRUCTURAL = frozenset(("add_edge", "remove_edge"))


class EditError(ValueError):
    """Raised when an edit cannot be applied to the base graph."""


@dataclass(frozen=True)
class Edit:
    """One atomic change.

    ``kind`` is one of :data:`EDIT_KINDS`.  Edge edits carry both
    endpoints; ``set_vertex_label`` carries the vertex in ``u`` and the
    new label; ``set_edge_label`` carries endpoints and the new label.
    """

    kind: str
    u: Any
    v: Any = None
    label: Any = None

    def __post_init__(self):
        if self.kind not in EDIT_KINDS:
            raise EditError(f"unknown edit kind {self.kind!r}")
        if self.kind != "set_vertex_label" and self.v is None:
            raise EditError(f"{self.kind} needs both endpoints")

    @property
    def structural(self) -> bool:
        """Whether this edit changes the vertex/edge set."""
        return self.kind in _STRUCTURAL

    def touched(self) -> Tuple:
        """The vertices whose local neighborhood this edit dirties."""
        if self.kind == "set_vertex_label":
            return (self.u,)
        return (self.u, self.v)

    def to_wire(self) -> list:
        """Canonical JSON-friendly form (labels must be JSON values)."""
        if self.kind == "set_vertex_label":
            return [self.kind, self.u, self.label]
        if self.kind == "set_edge_label":
            return [self.kind, self.u, self.v, self.label]
        if self.kind == "add_edge" and self.label is not None:
            return [self.kind, self.u, self.v, self.label]
        return [self.kind, self.u, self.v]

    @classmethod
    def from_wire(cls, data) -> "Edit":
        if not isinstance(data, (list, tuple)) or not data:
            raise EditError(f"malformed wire edit {data!r}")
        kind = data[0]
        if kind == "set_vertex_label":
            if len(data) != 3:
                raise EditError(f"malformed {kind} edit {data!r}")
            return cls(kind, data[1], label=data[2])
        if kind == "set_edge_label":
            if len(data) != 4:
                raise EditError(f"malformed {kind} edit {data!r}")
            return cls(kind, data[1], data[2], label=data[3])
        if kind == "add_edge" and len(data) == 4:
            return cls(kind, data[1], data[2], label=data[3])
        if len(data) != 3:
            raise EditError(f"malformed {kind!r} edit {data!r}")
        return cls(kind, data[1], data[2])


def add_edge(u, v, label=None) -> Edit:
    """Shorthand constructor: add edge ``{u, v}`` (optionally labeled)."""
    return Edit("add_edge", u, v, label=label)


def remove_edge(u, v) -> Edit:
    """Shorthand constructor: remove edge ``{u, v}``."""
    return Edit("remove_edge", u, v)


def set_vertex_label(v, label) -> Edit:
    """Shorthand constructor: assign ``label`` to vertex ``v``."""
    return Edit("set_vertex_label", v, label=label)


def set_edge_label(u, v, label) -> Edit:
    """Shorthand constructor: assign ``label`` to edge ``{u, v}``."""
    return Edit("set_edge_label", u, v, label=label)


@dataclass(frozen=True)
class EditBatch:
    """An ordered sequence of edits applied atomically.

    Order matters (an edge may be added and then labeled in the same
    batch); application is all-or-nothing — :func:`apply_edits` works
    on a copy and raises before the base graph is ever touched.
    """

    edits: Tuple[Edit, ...]

    def __init__(self, edits: Iterable[Edit]):
        object.__setattr__(self, "edits", tuple(edits))
        for edit in self.edits:
            if not isinstance(edit, Edit):
                raise EditError(f"not an Edit: {edit!r}")

    def __len__(self) -> int:
        return len(self.edits)

    def __iter__(self):
        return iter(self.edits)

    def __bool__(self) -> bool:
        return bool(self.edits)

    # -- classification ------------------------------------------------
    def structural(self) -> Tuple[Edit, ...]:
        """The edits that change the vertex/edge set."""
        return tuple(e for e in self.edits if e.structural)

    def relabels_edges(self) -> bool:
        """Whether any edit assigns an edge label (certificates change)."""
        return any(
            e.kind == "set_edge_label"
            or (e.kind == "add_edge" and e.label is not None)
            for e in self.edits
        )

    def vertex_labels_only(self) -> bool:
        """Whether the whole batch is vertex relabeling.

        Such a batch leaves the certification identity
        (``Graph.fingerprint("edges")``) — and hence every plan-DAG
        artifact and the encoded labeling — untouched.
        """
        return bool(self.edits) and all(
            e.kind == "set_vertex_label" for e in self.edits
        )

    def touched_vertices(self) -> set:
        """All vertices whose neighborhoods the batch dirties."""
        out: set = set()
        for edit in self.edits:
            out.update(edit.touched())
        return out

    def touched_edges(self) -> set:
        """Canonical keys of edges added, removed, or relabeled."""
        return {
            edge_key(e.u, e.v)
            for e in self.edits
            if e.kind != "set_vertex_label"
        }

    # -- wire form -----------------------------------------------------
    def to_wire(self) -> list:
        return [edit.to_wire() for edit in self.edits]

    @classmethod
    def from_wire(cls, data) -> "EditBatch":
        if not isinstance(data, list):
            raise EditError(f"malformed wire batch {data!r}")
        return cls(Edit.from_wire(item) for item in data)


def apply_edits(
    graph: Graph, batch: EditBatch, inplace: bool = False
) -> Graph:
    """Replay ``batch`` onto ``graph`` (a copy unless ``inplace``).

    Strict semantics — every edit must be *meaningful* against the
    state it meets: endpoints of a new edge must exist, the edge must
    not (``add_edge``) or must (``remove_edge``, ``set_edge_label``)
    be present.  On any violation :class:`EditError` is raised and,
    in the default copying mode, the base graph is left untouched.
    """
    target = graph if inplace else graph.copy()
    for index, edit in enumerate(batch):
        try:
            _apply_one(target, edit)
        except EditError as exc:
            raise EditError(f"edit #{index} {edit.to_wire()!r}: {exc}") from None
    return target


def _apply_one(graph: Graph, edit: Edit) -> None:
    kind = edit.kind
    if kind == "add_edge":
        if edit.u not in graph or edit.v not in graph:
            raise EditError("endpoint not in graph")
        if graph.has_edge(edit.u, edit.v):
            raise EditError("edge already present")
        if edit.u == edit.v:
            raise EditError("self-loops are not allowed")
        graph.add_edge(edit.u, edit.v)
        if edit.label is not None:
            graph.set_edge_label(edit.u, edit.v, edit.label)
    elif kind == "remove_edge":
        if not graph.has_edge(edit.u, edit.v):
            raise EditError("edge not in graph")
        graph.remove_edge(edit.u, edit.v)
    elif kind == "set_vertex_label":
        if edit.u not in graph:
            raise EditError("vertex not in graph")
        graph.set_vertex_label(edit.u, edit.label)
    elif kind == "set_edge_label":
        if not graph.has_edge(edit.u, edit.v):
            raise EditError("edge not in graph")
        graph.set_edge_label(edit.u, edit.v, edit.label)
    else:  # pragma: no cover - guarded by Edit.__post_init__
        raise EditError(f"unknown edit kind {kind!r}")
