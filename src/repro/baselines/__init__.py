"""Baselines: the FMRT'24 O(log^2 n) scheme and the universal scheme."""

from repro.baselines.fmrt import FMRTScheme
from repro.baselines.universal import UniversalScheme

__all__ = ["FMRTScheme", "UniversalScheme"]
